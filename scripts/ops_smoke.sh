#!/usr/bin/env bash
# Smoke-test the live ops plane end to end, the way an operator would:
# start `repro serve` with the ops endpoint enabled, probe /healthz and
# /metrics with curl, keep polling /snapshot while a `repro feed` replay
# drives real traffic through the gateway, and leave the last snapshot
# on disk for CI to upload as an artifact.
#
# Usage: scripts/ops_smoke.sh [gateway-port] [ops-port] [snapshot-out]
set -euo pipefail

PORT="${1:-7107}"
OPS_PORT="${2:-7108}"
OUT="${3:-ops_snapshot.json}"
BASE="http://127.0.0.1:${OPS_PORT}"

PYTHONPATH=src python -m repro serve shelf \
  --port "$PORT" --ops-port "$OPS_PORT" \
  --duration 4.0 --slack 0.0 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

echo "--- /healthz"
curl -fsS "$BASE/healthz"
echo "--- /metrics (head)"
curl -fsS "$BASE/metrics" | head -n 20
echo "--- /readyz (before any feeder: expected not ready)"
curl -sS "$BASE/readyz" || true
echo
curl -fsS "$BASE/snapshot" >"$OUT"

PYTHONPATH=src python -m repro feed shelf \
  --port "$PORT" --duration 4.0 >/dev/null &
FEEDER=$!

# Poll /snapshot until the drained server closes the ops listener; the
# last successful poll is the artifact.
while curl -fsS "$BASE/snapshot" >"$OUT.tmp" 2>/dev/null; do
  mv "$OUT.tmp" "$OUT"
  sleep 0.1
done
rm -f "$OUT.tmp"

wait "$FEEDER"
wait "$SERVER"
trap - EXIT

python - "$OUT" <<'EOF'
import json
import sys

document = json.load(open(sys.argv[1]))
assert set(document) >= {"telemetry", "gateway"}, sorted(document)
print(f"snapshot OK: {sys.argv[1]}")
EOF
echo "ops smoke passed"
