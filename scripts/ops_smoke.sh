#!/usr/bin/env bash
# Smoke-test the live ops plane end to end, the way an operator would:
# start `repro serve` with the ops endpoint enabled, probe /healthz and
# /metrics with curl, keep polling /snapshot while a `repro feed` replay
# drives real traffic through the gateway, and leave the last snapshot
# on disk for CI to upload as an artifact.
#
# With a 4th argument of "cluster", instead smoke the multi-process
# deployment: two `repro worker` processes (each with its own ops
# plane), a `repro cluster` router in front, a `repro feed` replay
# through the router, curl of a worker's /metrics and of the router's
# cluster-wide rollup, and the router's last /snapshot as the artifact.
#
# Usage: scripts/ops_smoke.sh [gateway-port] [ops-port] [snapshot-out] [phase]
set -euo pipefail

PORT="${1:-7107}"
OPS_PORT="${2:-7108}"
OUT="${3:-ops_snapshot.json}"
PHASE="${4:-serve}"
BASE="http://127.0.0.1:${OPS_PORT}"

await_ops() {
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "ops endpoint $1 never came up" >&2
  return 1
}

if [ "$PHASE" = "cluster" ]; then
  # Wire ports sit in [PORT+10, PORT+14], ops ports in
  # [OPS_PORT+20, OPS_PORT+24]: with the adjacent default bases the
  # ranges stay disjoint, so nothing can collide.
  W0_PORT=$((PORT + 10)); W0_OPS=$((OPS_PORT + 20))
  W1_PORT=$((PORT + 12)); W1_OPS=$((OPS_PORT + 22))
  ROUTER_PORT=$((PORT + 14)); ROUTER_OPS=$((OPS_PORT + 24))

  PYTHONPATH=src python -m repro worker shelf \
    --port "$W0_PORT" --ops-port "$W0_OPS" --label w0 \
    --max-epochs 1 --slack 0.0 --duration 4.0 >/dev/null &
  W0=$!
  PYTHONPATH=src python -m repro worker shelf \
    --port "$W1_PORT" --ops-port "$W1_OPS" --label w1 \
    --max-epochs 1 --slack 0.0 --duration 4.0 >/dev/null &
  W1=$!
  trap 'kill "$W0" "$W1" 2>/dev/null || true' EXIT
  await_ops "http://127.0.0.1:${W0_OPS}"
  await_ops "http://127.0.0.1:${W1_OPS}"

  echo "--- worker w0 /metrics (head)"
  curl -fsS "http://127.0.0.1:${W0_OPS}/metrics" | head -n 10

  PYTHONPATH=src python -m repro cluster shelf \
    --port "$ROUTER_PORT" --ops-port "$ROUTER_OPS" --ops-linger 2.0 \
    --worker "w0=127.0.0.1:${W0_PORT}" --worker "w1=127.0.0.1:${W1_PORT}" \
    --slack 0.0 --duration 4.0 >/dev/null &
  ROUTER=$!
  trap 'kill "$W0" "$W1" "$ROUTER" 2>/dev/null || true' EXIT
  CBASE="http://127.0.0.1:${ROUTER_OPS}"
  await_ops "$CBASE"

  echo "--- router /healthz"
  curl -fsS "$CBASE/healthz"
  echo "--- router /metrics (head)"
  curl -fsS "$CBASE/metrics" | head -n 10
  # Recovery counters render from the first scrape, zeros included.
  curl -fsS "$CBASE/metrics" | grep -q '^repro_recovery_failovers_total 0$' || {
    echo "router /metrics missing repro_recovery_* families" >&2
    exit 1
  }
  curl -fsS "$CBASE/snapshot" >"$OUT"

  PYTHONPATH=src python -m repro feed shelf \
    --port "$ROUTER_PORT" --duration 4.0 >/dev/null &
  FEEDER=$!

  # Poll the cluster rollup until the completed router closes its ops
  # listener; the last successful poll is the artifact. Cluster spans
  # commit at epoch close, so --ops-linger above guarantees the final
  # /metrics poll lands after they are on the exposition.
  METRICS="$OUT.metrics"
  while curl -fsS "$CBASE/snapshot" >"$OUT.tmp" 2>/dev/null; do
    # Keep the last snapshot taken while the worker ring was still up;
    # polls landing in the linger window see the torn-down router.
    if grep -q '"w0"' "$OUT.tmp"; then
      mv "$OUT.tmp" "$OUT"
    fi
    curl -fsS "$CBASE/metrics" >"$METRICS.tmp" 2>/dev/null \
      && mv "$METRICS.tmp" "$METRICS"
    sleep 0.1
  done
  rm -f "$OUT.tmp" "$METRICS.tmp"

  wait "$FEEDER"
  wait "$ROUTER"
  wait "$W0"
  wait "$W1"
  trap - EXIT

  echo "--- router final /metrics: cluster span + recovery families"
  for pattern in \
    'span="cluster.e2e",worker="w0"' \
    'span="cluster.e2e",worker="w1"' \
    'span="wire.transit",worker="w0"' \
    'span="worker.session",worker="w1"' \
    '^repro_recovery_replayed_frames_total 0$' \
    '^repro_recovery_checkpoints_acked_total '; do
    grep -q "$pattern" "$METRICS" || {
      echo "final router /metrics missing $pattern" >&2
      exit 1
    }
  done
  grep -c 'repro_span_latency_ns_bucket{span="cluster' "$METRICS" \
    | sed 's/^/cluster span bucket samples: /'

  python - "$OUT" <<'EOF'
import json
import sys

document = json.load(open(sys.argv[1]))
assert set(document) >= {"telemetry", "gateway"}, sorted(document)
workers = document["gateway"].get("workers", {})
assert set(workers) == {"w0", "w1"}, sorted(workers)
statuses = {label: entry.get("status") for label, entry in workers.items()}
assert all(
    status in ("alive", "suspect", "dead", "restarting")
    for status in statuses.values()
), statuses
liveness = document.get("readiness", {}).get("workers", {})
assert set(liveness) == {"w0", "w1"}, sorted(liveness)
print(
    f"cluster rollup OK: {sys.argv[1]} "
    f"(workers: {sorted(workers)}, statuses: {statuses})"
)
EOF
  echo "cluster ops smoke passed"
  exit 0
fi

PYTHONPATH=src python -m repro serve shelf \
  --port "$PORT" --ops-port "$OPS_PORT" \
  --duration 4.0 --slack 0.0 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

echo "--- /healthz"
curl -fsS "$BASE/healthz"
echo "--- /metrics (head)"
curl -fsS "$BASE/metrics" | head -n 20
echo "--- /readyz (before any feeder: expected not ready)"
curl -sS "$BASE/readyz" || true
echo
curl -fsS "$BASE/snapshot" >"$OUT"

PYTHONPATH=src python -m repro feed shelf \
  --port "$PORT" --duration 4.0 >/dev/null &
FEEDER=$!

# Poll /snapshot until the drained server closes the ops listener; the
# last successful poll is the artifact.
while curl -fsS "$BASE/snapshot" >"$OUT.tmp" 2>/dev/null; do
  mv "$OUT.tmp" "$OUT"
  sleep 0.1
done
rm -f "$OUT.tmp"

wait "$FEEDER"
wait "$SERVER"
trap - EXIT

python - "$OUT" <<'EOF'
import json
import sys

document = json.load(open(sys.argv[1]))
assert set(document) >= {"telemetry", "gateway"}, sorted(document)
print(f"snapshot OK: {sys.argv[1]}")
EOF
echo "ops smoke passed"
