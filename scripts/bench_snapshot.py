#!/usr/bin/env python
"""Measure row/columnar/fused throughput and pin it in BENCH_columnar.json.

The committed snapshot is the benchmark trajectory reviewers diff when
the execution modes change; ``docs/columnar.md`` explains how to read
it. Wall-clock numbers are machine-dependent, so staleness is judged on
the *deterministic* fields (schema version, workload and mode sets,
tuple counts, chain depths, the gate floors) plus the recorded gates:
the committed stateless-chain columnar speed-up must sit at or above
``SPEEDUP_FLOOR``, the committed numeric-chain typed-column speed-up
over list columns at or above ``TYPED_SPEEDUP_FLOOR``, and — when the
snapshot machine has at least ``CLUSTER_SCALEOUT_MIN_CPUS`` CPUs — the
committed 4-worker-vs-1-worker cluster throughput ratio at or above
``CLUSTER_SCALEOUT_FLOOR``.

``--history DIR`` additionally appends one compact JSON line per run
to ``DIR/bench_history.jsonl`` — CI keeps that directory as the
``BENCH_history`` artifact, so the run-over-run trajectory survives
even though only the latest snapshot is committed.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py            # rewrite
    PYTHONPATH=src python scripts/bench_snapshot.py --check    # CI gate
    PYTHONPATH=src python scripts/bench_snapshot.py -o out.json
    PYTHONPATH=src python scripts/bench_snapshot.py --check --history BENCH_history
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT))  # the benchmarks package
sys.path.insert(0, str(ROOT / "src"))  # repro, when PYTHONPATH is unset

from benchmarks.test_bench_cluster import (  # noqa: E402
    CLUSTER_SCALEOUT_FLOOR,
    CLUSTER_SCALEOUT_MIN_CPUS,
)
from benchmarks.test_bench_columnar import (  # noqa: E402
    CHAIN_STAGES,
    CHAIN_TICK,
    NUMERIC_CHAIN_STAGES,
    NUMERIC_CHAIN_TICK,
    SPEEDUP_FLOOR,
    TYPED_SPEEDUP_FLOOR,
    chain_ticks,
    run_chain,
    run_numeric_chain,
)
from repro.streams import typedcols  # noqa: E402
from repro.streams.fjord import MODES  # noqa: E402

SNAPSHOT = ROOT / "BENCH_columnar.json"
#: Timed repetitions per mode; the best is recorded (least noise).
RUNS = 3


def _best_of(runs: int, fn: Callable[[], Any]) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _mode_rows(n_tuples: int, run: Callable[[str], Any]) -> dict[str, Any]:
    run(MODES[0])  # warm caches outside the timed runs
    rows: dict[str, Any] = {}
    for mode in MODES:
        seconds = _best_of(RUNS, lambda: run(mode))
        rows[mode] = {
            "seconds": round(seconds, 4),
            "tuples_per_sec": round(n_tuples / seconds),
        }
    row_rate = rows["row"]["tuples_per_sec"]
    for mode in MODES:
        rows[mode]["speedup_vs_row"] = round(
            rows[mode]["tuples_per_sec"] / row_rate, 2
        )
    return rows


def _numeric_chain_rows(sources, ticks, n_tuples: int) -> dict[str, Any]:
    """Time the numeric chain with list vs typed column storage.

    Both runs execute the identical columnar-mode graph; only the
    storage class behind numeric columns differs. Without numpy the
    two are the same code path, so the ratio is recorded as measured
    (~1.0) and the committed gate — which reads the committed value,
    not this one — still carries the with-numpy number.
    """
    run_numeric_chain(sources, ticks)  # warm caches outside timed runs
    previous = typedcols.set_typed_columns(False)
    try:
        as_list = _best_of(RUNS, lambda: run_numeric_chain(sources, ticks))
    finally:
        typedcols.set_typed_columns(*previous)
    typed = _best_of(RUNS, lambda: run_numeric_chain(sources, ticks))
    return {
        "description": (
            "deep numeric filter chain (int and float constant columns, "
            "one FieldCompare mask per stage) over the full shelf "
            "scenario's recorded streams; columnar mode, list vs "
            "numpy-typed column storage"
        ),
        "gated": True,
        "n_tuples": n_tuples,
        "numpy": typedcols.numpy_available(),
        "storage": {
            "list": {
                "seconds": round(as_list, 4),
                "tuples_per_sec": round(n_tuples / as_list),
            },
            "typed": {
                "seconds": round(typed, 4),
                "tuples_per_sec": round(n_tuples / typed),
            },
        },
        "typed_speedup_vs_list": round(as_list / typed, 2),
    }


def _cluster_rows() -> dict[str, Any]:
    """Time the multi-process cluster on 1 vs 4 workers.

    Subprocess soaks are expensive, so each worker count runs once
    (``run_cluster_processes`` already excludes process start-up from
    its feed-to-summary window). Wall-clock scale-out needs real cores:
    ``cpus`` is recorded with the measurement, and the committed gate
    enforces the floor only for snapshots taken on machines with at
    least ``CLUSTER_SCALEOUT_MIN_CPUS`` CPUs — on smaller machines the
    ratio is recorded as measured, the same convention as the numeric
    chain's without-numpy fallback.
    """
    from repro.net.cluster import run_cluster_processes

    workers: dict[str, Any] = {}
    rates: dict[int, float] = {}
    n_frames = 0
    for count in (1, 4):
        result = run_cluster_processes(
            "shelf_chain", count, duration=30.0, slack=0.0
        )
        rates[count] = result["tuples_per_sec"]
        n_frames = result["summary"]["router"]["data_frames"]
        workers[f"workers_{count}"] = {
            "seconds": round(result["elapsed"], 4),
            "tuples_per_sec": round(result["tuples_per_sec"]),
        }
    return {
        "description": (
            "shelf_chain recording through the full multi-process "
            "cluster (feeder, router, N fused workers, egress merge); "
            "feed-to-summary window (benchmarks/test_bench_cluster.py)"
        ),
        "gated": True,
        "cpus": os.cpu_count() or 1,
        "n_tuples": n_frames,
        "workers": workers,
        "scaleout_4v1": round(rates[4] / rates[1], 2),
    }


def measure() -> dict[str, Any]:
    from repro.pipelines.rfid_shelf import build_shelf_processor
    from repro.pipelines.sensornet import build_redwood_processor
    from repro.scenarios.redwood import RedwoodScenario
    from repro.scenarios.shelf import ShelfScenario

    shelf = ShelfScenario()
    shelf_sources = shelf.recorded_streams()
    shelf_n = sum(len(v) for v in shelf_sources.values())
    ticks = chain_ticks(shelf.duration)

    redwood = RedwoodScenario(duration=0.05 * 86400.0, n_groups=2, seed=3)
    redwood_sources = redwood.recorded_streams()
    redwood_n = sum(len(v) for v in redwood_sources.values())

    def run_shelf_pipeline(mode: str) -> None:
        processor = build_shelf_processor(shelf, "smooth+arbitrate")
        processor.run(
            until=shelf.duration,
            tick=shelf.poll_period,
            sources=shelf_sources,
            mode=mode,
        )

    def run_redwood_pipeline(mode: str) -> None:
        processor = build_redwood_processor(redwood)
        processor.run(
            until=redwood.duration, sources=redwood_sources, mode=mode
        )

    return {
        "schema": 3,
        "script": "scripts/bench_snapshot.py",
        "chain_stages": CHAIN_STAGES,
        "chain_tick": CHAIN_TICK,
        "speedup_floor": SPEEDUP_FLOOR,
        "numeric_chain_stages": NUMERIC_CHAIN_STAGES,
        "numeric_chain_tick": NUMERIC_CHAIN_TICK,
        "typed_speedup_floor": TYPED_SPEEDUP_FLOOR,
        "cluster_scaleout_floor": CLUSTER_SCALEOUT_FLOOR,
        "cluster_scaleout_min_cpus": CLUSTER_SCALEOUT_MIN_CPUS,
        "workloads": {
            "shelf_numeric_chain": _numeric_chain_rows(
                shelf_sources,
                chain_ticks(shelf.duration, NUMERIC_CHAIN_TICK),
                shelf_n,
            ),
            "shelf_stateless_chain": {
                "description": (
                    "deep vectorizable point-cleaning chain over the "
                    "full shelf scenario's recorded streams "
                    "(benchmarks/test_bench_columnar.py)"
                ),
                "gated": True,
                "n_tuples": shelf_n,
                "modes": _mode_rows(
                    shelf_n,
                    lambda mode: run_chain(shelf_sources, ticks, mode),
                ),
            },
            "shelf_full_pipeline": {
                "description": (
                    "the paper's Smooth+Arbitrate shelf pipeline; "
                    "stateful, parity expected"
                ),
                "gated": False,
                "n_tuples": shelf_n,
                "modes": _mode_rows(shelf_n, run_shelf_pipeline),
            },
            "redwood_full_pipeline": {
                "description": (
                    "reduced redwood Smooth+Merge pipeline (the golden-"
                    "trace configuration); stateful, parity expected"
                ),
                "gated": False,
                "n_tuples": redwood_n,
                "modes": _mode_rows(redwood_n, run_redwood_pipeline),
            },
            "cluster_scaleout": _cluster_rows(),
        },
    }


def _deterministic_view(snapshot: dict[str, Any]) -> dict[str, Any]:
    """The machine-independent subset a stale snapshot would disagree on."""
    return {
        "schema": snapshot.get("schema"),
        "chain_stages": snapshot.get("chain_stages"),
        "chain_tick": snapshot.get("chain_tick"),
        "speedup_floor": snapshot.get("speedup_floor"),
        "numeric_chain_stages": snapshot.get("numeric_chain_stages"),
        "numeric_chain_tick": snapshot.get("numeric_chain_tick"),
        "typed_speedup_floor": snapshot.get("typed_speedup_floor"),
        "cluster_scaleout_floor": snapshot.get("cluster_scaleout_floor"),
        "cluster_scaleout_min_cpus": snapshot.get(
            "cluster_scaleout_min_cpus"
        ),
        "workloads": {
            name: {
                "gated": load.get("gated"),
                "n_tuples": load.get("n_tuples"),
                "modes": sorted(load.get("modes", {})),
                "storage": sorted(load.get("storage", {})),
                "workers": sorted(load.get("workers", {})),
            }
            for name, load in snapshot.get("workloads", {}).items()
        },
    }


def check(fresh: dict[str, Any]) -> int:
    if not SNAPSHOT.exists():
        print(
            f"FAIL: {SNAPSHOT.name} is missing; regenerate with "
            f"PYTHONPATH=src python scripts/bench_snapshot.py",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(SNAPSHOT.read_text())
    want, got = _deterministic_view(fresh), _deterministic_view(committed)
    if want != got:
        print(
            f"FAIL: {SNAPSHOT.name} is stale — its deterministic fields "
            f"disagree with what this tree measures.\n"
            f"  committed: {json.dumps(got, sort_keys=True)}\n"
            f"  expected:  {json.dumps(want, sort_keys=True)}",
            file=sys.stderr,
        )
        return 1
    gate = (
        committed["workloads"]["shelf_stateless_chain"]["modes"]["columnar"]
    )
    if gate["speedup_vs_row"] < committed["speedup_floor"]:
        print(
            f"FAIL: committed columnar speed-up {gate['speedup_vs_row']}x "
            f"is below the {committed['speedup_floor']}x floor",
            file=sys.stderr,
        )
        return 1
    typed_gate = committed["workloads"]["shelf_numeric_chain"][
        "typed_speedup_vs_list"
    ]
    if typed_gate < committed["typed_speedup_floor"]:
        print(
            f"FAIL: committed typed-column speed-up {typed_gate}x is "
            f"below the {committed['typed_speedup_floor']}x floor",
            file=sys.stderr,
        )
        return 1
    cluster = committed["workloads"]["cluster_scaleout"]
    cluster_floor = committed["cluster_scaleout_floor"]
    min_cpus = committed["cluster_scaleout_min_cpus"]
    if cluster["cpus"] >= min_cpus:
        if cluster["scaleout_4v1"] < cluster_floor:
            print(
                f"FAIL: committed cluster scale-out "
                f"{cluster['scaleout_4v1']}x (on {cluster['cpus']} CPUs) "
                f"is below the {cluster_floor}x floor",
                file=sys.stderr,
            )
            return 1
        cluster_note = (
            f"cluster {cluster['scaleout_4v1']}x (floor {cluster_floor}x)"
        )
    else:
        # 4 workers + router + feeder cannot physically run in parallel
        # below min_cpus; the ratio is recorded, the floor is waived.
        cluster_note = (
            f"cluster {cluster['scaleout_4v1']}x (floor waived: snapshot "
            f"machine had {cluster['cpus']} CPU(s) < {min_cpus})"
        )
    measured = (
        fresh["workloads"]["shelf_stateless_chain"]["modes"]["columnar"]
    )
    measured_typed = fresh["workloads"]["shelf_numeric_chain"][
        "typed_speedup_vs_list"
    ]
    print(
        f"OK: {SNAPSHOT.name} is fresh; committed gates "
        f"columnar {gate['speedup_vs_row']}x "
        f"(floor {committed['speedup_floor']}x), "
        f"typed {typed_gate}x (floor {committed['typed_speedup_floor']}x), "
        f"{cluster_note}; "
        f"measured here {measured['speedup_vs_row']}x / {measured_typed}x / "
        f"{fresh['workloads']['cluster_scaleout']['scaleout_4v1']}x"
    )
    return 0


def append_history(directory: Path, fresh: dict[str, Any]) -> Path:
    """Append one compact line for this run to the history JSONL.

    The line carries just the trajectory a reviewer plots: when, which
    commit, and the headline ratios — full detail stays in the snapshot.
    """
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "bench_history.jsonl"
    loads = fresh["workloads"]
    line = {
        "when": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sha": os.environ.get("GITHUB_SHA", "local"),
        "schema": fresh["schema"],
        "numpy": loads["shelf_numeric_chain"]["numpy"],
        "columnar_speedup_vs_row": loads["shelf_stateless_chain"]["modes"][
            "columnar"
        ]["speedup_vs_row"],
        "fused_speedup_vs_row": loads["shelf_stateless_chain"]["modes"][
            "fused"
        ]["speedup_vs_row"],
        "typed_speedup_vs_list": loads["shelf_numeric_chain"][
            "typed_speedup_vs_list"
        ],
        "shelf_pipeline_tuples_per_sec": loads["shelf_full_pipeline"][
            "modes"
        ]["columnar"]["tuples_per_sec"],
        "cluster_scaleout_4v1": loads["cluster_scaleout"]["scaleout_4v1"],
        "cluster_cpus": loads["cluster_scaleout"]["cpus"],
    }
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure, then fail if the committed snapshot is "
        "missing or stale instead of rewriting it",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help=f"where to write the snapshot (default {SNAPSHOT.name}; "
        f"with --check, an extra copy of the fresh measurement)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="DIR",
        help="append this run's headline numbers to DIR/bench_history.jsonl "
        "(CI keeps DIR as the BENCH_history artifact)",
    )
    args = parser.parse_args(argv)

    fresh = measure()
    if args.output is not None:
        args.output.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.history is not None:
        print(f"appended to {append_history(args.history, fresh)}")
    if args.check:
        return check(fresh)
    if args.output is None:
        SNAPSHOT.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT}")
        for name, load in fresh["workloads"].items():
            if "modes" in load:
                rates = ", ".join(
                    f"{mode}={row['tuples_per_sec']:,}/s"
                    f" ({row['speedup_vs_row']}x)"
                    for mode, row in load["modes"].items()
                )
            elif "workers" in load:
                rates = ", ".join(
                    f"{label}={row['tuples_per_sec']:,}/s"
                    for label, row in load["workers"].items()
                )
                rates += (
                    f", 4v1={load['scaleout_4v1']}x on {load['cpus']} CPU(s)"
                )
            else:
                rates = ", ".join(
                    f"{storage}={row['tuples_per_sec']:,}/s"
                    for storage, row in load["storage"].items()
                )
                rates += f", typed/list={load['typed_speedup_vs_list']}x"
            print(f"  {name}: {rates}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
