"""Setuptools shim for legacy editable installs (offline environments).

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that ``pip install -e . --no-use-pep517 --no-build-isolation``
works where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
