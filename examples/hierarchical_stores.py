"""Hierarchical deployment — ESP at the edge of a HiFi-style fan-in tree.

The paper positions ESP "at the edge of the HiFi network" (2.2): each
physical site cleans its own receptors, and higher levels of the
hierarchy run application queries over the already-clean streams. This
example deploys the Section 4 shelf pipeline at three stores and rolls
the cleaned streams up to a chain-wide inventory view — reusing one
pipeline design for every site ("entire pipelines ... can be reused",
section 7).

Run:
    python examples/hierarchical_stores.py
"""

import numpy as np

from repro.core.compose import EdgeSite, hierarchical_run
from repro.cql import compile_query
from repro.pipelines.rfid_shelf import build_shelf_processor
from repro.scenarios import ShelfScenario

N_STORES = 3
DURATION = 120.0


def main() -> None:
    # One pipeline design (Smooth + Arbitrate), instantiated per store.
    sites = []
    scenarios = []
    for index in range(N_STORES):
        scenario = ShelfScenario(duration=DURATION, seed=300 + index)
        scenarios.append(scenario)
        processor = build_shelf_processor(scenario, "smooth+arbitrate")
        sites.append(
            EdgeSite(
                f"store{index}",
                processor,
                sources=scenario.recorded_streams(),
            )
        )

    # Parent level: chain-wide distinct-item count per store, at a
    # coarser cadence than the edges (fan-in levels run slower).
    branches = " UNION ".join(
        f"SELECT site, count(distinct tag_id) AS items "
        f"FROM store{index} [Range By 'NOW'] GROUP BY site"
        for index in range(N_STORES)
    )
    rollup = compile_query(branches)
    out = hierarchical_run(
        sites,
        rollup,
        until=DURATION,
        tick=scenarios[0].poll_period,
        parent_tick=5.0,
    )

    print(
        f"{N_STORES} stores x 25 items each, cleaned at the edge, "
        "rolled up every 5 s:\n"
    )
    per_store = {f"store{index}": [] for index in range(N_STORES)}
    for row in out:
        per_store[row["site"]].append(row["items"])
    print(f"  {'site':8s}{'mean items':>12s}{'truth':>8s}")
    for site, counts in sorted(per_store.items()):
        print(f"  {site:8s}{np.mean(counts):12.1f}{25:8d}")
    chain_total = sum(np.mean(counts) for counts in per_store.values())
    print(f"\n  chain-wide mean inventory: {chain_total:.1f} "
          f"(truth {25 * N_STORES})")


if __name__ == "__main__":
    main()
