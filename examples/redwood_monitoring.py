"""Environmental monitoring — the paper's Section 5 deployments.

Two analyses over wireless sensor networks:

1. **Fail-dirty outlier detection** (Figure 7): three room motes, one of
   which fails and drifts past 100 degC while still reporting. The ESP
   pipeline (Point < 50 degC + Merge +/-1 sigma) tracks the functioning
   motes.
2. **Epoch-yield recovery** (Section 5.2): a redwood-trunk deployment
   delivering only ~40 % of its epochs; Smooth and Merge lift the yield
   to ~77 % and ~92 % at a small accuracy cost.

Run:
    python examples/redwood_monitoring.py
"""

from repro.experiments.intel_lab import figure7
from repro.experiments.redwood import section52

DAY = 86400.0


def main() -> None:
    print("== Fail-dirty outlier detection (Intel-lab trace, Figure 7) ==")
    fig7 = figure7()
    print(
        f"  mote3 fails at day {fig7['failure_onset'] / DAY:.1f} and "
        f"drifts to {fig7['outlier_peak']:.0f} degC"
    )
    print(
        "  naive 3-mote average error after failure: "
        f"{fig7['naive_tracking_error_after_failure']:.1f} degC"
    )
    print(
        "  ESP (Point<50 + Merge +/-1 sigma) error:  "
        f"{fig7['esp_tracking_error_after_failure']:.2f} degC"
    )
    lag_minutes = (
        fig7["esp_elimination_time"] - fig7["failure_onset"]
    ) / 60.0
    print(
        f"  ESP starts excluding the outlier {lag_minutes:.0f} minutes "
        "after onset - long before the 50 degC Point cutoff engages\n"
    )

    print("== Redwood epoch-yield recovery (Section 5.2) ==")
    stats = section52()
    print(f"  {'stage':14s}{'epoch yield':>12s}{'within 1 degC':>15s}")
    print(f"  {'raw':14s}{stats['raw_yield']:12.2f}{'-':>15s}")
    print(
        f"  {'smooth':14s}{stats['smooth_yield']:12.2f}"
        f"{stats['smooth_within_1c']:15.2f}"
    )
    print(
        f"  {'smooth+merge':14s}{stats['merge_yield']:12.2f}"
        f"{stats['merge_within_1c']:15.2f}"
    )
    print(
        "\n  (paper: 0.40 raw -> 0.77 smooth [0.99 within 1 degC] -> "
        "0.92 merge [0.94])"
    )
    print(
        "  Biologists get nearly complete data at a slight accuracy cost "
        "(5.2.2)."
    )


if __name__ == "__main__":
    main()
