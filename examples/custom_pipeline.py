"""Extending ESP: the three stage programming models on a custom deployment.

The paper (3.3) lists three ways to implement a stage, in increasing
flexibility: declarative continuous queries, user-defined functions and
aggregates, and arbitrary code. This example builds one pipeline using
all three, on a scenario *not* in the paper: a pair of vibration sensors
on a machine, cleaned and reduced to an anomaly score.

Run:
    python examples/custom_pipeline.py
"""

import math

import numpy as np

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.core.stages import MergeStage, PointStage, SmoothStage, Stage, StageKind
from repro.receptors.motes import Mote
from repro.receptors.registry import DeviceRegistry
from repro.streams.aggregates import Aggregate, register_aggregate
from repro.streams.operators import Operator
from repro.streams.tuples import StreamTuple


# --- a user-defined aggregate (model 2: UDFs/UDAs) ---------------------------

class RootMeanSquare(Aggregate):
    """RMS of the window - the standard vibration-intensity measure."""

    def __init__(self):
        self._sum_sq = 0.0
        self._n = 0

    def add(self, value):
        if value is not None:
            self._sum_sq += float(value) ** 2
            self._n += 1

    def result(self):
        return math.sqrt(self._sum_sq / self._n) if self._n else None


register_aggregate("rms", RootMeanSquare)


# --- an arbitrary-code stage (model 3) ---------------------------------------

class AnomalyScorer(Operator):
    """Flag instants whose merged RMS deviates from a running baseline."""

    def __init__(self, alpha: float = 0.05, threshold: float = 1.5,
                 warmup: int = 10):
        self._baseline = None
        self._alpha = alpha
        self._threshold = threshold
        self._warmup = warmup  # instants to learn the baseline, no alarms
        self._seen = 0
        self._pending = []

    def on_tuple(self, item, port=0):
        self._pending.append(item)
        return []

    def on_time(self, now):
        out = []
        for item in self._pending:
            rms = item.get("rms")
            if rms is None:
                continue
            self._seen += 1
            if self._seen <= self._warmup:
                # Learning phase: adopt the level directly, emit nothing.
                self._baseline = rms
                continue
            score = rms / self._baseline
            self._baseline += self._alpha * (rms - self._baseline)
            if score > self._threshold:
                out.append(
                    item.derive(values={"anomaly_score": round(score, 2)})
                )
        self._pending = []
        return out


def main() -> None:
    # World: a machine whose vibration amplitude jumps 3x during a fault
    # window, watched by two noisy accelerometer motes.
    def vibration(now: float) -> float:
        fault = 1.0 if 60.0 <= now < 90.0 else 0.0
        amplitude = 1.0 + 2.0 * fault
        return amplitude * math.sin(2 * math.pi * now * 3.0)

    registry = DeviceRegistry()
    machine = SpatialGranule("press_42")
    group = registry.add_group("press_42_accels", machine, receptor_kind="mote")
    for index in (1, 2):
        registry.assign(
            Mote(
                f"accel{index}",
                field=vibration,
                quantity="vib",
                sample_period=0.1,
                noise_std=0.2,
                rng=index,
            ),
            group.name,
        )

    pipeline = ESPPipeline(
        "mote",
        temporal_granule=TemporalGranule("2 sec"),
        # Model 1 - declarative query: clip impossible sensor glitches.
        point=PointStage("SELECT * FROM vib_input WHERE vib < 100 AND vib > -100"),
        # Model 2 - our registered UDA, through a declarative stage.
        smooth=SmoothStage(
            "SELECT mote_id, spatial_granule, rms(vib) AS rms "
            "FROM smooth_input [Range By '2 sec'] "
            "GROUP BY mote_id, spatial_granule"
        ),
        # Model 3 - arbitrary code.
        merge=[
            MergeStage(
                "SELECT spatial_granule, avg(rms) AS rms "
                "FROM merge_input [Range By '2 sec'] GROUP BY spatial_granule"
            ),
            Stage(StageKind.MERGE, lambda ctx: AnomalyScorer(),
                  name="anomaly_scorer"),
        ],
    )
    processor = ESPProcessor(registry).add_pipeline(pipeline)
    run = processor.run(until=120.0, tick=1.0)

    alarm_times = sorted({round(t.timestamp) for t in run.output})
    print(f"Anomaly alarms fired at t = {alarm_times}")
    in_fault = [t for t in alarm_times if 60 <= t < 95]
    print(
        f"{len(in_fault)}/{len(alarm_times)} alarms inside the fault "
        "window [60, 90) s (+5 s of smoothing decay)"
    )
    scores = [t["anomaly_score"] for t in run.output]
    print(f"peak anomaly score: {max(scores):.2f} (threshold 1.5)")


if __name__ == "__main__":
    main()
