"""Digital home — the paper's Section 6 "person detector".

An office instrumented with two RFID readers, three sound motes and
three X10 motion detectors; a person walks in and out at one-minute
intervals. Per-technology ESP pipelines clean each receptor stream and
a Virtualize voting stage (the paper's Query 6) fuses them into a
single occupancy signal.

Run:
    python examples/digital_home_person_detector.py
"""

from repro.experiments.office import figure9, threshold_sweep
from repro.scenarios import OfficeScenario


def occupancy_strip(mask, width=60) -> str:
    """Render a boolean series as a compact #/. strip."""
    step = max(1, len(mask) // width)
    return "".join(
        "#" if mask[i] else "." for i in range(0, len(mask), step)
    )


def main() -> None:
    scenario = OfficeScenario()
    print(
        "Office with 2 RFID readers, 3 sound motes, 3 X10 detectors; one\n"
        "person (with a multi-tag badge) in/out every minute for 600 s.\n"
    )
    result = figure9(scenario)

    print("Ground truth vs ESP detection (one char ~ 10 s):")
    print(f"  truth:    {occupancy_strip(result['truth'])}")
    print(f"  detected: {occupancy_strip(result['detected'])}\n")

    confusion = result["confusion"]
    print(
        f"Detection accuracy: {result['accuracy']:.3f}   (paper: 0.92)"
    )
    print(
        f"  TP={confusion['true_positive']} FP={confusion['false_positive']}"
        f" FN={confusion['false_negative']} TN={confusion['true_negative']}\n"
    )

    print("How noisy are the raw streams the detector is built from?")
    reader0 = result["rfid_counts"]["office_reader0"]
    occupied = result["truth"]
    print(
        f"  RFID reader0 distinct tags/s while occupied: "
        f"{reader0[occupied].mean():.2f} (badge has 3 tags)"
    )
    x10_total = sum(len(v) for v in result["x10_events"].values())
    print(f"  X10 ON events across 3 detectors: {x10_total} in 600 s\n")

    print("Vote-threshold sensitivity (paper used 2-of-3):")
    for threshold, accuracy in sorted(threshold_sweep(scenario).items()):
        print(f"  {threshold}-of-3: accuracy {accuracy:.3f}")


if __name__ == "__main__":
    main()
