"""Replaying recorded traces — the path for real hardware data.

Deployments of a cleaning framework live on recorded traces: data from
actual readers gets logged, replayed through candidate pipelines, and
regression-tested after every configuration change. This example shows
the full loop with this library's trace format:

1. record a scenario's raw streams to JSONL files (stand-in for logs
   collected from real hardware);
2. reload them in a fresh process-like context;
3. drive the ESP pipeline from the files and verify the result matches
   the live run exactly.

To feed *real* RFID logs instead, write one JSONL object per reading
with ``_ts``, ``_stream`` (the reader id) and the reading's fields —
see ``docs/api.md`` (`repro.streams.traceio`).

Run:
    python examples/replay_recorded_trace.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.rfid import shelf_error
from repro.pipelines.rfid_shelf import query1_counts
from repro.scenarios import ShelfScenario
from repro.streams.traceio import load_recording, save_recording


def main() -> None:
    scenario = ShelfScenario(duration=120.0, seed=8)

    with tempfile.TemporaryDirectory() as workdir:
        trace_dir = Path(workdir) / "shelf_traces"

        # 1. Record: in a real deployment this is your logging daemon.
        recording = scenario.recorded_streams()
        written = save_recording(recording, trace_dir)
        total = sum(len(v) for v in recording.values())
        print(f"recorded {total} readings into {len(written)} trace files:")
        for receptor_id, path in sorted(written.items()):
            print(f"  {path.name}: {len(recording[receptor_id])} readings")

        # 2. Reload: a fresh analysis session, no simulator involved.
        loaded = load_recording(trace_dir)

        # 3. Replay through the pipeline and compare against the live run.
        truth = scenario.truth_series()
        live = query1_counts(scenario, "smooth+arbitrate")
        replayed = query1_counts(
            scenario, "smooth+arbitrate", sources=loaded
        )
        identical = all(
            np.array_equal(live[name], replayed[name]) for name in live
        )
        print(f"\nlive vs replayed outputs identical: {identical}")
        print(
            "avg relative error from the replayed trace: "
            f"{shelf_error(replayed, truth):.3f}"
        )


if __name__ == "__main__":
    main()
