"""Dock-door direction inference — the supply-chain scenario of §1.

The paper's motivating application class ("real-time supply chain
management [14]") hinges on a harder question than shelf counts: did a
pallet move INTO the warehouse or OUT of it? A dock door instrumented
with two antennas — one facing inside, one outside — sees every transit
from both sides, unreliably, and raw reads alone are ambiguous.

The ESP recipe, reusing the Section 4 stages unchanged:

- each antenna is a proximity group monitoring its own spatial granule
  (``inside`` / ``outside``);
- Smooth (Query 2 semantics, 1 s granule) interpolates each antenna's
  dropped reads;
- Arbitrate (Query 3 semantics) attributes the tag, per instant, to the
  side reading it the most — yielding a clean side-over-time trace;
- a small arbitrary-code Virtualize stage reads each tag's attribution
  trace and emits one ``received`` / ``shipped`` event per transit.

Run:
    python examples/dock_door.py
"""

import numpy as np

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.core.operators import max_count_arbitrate, presence_smoother
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.core.stages import Stage, StageKind
from repro.receptors.registry import DeviceRegistry
from repro.receptors.rfid import DetectionField, RFIDReader, TagPlacement
from repro.streams.operators import Operator
from repro.streams.tuples import StreamTuple

TRANSIT_SECONDS = 6.0
GAP_SECONDS = 14.0


class DockDoorWorld:
    """Pallets crossing a dock door in alternating directions."""

    def __init__(self, n_pallets=12, seed=42):
        self.n_pallets = n_pallets
        self.rng = np.random.default_rng(seed)
        # pallet i transits during [start_i, start_i + TRANSIT_SECONDS);
        # even pallets are received (outside->inside), odd are shipped.
        self.starts = [
            5.0 + i * (TRANSIT_SECONDS + GAP_SECONDS)
            for i in range(n_pallets)
        ]
        self.duration = self.starts[-1] + TRANSIT_SECONDS + 10.0

    def direction(self, pallet):
        return "received" if pallet % 2 == 0 else "shipped"

    def position(self, pallet, now):
        """-1 = fully outside, +1 = fully inside, None = not at the door."""
        start = self.starts[pallet]
        if not start <= now < start + TRANSIT_SECONDS:
            return None
        progress = (now - start) / TRANSIT_SECONDS  # 0 -> 1
        signed = 2.0 * progress - 1.0  # -1 -> +1
        return signed if self.direction(pallet) == "received" else -signed

    def distance_to(self, pallet, side):
        """Distance (ft) from the pallet to one side's antenna."""

        def fn(_reader_id, now):
            position = self.position(pallet, now)
            if position is None:
                return float("inf")
            # Antennas sit 4 ft to each side of the door plane.
            antenna = 4.0 if side == "inside" else -4.0
            return abs(antenna - 4.0 * position) + 1.0

        return fn


class DirectionInfer(Operator):
    """Turn per-instant side attributions into transit events.

    Buffers each tag's (time, side) attribution trace; when a tag goes
    silent for ``quiet`` seconds, compares where its trace started and
    ended and emits one event.
    """

    def __init__(self, quiet=3.0):
        self.quiet = quiet
        self._traces = {}
        self._last_seen = {}

    def on_tuple(self, item, port=0):
        tag = item.get("tag_id")
        side = item.get("spatial_granule")
        if tag is None or side is None:
            return []
        self._traces.setdefault(tag, []).append((item.timestamp, side))
        self._last_seen[tag] = item.timestamp
        return []

    def on_time(self, now):
        out = []
        finished = [
            tag
            for tag, last in self._last_seen.items()
            if now - last >= self.quiet
        ]
        for tag in finished:
            trace = self._traces.pop(tag)
            del self._last_seen[tag]
            first_side = trace[0][1]
            last_side = trace[-1][1]
            if first_side == last_side:
                event = "ambiguous"
            elif last_side == "inside":
                event = "received"
            else:
                event = "shipped"
            out.append(
                StreamTuple(
                    now,
                    {"tag_id": tag, "event": event,
                     "observations": len(trace)},
                )
            )
        return out


def main() -> None:
    world = DockDoorWorld()
    registry = DeviceRegistry()
    field = DetectionField(
        [(0.0, 0.9), (2.0, 0.7), (5.0, 0.25), (9.0, 0.02), (12.0, 0.0)]
    )
    for side in ("inside", "outside"):
        group = registry.add_group(
            f"{side}_antenna", SpatialGranule(side), receptor_kind="rfid"
        )
        tags = [
            TagPlacement(f"pallet_{i:02d}", world.distance_to(i, side))
            for i in range(world.n_pallets)
        ]
        reader = RFIDReader(
            f"reader_{side}",
            shelf=side,
            tags=tags,
            field=field,
            sample_period=0.2,
            rng=np.random.default_rng(1 if side == "inside" else 2),
        )
        registry.assign(reader, group.name)

    pipeline = ESPPipeline(
        "rfid",
        temporal_granule=TemporalGranule("1 sec"),
        smooth=presence_smoother(),
        arbitrate=max_count_arbitrate(tie_break="all"),
    )
    processor = ESPProcessor(registry).add_pipeline(pipeline)
    processor.set_virtualize(
        Stage(StageKind.VIRTUALIZE, lambda ctx: DirectionInfer(),
              name="direction_infer")
    )
    run = processor.run(until=world.duration, tick=0.2)

    events = {t["tag_id"]: t["event"] for t in run.output}
    correct = sum(
        1
        for i in range(world.n_pallets)
        if events.get(f"pallet_{i:02d}") == world.direction(i)
    )
    print(f"{world.n_pallets} pallets crossed the dock door:")
    for i in range(world.n_pallets):
        tag = f"pallet_{i:02d}"
        truth = world.direction(i)
        inferred = events.get(tag, "missed")
        marker = "ok" if inferred == truth else "XX"
        print(f"  {tag}: truth={truth:9s} inferred={inferred:9s} [{marker}]")
    print(f"\ndirection accuracy: {correct}/{world.n_pallets}")


if __name__ == "__main__":
    main()
