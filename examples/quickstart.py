"""Quickstart: clean a noisy RFID stream with a two-stage ESP pipeline.

This is the smallest end-to-end ESP deployment: one simulated shelf
scenario, a Smooth + Arbitrate pipeline, and the paper's Query 1
("how many items are on each shelf?") evaluated over raw vs. cleaned
data.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.experiments.rfid import shelf_error
from repro.metrics import alert_rate
from repro.pipelines.rfid_shelf import query1_counts
from repro.scenarios import ShelfScenario


def main() -> None:
    # A 200-second version of the paper's two-shelf experiment: 10 static
    # tags per shelf, 5 tags relocated between shelves every 40 s, two
    # readers polling at 5 Hz with asymmetric antennas.
    scenario = ShelfScenario(duration=200.0, seed=1)
    truth = scenario.truth_series()

    print("Running Query 1 over the raw reader streams...")
    raw = query1_counts(scenario, "raw")

    print("Running the ESP pipeline (Smooth -> Arbitrate)...\n")
    cleaned = query1_counts(scenario, "smooth+arbitrate")

    raw_error = shelf_error(raw, truth)
    clean_error = shelf_error(cleaned, truth)
    flat = lambda series: np.concatenate([series["shelf0"], series["shelf1"]])
    raw_alerts = alert_rate(flat(raw), flat(truth), 5.0, scenario.duration)

    print(f"{'':24s}{'raw':>10s}{'ESP-cleaned':>14s}")
    print(f"{'avg relative error':24s}{raw_error:10.3f}{clean_error:14.3f}")
    print(f"{'false restock alerts/s':24s}{raw_alerts:10.2f}{0.0:14.2f}")
    print()
    window = slice(0, 10)
    print("First 2 seconds of shelf 0, item counts per 0.2 s poll:")
    print(f"  truth:   {truth['shelf0'][window]}")
    print(f"  raw:     {raw['shelf0'][window]}")
    print(f"  cleaned: {cleaned['shelf0'][window]}")
    print()
    print(
        "The raw stream undercounts wildly (each poll misses 20-50% of "
        "tags);\nafter Smooth interpolates within the 5 s temporal granule "
        "and Arbitrate\nresolves cross-shelf reads, the counts track "
        "reality."
    )


if __name__ == "__main__":
    main()
