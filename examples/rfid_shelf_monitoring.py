"""RFID shelf monitoring — the paper's Section 4 deployment, end to end.

Reproduces the full analysis: Figure 3's error progression, Figure 5's
pipeline-configuration comparison, and Figure 6's temporal-granule
sweep, printing paper-vs-measured values.

Run:
    python examples/rfid_shelf_monitoring.py [--fast]
"""

import argparse

from repro.experiments.rfid import figure3, figure5, figure6
from repro.scenarios import ShelfScenario


def main(fast: bool = False) -> None:
    scenario = ShelfScenario(duration=200.0 if fast else 700.0)
    print(
        f"Scenario: 2 shelves x 10 static tags + 5 relocated tags, "
        f"{scenario.duration:.0f} s at 5 Hz\n"
    )

    print("== Figure 3: cleaning progression ==")
    fig3 = figure3(scenario)
    paper = {"raw": 0.41, "smooth": 0.24, "smooth_arbitrate": 0.04}
    for stage, error in fig3["errors"].items():
        print(
            f"  {stage:18s} avg rel error {error:.3f}"
            f"   (paper: {paper[stage]:.2f})"
        )
    print(
        f"  raw restock alerts: {fig3['raw_alert_rate_per_sec']:.2f}/s "
        "(paper: 2.3/s); cleaned: "
        f"{fig3['cleaned_alert_rate_per_sec']:.2f}/s (truth: none)\n"
    )

    print("== Figure 5: stage order matters ==")
    for config, error in sorted(figure5(scenario).items(), key=lambda kv: kv[1]):
        print(f"  {config:20s} {error:.3f}")
    print()

    print("== Figure 6: temporal granule sweep ==")
    sizes = (0.5, 2.0, 5.0, 15.0, 30.0) if fast else None
    sweep = figure6(scenario, sizes) if sizes else figure6(scenario)
    best = min(sweep, key=sweep.get)
    for size in sorted(sweep):
        marker = "   <-- best (paper: ~5 s)" if size == best else ""
        print(f"  granule {size:5.1f} s  err={sweep[size]:.3f}{marker}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="shorter run and coarser sweep",
    )
    main(parser.parse_args().fast)
