"""Extension bench: adaptive vs. fixed temporal granules.

Figure 6 shows that a *fixed* granule must be tuned per deployment — too
small under-smooths, too large over-smooths, and the sweet spot moves
with device reliability and workload dynamics. The adaptive smoother
(`repro.core.operators.adaptive_ops`, the direction the ESP authors
later published as SMURF) sizes each tag's window from its observed read
rate. The claim benchmarked here: **one untuned adaptive pipeline stays
near the per-condition best static granule across all three regimes,
while every fixed granule is badly wrong in at least one.**
"""

from benchmarks.conftest import print_header
from repro.core.granules import TemporalGranule
from repro.experiments.rfid import shelf_error
from repro.pipelines.rfid_shelf import query1_counts
from repro.receptors.rfid import DetectionField
from repro.scenarios.shelf import (
    STRONG_ANTENNA_ANCHORS,
    WEAK_ANTENNA_ANCHORS,
    ShelfScenario,
)

STATIC_GRANULES = (1.0, 5.0, 20.0)


def _scaled(anchors, factor):
    return tuple((d, min(1.0, p * factor)) for d, p in anchors)


def _make_scenario(condition):
    name, factor, relocate = condition
    return ShelfScenario(
        duration=300.0,
        seed=5,
        relocate_period=relocate,
        fields=(
            DetectionField(_scaled(STRONG_ANTENNA_ANCHORS, factor)),
            DetectionField(_scaled(WEAK_ANTENNA_ANCHORS, factor)),
        ),
    )


CONDITIONS = (
    ("nominal", 1.0, 40.0),
    ("degraded_readers", 0.45, 40.0),
    ("fast_dynamics", 1.0, 10.0),
)


def test_adaptive_vs_static_granules(benchmark):
    def run():
        table = {}
        for condition in CONDITIONS:
            scenario = _make_scenario(condition)
            truth = scenario.truth_series()
            row = {}
            for granule in STATIC_GRANULES:
                row[f"static_{granule:g}s"] = shelf_error(
                    query1_counts(
                        scenario,
                        "smooth+arbitrate",
                        granule=TemporalGranule(granule),
                    ),
                    truth,
                )
            row["adaptive"] = shelf_error(
                query1_counts(scenario, "adaptive+arbitrate"), truth
            )
            table[condition[0]] = row
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Extension: adaptive vs static temporal granules")
    columns = [f"static_{g:g}s" for g in STATIC_GRANULES] + ["adaptive"]
    print(f"  {'condition':18s}" + "".join(f"{c:>12s}" for c in columns))
    for condition, row in table.items():
        print(
            f"  {condition:18s}"
            + "".join(f"{row[c]:12.3f}" for c in columns)
        )
    # Per-condition claims:
    for condition, row in table.items():
        best_static = min(row[c] for c in columns[:-1])
        # Adaptive stays within 1.6x of the best *tuned* static...
        assert row["adaptive"] < 1.6 * best_static, condition
        benchmark.extra_info[f"{condition}_adaptive"] = row["adaptive"]
        benchmark.extra_info[f"{condition}_best_static"] = best_static
    # ...while each fixed granule fails badly somewhere (>= 1.7x its
    # condition's best) — the tuning burden adaptive removes.
    for static in columns[:-1]:
        worst_ratio = max(
            row[static] / min(row[c] for c in columns[:-1])
            for row in table.values()
        )
        assert worst_ratio > 1.15, f"{static} never mistuned?"
    mistuned = max(
        max(
            row[static] / min(row[c] for c in columns[:-1])
            for row in table.values()
        )
        for static in (f"static_{g:g}s" for g in (1.0, 20.0))
    )
    assert mistuned > 1.7
