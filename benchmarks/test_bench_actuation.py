"""Extension bench: receptor actuation (paper §5.3.1).

The paper's redwood Smooth was limited by fixed 5-minute sampling: one
delivery attempt per granule, so loss bursts blank whole granules and
only window expansion (with its staleness cost) can compensate. Closing
the loop — ESP commanding a faster sample rate after missed granules —
attacks the problem at the source. Claim: actuated collection recovers
most of the always-fast yield at a fraction of its energy.
"""

from benchmarks.conftest import print_header
from repro.experiments.actuation import actuation_comparison


def test_actuation_yield_energy_tradeoff(benchmark):
    result = benchmark.pedantic(
        lambda: actuation_comparison(), rounds=1, iterations=1
    )
    print_header("Extension: receptor actuation (5.3.1)")
    print(f"  {'policy':14s}{'granule yield':>15s}{'energy (x fixed)':>18s}")
    for policy in ("fixed", "actuated", "always_fast"):
        print(
            f"  {policy:14s}{result['yield'][policy]:15.3f}"
            f"{result['energy'][policy]:18.2f}"
        )
    yields, energy = result["yield"], result["energy"]
    # Actuation recovers a large share of the achievable yield gain...
    achievable = yields["always_fast"] - yields["fixed"]
    recovered = yields["actuated"] - yields["fixed"]
    assert recovered > 0.6 * achievable
    # ...at meaningfully less than the always-fast energy budget.
    assert energy["actuated"] < 0.9 * energy["always_fast"]
    assert energy["fixed"] == 1.0
    benchmark.extra_info["fixed_yield"] = yields["fixed"]
    benchmark.extra_info["actuated_yield"] = yields["actuated"]
    benchmark.extra_info["actuated_energy_x"] = energy["actuated"]
    benchmark.extra_info["always_fast_yield"] = yields["always_fast"]
