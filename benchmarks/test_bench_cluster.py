"""Cluster scale-out soak: subprocess workers, tuples/second.

Times the full multi-process path — feeder subprocess, router process
(consistent-hash forwarding, credit flow), N worker processes (each a
full gateway + fused streaming session), egress merge — on the
``shelf_chain`` scenario, whose deep Point chain makes per-tuple
pipeline cost visible against per-tuple routing cost.

Each case records sustained throughput in the CI benchmark artifact via
``extra_info["tuples_per_sec"]``; the 4-worker case also records the
speed-up over the 1-worker run from the same session. Wall-clock
scale-out needs real cores: ``extra_info["cpus"]`` is recorded so a
reviewer can read a flat ratio on a 1-CPU runner for what it is. The
committed scale-out gate lives in ``scripts/bench_snapshot.py``
(``cluster_scaleout`` workload), which applies
:data:`CLUSTER_SCALEOUT_FLOOR` to snapshots taken on machines with at
least :data:`CLUSTER_SCALEOUT_MIN_CPUS` CPUs.
"""

from __future__ import annotations

import os

from repro.net.cluster import run_cluster_processes

#: Committed 4-worker-vs-1-worker throughput floor for the
#: ``cluster_scaleout`` snapshot workload.
CLUSTER_SCALEOUT_FLOOR = 2.0
#: Fewer cores than this cannot run 4 workers + router + feeder in
#: parallel at all, so the floor is recorded but not enforced.
CLUSTER_SCALEOUT_MIN_CPUS = 4

#: Scenario duration: ~2k frames over the wire, seconds per soak run.
SOAK_DURATION = 30.0

_RATES: dict[int, float] = {}


def _soak(n_workers: int) -> dict:
    result = run_cluster_processes(
        "shelf_chain", n_workers, duration=SOAK_DURATION, slack=0.0
    )
    assert result["summary"]["output_tuples"] > 0
    return result


def _record(benchmark, n_workers: int) -> None:
    # The benchmark mean times the whole soak including worker process
    # spawns; the recorded rate uses the feed-to-summary window that
    # ``run_cluster_processes`` measures, which is the scale-out signal.
    result = benchmark(lambda: _soak(n_workers))
    rate = result["tuples_per_sec"]
    _RATES[n_workers] = rate
    benchmark.extra_info["n_tuples"] = result["summary"]["router"][
        "data_frames"
    ]
    benchmark.extra_info["tuples_per_sec"] = round(rate)
    benchmark.extra_info["cpus"] = os.cpu_count() or 1
    benchmark.extra_info["workers"] = n_workers
    if n_workers > 1 and 1 in _RATES:
        benchmark.extra_info["speedup_vs_1_worker"] = round(
            rate / _RATES[1], 2
        )


def test_cluster_soak_1_worker(benchmark):
    """Baseline: the full cluster path with a single worker process."""
    _record(benchmark, 1)


def test_cluster_soak_4_workers(benchmark):
    """Scale-out: the same recording fanned across 4 worker processes."""
    _record(benchmark, 4)
