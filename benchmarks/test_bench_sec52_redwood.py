"""Section 5.2 (redwood deployment): the epoch-yield table.

The paper's numbers over its ~3.5-day trace:

====================  ===========  ==========================
stage                 epoch yield  readings within 1 °C of log
====================  ===========  ==========================
raw                   40 %         (reference)
after Smooth          77 %         99 %
after Smooth+Merge    92 %         94 %
====================  ===========  ==========================
"""

from benchmarks.conftest import print_header
from repro.experiments.redwood import section52


def test_sec52_epoch_yield_table(benchmark, redwood):
    result = benchmark.pedantic(
        lambda: section52(redwood), rounds=1, iterations=1
    )
    print_header("Section 5.2: redwood epoch yield / accuracy")
    print(f"  {'stage':16s} {'yield':>7s} {'paper':>7s} "
          f"{'within 1C':>10s} {'paper':>7s}")
    print(
        f"  {'raw':16s} {result['raw_yield']:7.2f} {0.40:7.2f} "
        f"{'--':>10s} {'--':>7s}"
    )
    print(
        f"  {'smooth':16s} {result['smooth_yield']:7.2f} {0.77:7.2f} "
        f"{result['smooth_within_1c']:10.2f} {0.99:7.2f}"
    )
    print(
        f"  {'smooth+merge':16s} {result['merge_yield']:7.2f} {0.92:7.2f} "
        f"{result['merge_within_1c']:10.2f} {0.94:7.2f}"
    )
    # Shape assertions:
    assert 0.30 < result["raw_yield"] < 0.50
    assert result["raw_yield"] < result["smooth_yield"] < result["merge_yield"]
    assert result["smooth_yield"] > 0.65
    assert result["merge_yield"] > 0.85
    # Accuracy dips slightly from Smooth to Merge, staying high.
    assert result["merge_within_1c"] <= result["smooth_within_1c"]
    assert result["smooth_within_1c"] > 0.93
    assert result["merge_within_1c"] > 0.88
    for key in (
        "raw_yield",
        "smooth_yield",
        "smooth_within_1c",
        "merge_yield",
        "merge_within_1c",
    ):
        benchmark.extra_info[key] = result[key]
