"""Ingestion gateway soak benchmark: loopback tuples/second.

Times the full wire path — feeder schedule, frame encode, TCP loopback,
frame decode, bounded queue, reorder buffer, streaming pipeline session
— for the RFID shelf scenario, and records sustained throughput in the
CI benchmark artifact via ``extra_info["tuples_per_sec"]``. A second
case isolates protocol codec throughput so a regression can be placed
on the wire layer vs the gateway proper.
"""

from __future__ import annotations

import asyncio

from repro.net import protocol
from repro.net.feeder import ReplayFeeder
from repro.net.gateway import IngestGateway
from repro.net.protocol import FrameDecoder, encode_frame
from repro.pipelines.rfid_shelf import build_shelf_processor
from repro.scenarios import ShelfScenario
from repro.streams.tuples import StreamTuple


def _soak_once(scenario, streams):
    async def run():
        session = build_shelf_processor(
            scenario, "smooth+arbitrate"
        ).open_session(until=scenario.duration, tick=scenario.poll_period)
        gateway = IngestGateway(
            session, slack=0.0, policy="block", queue_bound=256
        )
        host, port = await gateway.start()
        feeder = ReplayFeeder(host, port, streams)
        await feeder.run()
        await gateway.run_until_drained()
        run_result = await gateway.close()
        return len(run_result.output), gateway.stats()

    return asyncio.run(run())


def test_gateway_loopback_soak(benchmark):
    """Sustained end-to-end ingest rate over a real loopback socket."""
    scenario = ShelfScenario(duration=60.0, seed=3)
    streams = scenario.recorded_streams()
    n_tuples = sum(len(items) for items in streams.values())
    _soak_once(scenario, streams)  # warm caches / import costs

    emitted, stats = benchmark(lambda: _soak_once(scenario, streams))
    assert emitted > 0
    assert all(
        s["dropped_late"] == 0 and s["dropped_overload"] == 0
        for s in stats["sources"].values()
    )
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["tuples_per_sec"] = round(
        n_tuples / benchmark.stats["mean"]
    )


def test_wire_codec_throughput(benchmark):
    """Encode + decode rate for data frames, the hot wire-path codec."""
    frames = [
        encode_frame(
            protocol.data_frame(
                "reader0",
                seq,
                seq * 0.25,
                StreamTuple(
                    seq * 0.25,
                    {"tag_id": f"s0_{seq % 40:02d}", "count": 3},
                    stream="rfid",
                ),
            )
        )
        for seq in range(2000)
    ]
    wire = b"".join(frames)

    def codec_pass():
        return len(FrameDecoder().feed(wire))

    decoded = benchmark(codec_pass)
    assert decoded == len(frames)
    benchmark.extra_info["n_tuples"] = len(frames)
    benchmark.extra_info["tuples_per_sec"] = round(
        len(frames) / benchmark.stats["mean"]
    )
