"""Columnar-vs-row execution benchmarks: tuples/sec per mode.

Three workloads:

- **Stateless chain (the acceptance gate).** A deep point-cleaning
  chain — annotate → gate → relabel, repeated — over the full shelf
  scenario's recorded RFID streams, punctuated every 2 s so batches
  are large enough to amortize the row↔column boundary. This is the
  shape the columnar kernels and operator fusion target: every stage
  is vectorizable, so the row path pays a dict copy or tuple rebuild
  per tuple *per stage* while the columnar path pays one column
  operation per stage plus a single encode/decode at the edges. The
  gate asserts columnar ≥ 2× row throughput here.

- **Numeric chain (the typed-column acceptance gate).** A deep
  filter chain over *numeric* fields (int and float constants seeded
  up front), punctuated coarsely so batches run ~1-2k rows. Every
  stage is a ``FieldCompare`` whose mask is a single C array
  comparison on typed columns but a per-element Python loop on list
  columns. The gate asserts typed columns ≥ 2× the list-columnar
  throughput here (``repro.streams.typedcols`` toggles the storage
  class; both run the identical operator graph).

- **Full cleaning pipelines (reported, not gated).** The paper's
  shelf Smooth+Arbitrate pipeline, dominated by stateful windowed
  aggregation where the columnar path degrades gracefully to row
  semantics at the window boundary — benchmarked to prove the modes
  do not regress the real pipelines, with no speed-up claimed.

``scripts/bench_snapshot.py`` runs the same workloads and pins the
trajectory in ``BENCH_columnar.json`` (see ``docs/columnar.md``).
"""

from __future__ import annotations

import time

import pytest

from repro.streams import typedcols
from repro.streams.columnar import AddFields, FieldCompare, SetStream
from repro.streams.fjord import MODES, Fjord
from repro.streams.operators import FilterOp, MapOp, UnionOp

#: Depth of the stateless chain. Deep enough that per-stage row costs
#: dominate the one-off boundary costs; real deployments chain point
#: operations too (§3 of the paper runs them per reading).
CHAIN_STAGES = 12
#: Punctuation period for the chain workload, seconds of stream time.
CHAIN_TICK = 2.0
#: The acceptance bar: columnar must at least double row throughput.
SPEEDUP_FLOOR = 2.0

#: Depth of the numeric chain. Deeper than the stateless chain on
#: purpose: the typed-vs-list contrast is per-stage mask work, so depth
#: amortizes the (storage-independent) encode/decode boundary.
NUMERIC_CHAIN_STAGES = 48
#: Punctuation period for the numeric chain, seconds of stream time:
#: coarse enough for ~1-2k-row batches, where array kernels dominate
#: numpy call overhead.
NUMERIC_CHAIN_TICK = 20.0
#: The typed-column acceptance bar: typed columns must at least double
#: list-columnar throughput on the numeric chain.
TYPED_SPEEDUP_FLOOR = 2.0


def build_stateless_chain(sources, stages: int = CHAIN_STAGES):
    """Union the readers, then ``stages`` vectorizable point stages."""
    fjord = Fjord()
    for name, items in sources.items():
        fjord.add_source(name, items)
    fjord.add_operator("merge", UnionOp(), inputs=sorted(sources))
    # Lead with a vectorizable gate so the batch encodes to columns
    # once, up front; every later stage then runs purely columnar.
    fjord.add_operator(
        "gate0", FilterOp(FieldCompare("tag_id", ">=", "")), inputs=["merge"]
    )
    prev = "gate0"
    for i in range(stages):
        kind = i % 3
        if kind == 0:
            op = MapOp(AddFields({f"f{i}": float(i), "site": "shelf_lab"}))
        elif kind == 1:
            op = FilterOp(FieldCompare(f"f{i - 1}", ">=", 0.0))
        else:
            op = MapOp(SetStream(f"hop{i}"))
        fjord.add_operator(f"stage{i}", op, inputs=[prev])
        prev = f"stage{i}"
    sink = fjord.add_sink("out", inputs=[prev])
    return fjord, sink


def build_numeric_chain(sources, stages: int = NUMERIC_CHAIN_STAGES):
    """Union the readers, seed numeric columns, then ``stages`` filters.

    The seed stage annotates every tuple with int and float constants;
    from then on each stage is a ``FieldCompare`` over one of those
    numeric columns (all tautologies, so nothing is dropped and the
    gate can assert tuple conservation). On typed columns each mask is
    one vectorized comparison; on list columns it is a Python loop.
    """
    fjord = Fjord()
    for name, items in sources.items():
        fjord.add_source(name, items)
    fjord.add_operator("merge", UnionOp(), inputs=sorted(sources))
    fjord.add_operator(
        "seed",
        MapOp(AddFields({"reading": 0.5, "batch_no": 7, "gain": 1.25})),
        inputs=["merge"],
    )
    filters = [
        FieldCompare("reading", "<=", 1.0),
        FieldCompare("batch_no", ">=", 0),
        FieldCompare("gain", "!=", 2.0),
    ]
    prev = "seed"
    for i in range(stages):
        fjord.add_operator(f"num{i}", FilterOp(filters[i % 3]), inputs=[prev])
        prev = f"num{i}"
    sink = fjord.add_sink("out", inputs=[prev])
    return fjord, sink


def chain_ticks(duration: float, tick: float = CHAIN_TICK) -> list[float]:
    return [i * tick for i in range(int(duration / tick) + 2)]


def run_chain(sources, ticks, mode: str) -> int:
    fjord, sink = build_stateless_chain(sources)
    fjord.run(ticks, mode=mode)
    return len(sink.results)


def run_numeric_chain(sources, ticks) -> int:
    fjord, sink = build_numeric_chain(sources)
    fjord.run(ticks, mode="columnar")
    return len(sink.results)


@pytest.mark.parametrize("mode", MODES)
def test_stateless_chain_throughput(benchmark, shelf, mode):
    sources = shelf.recorded_streams()
    ticks = chain_ticks(shelf.duration)
    n_tuples = sum(len(items) for items in sources.values())

    emitted = benchmark(lambda: run_chain(sources, ticks, mode))
    assert emitted == n_tuples  # every gate passes; nothing is dropped
    benchmark.extra_info["tuples_per_sec"] = round(
        n_tuples / benchmark.stats["mean"]
    )
    benchmark.extra_info["chain_stages"] = CHAIN_STAGES


@pytest.mark.parametrize("mode", MODES)
def test_full_shelf_pipeline_throughput(benchmark, shelf, mode):
    """The paper's pipeline: stateful, so parity is the expectation."""
    from repro.pipelines.rfid_shelf import build_shelf_processor

    sources = shelf.recorded_streams()
    n_tuples = sum(len(items) for items in sources.values())

    def run():
        processor = build_shelf_processor(shelf, "smooth+arbitrate")
        return processor.run(
            until=shelf.duration,
            tick=shelf.poll_period,
            sources=sources,
            mode=mode,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.output
    benchmark.extra_info["tuples_per_sec"] = round(
        n_tuples / benchmark.stats["mean"]
    )


def _best_of(runs: int, fn) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_beats_row_2x_on_shelf(shelf):
    """The acceptance bar, one-shot (benchmark rounds would re-time
    the warm-up): columnar ≥ 2× row tuples/sec on the shelf chain."""
    sources = shelf.recorded_streams()
    ticks = chain_ticks(shelf.duration)
    run_chain(sources, ticks, "row")  # warm caches once for both paths

    row = _best_of(3, lambda: run_chain(sources, ticks, "row"))
    columnar = _best_of(3, lambda: run_chain(sources, ticks, "columnar"))

    speedup = row / columnar
    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar ran the shelf chain in {columnar:.3f}s vs row "
        f"{row:.3f}s — {speedup:.2f}x, below the {SPEEDUP_FLOOR}x floor"
    )


@pytest.mark.skipif(
    not typedcols.numpy_available(),
    reason="typed columns need numpy; the no-numpy leg skips this gate",
)
def test_typed_beats_list_columnar_2x_on_numeric_chain(shelf):
    """The typed-column acceptance bar: typed ≥ 2× list-columnar
    tuples/sec on the numeric filter chain. Both runs execute the
    identical operator graph in columnar mode; only the column storage
    class differs (toggled via ``set_typed_columns``)."""
    sources = shelf.recorded_streams()
    ticks = chain_ticks(shelf.duration, NUMERIC_CHAIN_TICK)
    n_tuples = sum(len(items) for items in sources.values())

    emitted = run_numeric_chain(sources, ticks)  # warm caches once
    assert emitted == n_tuples  # all filters are tautologies

    previous = typedcols.set_typed_columns(False)
    try:
        as_list = _best_of(3, lambda: run_numeric_chain(sources, ticks))
    finally:
        typedcols.set_typed_columns(*previous)
    typed = _best_of(3, lambda: run_numeric_chain(sources, ticks))

    speedup = as_list / typed
    assert speedup >= TYPED_SPEEDUP_FLOOR, (
        f"typed columns ran the numeric chain in {typed:.3f}s vs "
        f"list columns {as_list:.3f}s — {speedup:.2f}x, below the "
        f"{TYPED_SPEEDUP_FLOOR}x floor"
    )


def test_fused_no_slower_than_columnar(shelf):
    """Fusion removes per-stage drain bookkeeping; it must never cost
    throughput (allow 10% jitter — the two paths share all kernels)."""
    sources = shelf.recorded_streams()
    ticks = chain_ticks(shelf.duration)
    run_chain(sources, ticks, "columnar")  # warm

    columnar = _best_of(3, lambda: run_chain(sources, ticks, "columnar"))
    fused = _best_of(3, lambda: run_chain(sources, ticks, "fused"))

    assert fused <= columnar * 1.10, (
        f"fused took {fused:.3f}s vs columnar {columnar:.3f}s"
    )
