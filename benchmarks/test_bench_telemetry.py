"""Telemetry overhead benchmarks: instrumented vs uninstrumented runs.

The telemetry layer's contract is that the *disabled* path costs nearly
nothing — the executor checks one ``enabled`` flag and skips every clock
read and allocation. This module pins that contract on the sharding
benchmark's group-by-heavy workload:

- ``test_noop_overhead_within_budget`` asserts a no-op collector stays
  within 5 % of the fully uninstrumented run (median of several
  interleaved trials, with retries to ride out scheduler noise);
- the ``benchmark``-fixture cases record absolute throughput for the
  uninstrumented, no-op and in-memory collector configurations so CI's
  ``BENCH_ci.json`` artifact tracks all three over time.
"""

from __future__ import annotations

import statistics
import time

from repro.streams.telemetry import InMemoryCollector, TelemetryCollector

from benchmarks.test_bench_sharding import N_TUPLES, _build, _ticks, _trace

#: Relative overhead budget for the disabled-telemetry hot path.
NOOP_BUDGET = 0.05


def _run(sources, ticks, collector=None):
    fjord, sink = _build(sources)
    if collector is None:
        fjord.run(ticks)
    else:
        fjord.run(ticks, telemetry=collector)
    return len(sink.results)


def _median_seconds(fn, trials: int) -> float:
    samples = []
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_noop_overhead_within_budget():
    """Disabled telemetry costs ≤ 5 % on the sharding-bench workload.

    Medians of interleaved trials cancel drift (thermal, page cache);
    the retry loop keeps a single noisy scheduling burst from failing
    the build while still catching a real hot-path regression, which
    would fail every attempt.
    """
    sources = _trace()
    ticks = _ticks(sources)
    noop = TelemetryCollector()
    _run(sources, ticks)  # warm caches
    _run(sources, ticks, noop)

    attempts = 3
    for attempt in range(1, attempts + 1):
        bare = _median_seconds(lambda: _run(sources, ticks), trials=3)
        with_noop = _median_seconds(
            lambda: _run(sources, ticks, noop), trials=3
        )
        overhead = with_noop / bare - 1.0
        if overhead <= NOOP_BUDGET:
            return
    raise AssertionError(
        f"no-op telemetry overhead {overhead:.1%} exceeds "
        f"{NOOP_BUDGET:.0%} budget after {attempts} attempts "
        f"(bare {bare:.3f}s, no-op {with_noop:.3f}s)"
    )


def test_uninstrumented_throughput(benchmark):
    sources = _trace()
    ticks = _ticks(sources)
    emitted = benchmark(lambda: _run(sources, ticks))
    assert emitted > 0
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )


def test_noop_collector_throughput(benchmark):
    sources = _trace()
    ticks = _ticks(sources)
    noop = TelemetryCollector()
    emitted = benchmark(lambda: _run(sources, ticks, noop))
    assert emitted > 0
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )


def test_inmemory_collector_throughput(benchmark):
    """The *enabled* path's cost — expected to be measurable (clock reads
    per batch), tracked so it never silently explodes."""
    sources = _trace()
    ticks = _ticks(sources)

    def run():
        collector = InMemoryCollector()
        emitted = _run(sources, ticks, collector)
        return emitted, collector

    emitted, collector = benchmark(run)
    assert emitted > 0
    snapshot = collector.snapshot()
    assert snapshot["operators"]["smooth"]["tuples_in"] > 0
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )
