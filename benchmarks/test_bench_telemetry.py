"""Telemetry overhead benchmarks: instrumented vs uninstrumented runs.

The telemetry layer's contract is that the *disabled* path costs nearly
nothing — the executor checks one ``enabled`` flag and skips every clock
read and allocation. This module pins that contract on the sharding
benchmark's group-by-heavy workload:

- ``test_noop_overhead_within_budget`` asserts a no-op collector stays
  within 5 % of the fully uninstrumented run (median of several
  interleaved trials, with retries to ride out scheduler noise);
- ``test_span_tracing_overhead_within_budget`` pins the marginal cost
  of ingest span correlation on the session push path: an enabled
  collector with every push carrying an
  :class:`~repro.streams.telemetry.IngestTrace` must stay within 5 % of
  the same enabled collector with tracing disabled (no traces);
- the ``benchmark``-fixture cases record absolute throughput for the
  uninstrumented, no-op and in-memory collector configurations so CI's
  ``BENCH_ci.json`` artifact tracks all three over time.
"""

from __future__ import annotations

import statistics
import time

from repro.streams.telemetry import (
    InMemoryCollector,
    IngestTrace,
    TelemetryCollector,
)

from benchmarks.test_bench_sharding import N_TUPLES, _build, _ticks, _trace

#: Relative overhead budget for the disabled-telemetry hot path.
NOOP_BUDGET = 0.05

#: Relative budget for span tracing vs an enabled collector without it.
SPAN_BUDGET = 0.05


def _run(sources, ticks, collector=None):
    fjord, sink = _build(sources)
    if collector is None:
        fjord.run(ticks)
    else:
        fjord.run(ticks, telemetry=collector)
    return len(sink.results)


def _median_seconds(fn, trials: int) -> float:
    samples = []
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_noop_overhead_within_budget():
    """Disabled telemetry costs ≤ 5 % on the sharding-bench workload.

    Medians of interleaved trials cancel drift (thermal, page cache);
    the retry loop keeps a single noisy scheduling burst from failing
    the build while still catching a real hot-path regression, which
    would fail every attempt.
    """
    sources = _trace()
    ticks = _ticks(sources)
    noop = TelemetryCollector()
    _run(sources, ticks)  # warm caches
    _run(sources, ticks, noop)

    attempts = 3
    for attempt in range(1, attempts + 1):
        bare = _median_seconds(lambda: _run(sources, ticks), trials=3)
        with_noop = _median_seconds(
            lambda: _run(sources, ticks, noop), trials=3
        )
        overhead = with_noop / bare - 1.0
        if overhead <= NOOP_BUDGET:
            return
    raise AssertionError(
        f"no-op telemetry overhead {overhead:.1%} exceeds "
        f"{NOOP_BUDGET:.0%} budget after {attempts} attempts "
        f"(bare {bare:.3f}s, no-op {with_noop:.3f}s)"
    )


def _run_session(sources, ticks, collector=None, traced=False):
    """Push the whole trace through a FjordSession, spans optional."""
    fjord, sink = _build(sources)
    session = fjord.open_session(ticks, telemetry=collector)
    items = sources["readings"]
    if traced:
        for seq, item in enumerate(items):
            session.push(
                "readings", item,
                trace=IngestTrace(seq, "readings", item.timestamp),
            )
    else:
        for item in items:
            session.push("readings", item)
    session.advance(float("inf"))
    session.close()
    return len(sink.results)


def test_session_noop_overhead_within_budget():
    """The session push path keeps the single-flag-check contract: a
    no-op collector (and the ``trace is None`` branch) costs ≤ 5 % over
    the fully uninstrumented session run."""
    sources = _trace()
    ticks = _ticks(sources)
    noop = TelemetryCollector()
    _run_session(sources, ticks)  # warm caches
    _run_session(sources, ticks, noop)

    attempts = 3
    for attempt in range(1, attempts + 1):
        bare = _median_seconds(
            lambda: _run_session(sources, ticks), trials=3
        )
        with_noop = _median_seconds(
            lambda: _run_session(sources, ticks, noop), trials=3
        )
        overhead = with_noop / bare - 1.0
        if overhead <= NOOP_BUDGET:
            return
    raise AssertionError(
        f"no-op session telemetry overhead {overhead:.1%} exceeds "
        f"{NOOP_BUDGET:.0%} budget after {attempts} attempts "
        f"(bare {bare:.3f}s, no-op {with_noop:.3f}s)"
    )


def test_span_tracing_overhead_within_budget():
    """Span correlation costs ≤ 5 % on top of an enabled collector.

    Both sides run the full InMemoryCollector instrumentation; the
    traced side additionally stamps an IngestTrace per push and records
    five spans plus one span-log entry per tuple at sweep time — the
    whole wire-to-emit correlation machinery. The gate pins that margin.
    """
    sources = _trace()
    ticks = _ticks(sources)
    _run_session(sources, ticks, InMemoryCollector())  # warm caches
    _run_session(sources, ticks, InMemoryCollector(), traced=True)

    attempts = 3
    for attempt in range(1, attempts + 1):
        untraced = _median_seconds(
            lambda: _run_session(sources, ticks, InMemoryCollector()),
            trials=3,
        )
        traced = _median_seconds(
            lambda: _run_session(
                sources, ticks, InMemoryCollector(), traced=True
            ),
            trials=3,
        )
        overhead = traced / untraced - 1.0
        if overhead <= SPAN_BUDGET:
            return
    raise AssertionError(
        f"span tracing overhead {overhead:.1%} exceeds "
        f"{SPAN_BUDGET:.0%} budget after {attempts} attempts "
        f"(untraced {untraced:.3f}s, traced {traced:.3f}s)"
    )


#: Relative budget for cluster tracing (trace stamping, frame
#: re-encode, hop records on result frames, router-side span commit)
#: vs the identical untraced cluster run.
CLUSTER_TRACE_BUDGET = 0.05

#: Scenario duration for the cluster gate — hundreds of frames over
#: real loopback sockets, yet a single run stays around a second.
CLUSTER_DURATION = 4.0


def _run_cluster(traced: bool) -> int:
    """One in-process 2-worker cluster run over loopback sockets."""
    import asyncio

    from repro.net.feeder import ReplayFeeder
    from repro.net.router import ClusterRouter
    from repro.net.service import build_bundle
    from repro.net.worker import ClusterWorker

    async def scenario():
        bundle = build_bundle("shelf", CLUSTER_DURATION, 3)
        workers = []
        specs = []
        router = ClusterRouter(
            build_bundle("shelf", CLUSTER_DURATION, 3),
            slack=0.0,
            telemetry=InMemoryCollector() if traced else None,
        )
        try:
            for index in range(2):
                worker = ClusterWorker(
                    build_bundle("shelf", CLUSTER_DURATION, 3), slack=0.0
                )
                host, port = await worker.start()
                workers.append(worker)
                specs.append((f"w{index}", host, port))
            host, port = await router.start()
            await router.connect_workers(specs)
            feeder = ReplayFeeder(host, port, bundle.streams)
            await feeder.run()
            await router.run_until_complete()
            output = router.result()
        finally:
            await router.close()
            for worker in workers:
                await worker.close()
        return len(output)

    return asyncio.run(scenario())


def test_traced_cluster_overhead_within_budget():
    """Cluster tracing costs ≤ 5 % of the untraced cluster's wall time.

    The traced side pays for everything the tentpole added to the data
    path: per-frame trace stamping and JSON re-encode at the router,
    hop records riding the result frames, and the span commit at epoch
    close. Same median-of-trials-with-retries discipline as the other
    gates — wall clock over loopback sockets is noisier than the pure
    compute benchmarks, and the retry loop is what separates scheduler
    bursts from a real hot-path regression.
    """
    _run_cluster(False)  # warm caches
    _run_cluster(True)

    attempts = 3
    for attempt in range(1, attempts + 1):
        untraced = _median_seconds(lambda: _run_cluster(False), trials=3)
        traced = _median_seconds(lambda: _run_cluster(True), trials=3)
        overhead = traced / untraced - 1.0
        if overhead <= CLUSTER_TRACE_BUDGET:
            return
    raise AssertionError(
        f"cluster tracing overhead {overhead:.1%} exceeds "
        f"{CLUSTER_TRACE_BUDGET:.0%} budget after {attempts} attempts "
        f"(untraced {untraced:.3f}s, traced {traced:.3f}s)"
    )


def test_uninstrumented_throughput(benchmark):
    sources = _trace()
    ticks = _ticks(sources)
    emitted = benchmark(lambda: _run(sources, ticks))
    assert emitted > 0
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )


def test_noop_collector_throughput(benchmark):
    sources = _trace()
    ticks = _ticks(sources)
    noop = TelemetryCollector()
    emitted = benchmark(lambda: _run(sources, ticks, noop))
    assert emitted > 0
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )


def test_span_traced_session_throughput(benchmark):
    """Absolute throughput with full span correlation on, for the CI
    benchmark artifact's trend line."""
    sources = _trace()
    ticks = _ticks(sources)

    def run():
        collector = InMemoryCollector()
        emitted = _run_session(sources, ticks, collector, traced=True)
        return emitted, collector

    emitted, collector = benchmark(run)
    assert emitted > 0
    snapshot = collector.snapshot()
    assert snapshot["spans"]["ingest.e2e"]["count"] == N_TUPLES
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )


def test_inmemory_collector_throughput(benchmark):
    """The *enabled* path's cost — expected to be measurable (clock reads
    per batch), tracked so it never silently explodes."""
    sources = _trace()
    ticks = _ticks(sources)

    def run():
        collector = InMemoryCollector()
        emitted = _run(sources, ticks, collector)
        return emitted, collector

    emitted, collector = benchmark(run)
    assert emitted > 0
    snapshot = collector.snapshot()
    assert snapshot["operators"]["smooth"]["tuples_in"] > 0
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )
