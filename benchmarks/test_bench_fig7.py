"""Figure 7 (paper §5.1): fail-dirty outlier detection.

The paper's trace: one of three room motes fails dirty and climbs past
100 °C; the naive average follows it upward while ESP (Point < 50 °C +
Merge ±1σ) tracks the two functioning motes, beginning to eliminate the
outlier shortly after it starts deviating — *before* the Point threshold
engages.
"""

from benchmarks.conftest import print_header
from repro.experiments.intel_lab import figure7

DAY = 86400.0


def test_fig7_outlier_detection(benchmark, intel_lab):
    result = benchmark.pedantic(
        lambda: figure7(intel_lab), rounds=1, iterations=1
    )
    print_header("Figure 7: fail-dirty outlier detection")
    print(
        f"  failure onset:              day {result['failure_onset'] / DAY:.2f}"
    )
    print(
        "  ESP eliminates outlier at:  day "
        f"{result['esp_elimination_time'] / DAY:.2f}"
    )
    print(
        f"  outlier peak reading:       {result['outlier_peak']:.0f} C "
        "(paper: >100 C, plot tops ~140 C)"
    )
    print(
        "  tracking error after failure:  ESP "
        f"{result['esp_tracking_error_after_failure']:.2f} C, naive average "
        f"{result['naive_tracking_error_after_failure']:.2f} C"
    )
    # Shape assertions:
    assert result["outlier_peak"] > 100.0
    assert result["esp_tracking_error_after_failure"] < 1.0
    assert result["naive_tracking_error_after_failure"] > 5.0
    # Merge starts rejecting the outlier within 2 h of onset — long before
    # the reading reaches the 50 C Point threshold (~9 h at this drift).
    lag = result["esp_elimination_time"] - result["failure_onset"]
    assert 0.0 <= lag < 2 * 3600.0
    drift_to_50 = (50.0 - 25.0) / 0.0009
    assert lag < drift_to_50
    benchmark.extra_info["esp_tracking_error_c"] = result[
        "esp_tracking_error_after_failure"
    ]
    benchmark.extra_info["naive_tracking_error_c"] = result[
        "naive_tracking_error_after_failure"
    ]
    benchmark.extra_info["elimination_lag_s"] = lag
