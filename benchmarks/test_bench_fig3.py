"""Figure 3 (paper §4): shelf-count traces under successive cleaning.

Four benches regenerate the four panels over the identical recording:

- (a) ground truth,
- (b) Query 1 over raw RFID data — avg rel err ≈ 0.41, restock alerts
  ≈ 2.3/s in the paper,
- (c) after Smooth — err ≈ 0.24, shelf 0 reading 4–5 items high,
- (d) after Smooth + Arbitrate — err ≈ 0.04 ("off by less than one
  item, on average").
"""

import numpy as np

from benchmarks.conftest import print_header
from repro.experiments.rfid import RESTOCK_THRESHOLD, shelf_error
from repro.metrics import alert_rate
from repro.pipelines.rfid_shelf import query1_counts


def _flat(series):
    return np.concatenate([series["shelf0"], series["shelf1"]])


def test_fig3a_reality(benchmark, shelf):
    truth = benchmark(shelf.truth_series)
    print_header("Figure 3(a): ground-truth shelf counts")
    for name in ("shelf0", "shelf1"):
        values = truth[name]
        print(
            f"  {name}: min={values.min():.0f} max={values.max():.0f} "
            f"mean={values.mean():.2f} over {len(values)} steps"
        )
    assert set(np.unique(truth["shelf0"])) == {10.0, 15.0}
    assert np.all(truth["shelf0"] + truth["shelf1"] == 25.0)
    benchmark.extra_info["mean_count"] = float(truth["shelf0"].mean())


def test_fig3b_raw(benchmark, shelf):
    truth = shelf.truth_series()
    counts = benchmark.pedantic(
        lambda: query1_counts(shelf, "raw"), rounds=1, iterations=1
    )
    error = shelf_error(counts, truth)
    alerts = alert_rate(
        _flat(counts), _flat(truth), RESTOCK_THRESHOLD, shelf.duration
    )
    print_header("Figure 3(b): Query 1 over raw RFID data")
    print(f"  avg relative error: {error:.3f}   (paper: 0.41)")
    print(f"  false restock alerts/sec: {alerts:.2f}   (paper: 2.3)")
    assert 0.3 < error < 0.55
    assert alerts > 0.5
    benchmark.extra_info["avg_relative_error"] = error
    benchmark.extra_info["paper_value"] = 0.41
    benchmark.extra_info["alerts_per_sec"] = alerts


def test_fig3c_smooth(benchmark, shelf):
    truth = shelf.truth_series()
    counts = benchmark.pedantic(
        lambda: query1_counts(shelf, "smooth"), rounds=1, iterations=1
    )
    error = shelf_error(counts, truth)
    shelf0_bias = float(np.mean(counts["shelf0"] - truth["shelf0"]))
    shelf1_bias = float(np.mean(counts["shelf1"] - truth["shelf1"]))
    print_header("Figure 3(c): after Smooth (Query 2, 5 s window)")
    print(f"  avg relative error: {error:.3f}   (paper: 0.24)")
    print(
        f"  shelf0 bias: {shelf0_bias:+.1f} items "
        "(paper: consistently 4-5 high)"
    )
    print(f"  shelf1 bias: {shelf1_bias:+.1f} items (paper: near truth)")
    assert 0.12 < error < 0.35
    assert shelf0_bias > 2.0, "strong antenna must over-count"
    assert abs(shelf1_bias) < 2.0, "weak antenna roughly accurate"
    benchmark.extra_info["avg_relative_error"] = error
    benchmark.extra_info["paper_value"] = 0.24
    benchmark.extra_info["shelf0_bias"] = shelf0_bias


def test_fig3d_arbitrate(benchmark, shelf):
    truth = shelf.truth_series()
    counts = benchmark.pedantic(
        lambda: query1_counts(shelf, "smooth+arbitrate"),
        rounds=1,
        iterations=1,
    )
    error = shelf_error(counts, truth)
    mean_abs_items = float(np.mean(np.abs(_flat(counts) - _flat(truth))))
    alerts = alert_rate(
        _flat(counts), _flat(truth), RESTOCK_THRESHOLD, shelf.duration
    )
    print_header("Figure 3(d): after Smooth + Arbitrate (Query 3)")
    print(f"  avg relative error: {error:.3f}   (paper: 0.04)")
    print(
        f"  mean absolute miscount: {mean_abs_items:.2f} items "
        "(paper: 'off by less than one item')"
    )
    print(f"  false restock alerts/sec: {alerts:.3f}   (truth: none)")
    assert error < 0.12
    assert mean_abs_items < 1.5
    assert alerts < 0.05
    benchmark.extra_info["avg_relative_error"] = error
    benchmark.extra_info["paper_value"] = 0.04
