"""Shared full-scale scenario fixtures for the benchmark harness.

Scenarios are session-scoped and their raw recordings cached, so each
figure's configurations are compared on identical data and the expensive
recording step is not re-timed inside every benchmark.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    IntelLabScenario,
    OfficeScenario,
    RedwoodScenario,
    ShelfScenario,
)


@pytest.fixture(scope="session")
def shelf() -> ShelfScenario:
    """The full 700-second, 2-shelf RFID experiment (paper §4)."""
    scenario = ShelfScenario()
    scenario.recorded_streams()  # record once, outside benchmark timing
    return scenario


@pytest.fixture(scope="session")
def intel_lab() -> IntelLabScenario:
    """The 2-day, 3-mote fail-dirty trace (paper §5.1)."""
    scenario = IntelLabScenario()
    scenario.recorded_streams()
    return scenario


@pytest.fixture(scope="session")
def redwood() -> RedwoodScenario:
    """The 3.5-day, 32-mote redwood deployment (paper §5.2)."""
    scenario = RedwoodScenario()
    scenario.recorded_streams()
    return scenario


@pytest.fixture(scope="session")
def office() -> OfficeScenario:
    """The 600-second digital-home experiment (paper §6)."""
    scenario = OfficeScenario()
    scenario.recorded_streams()
    return scenario


def print_header(title: str) -> None:
    """Uniform banner for each reproduced artifact's printed rows."""
    print()
    print(f"--- {title} ---")
