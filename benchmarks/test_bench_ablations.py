"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's own figures:

1. Arbitrate tie-break — the paper's weaker-antenna calibration hack
   (§4.3.1) vs. the literal Query 3 ties-keep-both semantics.
2. Outlier rule — the paper's mean ± 1σ vs. a median/MAD robust rule.
3. Smooth window expansion — the §5.2.1 expanded 30-minute window vs. a
   window equal to the 5-minute granule.
4. Virtualize vote threshold — 1-of-3 / 2-of-3 / 3-of-3 sensitivity.
"""

import numpy as np

from benchmarks.conftest import print_header
from repro.core.granules import TemporalGranule
from repro.experiments.office import threshold_sweep
from repro.experiments.redwood import section52
from repro.experiments.rfid import shelf_error
from repro.pipelines.rfid_shelf import query1_counts
from repro.pipelines.sensornet import build_outlier_processor
from repro.scenarios.redwood import RedwoodScenario


def test_ablation_arbitrate_tie_break(benchmark, shelf):
    def run():
        truth = shelf.truth_series()
        return {
            policy: shelf_error(
                query1_counts(shelf, "smooth+arbitrate", tie_break=policy),
                truth,
            )
            for policy in ("weakest", "all", "first")
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation 1: Arbitrate tie-break policy")
    for policy, error in errors.items():
        print(f"  tie_break={policy:8s} err={error:.3f}")
    print("  (paper §4.3.1: ties to the weaker antenna helped)")
    # The paper's calibration should not hurt relative to keep-both.
    assert errors["weakest"] <= errors["all"] + 0.01
    for policy, error in errors.items():
        benchmark.extra_info[policy] = error


def test_ablation_outlier_rule(benchmark, intel_lab):
    recorded = intel_lab.recorded_streams()

    def tracking_error(robust, k):
        processor = build_outlier_processor(
            intel_lab, robust=robust, sigma_k=k
        )
        run = processor.run(
            until=intel_lab.duration,
            tick=intel_lab.sample_period,
            sources=recorded,
        )
        after = [
            t for t in run.output if t.timestamp > intel_lab.failure_onset
        ]
        reference = [
            intel_lab.room_temperature(t.timestamp) for t in after
        ]
        return float(
            np.mean([abs(t["temp"] - r) for t, r in zip(after, reference)])
        )

    def run():
        return {
            "mean_sigma_1": tracking_error(robust=False, k=1.0),
            "median_mad_3": tracking_error(robust=True, k=3.0),
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation 2: Merge outlier rule (fail-dirty trace)")
    for rule, error in errors.items():
        print(f"  {rule:14s} tracking error {error:.2f} C")
    # Both rules must handle the single fail-dirty mote.
    assert all(error < 1.0 for error in errors.values())
    for rule, error in errors.items():
        benchmark.extra_info[rule] = error


def test_ablation_smooth_window_expansion(benchmark):
    """§5.2.1: without window expansion (window == granule), Smooth cannot
    recover bursty losses — the yield stays at the raw level."""

    def run():
        results = {}
        for label, window in (("expanded_30min", "30 min"),
                              ("granule_5min", "5 min")):
            scenario = RedwoodScenario(
                duration=1.5 * 86400.0, n_groups=8, seed=11
            )
            scenario.temporal_granule = TemporalGranule(
                "5 min", smoothing_window=window
            )
            stats = section52(scenario)
            results[label] = stats["smooth_yield"]
        return results

    yields = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation 3: Smooth window expansion (redwood)")
    for label, value in yields.items():
        print(f"  {label:16s} smooth yield {value:.2f}")
    print("  (paper 5.2.1: ESP had to expand the window to 30 min)")
    assert yields["expanded_30min"] > yields["granule_5min"] + 0.15
    for label, value in yields.items():
        benchmark.extra_info[label] = value


def test_ablation_vote_threshold(benchmark, office):
    sweep = benchmark.pedantic(
        lambda: threshold_sweep(office, thresholds=(1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    print_header("Ablation 4: Virtualize vote threshold")
    for threshold, accuracy in sorted(sweep.items()):
        print(f"  {threshold}-of-3 vote: accuracy {accuracy:.3f}")
    print("  (paper used 2-of-3)")
    # 2-of-3 should be the best or tied-best of the three.
    assert sweep[2] >= max(sweep.values()) - 0.02
    for threshold, accuracy in sweep.items():
        benchmark.extra_info[f"threshold_{threshold}"] = accuracy
