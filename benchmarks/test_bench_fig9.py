"""Figure 9 / §6.2 (digital home): the person detector.

The paper: one person walks in and out of an instrumented office at
one-minute intervals; after per-technology cleaning and the Virtualize
vote (Query 6), "ESP is able to correctly indicate that a person is in
the room 92% of the time".
"""

import numpy as np

from benchmarks.conftest import print_header
from repro.experiments.office import figure9


def test_fig9_person_detector(benchmark, office):
    result = benchmark.pedantic(
        lambda: figure9(office), rounds=1, iterations=1
    )
    print_header("Figure 9 / Section 6.2: person detector")
    confusion = result["confusion"]
    print(f"  detection accuracy: {result['accuracy']:.3f}   (paper: 0.92)")
    print(
        f"  confusion: TP={confusion['true_positive']} "
        f"FP={confusion['false_positive']} "
        f"FN={confusion['false_negative']} "
        f"TN={confusion['true_negative']}"
    )
    # Raw-panel sanity: each technology's raw stream is visibly noisy.
    reader0 = result["rfid_counts"]["office_reader0"]
    occupied = result["truth"]
    print(
        "  raw RFID counts while occupied: "
        f"mean={reader0[occupied].mean():.2f}, while empty: "
        f"{reader0[~occupied].mean():.2f}"
    )
    assert result["accuracy"] > 0.85
    # Raw streams alone are unreliable (misses while present), which is
    # why the cleaning exists: some occupied steps have zero RFID reads.
    assert np.any(reader0[occupied] == 0)
    # The detector output approximates the square wave: both states seen.
    assert 0 < result["detected"].sum() < len(result["detected"])
    benchmark.extra_info["accuracy"] = result["accuracy"]
    benchmark.extra_info["paper_value"] = 0.92


def test_fig9_panels_trace_shapes(benchmark, office):
    result = benchmark.pedantic(
        lambda: figure9(office), rounds=1, iterations=1
    )
    print_header("Figure 9 panels (b)-(d): raw receptor traces")
    for mote_id, (_times, values) in sorted(result["sound"].items()):
        print(
            f"  {mote_id}: sound min={values.min():.0f} "
            f"max={values.max():.0f} (paper plot range ~500-1000)"
        )
    for sensor_id, events in sorted(result["x10_events"].items()):
        print(f"  {sensor_id}: {len(events)} ON events in 600 s")
    sound_values = np.concatenate(
        [values for _t, values in result["sound"].values()]
    )
    assert sound_values.min() > 400 and sound_values.max() < 1100
    total_x10 = sum(len(v) for v in result["x10_events"].values())
    assert 0 < total_x10 < len(result["ticks"]) * 3
    benchmark.extra_info["x10_events_total"] = total_x10
