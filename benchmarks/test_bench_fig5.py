"""Figure 5 (paper §4.2.1): error per pipeline configuration.

The paper's bars: Raw ≈ Arbitrate-only ≈ 0.41-0.45 ≫ Smooth-only ≈
Arbitrate+Smooth ≈ 0.24-0.25 ≫ Smooth+Arbitrate ≈ 0.04. The load-bearing
finding is that *both* stages are needed *in the right order*.
"""

from benchmarks.conftest import print_header
from repro.experiments.rfid import figure5
from repro.pipelines.rfid_shelf import SHELF_CONFIGS


def test_fig5_pipeline_configurations(benchmark, shelf):
    errors = benchmark.pedantic(
        lambda: figure5(shelf), rounds=1, iterations=1
    )
    paper = {
        "raw": 0.41,
        "smooth": 0.24,
        "arbitrate": 0.43,
        "arbitrate+smooth": 0.25,
        "smooth+arbitrate": 0.04,
    }
    print_header("Figure 5: avg relative error per pipeline configuration")
    print(f"  {'configuration':20s} {'measured':>9s} {'paper':>7s}")
    for config in SHELF_CONFIGS:
        print(
            f"  {config:20s} {errors[config]:9.3f} {paper[config]:7.2f}"
        )
    # Shape assertions, mirroring the paper's discussion:
    assert errors["smooth+arbitrate"] == min(errors.values())
    # "Arbitrate individually ... provides little benefit beyond the raw
    # data" — within 40% of raw.
    assert errors["arbitrate"] > 0.6 * errors["raw"]
    # "Arbitrate followed by Smooth provides little benefit beyond Smooth
    # alone" — not better than the full pipeline, and far worse than it.
    assert errors["arbitrate+smooth"] > 1.5 * errors["smooth+arbitrate"]
    # "Only when both Smooth and Arbitrate are used in the correct order
    # does ESP provide significant cleaning benefit."
    assert errors["smooth+arbitrate"] < 0.5 * errors["smooth"]
    for config, value in errors.items():
        benchmark.extra_info[config] = value
