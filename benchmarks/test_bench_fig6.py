"""Figure 6 (paper §4.3.2): error vs. temporal granule size.

The paper's finding is a U-shape over 0–30 s: "an effective temporal
granule size is bounded at the low end by the reliability of the devices
and at the high end by the rate of change of the data", with the minimum
near the 5-second granule the deployment used.
"""

from benchmarks.conftest import print_header
from repro.experiments.rfid import DEFAULT_GRANULE_SIZES, figure6


def test_fig6_temporal_granule_sweep(benchmark, shelf):
    sweep = benchmark.pedantic(
        lambda: figure6(shelf), rounds=1, iterations=1
    )
    print_header("Figure 6: avg relative error vs temporal granule size")
    best = min(sweep, key=sweep.get)
    for size in DEFAULT_GRANULE_SIZES:
        marker = "   <-- minimum" if size == best else ""
        print(f"  granule {size:5.1f} s   err={sweep[size]:.3f}{marker}")
    print("  (paper: U-shaped with minimum around 5 s)")
    smallest, largest = min(sweep), max(sweep)
    # U-shape: both extremes worse than the 5 s sweet spot.
    assert sweep[smallest] > sweep[5.0] * 1.5
    assert sweep[largest] > sweep[5.0] * 1.5
    # The minimum lies in the paper's 2-10 s neighbourhood.
    assert 2.0 <= best <= 10.0
    # The single-poll granule cannot smooth: error several times the
    # optimum (arbitration alone still helps a little, so it does not
    # fully regress to raw).
    assert sweep[0.2] > 3 * sweep[5.0]
    for size, err in sweep.items():
        benchmark.extra_info[f"granule_{size:g}s"] = err
