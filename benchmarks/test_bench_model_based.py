"""Extension bench: BBQ-style model-driven cleaning (paper §6.3.1).

The Figure 7 pipeline needs spatial redundancy (two healthy neighbours
for the ±1σ rule). A lone fail-dirty mote defeats it — but not a
cross-sensor correlation model: the mote's battery-voltage channel keeps
tracking the real temperature, exposing the thermistor's drift. Claim:
model-driven Virtualize cleans a *single isolated* fail-dirty mote with
near-zero false rejections.
"""

from benchmarks.conftest import print_header
from repro.experiments.model_based import model_based_comparison


def test_model_based_lone_mote_cleaning(benchmark):
    result = benchmark.pedantic(
        lambda: model_based_comparison(), rounds=1, iterations=1
    )
    print_header("Extension: model-driven cleaning of a lone mote (6.3.1)")
    print(
        "  tracking error after failure:  raw "
        f"{result['raw_error_after_failure']:.1f} C -> cleaned "
        f"{result['cleaned_error_after_failure']:.2f} C"
    )
    lag_min = (
        result["first_post_onset_rejection"] - result["failure_onset"]
    ) / 60.0
    print(f"  fault detected {lag_min:.0f} min after onset")
    print(
        "  pre-failure false rejections: "
        f"{result['pre_onset_false_rejection_rate'] * 100:.1f}%"
    )
    print(
        "  faulty readings suppressed: "
        f"{(1 - result['cleaned_coverage_after_failure']) * 100:.0f}%"
    )
    assert result["raw_error_after_failure"] > 10.0
    assert result["cleaned_error_after_failure"] < 1.5
    assert result["pre_onset_false_rejection_rate"] < 0.03
    assert lag_min < 120.0
    benchmark.extra_info["raw_error_c"] = result["raw_error_after_failure"]
    benchmark.extra_info["cleaned_error_c"] = result[
        "cleaned_error_after_failure"
    ]
    benchmark.extra_info["detection_lag_min"] = lag_min
