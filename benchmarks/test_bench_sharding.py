"""Sharded execution engine benchmarks: tuples/sec vs shard count.

Measures the end-to-end throughput of :func:`repro.streams.shard.run_sharded`
(partition → N sub-pipelines → deterministic merge) on a group-by-heavy
workload with enough distinct shard keys to spread across shards, for
each backend at 1, 2 and 4 shards.

Interpretation:

- ``serial`` quantifies the engine's partition/merge overhead (it runs
  the same work as sequential Fjord, plus bookkeeping);
- ``threads`` is GIL-bound for these pure-Python operators — expect
  parity at best, it is benchmarked as the no-shared-state proof;
- ``processes`` is the backend that buys real parallel speed-up, on
  hardware with more than one core.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.streams.aggregates import AggregateSpec
from repro.streams.fjord import Fjord
from repro.streams.operators import FilterOp, GroupKey, WindowedGroupByOp
from repro.streams.shard import run_sharded
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec

N_TUPLES = 20_000
N_KEYS = 16
TICK = 0.5
RATE = 0.05  # inter-arrival, seconds


def _trace(n=N_TUPLES, seed=0):
    rng = np.random.default_rng(seed)
    keys = [f"granule{i}" for i in range(N_KEYS)]
    return {
        "readings": [
            StreamTuple(
                i * RATE,
                {
                    "spatial_granule": keys[int(rng.integers(N_KEYS))],
                    "value": float(rng.uniform(0.0, 50.0)),
                },
                "readings",
            )
            for i in range(n)
        ]
    }


def _ticks(sources):
    horizon = sources["readings"][-1].timestamp
    return [i * TICK for i in range(int(horizon / TICK) + 2)]


def _build(sources):
    """Point filter + per-granule windowed aggregate — CPU-bound enough
    that sharding has something to parallelize."""
    fjord = Fjord()
    for name, items in sources.items():
        fjord.add_source(name, items)
    fjord.add_operator(
        "point", FilterOp(lambda t: t["value"] < 49.0), inputs=["readings"]
    )
    fjord.add_operator(
        "smooth",
        WindowedGroupByOp(
            WindowSpec.range_by(5.0),
            keys=[GroupKey("spatial_granule")],
            aggregates=[
                AggregateSpec("count", output="n"),
                AggregateSpec(
                    "avg", argument=lambda t: t["value"], output="value"
                ),
                AggregateSpec(
                    "stdev", argument=lambda t: t["value"], output="spread"
                ),
            ],
        ),
        inputs=["point"],
    )
    sink = fjord.add_sink("out", inputs=["smooth"])
    return fjord, sink


def _run_sequential(sources, ticks):
    fjord, sink = _build(sources)
    fjord.run(ticks)
    return len(sink.results)


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_throughput(benchmark, backend, shards):
    sources = _trace()
    ticks = _ticks(sources)

    def run():
        return run_sharded(
            sources, _build, ticks, shards=shards, backend=backend
        )

    result = benchmark(run)
    assert result.output
    elapsed = benchmark.stats["mean"]
    benchmark.extra_info["tuples_per_sec"] = round(N_TUPLES / elapsed)
    benchmark.extra_info["output_tuples"] = len(result.output)


def test_sequential_reference_throughput(benchmark):
    """The unsharded Fjord baseline the engine is compared against."""
    sources = _trace()
    ticks = _ticks(sources)
    emitted = benchmark(lambda: _run_sequential(sources, ticks))
    assert emitted > 0
    benchmark.extra_info["tuples_per_sec"] = round(
        N_TUPLES / benchmark.stats["mean"]
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speed-up needs more than one core "
    f"(this host has {os.cpu_count()})",
)
def test_processes_at_4_shards_beats_sequential():
    """The acceptance bar: forked workers outrun the sequential engine.

    One-shot wall-clock comparison (forking inside pytest-benchmark
    rounds would time the fork storm, not the steady state).
    """
    sources = _trace()
    ticks = _ticks(sources)
    _run_sequential(sources, ticks)  # warm caches

    start = time.perf_counter()
    _run_sequential(sources, ticks)
    sequential = time.perf_counter() - start

    start = time.perf_counter()
    run_sharded(sources, _build, ticks, shards=4, backend="processes")
    sharded = time.perf_counter() - start

    assert sharded < sequential, (
        f"processes/4-shards took {sharded:.3f}s vs "
        f"sequential {sequential:.3f}s"
    )
