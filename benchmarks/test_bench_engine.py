"""Engine micro-benchmarks: the stream substrate and CQL compiler.

Not paper artifacts — these track the reproduction's own performance so
regressions in the substrate (which every experiment runs through) are
visible. Timed with real pytest-benchmark rounds, unlike the one-shot
experiment benches.
"""

import numpy as np

from repro.cql import compile_query
from repro.streams.aggregates import AggregateSpec
from repro.streams.fjord import Fjord
from repro.streams.operators import (
    FilterOp,
    GroupKey,
    MapOp,
    WindowedGroupByOp,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec

QUERY_3 = """
SELECT spatial_granule, tag_id
FROM arbitrate_input ai1 [Range By 'NOW']
GROUP BY spatial_granule, tag_id
HAVING count(*) >= ALL(SELECT count(*)
                       FROM arbitrate_input ai2 [Range By 'NOW']
                       WHERE ai1.tag_id = ai2.tag_id
                       GROUP BY spatial_granule)
"""


def _rfid_batch(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    return [
        StreamTuple(
            i * 0.2,
            {
                "tag_id": f"t{rng.integers(20)}",
                "spatial_granule": f"shelf{rng.integers(2)}",
            },
            "s",
        )
        for i in range(n)
    ]


def test_engine_filter_map_throughput(benchmark):
    items = _rfid_batch()
    pipeline = [
        FilterOp(lambda t: t["spatial_granule"] == "shelf0"),
        MapOp(lambda t: t.derive(values={"seen": True})),
    ]

    def run():
        count = 0
        for item in items:
            out = [item]
            for op in pipeline:
                out = [o for i in out for o in op.on_tuple(i)]
            count += len(out)
        return count

    kept = benchmark(run)
    assert 0 < kept < len(items)


def test_engine_windowed_groupby_throughput(benchmark):
    items = _rfid_batch()
    ticks = [i * 0.2 for i in range(0, 5000, 5)]

    def run():
        op = WindowedGroupByOp(
            WindowSpec.range_by(5.0),
            keys=[GroupKey("tag_id"), GroupKey("spatial_granule")],
            aggregates=[AggregateSpec("count", output="count")],
        )
        emitted = 0
        index = 0
        for tick in ticks:
            while index < len(items) and items[index].timestamp <= tick:
                op.on_tuple(items[index])
                index += 1
            emitted += len(op.on_time(tick))
        return emitted

    emitted = benchmark(run)
    assert emitted > 0


def test_engine_fjord_pipeline_throughput(benchmark):
    def run():
        fjord = Fjord()
        fjord.add_source("src", _rfid_batch(2000))
        fjord.add_operator(
            "group",
            WindowedGroupByOp(
                WindowSpec.range_by(5.0),
                keys=[GroupKey("spatial_granule")],
                aggregates=[
                    AggregateSpec(
                        "count",
                        argument=lambda t: t["tag_id"],
                        distinct=True,
                        output="n",
                    )
                ],
            ),
            inputs=["src"],
        )
        sink = fjord.add_sink("out", inputs=["group"])
        fjord.run(i * 1.0 for i in range(401))
        return len(sink.results)

    assert benchmark(run) > 0


def test_engine_incremental_groupby_throughput(benchmark):
    """The O(1)-per-slide incremental group-by vs the recompute default
    (same workload as test_engine_windowed_groupby_throughput)."""
    from repro.streams.incremental import IncrementalWindowedGroupByOp

    items = _rfid_batch()
    ticks = [i * 0.2 for i in range(0, 5000, 5)]

    def run():
        op = IncrementalWindowedGroupByOp(
            WindowSpec.range_by(5.0),
            keys=[GroupKey("tag_id"), GroupKey("spatial_granule")],
            aggregates=[AggregateSpec("count", output="count")],
        )
        emitted = 0
        index = 0
        for tick in ticks:
            while index < len(items) and items[index].timestamp <= tick:
                op.on_tuple(items[index])
                index += 1
            emitted += len(op.on_time(tick))
        return emitted

    emitted = benchmark(run)
    assert emitted > 0


def test_engine_cql_compile_time(benchmark):
    query = benchmark(lambda: compile_query(QUERY_3))
    assert query.input_streams == ["arbitrate_input"]


import pytest


@pytest.mark.parametrize("n_tags", [10, 100, 1000])
def test_engine_groupby_scaling_with_tag_population(benchmark, n_tags):
    """Group-state scaling: per-slide cost grows with live groups, so a
    1000-tag warehouse door costs ~100x a 10-tag shelf per punctuation.
    Tracked so a state-management regression is visible."""
    rng = np.random.default_rng(1)
    items = [
        StreamTuple(
            i * 0.1,
            {"tag_id": f"t{rng.integers(n_tags)}", "spatial_granule": "g"},
            "s",
        )
        for i in range(3000)
    ]
    ticks = [i * 0.5 for i in range(601)]

    def run():
        op = WindowedGroupByOp(
            WindowSpec.range_by(5.0),
            keys=[GroupKey("tag_id")],
            aggregates=[AggregateSpec("count", output="n")],
        )
        emitted = 0
        index = 0
        for tick in ticks:
            while index < len(items) and items[index].timestamp <= tick:
                op.on_tuple(items[index])
                index += 1
            emitted += len(op.on_time(tick))
        return emitted

    assert benchmark(run) > 0


def test_engine_reorder_buffer_throughput(benchmark):
    """Gateway reorder buffer over a delayed 5k-reading trace."""
    from repro.receptors.network import DelayModel
    from repro.streams.reorder import delayed_arrivals, reorder_arrivals

    readings = _rfid_batch()
    model = DelayModel(mean_delay=0.5, max_delay=3.0, rng=0)
    arrivals = list(delayed_arrivals(readings, model))

    def run():
        ordered, dropped = reorder_arrivals(arrivals, slack=3.0)
        return len(ordered), dropped

    released, dropped = benchmark(run)
    assert released == len(readings) and dropped == 0


def test_engine_trace_roundtrip_throughput(benchmark, tmp_path):
    """JSONL persistence round-trip of a 5k-reading trace."""
    from repro.streams.traceio import read_jsonl, write_jsonl

    readings = _rfid_batch()
    path = tmp_path / "trace.jsonl"

    def run():
        write_jsonl(readings, path)
        return len(read_jsonl(path))

    assert benchmark(run) == len(readings)


def test_engine_cql_execution_throughput(benchmark):
    items = [t.derive(stream="arbitrate_input") for t in _rfid_batch(2000)]
    ticks = [i * 0.2 for i in range(2001)]

    def run():
        return len(
            compile_query(QUERY_3).run({"arbitrate_input": items}, ticks)
        )

    assert benchmark(run) > 0
