"""Tests for trace persistence (JSONL / CSV round-trips)."""

import pytest

from repro.errors import ReproError
from repro.streams.traceio import (
    load_recording,
    read_csv,
    read_jsonl,
    save_recording,
    write_csv,
    write_jsonl,
)
from repro.streams.tuples import StreamTuple


def sample_trace():
    return [
        StreamTuple(0.0, {"tag_id": "a", "shelf": 0}, "reader0"),
        StreamTuple(0.2, {"tag_id": "b", "shelf": 0}, "reader0"),
        StreamTuple(0.2, {"temp": 21.5, "mote_id": "m1"}, "mote1"),
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(sample_trace(), path) == 3
        assert read_jsonl(path) == sample_trace()

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl([], path)
        assert read_jsonl(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_trace()[:1], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(path)) == 1

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"_ts": 0.0}\nnot json\n')
        with pytest.raises(ReproError) as err:
            read_jsonl(path)
        assert ":2:" in str(err.value)

    def test_missing_timestamp_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"x": 1}\n')
        with pytest.raises(ReproError):
            read_jsonl(path)


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        trace = [
            StreamTuple(0.0, {"tag_id": "a", "count": 3}, "s"),
            StreamTuple(1.0, {"tag_id": "b", "count": 4}, "s"),
        ]
        assert write_csv(trace, path) == 2
        assert read_csv(path) == trace

    def test_type_inference(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv([StreamTuple(0.0, {"i": 3, "f": 2.5, "s": "x"}, "")], path)
        item = read_csv(path)[0]
        assert item["i"] == 3 and isinstance(item["i"], int)
        assert item["f"] == 2.5 and isinstance(item["f"], float)
        assert item["s"] == "x"

    def test_heterogeneous_fields_sparse(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample_trace(), path)
        loaded = read_csv(path)
        assert "temp" not in loaded[0]  # empty cell dropped
        assert loaded[2]["temp"] == 21.5

    def test_explicit_field_order_and_converters(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(
            [StreamTuple(0.0, {"code": "007"}, "")], path, fields=["code"]
        )
        loaded = read_csv(path, field_types={"code": str})
        assert loaded[0]["code"] == "007"  # not coerced to int

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ReproError):
            read_csv(path)

    def test_missing_timestamp_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ReproError):
            read_csv(path)


class TestRecordingRoundTrip:
    def test_save_and_load_recording(self, tmp_path):
        recording = {
            "reader0": sample_trace()[:2],
            "mote1": sample_trace()[2:],
        }
        written = save_recording(recording, tmp_path / "rec")
        assert set(written) == {"reader0", "mote1"}
        loaded = load_recording(tmp_path / "rec")
        assert loaded == recording

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(ReproError):
            load_recording(tmp_path / "nope")

    def test_load_empty_directory(self, tmp_path):
        (tmp_path / "rec").mkdir()
        with pytest.raises(ReproError):
            load_recording(tmp_path / "rec")

    def test_scenario_recording_replays_identically(self, tmp_path, small_shelf):
        """A persisted scenario recording drives the pipeline to the
        exact same result as the in-memory recording."""
        from repro.pipelines.rfid_shelf import query1_counts
        import numpy as np

        recording = small_shelf.recorded_streams()
        save_recording(recording, tmp_path / "shelf")
        loaded = load_recording(tmp_path / "shelf")
        native = query1_counts(small_shelf, "smooth+arbitrate")
        replayed = query1_counts(
            small_shelf, "smooth+arbitrate", sources=loaded
        )
        for granule in native:
            assert np.array_equal(native[granule], replayed[granule])
