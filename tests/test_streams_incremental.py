"""Tests: incremental group-by is equivalent to the recompute operator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperatorError
from repro.streams.aggregates import AggregateSpec
from repro.streams.incremental import IncrementalWindowedGroupByOp
from repro.streams.operators import GroupKey, WindowedGroupByOp, run_operator
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec


def specs():
    return [
        AggregateSpec("count", output="n"),
        AggregateSpec(
            "count", argument=lambda t: t["tag"], distinct=True, output="d"
        ),
        AggregateSpec("sum", argument=lambda t: t.get("v"), output="s"),
        AggregateSpec("avg", argument=lambda t: t.get("v"), output="m"),
    ]


def both_ops(window=5.0):
    shared = dict(
        keys=[GroupKey("g")],
        aggregates=specs(),
    )
    return (
        WindowedGroupByOp(WindowSpec.range_by(window), **shared),
        IncrementalWindowedGroupByOp(WindowSpec.range_by(window), **shared),
    )


def normalize(tuples):
    return sorted(
        (
            t.timestamp,
            t["g"],
            t["n"],
            t["d"],
            None if t["s"] is None else round(t["s"], 9),
            None if t["m"] is None else round(t["m"], 9),
        )
        for t in tuples
    )


class TestEquivalence:
    def test_simple_trace(self):
        items = [
            StreamTuple(0.0, {"g": 0, "tag": "a", "v": 1.0}),
            StreamTuple(1.0, {"g": 0, "tag": "a", "v": 2.0}),
            StreamTuple(1.0, {"g": 1, "tag": "b", "v": 3.0}),
            StreamTuple(7.0, {"g": 0, "tag": "c", "v": 4.0}),
        ]
        ticks = [0.0, 1.0, 5.0, 7.0, 20.0]
        reference, incremental = both_ops()
        assert normalize(run_operator(reference, items, ticks)) == normalize(
            run_operator(incremental, items, ticks)
        )

    def test_null_values_skipped_identically(self):
        items = [
            StreamTuple(0.0, {"g": 0, "tag": "a", "v": None}),
            StreamTuple(0.0, {"g": 0, "tag": "b", "v": 2.0}),
        ]
        reference, incremental = both_ops()
        assert normalize(run_operator(reference, items, [0.0])) == normalize(
            run_operator(incremental, items, [0.0])
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
                st.integers(min_value=0, max_value=2),  # group
                st.integers(min_value=0, max_value=4),  # tag
                st.floats(min_value=-50, max_value=50, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ).map(lambda rows: sorted(rows, key=lambda r: r[0]))
    )
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence(self, rows):
        items = [
            StreamTuple(ts, {"g": g, "tag": f"t{tag}", "v": v})
            for ts, g, tag, v in rows
        ]
        last = rows[-1][0]
        ticks = sorted({0.0, last / 3, last / 2, last, last + 10.0})
        reference, incremental = both_ops(window=7.0)
        assert normalize(
            run_operator(reference, items, ticks)
        ) == normalize(run_operator(incremental, items, list(ticks)))


class TestValidation:
    def test_rejects_now_window(self):
        with pytest.raises(OperatorError):
            IncrementalWindowedGroupByOp(
                WindowSpec.now(), aggregates=[AggregateSpec("count")]
            )

    def test_rejects_row_window(self):
        with pytest.raises(OperatorError):
            IncrementalWindowedGroupByOp(
                WindowSpec.rows(5), aggregates=[AggregateSpec("count")]
            )

    def test_rejects_non_subtractable_aggregate(self):
        with pytest.raises(OperatorError) as err:
            IncrementalWindowedGroupByOp(
                WindowSpec.range_by(5.0),
                aggregates=[
                    AggregateSpec("max", argument=lambda t: t["v"])
                ],
            )
        assert "subtractable" in str(err.value)

    def test_rejects_distinct_sum(self):
        with pytest.raises(OperatorError):
            IncrementalWindowedGroupByOp(
                WindowSpec.range_by(5.0),
                aggregates=[
                    AggregateSpec(
                        "sum", argument=lambda t: t["v"], distinct=True
                    )
                ],
            )

    def test_requires_keys_or_aggregates(self):
        with pytest.raises(OperatorError):
            IncrementalWindowedGroupByOp(WindowSpec.range_by(5.0))

    def test_state_garbage_collected(self):
        op = IncrementalWindowedGroupByOp(
            WindowSpec.range_by(1.0),
            keys=[GroupKey("g")],
            aggregates=[AggregateSpec("count", output="n")],
        )
        run_operator(op, [StreamTuple(0.0, {"g": 0})], [0.0, 10.0])
        assert op._states == {}
