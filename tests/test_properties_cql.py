"""Property-based tests: random CQL queries vs. a Python reference.

Hypothesis generates random predicate trees and aggregation queries; a
hand-rolled Python evaluation of the same semantics is the oracle. This
pins the whole lexer→parser→planner→operator path, not just the paths
the paper's six queries exercise.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cql import compile_query
from repro.streams.tuples import StreamTuple

# -- predicate generator ---------------------------------------------------------
# Each generated node is (sql_text, python_callable(row_dict) -> bool).


def _leaf():
    fields = st.sampled_from(["a", "b"])
    ops = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
    values = st.integers(min_value=-5, max_value=5)

    def build(field, op, value):
        sql = f"{field} {op} {value}"
        py_op = {
            "<": lambda x, y: x < y,
            "<=": lambda x, y: x <= y,
            ">": lambda x, y: x > y,
            ">=": lambda x, y: x >= y,
            "=": lambda x, y: x == y,
            "<>": lambda x, y: x != y,
        }[op]
        return sql, (lambda row, _f=field, _v=value, _op=py_op: _op(row[_f], _v))

    return st.builds(build, fields, ops, values)


def _combine(children):
    def build_and(left, right):
        return (
            f"({left[0]} AND {right[0]})",
            lambda row: left[1](row) and right[1](row),
        )

    def build_or(left, right):
        return (
            f"({left[0]} OR {right[0]})",
            lambda row: left[1](row) or right[1](row),
        )

    def build_not(child):
        return (f"(NOT {child[0]})", lambda row: not child[1](row))

    return st.one_of(
        st.builds(build_and, children, children),
        st.builds(build_or, children, children),
        st.builds(build_not, children),
    )


predicates = st.recursive(_leaf(), _combine, max_leaves=6)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=0,
    max_size=25,
)


class TestRandomFilters:
    @given(predicates, rows_strategy)
    @settings(max_examples=80, deadline=None)
    def test_where_matches_python_reference(self, predicate, rows):
        sql, reference = predicate
        query = compile_query(f"SELECT * FROM s WHERE {sql}")
        items = [
            StreamTuple(float(i), {"a": a, "b": b, "g": g}, "s")
            for i, (a, b, g) in enumerate(rows)
        ]
        ticks = [float(len(rows))]
        out = query.run({"s": items}, ticks)
        expected = [
            (a, b, g) for a, b, g in rows if reference({"a": a, "b": b})
        ]
        assert [(t["a"], t["b"], t["g"]) for t in out] == expected


AGGS = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values) if values else None,
    "avg": lambda values: sum(values) / len(values) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


class TestRandomAggregations:
    @given(
        st.sampled_from(sorted(AGGS)),
        rows_strategy.filter(lambda rows: len(rows) > 0),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_grouped_aggregate_matches_reference(self, agg, rows, width):
        query = compile_query(
            f"SELECT g, {agg}(a) AS x FROM s [Range By '{width} sec'] "
            "GROUP BY g"
        )
        items = [
            StreamTuple(float(i), {"a": a, "b": b, "g": g}, "s")
            for i, (a, b, g) in enumerate(rows)
        ]
        final_tick = float(len(rows) - 1)
        out = query.run({"s": items}, [final_tick])
        got = {t["g"]: t["x"] for t in out if t.timestamp == final_tick}
        expected: dict[int, list] = {}
        for i, (a, _b, g) in enumerate(rows):
            if i >= final_tick - width - 1e-9:
                expected.setdefault(g, []).append(a)
        reference = {g: AGGS[agg](vals) for g, vals in expected.items()}
        assert set(got) == set(reference)
        for g, value in reference.items():
            if value is None:
                assert got[g] is None
            else:
                assert got[g] == pytest.approx(value)

    @given(
        rows_strategy.filter(lambda rows: len(rows) > 0),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_distinct_matches_reference(self, rows, width):
        query = compile_query(
            f"SELECT g, count(distinct a) AS d FROM s "
            f"[Range By '{width} sec'] GROUP BY g"
        )
        items = [
            StreamTuple(float(i), {"a": a, "g": g}, "s")
            for i, (a, _b, g) in enumerate(rows)
        ]
        final_tick = float(len(rows) - 1)
        out = query.run({"s": items}, [final_tick])
        got = {t["g"]: t["d"] for t in out}
        expected: dict[int, set] = {}
        for i, (a, _b, g) in enumerate(rows):
            if i >= final_tick - width - 1e-9:
                expected.setdefault(g, set()).add(a)
        assert got == {g: len(values) for g, values in expected.items()}

    @given(rows_strategy.filter(lambda rows: len(rows) > 1))
    @settings(max_examples=40, deadline=None)
    def test_having_matches_post_filter(self, rows):
        """HAVING count(*) >= 2 equals filtering the unfiltered result."""
        base = (
            "SELECT g, count(*) AS n FROM s [Range By '1000 sec'] GROUP BY g"
        )
        with_having = base + " HAVING count(*) >= 2"
        items = [
            StreamTuple(float(i), {"a": a, "g": g}, "s")
            for i, (a, _b, g) in enumerate(rows)
        ]
        final_tick = float(len(rows) - 1)
        all_groups = compile_query(base).run({"s": list(items)}, [final_tick])
        filtered = compile_query(with_having).run(
            {"s": list(items)}, [final_tick]
        )
        expected = sorted(
            (t["g"], t["n"]) for t in all_groups if t["n"] >= 2
        )
        assert sorted((t["g"], t["n"]) for t in filtered) == expected
