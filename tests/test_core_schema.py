"""Unit tests for the reading-schema conventions."""

import pytest

from repro.core import schema
from repro.errors import SchemaError
from repro.streams.tuples import StreamTuple


class TestValidateReading:
    def test_valid_rfid(self):
        reading = StreamTuple(0.0, {"tag_id": "a", "reader_id": "r0"})
        schema.validate_reading(reading, "rfid")  # no exception

    def test_valid_mote(self):
        schema.validate_reading(
            StreamTuple(0.0, {"mote_id": "m", "temp": 20.0}), "mote"
        )

    def test_valid_x10(self):
        schema.validate_reading(
            StreamTuple(0.0, {"sensor_id": "x", "value": "ON"}), "x10"
        )

    def test_missing_field_reported(self):
        with pytest.raises(SchemaError) as err:
            schema.validate_reading(StreamTuple(0.0, {"tag_id": "a"}), "rfid")
        assert "reader_id" in str(err.value)

    def test_unknown_kind(self):
        with pytest.raises(SchemaError):
            schema.validate_reading(StreamTuple(0.0, {}), "lidar")

    def test_simulator_outputs_conform(self):
        from repro.receptors.motes import Mote
        from repro.receptors.rfid import DetectionField, RFIDReader, TagPlacement
        from repro.receptors.x10 import X10MotionDetector

        reader = RFIDReader(
            "r", shelf=0,
            tags=[TagPlacement("t", lambda r, n: 0.0)],
            field=DetectionField([(0.0, 1.0), (9.0, 1.0)]),
            rng=0,
        )
        for reading in reader.poll(0.0):
            schema.validate_reading(reading, "rfid")
        mote = Mote("m", field=lambda n: 1.0, rng=0)
        for reading in mote.poll(0.0):
            schema.validate_reading(reading, "mote")
        x10 = X10MotionDetector(
            "x", occupied=lambda n: True, detect_probability=1.0, rng=0
        )
        for reading in x10.poll(0.0):
            schema.validate_reading(reading, "x10")
