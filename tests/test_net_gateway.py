"""Loopback tests for the ingestion gateway.

Everything runs over real sockets on 127.0.0.1 with ephemeral ports,
but *no* real time: wire timestamps are simulation-axis values, feeders
replay full-tilt, liveness uses an injected fake clock, and the only
``asyncio.sleep`` ever awaited is ``sleep(0)`` (a bare event-loop
yield). ``asyncio.wait_for`` guards are hang insurance, not pacing.

The headline assertions are the differential ones: a pipeline fed over
the network — delays, reordering, credit stalls and all — produces
byte-identical cleaned output to the in-memory batch run of the same
scenario, on both the serial and the sharded reference backends.
"""

import asyncio

import pytest

from repro.errors import NetError
from repro.net import protocol
from repro.net.feeder import ReplayFeeder
from repro.net.gateway import IngestGateway
from repro.net.protocol import read_frame, write_frame
from repro.receptors.network import DelayModel
from repro.streams.telemetry import InMemoryCollector
from repro.streams.tuples import StreamTuple

WAIT = 20.0  # hang guard for awaits; never approached on a healthy run


def shelf_case(duration=12.0):
    from repro.pipelines.rfid_shelf import build_shelf_processor
    from repro.scenarios.shelf import ShelfScenario

    scenario = ShelfScenario(duration=duration, seed=3)
    streams = scenario.recorded_streams()

    def factory():
        return build_shelf_processor(scenario, "smooth+arbitrate")

    return factory, streams, scenario.duration, scenario.poll_period


def redwood_case():
    from repro.pipelines.sensornet import build_redwood_processor
    from repro.scenarios.redwood import RedwoodScenario

    scenario = RedwoodScenario(duration=0.05 * 86400.0, n_groups=2, seed=3)
    streams = scenario.recorded_streams()

    def factory():
        return build_redwood_processor(scenario)

    return factory, streams, scenario.duration, None


async def loopback(
    factory,
    streams,
    until,
    tick,
    *,
    slack,
    policy="block",
    queue_bound=64,
    delay_model=None,
    telemetry=None,
    throttle=None,
    feeder_kwargs=None,
):
    """Serve ``factory()``'s pipeline, replay ``streams`` into it."""
    session = factory().open_session(
        until=until, tick=tick, telemetry=telemetry
    )
    gateway = IngestGateway(
        session,
        slack=slack,
        policy=policy,
        queue_bound=queue_bound,
        telemetry=telemetry,
        throttle=throttle,
    )
    host, port = await gateway.start()
    feeder = ReplayFeeder(
        host, port, streams,
        delay_model=delay_model,
        **(feeder_kwargs or {}),
    )
    report = await asyncio.wait_for(feeder.run(), timeout=WAIT)
    await asyncio.wait_for(gateway.run_until_drained(), timeout=WAIT)
    run = await gateway.close()
    return run, gateway, report


class TestLoopbackDifferential:
    """Network-fed output == in-memory output, byte for byte."""

    @pytest.mark.parametrize("case", [shelf_case, redwood_case])
    def test_matches_serial_and_sharded_backends(self, case):
        factory, streams, until, tick = case()
        serial = factory().run(until=until, tick=tick, sources=streams)
        shard_key = (
            "tag_id" if case is shelf_case else "spatial_granule"
        )
        sharded = factory().run(
            until=until, tick=tick, sources=streams,
            shards=3, backend="threads", shard_key=shard_key,
        )

        run, gateway, report = asyncio.run(
            loopback(factory, streams, until, tick, slack=0.0)
        )
        assert run.output == serial.output
        assert run.output == sharded.output
        assert run.output  # non-vacuous
        stats = gateway.stats()["sources"]
        assert sum(report["sent"].values()) == sum(
            s["delivered"] for s in stats.values()
        )
        assert all(s["dropped_late"] == 0 for s in stats.values())

    def test_matches_with_network_delay_and_reordering(self):
        """Delayed, reordered arrivals with slack >= max delay: still
        byte-identical — the reorder buffer plus watermark gating is
        exactly sufficient."""
        factory, streams, until, tick = shelf_case()
        ref = factory().run(until=until, tick=tick, sources=streams)
        run, gateway, _report = asyncio.run(
            loopback(
                factory, streams, until, tick,
                slack=1.0,
                delay_model=DelayModel(
                    mean_delay=0.2, max_delay=1.0, rng=5
                ),
            )
        )
        assert run.output == ref.output
        stats = gateway.stats()["sources"]
        assert all(s["dropped_late"] == 0 for s in stats.values())


class TestBlockPolicyBackpressure:
    def test_overdriven_feeder_is_credit_gated(self):
        """A feeder running far faster than the drain (it replays
        full-tilt while every drained item costs an extra event-loop
        yield) must be held back by credit frames: the bounded queue
        never exceeds its cap, nothing is dropped, and the output is
        still exact."""
        factory, streams, until, tick = shelf_case(duration=8.0)
        ref = factory().run(until=until, tick=tick, sources=streams)

        async def throttle():
            await asyncio.sleep(0)

        bound = 8
        run, gateway, report = asyncio.run(
            loopback(
                factory, streams, until, tick,
                slack=0.0, policy="block", queue_bound=bound,
                throttle=throttle,
            )
        )
        assert report["credit_frames"] > 0  # backpressure frames emitted
        assert report["blocked_waits"] > 0  # the feeder actually stalled
        stats = gateway.stats()["sources"]
        for s in stats.values():
            assert s["max_depth"] <= bound
            assert s["dropped_overload"] == 0
            assert s["blocked"] == 0  # credits kept the client honest
        assert run.output == ref.output


class TestDropPolicies:
    @pytest.mark.parametrize("policy", ["drop-oldest", "drop-newest"])
    def test_drops_exactly_accounted(self, policy):
        """With the drain gated until the feeder finishes, the bounded
        queue must shed; every shed tuple shows up in both the queue
        counters and the telemetry counters, and
        offered == delivered + dropped holds per source."""
        factory, streams, until, tick = shelf_case(duration=6.0)
        collector = InMemoryCollector()
        gate = asyncio.Event()

        async def throttle():
            await gate.wait()

        async def scenario():
            session = factory().open_session(
                until=until, tick=tick, telemetry=collector
            )
            gateway = IngestGateway(
                session, slack=0.0, policy=policy, queue_bound=16,
                telemetry=collector, throttle=throttle,
            )
            host, port = await gateway.start()
            feeder = ReplayFeeder(host, port, streams)
            report = await asyncio.wait_for(feeder.run(), timeout=WAIT)
            gate.set()  # now let the pipeline drain what survived
            await asyncio.wait_for(
                gateway.run_until_drained(), timeout=WAIT
            )
            run = await gateway.close()
            return run, gateway, report

        run, gateway, report = asyncio.run(scenario())
        counters = collector.snapshot()["counters"]
        stats = gateway.stats()["sources"]
        total_dropped = 0
        for name, s in stats.items():
            assert s["offered"] == s["delivered"] + s["dropped_overload"]
            assert counters.get(f"gateway.{name}.offered", 0) == s["offered"]
            assert counters.get(f"gateway.{name}.dropped", 0) == (
                s["dropped_overload"]
            )
            assert counters.get(f"gateway.{name}.delivered", 0) == (
                s["delivered"]
            )
            assert s["offered"] == report["sent"][name]
            total_dropped += s["dropped_overload"]
        assert total_dropped > 0  # the overload was real
        assert run.output  # survivors still flow through cleanly
        times = [t.timestamp for t in run.output]
        assert times == sorted(times)


class TestLivenessEviction:
    def test_silent_source_is_evicted_with_fake_clock(self):
        """A source that stops reporting (no bye) stalls punctuation
        until the liveness sweep evicts it; the run then completes as
        if the recording had simply ended early for that source."""
        factory, streams, until, tick = shelf_case(duration=6.0)
        partial = 5  # reader1 readings delivered before it goes silent
        truncated = dict(streams)
        truncated["reader1"] = streams["reader1"][:partial]
        ref = factory().run(until=until, tick=tick, sources=truncated)

        now = [0.0]

        async def scenario():
            session = factory().open_session(until=until, tick=tick)
            gateway = IngestGateway(
                session, slack=0.0, clock=lambda: now[0],
                liveness_timeout=30.0,
            )
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame(
                writer, protocol.hello(["reader0", "reader1"])
            )
            ack = await read_frame(reader)
            assert ack["type"] == "hello_ack"
            for seq, item in enumerate(streams["reader1"][:partial]):
                await write_frame(writer, protocol.data_frame(
                    "reader1", seq, item.timestamp, item
                ))
            for seq, item in enumerate(streams["reader0"]):
                await write_frame(writer, protocol.data_frame(
                    "reader0", seq, item.timestamp, item
                ))
            await write_frame(writer, protocol.bye("reader0"))
            while True:  # drain credits until the bye lands
                frame = await asyncio.wait_for(
                    read_frame(reader), timeout=WAIT
                )
                if frame["type"] == "bye_ack":
                    break
            # reader1 now goes silent. Advance the fake wall clock past
            # the liveness timeout and sweep.
            now[0] = 31.0
            assert gateway.check_liveness() == ["reader1"]
            await asyncio.wait_for(
                gateway.run_until_drained(), timeout=WAIT
            )
            writer.close()
            run = await gateway.close()
            return run, gateway

        run, gateway = asyncio.run(scenario())
        stats = gateway.stats()["sources"]
        assert stats["reader1"]["evicted"]
        assert not stats["reader0"]["evicted"]
        assert run.output == ref.output

    def test_heartbeats_defer_eviction(self):
        factory, streams, until, tick = shelf_case(duration=6.0)
        now = [0.0]

        async def scenario():
            session = factory().open_session(until=until, tick=tick)
            gateway = IngestGateway(
                session, slack=0.0, clock=lambda: now[0],
                liveness_timeout=10.0,
            )
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame(writer, protocol.hello(["reader0"]))
            await read_frame(reader)
            now[0] = 8.0
            await write_frame(writer, protocol.heartbeat(["reader0"]))
            await write_frame(writer, protocol.bye("reader0"))
            await read_frame(reader)  # bye_ack: heartbeat processed too
            assert gateway.check_liveness() == []  # heartbeat reset it
            writer.close()
            await gateway.close()

        asyncio.run(scenario())


class TestHandshakeRejections:
    def _gateway_case(self):
        factory, streams, until, tick = shelf_case(duration=3.0)
        session = factory().open_session(until=until, tick=tick)
        return IngestGateway(session, slack=0.0), streams

    def test_version_mismatch_rejected(self):
        async def scenario():
            gateway, _streams = self._gateway_case()
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame(
                writer, protocol.hello(["reader0"], version=99)
            )
            frame = await read_frame(reader)
            writer.close()
            await gateway.close()
            return frame

        frame = asyncio.run(scenario())
        assert frame["type"] == "error"
        assert "version" in frame["reason"]

    def test_unknown_source_rejected_via_feeder(self):
        async def scenario():
            gateway, streams = self._gateway_case()
            host, port = await gateway.start()
            feeder = ReplayFeeder(
                host, port, {"bogus": list(streams["reader0"])}
            )
            try:
                with pytest.raises(NetError, match="unknown sources"):
                    await feeder.run()
            finally:
                await gateway.close()

        asyncio.run(scenario())

    def test_second_connection_for_live_source_rejected(self):
        async def scenario():
            gateway, _streams = self._gateway_case()
            host, port = await gateway.start()
            r1, w1 = await asyncio.open_connection(host, port)
            await write_frame(w1, protocol.hello(["reader0"]))
            assert (await read_frame(r1))["type"] == "hello_ack"
            r2, w2 = await asyncio.open_connection(host, port)
            await write_frame(w2, protocol.hello(["reader0"]))
            frame = await read_frame(r2)
            w1.close()
            w2.close()
            await gateway.close()
            return frame

        frame = asyncio.run(scenario())
        assert frame["type"] == "error"
        assert "already connected" in frame["reason"]

    def test_misconfigured_gateway_rejected(self):
        factory, _streams, until, tick = shelf_case(duration=3.0)
        session = factory().open_session(until=until, tick=tick)
        with pytest.raises(NetError, match="overload policy"):
            IngestGateway(session, policy="drop-sideways")


class TestLateDropsAccounting:
    def test_insufficient_slack_drops_are_counted_not_fatal(self):
        """With slack far below the max delay, hopelessly late tuples
        are shed at the reorder buffer — counted per source, never
        crashing the session — and the output stays sorted."""
        factory, streams, until, tick = shelf_case(duration=8.0)
        run, gateway, _report = asyncio.run(
            loopback(
                factory, streams, until, tick,
                slack=0.05,
                delay_model=DelayModel(
                    mean_delay=0.5, max_delay=2.0, rng=11
                ),
            )
        )
        stats = gateway.stats()["sources"]
        assert sum(s["dropped_late"] for s in stats.values()) > 0
        times = [t.timestamp for t in run.output]
        assert times == sorted(times)


class TestStreamTupleOnTheWire:
    def test_equal_timestamp_order_is_preserved(self):
        """RFID readers emit bursts of identical timestamps; per-source
        sequence numbers must reproduce the original order even when
        the burst is shuffled by network delay."""
        from repro.core.pipeline import ESPProcessor  # noqa: F401 - doc

        factory, streams, until, tick = shelf_case(duration=4.0)
        counts = {
            name: len({i.timestamp for i in items}) < len(items)
            for name, items in streams.items()
        }
        assert any(counts.values())  # the scenario really has ties
        ref = factory().run(until=until, tick=tick, sources=streams)
        run, _gateway, _report = asyncio.run(
            loopback(
                factory, streams, until, tick,
                slack=0.6,
                delay_model=DelayModel(
                    mean_delay=0.15, max_delay=0.6, rng=7
                ),
            )
        )
        assert run.output == ref.output


def test_gateway_requires_expected_sources():
    class _FakeSession:
        receptor_ids = ()

        def close(self):
            return None

    with pytest.raises(NetError, match="at least one expected source"):
        IngestGateway(_FakeSession())


def test_wire_roundtrip_preserves_tuple_fidelity():
    item = StreamTuple(1.25, {"count": 3, "tag_id": "s0_01"}, stream="rfid")
    frame = protocol.data_frame("reader0", 4, 1.5, item)
    assert protocol.record_to_tuple(frame["record"]) == item
