"""Unit tests for the Merge, Arbitrate and Virtualize toolkit operators."""

import pytest

from repro.core.operators.arbitrate_ops import (
    MaxCountArbitrator,
    max_count_arbitrate,
)
from repro.core.operators.merge_ops import (
    k_of_n_vote,
    mad_outlier_average,
    sigma_outlier_average,
    spatial_average,
)
from repro.core.operators.virtualize_ops import VotingDetector, voting_detector
from repro.core.stages import StageContext, StageKind
from repro.errors import OperatorError
from repro.streams.tuples import StreamTuple


def ctx(kind=StageKind.MERGE):
    return StageContext(kind)


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


def drive(op, items, ticks):
    out = []
    items = sorted(items, key=lambda t: t.timestamp)
    index = 0
    for tick in ticks:
        while index < len(items) and items[index].timestamp <= tick + 1e-9:
            out.extend(op.on_tuple(items[index]))
            index += 1
        out.extend(op.on_time(tick))
    return out


class TestSigmaOutlierAverage:
    def stage_op(self, **kwargs):
        defaults = dict(window=300.0, value_field="temp")
        defaults.update(kwargs)
        return sigma_outlier_average(**defaults).make(ctx())

    def test_rejects_deviant_reading(self):
        op = self.stage_op()
        items = [
            tup(0.0, spatial_granule="room", temp=v)
            for v in (20.0, 21.0, 100.0)
        ]
        out = drive(op, items, [0.0])
        assert out[0]["temp"] == pytest.approx(20.5)
        assert out[0]["readings"] == 2

    def test_keeps_all_when_agreeing(self):
        op = self.stage_op()
        items = [
            tup(0.0, spatial_granule="room", temp=v) for v in (20.0, 20.5, 21.0)
        ]
        out = drive(op, items, [0.0])
        assert out[0]["readings"] == 3
        assert out[0]["temp"] == pytest.approx(20.5)

    def test_identical_readings_survive(self):
        # Unlike the literal Query 5 strict band, the toolkit operator
        # uses an inclusive band so zero-variance groups pass through.
        op = self.stage_op()
        items = [tup(0.0, spatial_granule="room", temp=20.0)] * 3
        out = drive(op, items, [0.0])
        assert out[0]["readings"] == 3

    def test_single_reading_passes(self):
        op = self.stage_op()
        out = drive(op, [tup(0.0, spatial_granule="room", temp=20.0)], [0.0])
        assert out[0]["temp"] == 20.0

    def test_empty_window_emits_nothing(self):
        op = self.stage_op()
        assert drive(op, [], [0.0]) == []

    def test_window_eviction(self):
        op = self.stage_op(window=10.0)
        items = [tup(0.0, spatial_granule="room", temp=20.0)]
        out = drive(op, items, [0.0, 10.0, 20.0])
        assert [t.timestamp for t in out] == [0.0, 10.0]

    def test_three_motes_geometry_guarantee(self):
        # With 3 readings, a lone deviant is always outside 1 sigma once
        # its deviation exceeds the others' spread (see merge_ops doc).
        op = self.stage_op()
        items = [
            tup(0.0, spatial_granule="room", temp=v)
            for v in (20.0, 20.4, 26.0)
        ]
        out = drive(op, items, [0.0])
        assert out[0]["readings"] == 2
        assert out[0]["temp"] == pytest.approx(20.2)

    def test_min_survivors_suppresses_output(self):
        op = self.stage_op(min_survivors=3)
        items = [
            tup(0.0, spatial_granule="room", temp=v)
            for v in (20.0, 21.0, 100.0)
        ]
        assert drive(op, items, [0.0]) == []

    def test_invalid_k(self):
        with pytest.raises(OperatorError):
            sigma_outlier_average(window=10.0, k=-1.0).make(ctx())

    def test_groups_isolated(self):
        op = self.stage_op()
        items = [
            tup(0.0, spatial_granule="a", temp=10.0),
            tup(0.0, spatial_granule="b", temp=50.0),
        ]
        out = drive(op, items, [0.0])
        assert {t["spatial_granule"]: t["temp"] for t in out} == {
            "a": 10.0,
            "b": 50.0,
        }

    def test_non_numeric_rows_skipped(self):
        op = self.stage_op()
        items = [
            tup(0.0, spatial_granule="a", other="x"),
            tup(0.0, spatial_granule="a", temp=10.0),
        ]
        out = drive(op, items, [0.0])
        assert out[0]["readings"] == 1


class TestMadOutlierAverage:
    def test_resists_masking_better_than_sigma(self):
        # Two outliers in five readings inflate sigma enough that the
        # 1-sigma rule keeps one of them; the MAD rule rejects both.
        values = (20.0, 20.2, 20.4, 29.0, 30.0)
        sigma_op = sigma_outlier_average(window=10.0, k=1.0).make(ctx())
        mad_op = mad_outlier_average(window=10.0, k=3.0).make(ctx())
        items = [tup(0.0, spatial_granule="g", temp=v) for v in values]
        sigma_out = drive(sigma_op, list(items), [0.0])
        mad_out = drive(mad_op, list(items), [0.0])
        assert mad_out[0]["temp"] == pytest.approx(20.2)
        assert mad_out[0]["readings"] == 3
        assert sigma_out[0]["temp"] > mad_out[0]["temp"]


class TestSpatialAverage:
    def test_averages_across_granule(self):
        op = spatial_average(window=300.0, value_field="temp").make(ctx())
        items = [
            tup(0.0, spatial_granule="g", temp=10.0, mote_id="a"),
            tup(0.0, spatial_granule="g", temp=20.0, mote_id="b"),
        ]
        out = drive(op, items, [0.0])
        assert out[0]["temp"] == 15.0
        assert out[0]["readings"] == 2

    def test_fills_when_one_mote_silent(self):
        op = spatial_average(window=300.0, value_field="temp").make(ctx())
        items = [tup(0.0, spatial_granule="g", temp=10.0, mote_id="a")]
        out = drive(op, items, [0.0])
        assert out[0]["temp"] == 10.0


class TestKofNVote:
    def test_fires_at_threshold(self):
        op = k_of_n_vote(min_devices=2, window=10.0).make(ctx())
        items = [
            tup(0.0, sensor_id="x1", spatial_granule="g", value="ON"),
            tup(1.0, sensor_id="x2", spatial_granule="g", value="ON"),
        ]
        out = drive(op, items, [1.0])
        assert out[0]["votes"] == 2
        assert out[0]["value"] == "ON"
        assert out[0]["spatial_granule"] == "g"

    def test_single_device_insufficient(self):
        op = k_of_n_vote(min_devices=2, window=10.0).make(ctx())
        items = [
            tup(0.0, sensor_id="x1", spatial_granule="g", value="ON"),
            tup(1.0, sensor_id="x1", spatial_granule="g", value="ON"),
        ]
        assert drive(op, items, [1.0]) == []

    def test_votes_expire_with_window(self):
        op = k_of_n_vote(min_devices=2, window=5.0).make(ctx())
        items = [
            tup(0.0, sensor_id="x1", spatial_granule="g", value="ON"),
            tup(8.0, sensor_id="x2", spatial_granule="g", value="ON"),
        ]
        assert drive(op, items, [8.0]) == []

    def test_invalid_min_devices(self):
        with pytest.raises(OperatorError):
            k_of_n_vote(min_devices=0, window=5.0).make(ctx())


class TestMaxCountArbitrator:
    def rows(self, counts):
        return [
            tup(0.0, spatial_granule=granule, tag_id=tag, count=n)
            for (granule, tag), n in counts.items()
        ]

    def test_max_count_wins(self):
        op = MaxCountArbitrator(tie_break="all")
        out = drive(op, self.rows({("g0", "a"): 9, ("g1", "a"): 2}), [0.0])
        assert [(t["spatial_granule"], t["tag_id"]) for t in out] == [
            ("g0", "a")
        ]

    def test_tie_all_keeps_both(self):
        op = MaxCountArbitrator(tie_break="all")
        out = drive(op, self.rows({("g0", "a"): 3, ("g1", "a"): 3}), [0.0])
        assert len(out) == 2

    def test_tie_weakest_wins(self):
        op = MaxCountArbitrator(
            tie_break="weakest", strength={"g0": 1.0, "g1": 0.6}
        )
        out = drive(op, self.rows({("g0", "a"): 3, ("g1", "a"): 3}), [0.0])
        assert [t["spatial_granule"] for t in out] == ["g1"]

    def test_tie_first_deterministic(self):
        op = MaxCountArbitrator(tie_break="first")
        out = drive(op, self.rows({("g1", "a"): 3, ("g0", "a"): 3}), [0.0])
        assert [t["spatial_granule"] for t in out] == ["g0"]

    def test_missing_count_defaults_to_one(self):
        # Arbitrate over raw streams: each reading counts once.
        op = MaxCountArbitrator(tie_break="all")
        raw = [
            tup(0.0, spatial_granule="g0", tag_id="a"),
            tup(0.0, spatial_granule="g0", tag_id="a"),
            tup(0.0, spatial_granule="g1", tag_id="a"),
        ]
        out = drive(op, raw, [0.0])
        assert [t["spatial_granule"] for t in out] == ["g0"]
        assert out[0]["count"] == 2

    def test_state_clears_between_instants(self):
        op = MaxCountArbitrator(tie_break="all")
        drive(op, self.rows({("g0", "a"): 5}), [0.0])
        assert op.on_time(1.0) == []

    def test_tags_independent(self):
        op = MaxCountArbitrator(tie_break="all")
        out = drive(
            op,
            self.rows({("g0", "a"): 5, ("g1", "b"): 5}),
            [0.0],
        )
        pairs = {(t["spatial_granule"], t["tag_id"]) for t in out}
        assert pairs == {("g0", "a"), ("g1", "b")}

    def test_weakest_requires_strength(self):
        with pytest.raises(OperatorError):
            MaxCountArbitrator(tie_break="weakest")

    def test_unknown_tie_break(self):
        with pytest.raises(OperatorError):
            MaxCountArbitrator(tie_break="random")

    def test_stage_builder(self):
        stage = max_count_arbitrate(tie_break="all")
        assert stage.kind is StageKind.ARBITRATE
        assert isinstance(
            stage.make(StageContext(StageKind.ARBITRATE)), MaxCountArbitrator
        )


class TestVotingDetector:
    def make(self, threshold=2):
        return VotingDetector(
            votes={
                "sensors_input": lambda t: t.get("noise", 0) > 525,
                "rfid_input": lambda t: t.get("n_tags", 0) > 1,
                "motion_input": None,
            },
            threshold=threshold,
        )

    def test_two_votes_fire(self):
        op = self.make()
        op.on_tuple(tup(0.0, "sensors_input", noise=600))
        op.on_tuple(tup(0.0, "rfid_input", n_tags=2))
        out = op.on_time(0.0)
        assert out[0]["votes"] == 2
        assert out[0]["event"] == "Person-in-room"
        assert out[0]["vote_sensors_input"] is True
        assert out[0]["vote_motion_input"] is False

    def test_one_vote_insufficient(self):
        op = self.make()
        op.on_tuple(tup(0.0, "sensors_input", noise=600))
        assert op.on_time(0.0) == []

    def test_predicate_false_is_not_a_vote(self):
        op = self.make()
        op.on_tuple(tup(0.0, "sensors_input", noise=100))
        op.on_tuple(tup(0.0, "rfid_input", n_tags=1))
        assert op.on_time(0.0) == []

    def test_none_predicate_counts_any_tuple(self):
        op = self.make()
        op.on_tuple(tup(0.0, "motion_input", value="ON"))
        op.on_tuple(tup(0.0, "rfid_input", n_tags=3))
        assert op.on_time(0.0) != []

    def test_unconfigured_stream_ignored(self):
        op = self.make()
        op.on_tuple(tup(0.0, "mystery", noise=9999))
        assert op.on_time(0.0) == []

    def test_votes_reset_each_instant(self):
        op = self.make()
        op.on_tuple(tup(0.0, "sensors_input", noise=600))
        op.on_tuple(tup(0.0, "rfid_input", n_tags=2))
        assert op.on_time(0.0) != []
        assert op.on_time(1.0) == []

    def test_threshold_bounds_validated(self):
        with pytest.raises(OperatorError):
            self.make(threshold=4)
        with pytest.raises(OperatorError):
            VotingDetector(votes={}, threshold=1)

    def test_stage_builder(self):
        stage = voting_detector({"a": None}, threshold=1)
        assert stage.kind is StageKind.VIRTUALIZE
