"""Smoke tests: the fast examples run end-to-end and produce output.

The full-scale walkthroughs (rfid_shelf_monitoring, redwood_monitoring,
digital_home_person_detector) are exercised through their underlying
experiment drivers elsewhere; here we run the examples that complete in
seconds, exactly as a user would.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestFastExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "avg relative error" in out
        assert "cleaned" in out

    def test_custom_pipeline(self, capsys):
        load_example("custom_pipeline").main()
        out = capsys.readouterr().out
        assert "Anomaly alarms" in out
        assert "peak anomaly score" in out

    def test_hierarchical_stores(self, capsys):
        load_example("hierarchical_stores").main()
        out = capsys.readouterr().out
        assert "chain-wide mean inventory" in out

    def test_dock_door_infers_every_direction(self, capsys):
        module = load_example("dock_door")
        module.main()
        out = capsys.readouterr().out
        assert "direction accuracy: 12/12" in out

    def test_replay_recorded_trace(self, capsys):
        load_example("replay_recorded_trace").main()
        out = capsys.readouterr().out
        assert "live vs replayed outputs identical: True" in out

    def test_dock_door_world_geometry(self):
        module = load_example("dock_door")
        world = module.DockDoorWorld(n_pallets=2, seed=0)
        # Pallet 0 is received: starts outside (-1) and ends inside (+1).
        start = world.starts[0]
        assert world.position(0, start) == pytest.approx(-1.0)
        assert world.position(0, start + 5.9) == pytest.approx(
            0.9667, abs=0.01
        )
        assert world.position(0, start - 1.0) is None
        # Shipped pallets run the other way.
        start1 = world.starts[1]
        assert world.position(1, start1) == pytest.approx(1.0)
