"""Integration tests for the three prebuilt deployment pipelines."""

import numpy as np
import pytest

from repro.core.granules import TemporalGranule
from repro.errors import PipelineError
from repro.metrics import average_relative_error, detection_accuracy
from repro.pipelines.digital_home import build_digital_home_processor
from repro.pipelines.rfid_shelf import (
    SHELF_CONFIGS,
    build_shelf_processor,
    count_series,
    query1_counts,
)
from repro.pipelines.sensornet import (
    build_outlier_processor,
    build_redwood_processor,
)
from repro.streams.tuples import StreamTuple


def shelf_error(scenario, counts):
    truth = scenario.truth_series()
    reported = np.concatenate([counts["shelf0"], counts["shelf1"]])
    actual = np.concatenate([truth["shelf0"], truth["shelf1"]])
    return average_relative_error(reported, actual)


class TestShelfPipeline:
    def test_unknown_config_rejected(self, small_shelf):
        with pytest.raises(PipelineError):
            build_shelf_processor(small_shelf, "bogus")

    @pytest.mark.parametrize("config", SHELF_CONFIGS)
    def test_all_configs_run(self, small_shelf, config):
        counts = query1_counts(small_shelf, config)
        assert set(counts) == {"shelf0", "shelf1"}
        assert len(counts["shelf0"]) == len(small_shelf.ticks())

    def test_cleaning_improves_on_raw(self, small_shelf):
        raw_error = shelf_error(
            small_shelf, query1_counts(small_shelf, "raw")
        )
        clean_error = shelf_error(
            small_shelf, query1_counts(small_shelf, "smooth+arbitrate")
        )
        assert clean_error < raw_error / 3

    def test_smooth_alone_insufficient(self, small_shelf):
        smooth_error = shelf_error(
            small_shelf, query1_counts(small_shelf, "smooth")
        )
        clean_error = shelf_error(
            small_shelf, query1_counts(small_shelf, "smooth+arbitrate")
        )
        assert clean_error < smooth_error

    def test_arbitrate_alone_close_to_raw(self, small_shelf):
        raw_error = shelf_error(small_shelf, query1_counts(small_shelf, "raw"))
        arb_error = shelf_error(
            small_shelf, query1_counts(small_shelf, "arbitrate")
        )
        assert arb_error > raw_error * 0.6

    def test_granule_override(self, small_shelf):
        counts = query1_counts(
            small_shelf, "smooth+arbitrate", granule=TemporalGranule(2.0)
        )
        assert len(counts["shelf0"]) == len(small_shelf.ticks())

    def test_identical_data_across_configs(self, small_shelf):
        # query1_counts replays the cached recording: raw twice is equal.
        first = query1_counts(small_shelf, "raw")
        second = query1_counts(small_shelf, "raw")
        assert np.array_equal(first["shelf0"], second["shelf0"])

    def test_count_series_bucketing(self):
        rows = [
            StreamTuple(0.0, {"tag_id": "a", "spatial_granule": "g"}),
            StreamTuple(0.0, {"tag_id": "b", "spatial_granule": "g"}),
            StreamTuple(1.0, {"tag_id": "a", "spatial_granule": "g"}),
            StreamTuple(1.0, {"tag_id": "x", "spatial_granule": "other"}),
        ]
        series = count_series(
            rows, np.array([0.0, 1.0]), ["g"], tick_period=1.0
        )
        assert series["g"].tolist() == [2.0, 1.0]

    def test_count_series_ignores_out_of_range(self):
        rows = [StreamTuple(99.0, {"tag_id": "a", "spatial_granule": "g"})]
        series = count_series(
            rows, np.array([0.0, 1.0]), ["g"], tick_period=1.0
        )
        assert series["g"].tolist() == [0.0, 0.0]


class TestOutlierPipeline:
    def test_esp_tracks_functioning_motes(self, small_intel_lab):
        scenario = small_intel_lab
        recorded = scenario.recorded_streams()
        processor = build_outlier_processor(scenario)
        run = processor.run(
            until=scenario.duration,
            tick=scenario.sample_period,
            sources=recorded,
        )
        late = [
            t["temp"]
            for t in run.output
            if t.timestamp > scenario.failure_onset + 3600.0
        ]
        assert late and max(late) < 30.0  # outlier excluded

    def test_without_merge_average_is_dragged(self, small_intel_lab):
        scenario = small_intel_lab
        recorded = scenario.recorded_streams()
        processor = build_outlier_processor(
            scenario, use_point=False, use_merge=False
        )
        run = processor.run(
            until=scenario.duration,
            tick=scenario.sample_period,
            sources=recorded,
        )
        # No cleaning at all: the fail-dirty readings are still present.
        late = [
            t["temp"]
            for t in run.output
            if t.timestamp > scenario.duration * 0.9
        ]
        assert max(late) > 40.0

    def test_point_only_caps_at_50(self, small_intel_lab):
        scenario = small_intel_lab
        recorded = scenario.recorded_streams()
        processor = build_outlier_processor(scenario, use_merge=False)
        run = processor.run(
            until=scenario.duration,
            tick=scenario.sample_period,
            sources=recorded,
        )
        assert all(t["temp"] < 50.0 for t in run.output)

    def test_robust_variant_runs(self, small_intel_lab):
        scenario = small_intel_lab
        processor = build_outlier_processor(scenario, robust=True, sigma_k=3.0)
        run = processor.run(
            until=scenario.duration,
            tick=scenario.sample_period,
            sources=scenario.recorded_streams(),
        )
        late = [
            t["temp"]
            for t in run.output
            if t.timestamp > scenario.failure_onset + 3600.0
        ]
        assert late and max(late) < 30.0


class TestRedwoodPipeline:
    def test_smooth_raises_yield(self, small_redwood):
        scenario = small_redwood
        recorded = scenario.recorded_streams()
        n_epochs = len(scenario.epochs())
        raw_slots = sum(len(v) for v in recorded.values())
        run = build_redwood_processor(
            scenario, use_smooth=True, use_merge=False
        ).run(until=scenario.duration, tick=scenario.epoch, sources=recorded)
        smooth_slots = {
            (t["mote_id"], int(round(t.timestamp / scenario.epoch)))
            for t in run.output
        }
        assert len(smooth_slots) > raw_slots

    def test_merge_fills_further(self, small_redwood):
        scenario = small_redwood
        recorded = scenario.recorded_streams()
        smooth_run = build_redwood_processor(
            scenario, use_smooth=True, use_merge=False
        ).run(until=scenario.duration, tick=scenario.epoch, sources=recorded)
        merge_run = build_redwood_processor(
            scenario, use_smooth=True, use_merge=True
        ).run(until=scenario.duration, tick=scenario.epoch, sources=recorded)
        n_epochs = len(scenario.epochs())
        smooth_granule_slots = {
            (t["spatial_granule"], int(round(t.timestamp / scenario.epoch)))
            for t in smooth_run.output
        }
        merge_slots = {
            (t["spatial_granule"], int(round(t.timestamp / scenario.epoch)))
            for t in merge_run.output
        }
        assert len(merge_slots) >= len(smooth_granule_slots)

    def test_merge_output_one_row_per_granule_epoch(self, small_redwood):
        scenario = small_redwood
        run = build_redwood_processor(scenario).run(
            until=scenario.duration,
            tick=scenario.epoch,
            sources=scenario.recorded_streams(),
        )
        slots = [
            (t["spatial_granule"], int(round(t.timestamp / scenario.epoch)))
            for t in run.output
        ]
        assert len(slots) == len(set(slots))


class TestDigitalHome:
    def test_accuracy_beats_chance(self, small_office):
        scenario = small_office
        processor = build_digital_home_processor(scenario)
        run = processor.run(
            until=scenario.duration,
            tick=0.5,
            sources=scenario.recorded_streams(),
        )
        ticks = scenario.ticks()
        detected = np.zeros(len(ticks), dtype=bool)
        for event in run.output:
            index = int(event.timestamp // 1.0)
            if index < len(detected):
                detected[index] = True
        truth = scenario.truth_series() > 0.5
        assert detection_accuracy(detected, truth) > 0.8

    def test_three_of_three_is_stricter(self, small_office):
        scenario = small_office
        recorded = scenario.recorded_streams()
        loose = build_digital_home_processor(scenario, threshold=1).run(
            until=scenario.duration, tick=0.5, sources=recorded
        )
        strict = build_digital_home_processor(scenario, threshold=3).run(
            until=scenario.duration, tick=0.5, sources=recorded
        )
        assert len(strict.output) < len(loose.output)

    def test_detection_tuples_carry_votes(self, small_office):
        scenario = small_office
        run = build_digital_home_processor(scenario).run(
            until=scenario.duration,
            tick=0.5,
            sources=scenario.recorded_streams(),
        )
        assert run.output
        event = run.output[0]
        assert event["event"] == "Person-in-room"
        assert event["votes"] >= 2

    def test_declarative_query6_matches_toolkit_detector(self, small_office):
        """The literal CQL Query 6 as Virtualize produces the same
        detection instants as the VotingDetector toolkit operator."""
        from repro.pipelines.digital_home import (
            build_declarative_home_processor,
        )

        scenario = small_office
        recorded = scenario.recorded_streams()

        def detection_instants(builder):
            run = builder(scenario).run(
                until=scenario.duration, tick=0.5, sources=recorded
            )
            return sorted({round(t.timestamp, 3) for t in run.output})

        toolkit = detection_instants(build_digital_home_processor)
        declarative = detection_instants(build_declarative_home_processor)
        assert toolkit == declarative

    def test_declarative_query6_output_shape(self, small_office):
        from repro.pipelines.digital_home import (
            build_declarative_home_processor,
        )

        run = build_declarative_home_processor(small_office).run(
            until=small_office.duration,
            tick=0.5,
            sources=small_office.recorded_streams(),
        )
        assert run.output
        assert run.output[0]["event"] == "Person-in-room"
