"""Differential harness: row ≡ columnar ≡ fused, kernel by kernel.

Three layers of equivalence proof, mirroring the sharding harness in
``test_shard_equivalence.py``:

1. **Kernel level** — every operator's ``on_column_batch`` must emit
   exactly the tuples its ``on_batch`` emits, for the same input rows,
   including operators that only have the materialize-and-delegate
   default.
2. **Dataflow level** — whole Fjord runs in ``row``, ``columnar`` and
   ``fused`` modes produce identical sink output and identical
   per-node flow counters (fusion expands its per-stage counters).
3. **Sharded level** — every backend × shard count × mode combination
   reproduces the sequential row run bit-for-bit.

Randomized inputs come from the same generators the sharding harness
uses (duplicate-heavy timestamps, key skew), via hypothesis when
installed and a seeded fallback otherwise; edge cases (empty batches,
single-tuple batches, mixed-schema unions) are pinned explicitly.
"""

from __future__ import annotations

import random

import pytest

from repro.streams.aggregates import AggregateSpec
from repro.streams.columnar import (
    AddFields,
    ColumnBatch,
    FieldCompare,
    SetStream,
)
from repro.streams.fjord import MODES, Fjord, FusedStatelessOp
from repro.streams.operators import (
    ChainOp,
    FilterOp,
    GroupKey,
    MapOp,
    SinkOp,
    StaticJoinOp,
    UnionOp,
    WindowedGroupByOp,
)
from repro.streams.shard import BACKENDS, run_sharded
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec
try:
    from tests.test_shard_equivalence import (
        SHARD_COUNTS,
        build_five_stage,
        build_stateless,
        make_trace,
        trace_ticks,
    )
except ImportError:  # pragma: no cover - direct file invocation
    from test_shard_equivalence import (
        SHARD_COUNTS,
        build_five_stage,
        build_stateless,
        make_trace,
        trace_ticks,
    )

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the test extras
    HAVE_HYPOTHESIS = False

from repro.streams import typedcols


@pytest.fixture(params=["typed", "list"])
def column_storage(request):
    """Run the differential under both column storage classes.

    ``typed`` lowers ``min_rows`` to 1 so even this suite's tiny
    batches get numpy-backed numeric columns (a no-op without numpy —
    the param then covers the fallback twice, which is still the
    correct behaviour to pin). ``list`` forces the pure-list fallback
    the no-numpy CI leg gets.
    """
    if request.param == "typed":
        previous = typedcols.set_typed_columns(True, 1)
    else:
        previous = typedcols.set_typed_columns(False)
    yield request.param
    typedcols.set_typed_columns(*previous)


# -- kernel-level differential -------------------------------------------------

#: name → zero-arg factory building a fresh operator (operators are
#: stateful; each mode must drive its own instance).
KERNELS = {
    "filter_lambda": lambda: FilterOp(lambda t: t["value"] < 30.0),
    "filter_field_compare": lambda: FilterOp(
        FieldCompare("value", "<", 30.0)
    ),
    "map_lambda": lambda: MapOp(
        lambda t: t.derive(values={"doubled": t["value"] * 2.0})
    ),
    "map_dropping": lambda: MapOp(
        lambda t: t if t["value"] >= 10.0 else None
    ),
    "map_fanout": lambda: MapOp(lambda t: [t, t.derive(timestamp=t.timestamp)]),
    "map_add_fields": lambda: MapOp(AddFields({"granule": "g0", "lvl": 3})),
    "map_set_stream": lambda: MapOp(SetStream("renamed")),
    "union_plain": lambda: UnionOp(),
    "union_relabel": lambda: UnionOp(output_stream="merged"),
    "static_join_semi": lambda: StaticJoinOp(
        table=[{"spatial_granule": "granule0"}, {"spatial_granule": "granule2"}],
        on=lambda t, row: t.get("spatial_granule")
        == row["spatial_granule"],
        how="semi",
    ),
    "windowed_group_by": lambda: WindowedGroupByOp(
        WindowSpec.range_by(3.0),
        keys=[GroupKey("spatial_granule")],
        aggregates=[AggregateSpec("count", output="n")],
    ),
    "windowed_group_by_custom_key": lambda: WindowedGroupByOp(
        WindowSpec.range_by(3.0),
        keys=[GroupKey("bucket", extractor=lambda t: int(t["value"]) // 10)],
        aggregates=[AggregateSpec("count", output="n")],
    ),
    "windowed_global": lambda: WindowedGroupByOp(
        WindowSpec.range_by(4.0),
        aggregates=[
            AggregateSpec("avg", argument=lambda t: t["value"], output="v")
        ],
    ),
    "chain": lambda: ChainOp(
        [
            FilterOp(FieldCompare("value", ">=", 5.0)),
            MapOp(AddFields({"tag": "ok"})),
            UnionOp(output_stream="chained"),
        ]
    ),
    "sink": lambda: SinkOp(),
    "fused": lambda: FusedStatelessOp(
        [
            ("a", FilterOp(lambda t: t["value"] < 40.0)),
            ("b", MapOp(SetStream("fused"))),
            ("c", UnionOp(output_stream="done")),
        ]
    ),
}


def drive_row(op, batches, ticks):
    """Row-mode reference: on_batch per batch, on_time per tick."""
    out = []
    for batch in batches:
        out.extend(op.on_batch(list(batch)))
    for tick in ticks:
        out.extend(op.on_time(tick))
    return out


def drive_columnar(op, batches, ticks):
    """Columnar twin: identical delivery through on_column_batch."""
    out = []
    for batch in batches:
        produced = op.on_column_batch(ColumnBatch.from_tuples(list(batch)))
        out.extend(produced.tuples())
    for tick in ticks:
        out.extend(op.on_time(tick))
    return out


def batches_from(sources, sizes=(0, 1, 3, 7)):
    """Slice a trace's rows into batches of mixed sizes (incl. empty)."""
    rows = sorted(
        (t for items in sources.values() for t in items),
        key=lambda t: t.timestamp,
    )
    batches, index, cycle = [], 0, 0
    while index < len(rows):
        size = sizes[cycle % len(sizes)]
        cycle += 1
        batches.append(rows[index:index + size])
        index += size
    batches.append([])  # trailing empty delivery
    return batches


def assert_kernel_equivalent(name, sources):
    factory = KERNELS[name]
    batches = batches_from(sources)
    ticks = trace_ticks(sources)
    row_op, col_op = factory(), factory()
    row_out = drive_row(row_op, batches, ticks)
    col_out = drive_columnar(col_op, batches, ticks)
    assert col_out == row_out, f"kernel {name!r} diverged"
    assert [t.stream for t in col_out] == [t.stream for t in row_out]
    assert [t.as_dict() for t in col_out] == [t.as_dict() for t in row_out]
    if isinstance(row_op, SinkOp):
        assert col_op.results == row_op.results


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_kernel(self, name, seed, column_storage):
        rng = random.Random(seed)
        sources = make_trace(rng, n_tuples=60, n_sources=2)
        assert_kernel_equivalent(name, sources)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_on_empty_and_singleton(self, name):
        factory = KERNELS[name]
        single = [
            StreamTuple(
                0.5, {"spatial_granule": "granule0", "value": 7.0, "seq": 0}
            )
        ]
        for batches in ([[]], [single], [[], single, []]):
            row_op, col_op = factory(), factory()
            assert drive_columnar(col_op, batches, [1.0, 2.0]) == drive_row(
                row_op, batches, [1.0, 2.0]
            )

    def test_mixed_schema_union_batches(self):
        """Union over streams with disjoint fields — the MISSING path."""
        rows_a = [
            StreamTuple(float(i), {"temp": 20.0 + i}, "motes") for i in range(4)
        ]
        rows_b = [
            StreamTuple(float(i) + 0.25, {"tag_id": f"T{i}"}, "rfid")
            for i in range(4)
        ]
        batches = [rows_a, rows_b, rows_a[:1] + rows_b[:1]]
        for name in ("union_plain", "union_relabel", "sink"):
            row_op, col_op = KERNELS[name](), KERNELS[name]()
            assert drive_columnar(col_op, batches, []) == drive_row(
                row_op, batches, []
            )

    def test_windowed_group_by_partial_key_column(self):
        """Rows missing the key field must fail identically in both modes."""
        from repro.errors import SchemaError

        rows = [
            StreamTuple(0.0, {"spatial_granule": "g", "value": 1.0}),
            StreamTuple(1.0, {"value": 2.0}),  # key field absent
        ]
        row_op, col_op = (
            KERNELS["windowed_group_by"](),
            KERNELS["windowed_group_by"](),
        )
        with pytest.raises(SchemaError) as row_err:
            row_op.on_batch(rows)
        with pytest.raises(SchemaError) as col_err:
            col_op.on_column_batch(ColumnBatch.from_tuples(rows))
        assert str(col_err.value) == str(row_err.value)


# -- dataflow-level differential -----------------------------------------------


def run_mode(build, sources, ticks, mode):
    fjord, sink = build(sources)
    fjord.run(ticks, mode=mode)
    return sink.results, fjord.stats()


def assert_modes_equivalent(build, sources, ticks):
    reference, ref_stats = run_mode(build, sources, ticks, "row")
    for mode in ("columnar", "fused"):
        output, stats = run_mode(build, sources, ticks, mode)
        assert output == reference, f"mode {mode!r} output diverged"
        assert [t.stream for t in output] == [t.stream for t in reference]
        assert stats == ref_stats, f"mode {mode!r} counters diverged"


class TestDataflowEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_five_stage(self, seed, column_storage):
        rng = random.Random(seed)
        sources = make_trace(rng, n_tuples=120)
        assert_modes_equivalent(
            build_five_stage, sources, trace_ticks(sources)
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_stateless(self, seed, column_storage):
        rng = random.Random(seed)
        sources = make_trace(rng, n_tuples=150, n_sources=3)
        assert_modes_equivalent(
            build_stateless, sources, trace_ticks(sources)
        )

    def test_empty_sources(self):
        assert_modes_equivalent(
            build_five_stage, {"src0": [], "src1": []}, [0.0, 1.0, 2.0]
        )

    def test_single_tuple_source(self):
        sources = {
            "src0": [
                StreamTuple(
                    0.5,
                    {"spatial_granule": "granule1", "value": 5.0, "seq": 0},
                    "src0",
                )
            ],
            "src1": [],
        }
        assert_modes_equivalent(build_five_stage, sources, [0.0, 1.0, 2.0])

    def test_duplicate_timestamps_heavy(self):
        rng = random.Random(5)
        sources = make_trace(rng, n_tuples=80, duplicate_rate=0.95)
        assert_modes_equivalent(
            build_five_stage, sources, trace_ticks(sources)
        )

    def test_fusion_collapses_stateless_run(self):
        """The stateless pipeline's filter→map run actually fuses, and
        its stats still report the original node names exactly."""
        rng = random.Random(7)
        sources = make_trace(rng, n_tuples=50)
        ticks = trace_ticks(sources)
        reference, ref_stats = run_mode(build_stateless, sources, ticks, "row")
        fjord, sink = build_stateless(sources)
        assert fjord.fuse() > 0  # at least one node eliminated
        fjord.run(ticks, mode="fused")
        assert sink.results == reference
        assert fjord.stats() == ref_stats

    def test_unknown_mode_rejected(self):
        from repro.errors import OperatorError

        fjord, _sink = build_stateless({"src0": []})
        with pytest.raises(OperatorError, match="unknown execution mode"):
            fjord.run([0.0], mode="simd")


# -- sharded differential ------------------------------------------------------


class TestShardedModes:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_mode_matrix(self, backend, mode):
        rng = random.Random(23)
        sources = make_trace(rng, n_tuples=90)
        ticks = trace_ticks(sources)
        reference, ref_stats = run_mode(
            build_five_stage, sources, ticks, "row"
        )
        for shards in SHARD_COUNTS:
            sharded = run_sharded(
                sources,
                build_five_stage,
                ticks,
                shards=shards,
                backend=backend,
                mode=mode,
            )
            assert sharded.output == reference, (backend, shards, mode)
            assert sharded.stats == ref_stats, (backend, shards, mode)


# -- property-based sweep ------------------------------------------------------

if HAVE_HYPOTHESIS:

    @st.composite
    def traces(draw):
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        n_tuples = draw(st.integers(min_value=0, max_value=60))
        n_keys = draw(st.integers(min_value=1, max_value=6))
        duplicate_rate = draw(st.sampled_from((0.0, 0.3, 0.9)))
        rng = random.Random(seed)
        return make_trace(
            rng,
            n_tuples=n_tuples,
            keys=tuple(f"k{i}" for i in range(n_keys)),
            duplicate_rate=duplicate_rate,
        )

    class TestPropertyBased:
        @settings(
            max_examples=25,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            sources=traces(),
            mode=st.sampled_from(("columnar", "fused")),
            shards=st.sampled_from(SHARD_COUNTS),
            backend=st.sampled_from(("serial", "threads")),
        )
        def test_modes_and_shards_equal_row(
            self, sources, mode, shards, backend
        ):
            ticks = trace_ticks(sources)
            reference, ref_stats = run_mode(
                build_five_stage, sources, ticks, "row"
            )
            output, stats = run_mode(build_five_stage, sources, ticks, mode)
            assert output == reference
            assert stats == ref_stats
            sharded = run_sharded(
                sources,
                build_five_stage,
                ticks,
                shards=shards,
                backend=backend,
                mode=mode,
            )
            assert sharded.output == reference
            assert sharded.stats == ref_stats

        @settings(
            max_examples=20,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            sources=traces(),
            name=st.sampled_from(sorted(KERNELS)),
        )
        def test_kernels_differentially(self, sources, name):
            assert_kernel_equivalent(name, sources)

else:  # pragma: no cover - exercised only without hypothesis installed

    class TestPropertyBased:
        @pytest.mark.parametrize("seed", range(25))
        def test_modes_and_shards_equal_row(self, seed):
            rng = random.Random(seed)
            sources = make_trace(
                rng,
                n_tuples=rng.randrange(0, 60),
                keys=tuple(f"k{i}" for i in range(rng.randrange(1, 7))),
                duplicate_rate=rng.choice((0.0, 0.3, 0.9)),
            )
            ticks = trace_ticks(sources)
            mode = rng.choice(("columnar", "fused"))
            reference, ref_stats = run_mode(
                build_five_stage, sources, ticks, "row"
            )
            output, stats = run_mode(build_five_stage, sources, ticks, mode)
            assert output == reference
            assert stats == ref_stats
            sharded = run_sharded(
                sources,
                build_five_stage,
                ticks,
                shards=rng.choice(SHARD_COUNTS),
                backend=rng.choice(("serial", "threads")),
                mode=mode,
            )
            assert sharded.output == reference
            assert sharded.stats == ref_stats

        @pytest.mark.parametrize("seed", range(20))
        def test_kernels_differentially(self, seed):
            rng = random.Random(seed)
            sources = make_trace(rng, n_tuples=rng.randrange(0, 60))
            assert_kernel_equivalent(rng.choice(sorted(KERNELS)), sources)
