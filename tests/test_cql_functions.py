"""Unit tests for the scalar-function registry."""

import pytest

from repro.cql.functions import get_function, is_function, register_function
from repro.errors import PlanError


class TestBuiltins:
    def test_abs(self):
        assert get_function("abs")(-3) == 3

    def test_null_propagation(self):
        assert get_function("abs")(None) is None
        assert get_function("least")(1, None) is None

    def test_coalesce(self):
        coalesce = get_function("coalesce")
        assert coalesce(None, None, 3) == 3
        assert coalesce(None) is None
        assert coalesce(0, 1) == 0  # zero is not NULL

    def test_ifnull(self):
        assert get_function("ifnull")(None, 9) == 9
        assert get_function("ifnull")(4, 9) == 4

    def test_nullif(self):
        assert get_function("nullif")(3, 3) is None
        assert get_function("nullif")(3, 4) == 3

    def test_least_greatest(self):
        assert get_function("least")(3, 1, 2) == 1
        assert get_function("greatest")(3, 1, 2) == 3

    def test_round_floor_ceil(self):
        assert get_function("round")(2.6) == 3
        assert get_function("floor")(2.6) == 2
        assert get_function("ceil")(2.1) == 3

    def test_sign(self):
        sign = get_function("sign")
        assert (sign(-5), sign(0), sign(5)) == (-1, 0, 1)

    def test_string_functions(self):
        assert get_function("lower")("AbC") == "abc"
        assert get_function("upper")("abc") == "ABC"
        assert get_function("length")("abcd") == 4
        assert get_function("concat")("a", None, "b") == "ab"

    def test_math_functions(self):
        assert get_function("sqrt")(9.0) == 3.0
        assert get_function("power")(2, 10) == 1024
        assert get_function("mod")(7, 3) == 1


class TestRegistry:
    def test_case_insensitive_lookup(self):
        assert get_function("COALESCE") is get_function("coalesce")

    def test_unknown_function(self):
        with pytest.raises(PlanError) as err:
            get_function("no_such_fn")
        assert "no_such_fn" in str(err.value)

    def test_is_function(self):
        assert is_function("abs")
        assert not is_function("count_of_chickens")

    def test_register_udf_and_use_in_query(self):
        register_function("fahrenheit_test", lambda c: c * 9 / 5 + 32)
        from repro.cql import compile_query
        from repro.streams.tuples import StreamTuple

        query = compile_query(
            "SELECT fahrenheit_test(temp) AS f FROM s"
        )
        out = query.run(
            {"s": [StreamTuple(0.0, {"temp": 100.0})]}, [0.0]
        )
        assert out[0]["f"] == 212.0
