"""Unit tests for the Point and Smooth toolkit operators."""

import pytest

from repro.core.granules import TemporalGranule
from repro.core.operators.point_ops import (
    convert_field,
    ghost_filter,
    range_filter,
    whitelist,
)
from repro.core.operators.smooth_ops import (
    event_smoother,
    presence_smoother,
    sliding_average,
)
from repro.core.stages import StageContext, StageKind
from repro.errors import PipelineError
from repro.streams.tuples import StreamTuple


def ctx(kind=StageKind.SMOOTH, granule=None):
    return StageContext(kind, temporal_granule=granule)


def tup(ts, **fields):
    return StreamTuple(ts, fields, "s")


def drive(op, items, ticks):
    out = []
    items = sorted(items, key=lambda t: t.timestamp)
    index = 0
    for tick in ticks:
        while index < len(items) and items[index].timestamp <= tick + 1e-9:
            out.extend(op.on_tuple(items[index]))
            index += 1
        out.extend(op.on_time(tick))
    return out


class TestPointOps:
    def test_range_filter_high(self):
        op = range_filter("temp", high=50).make(ctx(StageKind.POINT))
        assert op.on_tuple(tup(0, temp=30)) != []
        assert op.on_tuple(tup(0, temp=50)) == []  # strict, as in Query 4
        assert op.on_tuple(tup(0, temp=80)) == []

    def test_range_filter_low(self):
        op = range_filter("temp", low=0).make(ctx(StageKind.POINT))
        assert op.on_tuple(tup(0, temp=-5)) == []
        assert op.on_tuple(tup(0, temp=5)) != []

    def test_range_filter_drops_missing_field(self):
        op = range_filter("temp", high=50).make(ctx(StageKind.POINT))
        assert op.on_tuple(tup(0, other=1)) == []

    def test_range_filter_needs_a_bound(self):
        with pytest.raises(PipelineError):
            range_filter("temp")

    def test_whitelist(self):
        op = whitelist("tag_id", ["a", "b"]).make(ctx(StageKind.POINT))
        assert op.on_tuple(tup(0, tag_id="a")) != []
        assert op.on_tuple(tup(0, tag_id="zzz")) == []

    def test_ghost_filter(self):
        op = ghost_filter().make(ctx(StageKind.POINT))
        assert op.on_tuple(tup(0, tag_id="ghost_r0_1")) == []
        assert op.on_tuple(tup(0, tag_id="s0_01")) != []

    def test_convert_field_in_place(self):
        stage = convert_field("temp", lambda c: c * 9 / 5 + 32)
        op = stage.make(ctx(StageKind.POINT))
        assert op.on_tuple(tup(0, temp=100.0))[0]["temp"] == 212.0

    def test_convert_field_new_output(self):
        stage = convert_field("temp", lambda c: c + 1, output="temp_adj")
        out = stage.make(ctx(StageKind.POINT)).on_tuple(tup(0, temp=1.0))
        assert out[0]["temp"] == 1.0 and out[0]["temp_adj"] == 2.0

    def test_convert_passes_missing_field_through(self):
        stage = convert_field("temp", lambda c: c + 1)
        out = stage.make(ctx(StageKind.POINT)).on_tuple(tup(0, other=1))
        assert out[0]["other"] == 1


class TestPresenceSmoother:
    def test_interpolates_across_window(self):
        op = presence_smoother(window=5.0).make(ctx())
        out = drive(op, [tup(0.0, tag_id="a", spatial_granule="g")],
                    [0.0, 3.0, 5.0, 6.0])
        assert [t.timestamp for t in out] == [0.0, 3.0, 5.0]

    def test_count_field(self):
        op = presence_smoother(window=5.0).make(ctx())
        items = [tup(0.0, tag_id="a", spatial_granule="g"),
                 tup(1.0, tag_id="a", spatial_granule="g")]
        out = drive(op, items, [1.0])
        assert out[0]["count"] == 2

    def test_carries_spatial_granule(self):
        op = presence_smoother(window=5.0).make(ctx())
        out = drive(op, [tup(0.0, tag_id="a", spatial_granule="shelf0")], [0.0])
        assert out[0]["spatial_granule"] == "shelf0"

    def test_window_defaults_to_granule(self):
        op = presence_smoother().make(ctx(granule=TemporalGranule(2.0)))
        out = drive(op, [tup(0.0, tag_id="a", spatial_granule="g")],
                    [0.0, 2.0, 3.0])
        assert [t.timestamp for t in out] == [0.0, 2.0]

    def test_requires_window_or_granule(self):
        with pytest.raises(PipelineError):
            presence_smoother().make(ctx())


class TestSlidingAverage:
    def test_per_device_average(self):
        op = sliding_average(window=10.0, value_field="temp").make(ctx())
        items = [
            tup(0.0, mote_id="m1", temp=10.0, spatial_granule="g"),
            tup(0.0, mote_id="m2", temp=30.0, spatial_granule="g"),
            tup(5.0, mote_id="m1", temp=20.0, spatial_granule="g"),
        ]
        out = drive(op, items, [5.0])
        by_mote = {t["mote_id"]: t["temp"] for t in out}
        assert by_mote == {"m1": 15.0, "m2": 30.0}

    def test_masks_lost_readings_within_window(self):
        op = sliding_average(window=30.0, value_field="temp").make(ctx())
        items = [tup(0.0, mote_id="m1", temp=20.0, spatial_granule="g")]
        out = drive(op, items, [0.0, 10.0, 20.0, 30.0, 40.0])
        assert [t.timestamp for t in out] == [0.0, 10.0, 20.0, 30.0]

    def test_reading_count_emitted(self):
        op = sliding_average(window=10.0).make(ctx())
        items = [tup(0.0, mote_id="m", temp=1.0, spatial_granule="g"),
                 tup(1.0, mote_id="m", temp=2.0, spatial_granule="g")]
        out = drive(op, items, [1.0])
        assert out[0]["readings"] == 2

    def test_output_field_rename(self):
        op = sliding_average(
            window=10.0, value_field="temp", output_field="temp_smooth"
        ).make(ctx())
        out = drive(op, [tup(0.0, mote_id="m", temp=5.0, spatial_granule="g")],
                    [0.0])
        assert out[0]["temp_smooth"] == 5.0

    def test_uses_expanded_granule_window(self):
        granule = TemporalGranule("5 min", smoothing_window="30 min")
        op = sliding_average().make(ctx(granule=granule))
        items = [tup(0.0, mote_id="m", temp=1.0, spatial_granule="g")]
        out = drive(op, items, [0.0, 1500.0, 1800.0, 2100.0])
        assert [t.timestamp for t in out] == [0.0, 1500.0, 1800.0]


class TestEventSmoother:
    def test_interpolates_on_events(self):
        op = event_smoother(window=10.0).make(ctx())
        items = [tup(0.0, value="ON", sensor_id="x1", spatial_granule="g")]
        out = drive(op, items, [0.0, 5.0, 10.0, 11.0])
        assert [t.timestamp for t in out] == [0.0, 5.0, 10.0]
        assert all(t["value"] == "ON" for t in out)

    def test_ignores_non_on_values(self):
        op = event_smoother(window=10.0).make(ctx())
        items = [tup(0.0, value="OFF", sensor_id="x1", spatial_granule="g")]
        assert drive(op, items, [0.0]) == []

    def test_event_count_carried(self):
        op = event_smoother(window=10.0).make(ctx())
        items = [
            tup(0.0, value="ON", sensor_id="x1", spatial_granule="g"),
            tup(1.0, value="ON", sensor_id="x1", spatial_granule="g"),
        ]
        out = drive(op, items, [1.0])
        assert out[0]["events"] == 2
