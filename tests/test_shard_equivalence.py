"""Differential test harness for the sharded execution engine.

The parallel rewrite's whole risk is correctness, so every test here is
an equivalence proof by construction: identical inputs are fed to the
single-threaded Fjord and to every sharded backend at several shard
counts, and the *ordered* outputs, per-node flow counters and
punctuation behavior must match bit-for-bit.

Coverage:

- randomized traces (seeded generators, plus hypothesis when installed)
  with duplicated timestamps, empty shards and single-key skew;
- pipelines exercising all five ESP stages (Point, Smooth, Merge,
  Arbitrate, Virtualize);
- the paper's RFID shelf and mote scenario pipelines end-to-end.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import OperatorError
from repro.streams.aggregates import AggregateSpec
from repro.streams.fjord import Fjord
from repro.streams.operators import (
    FilterOp,
    GroupKey,
    MapOp,
    UnionOp,
    WindowedGroupByOp,
)
from repro.streams.shard import (
    BACKENDS,
    merge_outputs,
    merge_stats,
    partition_sources,
    run_shard_jobs,
    run_sharded,
    shard_of,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec

SHARD_COUNTS = (1, 2, 4, 7)

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the test extras
    HAVE_HYPOTHESIS = False


# -- trace generation ----------------------------------------------------------

KEYS = tuple(f"granule{i}" for i in range(9))


def make_trace(
    rng: random.Random,
    n_tuples: int,
    n_sources: int = 2,
    keys: tuple = KEYS,
    duplicate_rate: float = 0.4,
) -> dict[str, list[StreamTuple]]:
    """Random timestamp-sorted sources with frequent duplicate stamps."""
    sources: dict[str, list[StreamTuple]] = {}
    for s in range(n_sources):
        now = 0.0
        items = []
        for i in range(n_tuples):
            if rng.random() > duplicate_rate:
                now += rng.choice((0.25, 0.5, 1.0, 1.75))
            items.append(
                StreamTuple(
                    now,
                    {
                        "spatial_granule": rng.choice(keys),
                        "value": round(rng.uniform(0.0, 50.0), 3),
                        "seq": i,
                    },
                    f"src{s}",
                )
            )
        sources[f"src{s}"] = items
    return sources


def trace_ticks(sources, period: float = 1.0) -> list[float]:
    horizon = max(
        (items[-1].timestamp for items in sources.values() if items),
        default=0.0,
    )
    return [i * period for i in range(int(horizon / period) + 2)]


# -- pipelines under test ------------------------------------------------------


def build_five_stage(sources):
    """A pipeline exercising all five ESP stage shapes in one dataflow.

    Point (filter) → Smooth (per-key windowed count) → Merge (per-key
    windowed average) → Arbitrate-style pass (map re-stamp) →
    Virtualize (union rename) → sink.
    """
    fjord = Fjord()
    for name, items in sources.items():
        fjord.add_source(name, items)
    fjord.add_operator(
        "point",
        FilterOp(lambda t: t["value"] < 48.0),
        inputs=list(sources),
    )
    fjord.add_operator(
        "smooth",
        WindowedGroupByOp(
            WindowSpec.range_by(3.0),
            keys=[GroupKey("spatial_granule")],
            aggregates=[
                AggregateSpec("count", output="count"),
                AggregateSpec(
                    "avg", argument=lambda t: t["value"], output="value"
                ),
            ],
        ),
        inputs=["point"],
    )
    fjord.add_operator(
        "merge",
        WindowedGroupByOp(
            WindowSpec.range_by(5.0),
            keys=[GroupKey("spatial_granule")],
            aggregates=[
                AggregateSpec(
                    "avg", argument=lambda t: t["value"], output="value"
                ),
                AggregateSpec("sum", argument=lambda t: t["count"], output="n"),
            ],
        ),
        inputs=["smooth"],
    )
    fjord.add_operator(
        "arbitrate",
        MapOp(lambda t: t.derive(values={"attributed": True})),
        inputs=["merge"],
    )
    fjord.add_operator(
        "virtualize", UnionOp(output_stream="cleaned"), inputs=["arbitrate"]
    )
    sink = fjord.add_sink("out", inputs=["virtualize"])
    return fjord, sink


def build_stateless(sources):
    """Filter + map only — per-tuple outputs keep source timestamps."""
    fjord = Fjord()
    for name, items in sources.items():
        fjord.add_source(name, items)
    fjord.add_operator(
        "f", FilterOp(lambda t: t["value"] >= 10.0), inputs=list(sources)
    )
    fjord.add_operator(
        "m",
        MapOp(lambda t: t.derive(values={"scaled": t["value"] * 2.0})),
        inputs=["f"],
    )
    sink = fjord.add_sink("out", inputs=["m"])
    return fjord, sink


PIPELINES = {
    "five_stage": build_five_stage,
    "stateless": build_stateless,
}


def run_sequential(build, sources, ticks):
    fjord, sink = build(sources)
    fjord.run(ticks)
    return sink.results, fjord.stats()


def canonical_per_tick(output, ticks):
    """Sequential reference order: per tick, stable-sorted by shard key.

    For the windowed pipelines the sequential emission is already
    key-sorted per tick, so this is the identity there; the stateless
    pipeline interleaves sources per tick, which the sharded merge
    canonicalizes by key.
    """
    # Outputs arrive tick-by-tick in timestamp order of emission; group
    # them by the tick that emitted them (timestamps are <= tick).
    out = []
    index = 0
    for tick in ticks:
        bucket = []
        while index < len(output) and output[index].timestamp <= tick + 1e-9:
            bucket.append(output[index])
            index += 1
        bucket.sort(key=lambda t: str(t.get("spatial_granule")))
        out.extend(bucket)
    return out


def assert_equivalent(build, sources, ticks, expect_order=None):
    """Assert every backend × shard count reproduces the sequential run."""
    seq_output, seq_stats = run_sequential(build, sources, ticks)
    reference = seq_output if expect_order is None else expect_order(seq_output)
    for backend in BACKENDS:
        for shards in SHARD_COUNTS:
            sharded = run_sharded(
                sources,
                build,
                ticks,
                key="spatial_granule",
                shards=shards,
                backend=backend,
            )
            assert sharded.output == reference, (
                f"output mismatch: backend={backend} shards={shards}"
            )
            assert sharded.stats == seq_stats, (
                f"counter mismatch: backend={backend} shards={shards}"
            )
            # Punctuation behavior: windowed emissions are stamped at
            # tick times and never exceed the final tick.
            if sharded.output:
                assert max(t.timestamp for t in sharded.output) <= ticks[-1] + 1e-9
            assert sum(sharded.tuples_per_shard) == sum(
                len(items) for items in sources.values()
            )


# -- randomized differential tests ---------------------------------------------


class TestRandomizedTraces:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_five_stage_pipeline(self, seed):
        rng = random.Random(seed)
        sources = make_trace(rng, n_tuples=120)
        assert_equivalent(build_five_stage, sources, trace_ticks(sources))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_stateless_pipeline(self, seed):
        rng = random.Random(seed)
        sources = make_trace(rng, n_tuples=150, n_sources=3)
        assert_equivalent(
            build_stateless,
            sources,
            trace_ticks(sources),
            expect_order=lambda out: canonical_per_tick(
                out, trace_ticks(sources)
            ),
        )

    def test_single_key_skew(self):
        """All tuples on one key: N-1 shards run empty, output unchanged."""
        rng = random.Random(99)
        sources = make_trace(rng, n_tuples=100, keys=("lonely",))
        seq_output, seq_stats = run_sequential(
            build_five_stage, sources, trace_ticks(sources)
        )
        sharded = run_sharded(
            sources,
            build_five_stage,
            trace_ticks(sources),
            shards=4,
            backend="serial",
        )
        assert sharded.output == seq_output
        assert sharded.stats == seq_stats
        loaded = [n for n in sharded.tuples_per_shard if n > 0]
        assert len(loaded) == 1  # every tuple landed on one shard

    def test_empty_sources(self):
        sources = {"src0": [], "src1": []}
        assert_equivalent(build_five_stage, sources, [0.0, 1.0, 2.0])

    def test_duplicate_timestamps_heavy(self):
        rng = random.Random(5)
        sources = make_trace(rng, n_tuples=80, duplicate_rate=0.95)
        assert_equivalent(build_five_stage, sources, trace_ticks(sources))


if HAVE_HYPOTHESIS:

    @st.composite
    def traces(draw):
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        n_tuples = draw(st.integers(min_value=0, max_value=60))
        n_keys = draw(st.integers(min_value=1, max_value=6))
        duplicate_rate = draw(
            st.sampled_from((0.0, 0.3, 0.9))
        )
        rng = random.Random(seed)
        return make_trace(
            rng,
            n_tuples=n_tuples,
            keys=tuple(f"k{i}" for i in range(n_keys)),
            duplicate_rate=duplicate_rate,
        )

    class TestPropertyBased:
        @settings(
            max_examples=25,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            sources=traces(),
            shards=st.sampled_from(SHARD_COUNTS),
            backend=st.sampled_from(("serial", "threads")),
        )
        def test_sharded_equals_sequential(self, sources, shards, backend):
            ticks = trace_ticks(sources)
            seq_output, seq_stats = run_sequential(
                build_five_stage, sources, ticks
            )
            sharded = run_sharded(
                sources,
                build_five_stage,
                ticks,
                shards=shards,
                backend=backend,
            )
            assert sharded.output == seq_output
            assert sharded.stats == seq_stats

else:  # pragma: no cover - exercised only without hypothesis installed

    class TestPropertyBased:
        @pytest.mark.parametrize("seed", range(25))
        def test_sharded_equals_sequential(self, seed):
            rng = random.Random(seed)
            sources = make_trace(
                rng,
                n_tuples=rng.randrange(0, 60),
                keys=tuple(f"k{i}" for i in range(rng.randrange(1, 7))),
                duplicate_rate=rng.choice((0.0, 0.3, 0.9)),
            )
            ticks = trace_ticks(sources)
            seq_output, seq_stats = run_sequential(
                build_five_stage, sources, ticks
            )
            sharded = run_sharded(
                sources,
                build_five_stage,
                ticks,
                shards=rng.choice(SHARD_COUNTS),
                backend=rng.choice(("serial", "threads")),
            )
            assert sharded.output == seq_output
            assert sharded.stats == seq_stats


# -- backend invariance --------------------------------------------------------


class TestBackendInvariance:
    def test_all_backends_identical_outputs(self):
        """serial/threads/processes agree bit-for-bit at every N."""
        rng = random.Random(17)
        sources = make_trace(rng, n_tuples=100)
        ticks = trace_ticks(sources)
        reference = None
        for backend in BACKENDS:
            for shards in SHARD_COUNTS:
                run = run_sharded(
                    sources,
                    build_five_stage,
                    ticks,
                    shards=shards,
                    backend=backend,
                )
                if reference is None:
                    reference = run.output
                assert run.output == reference, (backend, shards)

    def test_worker_failure_surfaces(self):
        def broken(_sources):
            raise RuntimeError("boom in shard builder")

        with pytest.raises(OperatorError, match="boom in shard builder"):
            run_sharded(
                {"s": [StreamTuple(0.0, {"spatial_granule": "a"})]},
                broken,
                [0.0],
                shards=2,
                backend="processes",
            )


# -- engine unit behavior ------------------------------------------------------


class TestPartitioning:
    def test_stable_assignment(self):
        assert shard_of("shelf0", 4) == shard_of("shelf0", 4)

    def test_every_shard_lists_every_source(self):
        rng = random.Random(3)
        sources = make_trace(rng, n_tuples=30)
        for slices in partition_sources(sources, "spatial_granule", 5):
            assert set(slices) == set(sources)

    def test_partition_preserves_order_and_multiset(self):
        rng = random.Random(4)
        sources = make_trace(rng, n_tuples=50)
        shards = partition_sources(sources, "spatial_granule", 3)
        for name, items in sources.items():
            recombined = [t for slices in shards for t in slices[name]]
            assert sorted(recombined, key=lambda t: (t.timestamp, t["seq"])) == items
            for slices in shards:
                seqs = [t["seq"] for t in slices[name]]
                assert seqs == sorted(seqs)  # order preserved per slice

    def test_callable_key_requires_order_key(self):
        with pytest.raises(OperatorError, match="order_key"):
            run_sharded(
                {"s": []}, build_stateless, [0.0], key=lambda name, t: name
            )

    def test_merge_outputs_is_tickwise(self):
        from repro.streams.shard import ShardResult

        a = ShardResult(
            [[StreamTuple(0.0, {"k": "a"})], [StreamTuple(1.0, {"k": "a"})]],
            {},
        )
        b = ShardResult(
            [[StreamTuple(0.0, {"k": "b"})], [StreamTuple(1.0, {"k": "b"})]],
            {},
        )
        merged = merge_outputs([b, a], order_key=lambda t: str(t.get("k")))
        assert [(t.timestamp, t["k"]) for t in merged] == [
            (0.0, "a"),
            (0.0, "b"),
            (1.0, "a"),
            (1.0, "b"),
        ]

    def test_merge_stats_sums(self):
        from repro.streams.shard import ShardResult

        a = ShardResult([], {"n": (2, 1)})
        b = ShardResult([], {"n": (3, 4), "m": (1, 0)})
        assert merge_stats([a, b]) == {"n": (5, 5), "m": (1, 0)}

    def test_run_shard_jobs_rejects_unknown_backend(self):
        with pytest.raises(OperatorError, match="unknown backend"):
            run_shard_jobs([], [0.0], backend="gpu")


# -- the paper's scenario pipelines --------------------------------------------


@pytest.fixture(scope="module")
def shelf_case():
    from repro.pipelines.rfid_shelf import build_shelf_processor
    from repro.scenarios.shelf import ShelfScenario

    scenario = ShelfScenario(duration=40.0, seed=11)
    sources = scenario.recorded_streams()

    def run(**kwargs):
        processor = build_shelf_processor(scenario, "smooth+arbitrate")
        return processor.run(
            until=scenario.duration,
            tick=scenario.poll_period,
            sources=sources,
            **kwargs,
        )

    return run


@pytest.fixture(scope="module")
def mote_case():
    from repro.pipelines.sensornet import build_redwood_processor
    from repro.scenarios.redwood import RedwoodScenario

    scenario = RedwoodScenario(duration=0.1 * 86400.0, n_groups=4, seed=11)
    sources = scenario.recorded_streams()

    def run(**kwargs):
        processor = build_redwood_processor(scenario)
        # Default tick (the motes' sample period): one reading per device
        # per punctuation, the ordering contract group-scope Merge needs.
        return processor.run(
            until=scenario.duration, sources=sources, **kwargs
        )

    return run


class TestScenarioPipelines:
    """End-to-end equivalence on the paper's RFID and mote deployments.

    The RFID pipeline shards on ``tag_id`` (Arbitrate resolves conflicts
    *across* granules but never across tags); the mote pipeline shards on
    ``spatial_granule`` (Merge aggregates within a proximity group).
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_rfid_shelf_equivalence(self, shelf_case, backend, shards):
        sequential = shelf_case()
        sharded = shelf_case(
            shards=shards, backend=backend, shard_key="tag_id"
        )
        assert sharded.output == sequential.output
        assert sharded.stats == sequential.stats

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_mote_equivalence(self, mote_case, backend, shards):
        sequential = mote_case()
        sharded = mote_case(shards=shards, backend=backend)
        assert sharded.output == sequential.output
        assert sharded.stats == sequential.stats

    def test_taps_rejected_on_sharded_runs(self, shelf_case):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError, match="taps"):
            shelf_case(shards=2, taps=("raw",))
