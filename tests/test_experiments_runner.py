"""Tests for the one-shot experiment runner and its report formatting."""

import pytest

from repro.experiments.runner import PAPER_VALUES, format_report, run_all


class TestRunAllFast:
    @pytest.fixture(scope="class")
    def results(self):
        return run_all(fast=True)

    def test_all_artifacts_present(self, results):
        assert set(results) == {
            "figure3",
            "figure5",
            "figure6",
            "figure7",
            "section52",
            "figure9",
        }

    def test_fast_mode_preserves_shape_findings(self, results):
        errors = results["figure3"]["errors"]
        assert errors["smooth_arbitrate"] < errors["smooth"] < errors["raw"]
        assert results["figure9"]["accuracy"] > 0.8
        sec52 = results["section52"]
        assert sec52["raw_yield"] < sec52["smooth_yield"] < sec52["merge_yield"]

    def test_report_renders_every_section(self, results):
        report = format_report(results)
        for heading in (
            "Figure 3",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Section 5.2",
            "Figure 9",
        ):
            assert heading in report

    def test_report_shows_paper_values(self, results):
        report = format_report(results)
        assert f"{PAPER_VALUES['fig3_raw_error']:.2f}" in report
        assert f"{PAPER_VALUES['fig9_accuracy']:.2f}" in report

    def test_report_marks_best_granule(self, results):
        assert "<-- best" in format_report(results)


class TestPaperValues:
    def test_reference_values_frozen(self):
        # These are transcription-of-the-paper constants; a change here
        # is a documentation bug, not a tuning knob.
        assert PAPER_VALUES["fig3_raw_error"] == 0.41
        assert PAPER_VALUES["fig3_smooth_error"] == 0.24
        assert PAPER_VALUES["fig3_arbitrate_error"] == 0.04
        assert PAPER_VALUES["sec52_raw_yield"] == 0.40
        assert PAPER_VALUES["sec52_smooth_yield"] == 0.77
        assert PAPER_VALUES["sec52_merge_yield"] == 0.92
        assert PAPER_VALUES["fig9_accuracy"] == 0.92
