"""Unit tests for join plans: Query 5's self-join and Query 6's combine."""

from repro.cql import compile_query
from repro.streams.tuples import StreamTuple


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


class TestInstantJoin:
    QUERY5 = """
        SELECT spatial_granule, AVG(temp)
        FROM merge_input s [Range By '5 min'],
             (SELECT spatial_granule, avg(temp) as avg,
                     stdev(temp) as stdev
              FROM merge_input [Range By '5 min']) as a
        WHERE a.spatial_granule = s.spatial_granule AND
              s.temp < a.avg + a.stdev AND
              s.temp > a.avg - a.stdev
        GROUP BY spatial_granule
    """

    def test_outlier_rejected_from_average(self):
        rows = [
            tup(0.0, "merge_input", spatial_granule="g", temp=20.0),
            tup(0.0, "merge_input", spatial_granule="g", temp=21.0),
            tup(0.0, "merge_input", spatial_granule="g", temp=100.0),
        ]
        out = compile_query(self.QUERY5).run({"merge_input": rows}, [0.0])
        assert len(out) == 1
        assert out[0]["avg_temp"] == 20.5

    def test_granules_independent(self):
        rows = [
            tup(0.0, "merge_input", spatial_granule="g", temp=20.0),
            tup(0.0, "merge_input", spatial_granule="g", temp=21.0),
            tup(0.0, "merge_input", spatial_granule="g", temp=100.0),
            tup(0.0, "merge_input", spatial_granule="h", temp=5.0),
            tup(0.0, "merge_input", spatial_granule="h", temp=6.0),
            tup(0.0, "merge_input", spatial_granule="h", temp=7.0),
        ]
        out = compile_query(self.QUERY5).run({"merge_input": rows}, [0.0])
        by_granule = {t["spatial_granule"]: t["avg_temp"] for t in out}
        assert by_granule["g"] == 20.5
        assert by_granule["h"] == 6.0

    def test_all_identical_readings_rejected_by_strict_band(self):
        # stdev = 0 -> strict inequalities reject everything; the paper's
        # <-and-> band is empty for identical readings. This documents the
        # literal Query 5 semantics (the toolkit operator uses <=).
        rows = [
            tup(0.0, "merge_input", spatial_granule="g", temp=20.0),
            tup(0.0, "merge_input", spatial_granule="g", temp=20.0),
        ]
        out = compile_query(self.QUERY5).run({"merge_input": rows}, [0.0])
        assert out == []

    def test_two_distinct_streams_join(self):
        query = compile_query(
            "SELECT l.v AS lv, r.v AS rv "
            "FROM left_s l [Range By 'NOW'], right_s r [Range By 'NOW'] "
            "WHERE l.k = r.k"
        )
        out = query.run(
            {
                "left_s": [tup(0.0, "left_s", k=1, v="L")],
                "right_s": [
                    tup(0.0, "right_s", k=1, v="R"),
                    tup(0.0, "right_s", k=2, v="X"),
                ],
            },
            [0.0],
        )
        assert len(out) == 1
        assert (out[0]["lv"], out[0]["rv"]) == ("L", "R")


class TestOuterCombine:
    QUERY6 = """
        SELECT 'Person-in-room'
        FROM (SELECT 1 as cnt
              FROM sensors_input [Range By 'NOW']
              WHERE sensors.noise > 525) as sensor_count,
             (SELECT 1 as cnt
              FROM rfid_input [Range By 'NOW']
              HAVING count(distinct tag_id) > 1) as rfid_count,
             (SELECT 1 as cnt
              FROM motion_input [Range By 'NOW']
              WHERE value = 'ON') as motion_count,
        WHERE coalesce(sensor_count.cnt, 0) +
              coalesce(rfid_count.cnt, 0) +
              coalesce(motion_count.cnt, 0) >= 2
    """

    def feeds(self, noise=False, tags=0, motion=False):
        return {
            "sensors_input": (
                [tup(0.0, "sensors_input", noise=600)] if noise else []
            ),
            "rfid_input": [
                tup(0.0, "rfid_input", tag_id=f"t{i}") for i in range(tags)
            ],
            "motion_input": (
                [tup(0.0, "motion_input", value="ON")] if motion else []
            ),
        }

    def test_two_votes_fire(self):
        out = compile_query(self.QUERY6).run(
            self.feeds(noise=True, tags=2), [0.0]
        )
        assert len(out) >= 1

    def test_one_vote_does_not_fire(self):
        assert compile_query(self.QUERY6).run(
            self.feeds(noise=True), [0.0]
        ) == []

    def test_single_tag_is_not_a_vote(self):
        # count(distinct tag_id) > 1 needs at least two badge tags.
        assert compile_query(self.QUERY6).run(
            self.feeds(noise=True, tags=1), [0.0]
        ) == []

    def test_motion_and_rfid_fire_without_sound(self):
        out = compile_query(self.QUERY6).run(
            self.feeds(tags=2, motion=True), [0.0]
        )
        assert len(out) >= 1

    def test_all_three_fire(self):
        out = compile_query(self.QUERY6).run(
            self.feeds(noise=True, tags=3, motion=True), [0.0]
        )
        assert len(out) >= 1

    def test_nothing_at_quiet_instant(self):
        assert compile_query(self.QUERY6).run(self.feeds(), [0.0]) == []

    def test_paper_literal_query6_parses(self):
        # The paper's exact text (without coalesce) must parse; with the
        # outer combine, missing sides become NULL so the sum is NULL and
        # the detector (correctly) stays silent unless all three vote.
        literal = """
            SELECT 'Person-in-room'
            FROM (SELECT 1 as cnt
                  FROM sensors_input [Range By 'NOW']
                  WHERE sensors.noise > 525) as sensor_count,
                 (SELECT 1 as cnt
                  FROM rfid_input [Range By 'NOW']
                  HAVING count(distinct tag_id) > 1)
                  as rfid_count,
                 (SELECT 1 as cnt
                  FROM motion_input [Range By 'NOW']
                  WHERE value = 'ON') as motion_count,
            WHERE sensor_count.cnt +
                  rfid_count.cnt +
                  motion_count.cnt >= 2
        """
        query = compile_query(literal)
        assert sorted(query.input_streams) == [
            "motion_input",
            "rfid_input",
            "sensors_input",
        ]
        out = compile_query(literal).run(
            self.feeds(noise=True, tags=2, motion=True), [0.0]
        )
        assert len(out) >= 1  # all three present -> sum defined -> fires
