"""Unit tests for aggregate functions and the registry."""

import math

import pytest

from repro.errors import AggregateError
from repro.streams.aggregates import (
    Aggregate,
    AggregateSpec,
    Avg,
    Count,
    CountDistinct,
    First,
    Last,
    Mad,
    Max,
    Median,
    Min,
    Stdev,
    Sum,
    aggregate_names,
    get_aggregate,
    register_aggregate,
)
from repro.streams.tuples import StreamTuple


class TestBuiltins:
    def test_count_skips_none(self):
        assert Count.over([1, None, 2]) == 2

    def test_count_empty(self):
        assert Count.over([]) == 0

    def test_count_distinct(self):
        assert CountDistinct.over(["a", "a", "b", None]) == 2

    def test_sum(self):
        assert Sum.over([1, 2, 3.5]) == 6.5

    def test_sum_empty_is_none(self):
        assert Sum.over([]) is None

    def test_avg(self):
        assert Avg.over([1, 2, 3]) == 2.0

    def test_avg_empty_is_none(self):
        assert Avg.over([None, None]) is None

    def test_stdev_matches_sample_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        mean = sum(values) / len(values)
        expected = math.sqrt(
            sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        )
        assert Stdev.over(values) == pytest.approx(expected)

    def test_stdev_single_value_is_zero(self):
        assert Stdev.over([5.0]) == 0.0

    def test_stdev_empty_is_none(self):
        assert Stdev.over([]) is None

    def test_stdev_numerical_stability(self):
        # Large offset with tiny variance: naive sum-of-squares fails here.
        base = 1e9
        values = [base + v for v in (0.0, 0.1, 0.2)]
        assert Stdev.over(values) == pytest.approx(0.1, rel=1e-6)

    def test_min_max(self):
        assert Min.over([3, 1, 2]) == 1
        assert Max.over([3, 1, 2]) == 3
        assert Min.over([]) is None
        assert Max.over([None]) is None

    def test_median_odd_even(self):
        assert Median.over([3, 1, 2]) == 2
        assert Median.over([4, 1, 2, 3]) == 2.5
        assert Median.over([]) is None

    def test_mad(self):
        # values 1,2,3,4,100 -> median 3, deviations 2,1,0,1,97 -> MAD 1
        assert Mad.over([1, 2, 3, 4, 100]) == 1.0
        assert Mad.over([]) is None

    def test_first_last(self):
        assert First.over([None, "a", "b"]) == "a"
        assert Last.over(["a", "b", None]) == "b"
        assert First.over([]) is None


class TestRegistry:
    def test_get_by_name_case_insensitive(self):
        agg = get_aggregate("AVG")
        agg.add(2)
        agg.add(4)
        assert agg.result() == 3.0

    def test_stddev_alias(self):
        assert isinstance(get_aggregate("stddev"), Stdev)

    def test_unknown_name(self):
        with pytest.raises(AggregateError) as err:
            get_aggregate("frobnicate")
        assert "frobnicate" in str(err.value)

    def test_count_distinct_via_flag(self):
        agg = get_aggregate("count", distinct=True)
        for value in ("a", "a", "b"):
            agg.add(value)
        assert agg.result() == 2

    def test_distinct_wrapper_on_sum(self):
        agg = get_aggregate("sum", distinct=True)
        for value in (2, 2, 3):
            agg.add(value)
        assert agg.result() == 5

    def test_register_custom_aggregate(self):
        class Product(Aggregate):
            def __init__(self):
                self._product = 1.0
                self._any = False

            def add(self, value):
                if value is not None:
                    self._product *= value
                    self._any = True

            def result(self):
                return self._product if self._any else None

        register_aggregate("product_test", Product)
        assert "product_test" in aggregate_names()
        assert get_aggregate("product_test").__class__ is Product
        assert Product.over([2, 3, 4]) == 24.0

    def test_aggregate_names_contains_builtins(self):
        names = aggregate_names()
        assert {"count", "avg", "stdev", "min", "max"} <= names


class TestAggregateSpec:
    def test_evaluate_with_argument(self):
        rows = [StreamTuple(0, {"x": v}) for v in (1, 2, 3)]
        spec = AggregateSpec("avg", argument=lambda t: t["x"], output="m")
        assert spec.evaluate(rows) == 2.0
        assert spec.output == "m"

    def test_count_star_semantics(self):
        rows = [StreamTuple(0, {"x": None}), StreamTuple(0, {"x": 1})]
        spec = AggregateSpec("count")  # argument None = count every row
        assert spec.evaluate(rows) == 2

    def test_distinct_evaluation(self):
        rows = [StreamTuple(0, {"x": v}) for v in ("a", "a", "b")]
        spec = AggregateSpec("count", argument=lambda t: t["x"], distinct=True)
        assert spec.evaluate(rows) == 2

    def test_default_output_names(self):
        assert AggregateSpec("count").output == "count_star"
        assert (
            AggregateSpec("count", argument=lambda t: 1, distinct=True).output
            == "count_distinct_expr"
        )

    def test_repr(self):
        assert "avg" in repr(AggregateSpec("avg", argument=lambda t: 1))
