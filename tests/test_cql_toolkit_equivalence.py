"""The toolkit operators implement the same semantics as the paper's CQL.

For each stage the paper defines declaratively, we run the printed query
and the toolkit operator over identical input and compare outputs. This
pins the two programming models (§3.3) to one semantics.
"""

import numpy as np
import pytest

from repro.core.operators.arbitrate_ops import MaxCountArbitrator
from repro.core.operators.merge_ops import sigma_outlier_average
from repro.core.operators.smooth_ops import presence_smoother
from repro.core.stages import StageContext, StageKind
from repro.cql import compile_query
from repro.streams.tuples import StreamTuple


def drive(op, items, ticks):
    out = []
    items = sorted(items, key=lambda t: t.timestamp)
    index = 0
    for tick in ticks:
        while index < len(items) and items[index].timestamp <= tick + 1e-9:
            out.extend(op.on_tuple(items[index]))
            index += 1
        out.extend(op.on_time(tick))
    return out


def rfid_rows(seed=0, n=60):
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        rows.append(
            StreamTuple(
                i * 0.2,
                {
                    "tag_id": f"t{rng.integers(4)}",
                    "spatial_granule": f"shelf{rng.integers(2)}",
                },
                "smooth_input",
            )
        )
    return rows


class TestSmoothEquivalence:
    QUERY2 = """
        SELECT tag_id, spatial_granule, count(*) AS count
        FROM smooth_input [Range By '5 sec']
        GROUP BY tag_id, spatial_granule
    """

    def test_presence_smoother_matches_query2(self):
        rows = rfid_rows()
        ticks = [i * 0.2 for i in range(80)]
        query_out = compile_query(self.QUERY2).run(
            {"smooth_input": list(rows)}, ticks
        )
        toolkit_out = drive(
            presence_smoother(window=5.0).make(
                StageContext(StageKind.SMOOTH)
            ),
            list(rows),
            ticks,
        )
        def normalize(tuples):
            return sorted(
                (t.timestamp, t["tag_id"], t["spatial_granule"], t["count"])
                for t in tuples
            )

        assert normalize(query_out) == normalize(toolkit_out)


class TestArbitrateEquivalence:
    QUERY3 = """
        SELECT spatial_granule, tag_id
        FROM arbitrate_input ai1 [Range By 'NOW']
        GROUP BY spatial_granule, tag_id
        HAVING count(*) >= ALL(SELECT count(*)
                               FROM arbitrate_input ai2 [Range By 'NOW']
                               WHERE ai1.tag_id = ai2.tag_id
                               GROUP BY spatial_granule)
    """

    def test_max_count_arbitrator_matches_query3(self):
        rng = np.random.default_rng(42)
        rows = []
        for _ in range(100):
            rows.append(
                StreamTuple(
                    0.0,
                    {
                        "tag_id": f"t{rng.integers(5)}",
                        "spatial_granule": f"g{rng.integers(2)}",
                    },
                    "arbitrate_input",
                )
            )
        query_out = compile_query(self.QUERY3).run(
            {"arbitrate_input": list(rows)}, [0.0]
        )
        # Query 3's ties-keep-both semantics corresponds to tie_break="all".
        toolkit_out = drive(
            MaxCountArbitrator(tie_break="all", count_field="missing"),
            list(rows),
            [0.0],
        )
        def normalize(tuples):
            return sorted(
                (t["spatial_granule"], t["tag_id"]) for t in tuples
            )

        assert normalize(query_out) == normalize(toolkit_out)


class TestMergeEquivalence:
    QUERY5 = """
        SELECT spatial_granule, AVG(temp)
        FROM merge_input s [Range By '5 min'],
             (SELECT spatial_granule, avg(temp) as avg,
                     stdev(temp) as stdev
              FROM merge_input [Range By '5 min']) as a
        WHERE a.spatial_granule = s.spatial_granule AND
              s.temp < a.avg + a.stdev AND
              s.temp > a.avg - a.stdev
        GROUP BY spatial_granule
    """

    def test_sigma_average_matches_query5(self):
        rng = np.random.default_rng(3)
        rows = []
        for i in range(30):
            granule = f"room{i % 2}"
            temp = 20.0 + rng.normal(0, 0.5)
            if i % 10 == 0:
                temp += 60.0  # inject outliers
            rows.append(
                StreamTuple(
                    float(i),
                    {"spatial_granule": granule, "temp": temp},
                    "merge_input",
                )
            )
        ticks = [29.0]
        query_out = compile_query(self.QUERY5).run(
            {"merge_input": list(rows)}, ticks
        )
        toolkit_out = drive(
            sigma_outlier_average(window=300.0, k=1.0).make(
                StageContext(StageKind.MERGE)
            ),
            list(rows),
            ticks,
        )
        query_by_granule = {
            t["spatial_granule"]: t["avg_temp"] for t in query_out
        }
        toolkit_by_granule = {
            t["spatial_granule"]: t["temp"] for t in toolkit_out
        }
        assert set(query_by_granule) == set(toolkit_by_granule)
        for granule, value in query_by_granule.items():
            # The band edge differs (strict in the query, inclusive in the
            # toolkit); with continuous noise the survivors coincide.
            assert toolkit_by_granule[granule] == pytest.approx(value)
