"""Tests for the runtime telemetry subsystem.

Four layers of guarantees:

- **Histogram arithmetic** — fixed bucket edges, exact boundary
  placement, overflow sentinels and merge-by-addition.
- **Snapshot merging is associative** — any merge tree over the same
  per-shard snapshots yields the identical result (property-based with
  hypothesis when installed, seeded otherwise), which is what lets the
  sharded engine aggregate deterministically.
- **Shard-aware aggregation** — per-shard collectors absorbed in shard
  order produce the same per-operator tuple totals as the sequential
  run, on every backend at shard counts 1 and 4.
- **Execution-mode independence** — row and columnar runs of the same
  pipeline produce identical snapshots up to wall-clock fields (tuple
  and batch counters exactly, trace events byte-for-byte).
- **Surfacing** — the CLI's ``--stats``/``--trace-out`` round-trip and
  a golden trace-event log for the RFID shelf pipeline, pinned
  byte-for-byte (regenerate with
  ``PYTHONPATH=src python tests/test_telemetry.py --regenerate``).
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.streams.shard import run_sharded
from repro.streams.telemetry import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_NS,
    NULL_COLLECTOR,
    Histogram,
    InMemoryCollector,
    default_telemetry,
    empty_snapshot,
    format_table,
    merge_snapshots,
    resolve_telemetry,
    set_default_telemetry,
)

try:
    from tests.test_shard_equivalence import (
        build_five_stage,
        make_trace,
        trace_ticks,
    )
except ImportError:  # pragma: no cover - direct --regenerate invocation
    from test_shard_equivalence import (
        build_five_stage,
        make_trace,
        trace_ticks,
    )

GOLDEN_DIR = Path(__file__).parent / "golden"

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the test extras
    HAVE_HYPOTHESIS = False


# -- histograms ----------------------------------------------------------------


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram((10, 20, 50))
        hist.record(10)  # exactly on an edge -> that bucket
        hist.record(11)  # just above -> next bucket
        hist.record(1)  # below the first edge -> first bucket
        hist.record(50)  # on the last edge -> last regular bucket
        hist.record(51)  # beyond -> overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5

    def test_latency_bucket_edges_are_1_2_5_decades(self):
        assert LATENCY_BUCKETS_NS[0] == 1_000  # 1 µs
        assert LATENCY_BUCKETS_NS[-1] == 5_000_000_000
        assert 10_000_000_000 not in LATENCY_BUCKETS_NS
        ratios = [
            b / a for a, b in zip(LATENCY_BUCKETS_NS, LATENCY_BUCKETS_NS[1:])
        ]
        assert set(ratios) == {2.0, 2.5}

    def test_batch_size_buckets_are_powers_of_two(self):
        assert BATCH_SIZE_BUCKETS[0] == 1
        assert BATCH_SIZE_BUCKETS[-1] == 65536
        assert all(
            b == 2 * a
            for a, b in zip(BATCH_SIZE_BUCKETS, BATCH_SIZE_BUCKETS[1:])
        )

    def test_percentile_returns_upper_bucket_edge(self):
        hist = Histogram((10, 20, 50))
        for value in (5, 15, 15, 40):
            hist.record(value)
        assert hist.percentile(0.0) == 10.0
        assert hist.percentile(0.5) == 20.0
        assert hist.percentile(1.0) == 50.0

    def test_percentile_overflow_is_inf(self):
        hist = Histogram((10,))
        hist.record(99)
        assert hist.percentile(0.5) == float("inf")

    def test_percentile_empty_is_zero(self):
        assert Histogram((10,)).percentile(0.5) == 0.0

    def test_percentile_rejects_bad_fraction(self):
        with pytest.raises(ReproError, match="fraction"):
            Histogram((10,)).percentile(1.5)

    def test_merge_adds_counts(self):
        a = Histogram((10, 20))
        b = Histogram((10, 20))
        a.record(5)
        b.record(15)
        b.record(100)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.total == 3

    def test_merge_rejects_different_edges(self):
        with pytest.raises(ReproError, match="edges"):
            Histogram((10,)).merge(Histogram((20,)))

    def test_rejects_non_ascending_edges(self):
        with pytest.raises(ReproError, match="ascend"):
            Histogram((10, 10))

    def test_rejects_wrong_count_length(self):
        with pytest.raises(ReproError, match="counts"):
            Histogram((10, 20), counts=[1, 2])


class TestPercentileBoundaries:
    """Pinned quantile-edge semantics the ops plane renders from.

    ``percentile`` returns the upper edge of the bucket containing the
    quantile rank; these cases pin the boundary behaviour — rank landing
    exactly on a bucket's cumulative count, all-overflow distributions,
    and the 0.0/1.0 extremes — so a refactor cannot silently shift the
    p50/p95 columns in ``repro top``.
    """

    def test_rank_exactly_on_bucket_boundary_stays_in_lower_bucket(self):
        # Two observations per bucket: fraction 0.5 -> rank 2.0, which
        # the first bucket's cumulative count meets exactly (>=), so the
        # answer is the *lower* bucket's edge — not the next one up.
        hist = Histogram((10, 20), counts=[2, 2, 0])
        assert hist.percentile(0.5) == 10.0
        assert hist.percentile(0.5 + 1e-9) == 20.0

    def test_all_overflow_distribution_is_inf_at_every_fraction(self):
        hist = Histogram((10, 20), counts=[0, 0, 3])
        assert hist.percentile(0.0) == float("inf")
        assert hist.percentile(0.5) == float("inf")
        assert hist.percentile(1.0) == float("inf")

    def test_fraction_zero_is_first_nonempty_bucket_edge(self):
        hist = Histogram((10, 20, 50), counts=[0, 1, 4, 0])
        assert hist.percentile(0.0) == 20.0

    def test_fraction_one_is_last_nonempty_bucket_edge(self):
        hist = Histogram((10, 20, 50), counts=[3, 1, 0, 0])
        assert hist.percentile(1.0) == 20.0

    def test_single_observation_any_fraction(self):
        hist = Histogram((10, 20), counts=[0, 1, 0])
        for fraction in (0.0, 0.25, 0.5, 1.0):
            assert hist.percentile(fraction) == 20.0


# -- collector basics ----------------------------------------------------------


class TestCollector:
    def test_noop_base_is_disabled_and_empty(self):
        assert NULL_COLLECTOR.enabled is False
        NULL_COLLECTOR.record_batch("op", 3, 2, 100)
        NULL_COLLECTOR.event("anything", x=1)
        assert NULL_COLLECTOR.snapshot() == empty_snapshot()
        assert NULL_COLLECTOR.spawn() is NULL_COLLECTOR

    def test_record_batch_accumulates(self):
        col = InMemoryCollector()
        col.record_batch("op", 3, 2, 1_500)
        col.record_batch("op", 1, 1, 500)
        entry = col.snapshot()["operators"]["op"]
        assert entry["tuples_in"] == 4
        assert entry["tuples_out"] == 3
        assert entry["batches"] == 2
        assert entry["busy_ns"] == 2_000
        assert sum(entry["latency_ns"]) == 2
        assert sum(entry["batch_sizes"]) == 2

    def test_punctuation_counts_outputs_not_inputs(self):
        col = InMemoryCollector()
        col.record_punctuation("op", 5, 700)
        entry = col.snapshot()["operators"]["op"]
        assert entry["tuples_in"] == 0
        assert entry["tuples_out"] == 5
        assert entry["punctuations"] == 1
        assert entry["batches"] == 0

    def test_gauges_keep_maxima(self):
        col = InMemoryCollector()
        col.sample_queue_depth("op", 3)
        col.sample_queue_depth("op", 9)
        col.sample_queue_depth("op", 1)
        col.sample_watermark("src", 0.5)
        col.sample_watermark("src", 0.25)
        snap = col.snapshot()
        assert snap["operators"]["op"]["max_queue_depth"] == 9
        assert snap["sources"]["src"]["max_watermark_lag"] == 0.5

    def test_events_are_sequenced(self):
        col = InMemoryCollector()
        col.event("first", a=1)
        col.event("second")
        events = col.snapshot()["events"]
        assert [e["seq"] for e in events] == [0, 1]
        assert [e["kind"] for e in events] == ["first", "second"]
        assert events[0]["a"] == 1

    def test_absorb_tags_events_with_shard(self):
        child = InMemoryCollector()
        child.event("batch_drain", node="op")
        parent = InMemoryCollector()
        parent.absorb(child.snapshot(), shard=2)
        (event,) = parent.snapshot()["events"]
        assert event["shard"] == 2

    def test_spawn_is_isolated(self):
        parent = InMemoryCollector()
        child = parent.spawn()
        assert child is not parent
        child.record_batch("op", 1, 1, 10)
        assert parent.snapshot()["operators"] == {}

    def test_default_telemetry_install_and_restore(self):
        col = InMemoryCollector()
        previous = set_default_telemetry(col)
        try:
            assert default_telemetry() is col
            assert resolve_telemetry(None) is col
            other = InMemoryCollector()
            assert resolve_telemetry(other) is other
        finally:
            set_default_telemetry(previous)
        assert default_telemetry() is previous


# -- merge associativity -------------------------------------------------------


def random_snapshot(rng: random.Random) -> dict:
    """A structurally valid snapshot with random contents."""
    col = InMemoryCollector()
    for _ in range(rng.randrange(0, 20)):
        op = f"op{rng.randrange(3)}"
        action = rng.randrange(5)
        if action == 0:
            col.record_batch(
                op,
                rng.randrange(0, 50),
                rng.randrange(0, 50),
                rng.randrange(0, 10**8),
            )
        elif action == 1:
            col.record_punctuation(op, rng.randrange(0, 10), rng.randrange(0, 10**6))
        elif action == 2:
            col.sample_queue_depth(op, rng.randrange(0, 30))
        elif action == 3:
            col.count_source(f"src{rng.randrange(2)}", rng.randrange(1, 5))
            col.sample_watermark(f"src{rng.randrange(2)}", rng.random())
        else:
            col.event("e", node=op, n=rng.randrange(100))
    for _ in range(rng.randrange(0, 3)):
        col.count_tick()
    return col.snapshot()


def assert_merge_associative(a: dict, b: dict, c: dict) -> None:
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    flat = merge_snapshots(a, b, c)
    assert left == right == flat


class TestMergeSnapshots:
    def test_empty_is_identity(self):
        rng = random.Random(7)
        snap = random_snapshot(rng)
        assert merge_snapshots(snap, empty_snapshot()) == merge_snapshots(snap)
        assert merge_snapshots(empty_snapshot(), snap) == merge_snapshots(snap)

    def test_merge_is_pure(self):
        rng = random.Random(8)
        a, b = random_snapshot(rng), random_snapshot(rng)
        a_before = json.dumps(a, sort_keys=True)
        merge_snapshots(a, b)
        assert json.dumps(a, sort_keys=True) == a_before

    def test_counters_sum_and_gauges_max(self):
        a = InMemoryCollector()
        a.record_batch("op", 2, 1, 100)
        a.sample_queue_depth("op", 5)
        a.count_tick()
        b = InMemoryCollector()
        b.record_batch("op", 3, 3, 200)
        b.sample_queue_depth("op", 2)
        b.count_tick()
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        entry = merged["operators"]["op"]
        assert entry["tuples_in"] == 5
        assert entry["busy_ns"] == 300
        assert entry["max_queue_depth"] == 5
        assert merged["counters"]["ticks"] == 2

    def test_events_concatenate_and_resequence(self):
        a = InMemoryCollector()
        a.event("x")
        b = InMemoryCollector()
        b.event("y")
        b.event("z")
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert [e["kind"] for e in merged["events"]] == ["x", "y", "z"]
        assert [e["seq"] for e in merged["events"]] == [0, 1, 2]

    if HAVE_HYPOTHESIS:

        @settings(max_examples=50, deadline=None)
        @given(seeds=st.tuples(st.integers(0, 2**32 - 1),
                               st.integers(0, 2**32 - 1),
                               st.integers(0, 2**32 - 1)))
        def test_associative(self, seeds):
            a, b, c = (random_snapshot(random.Random(s)) for s in seeds)
            assert_merge_associative(a, b, c)

    else:  # pragma: no cover - exercised only without hypothesis

        @pytest.mark.parametrize("seed", range(50))
        def test_associative(self, seed):
            rng = random.Random(seed)
            a, b, c = (random_snapshot(rng) for _ in range(3))
            assert_merge_associative(a, b, c)


# -- shard-aware aggregation ---------------------------------------------------


def op_totals(snapshot: dict) -> dict:
    return {
        name: (entry["tuples_in"], entry["tuples_out"])
        for name, entry in snapshot["operators"].items()
    }


class TestShardedAggregation:
    @pytest.mark.parametrize("backend", ("serial", "threads", "processes"))
    @pytest.mark.parametrize("shards", (1, 4))
    def test_merged_totals_match_serial(self, backend, shards):
        rng = random.Random(21)
        sources = make_trace(rng, n_tuples=120)
        ticks = trace_ticks(sources)

        reference = InMemoryCollector()
        fjord, _sink = build_five_stage(sources)
        fjord.run(ticks, telemetry=reference)
        expected = op_totals(reference.snapshot())

        collector = InMemoryCollector()
        run_sharded(
            sources,
            build_five_stage,
            ticks,
            key="spatial_granule",
            shards=shards,
            backend=backend,
            telemetry=collector,
        )
        snap = collector.snapshot()
        assert op_totals(snap) == expected, (backend, shards)
        kinds = [e["kind"] for e in snap["events"]]
        assert kinds[0] == "shard_partition"
        assert kinds[-1] == "shard_merge"
        # Every absorbed shard's events carry its shard index.
        tagged = {e.get("shard") for e in snap["events"] if "shard" in e}
        assert tagged == set(range(shards))

    def test_absorb_order_determines_event_order(self):
        """Backends absorb in shard order, so merged logs are identical."""
        rng = random.Random(22)
        sources = make_trace(rng, n_tuples=80)
        ticks = trace_ticks(sources)
        logs = []
        for backend in ("serial", "threads", "processes"):
            collector = InMemoryCollector()
            run_sharded(
                sources,
                build_five_stage,
                ticks,
                key="spatial_granule",
                shards=4,
                backend=backend,
                telemetry=collector,
            )
            events = collector.snapshot()["events"]
            # Drop the partition/merge envelope's backend field; all
            # remaining fields are deterministic.
            logs.append([
                {k: v for k, v in e.items() if k != "backend"}
                for e in events
            ])
        assert logs[0] == logs[1] == logs[2]

    def test_uninstrumented_sharded_run_collects_nothing(self):
        rng = random.Random(23)
        sources = make_trace(rng, n_tuples=40)
        ticks = trace_ticks(sources)
        previous = set_default_telemetry(None)
        try:
            sharded = run_sharded(
                sources, build_five_stage, ticks, shards=2, backend="serial"
            )
        finally:
            set_default_telemetry(previous)
        assert sharded.output  # ran fine, nothing collected anywhere
        assert default_telemetry().snapshot() == empty_snapshot()


# -- executor integration ------------------------------------------------------


class TestExecutorIntegration:
    def test_flow_counters_absorbed_into_telemetry(self):
        """Collector tuple totals equal the Fjord's own flow counters."""
        rng = random.Random(31)
        sources = make_trace(rng, n_tuples=100)
        ticks = trace_ticks(sources)
        collector = InMemoryCollector()
        fjord, _sink = build_five_stage(sources)
        fjord.run(ticks, telemetry=collector)
        stats = fjord.stats()
        totals = op_totals(collector.snapshot())
        for name, (n_in, n_out) in stats.items():
            assert totals[name] == (n_in, n_out), name

    def test_out_of_order_source_emits_event_then_raises(self):
        from repro.errors import OperatorError
        from repro.streams.fjord import Fjord
        from repro.streams.operators import UnionOp
        from repro.streams.tuples import StreamTuple

        fjord = Fjord()
        fjord.add_source(
            "src",
            [StreamTuple(1.0, {"v": 1}), StreamTuple(0.5, {"v": 2})],
        )
        fjord.add_operator("u", UnionOp(), inputs=["src"])
        fjord.add_sink("out", inputs=["u"])
        collector = InMemoryCollector()
        with pytest.raises(OperatorError, match="out of order"):
            fjord.run([0.0, 1.0, 2.0], telemetry=collector)
        events = collector.snapshot()["events"]
        disorder = [e for e in events if e["kind"] == "source_out_of_order"]
        assert len(disorder) == 1
        assert disorder[0]["source"] == "src"
        assert disorder[0]["timestamp"] == 0.5
        assert disorder[0]["previous"] == 1.0

    def test_invalid_backend_emits_validation_event(self):
        from repro.errors import OperatorError
        from repro.streams.shard import run_shard_jobs

        collector = InMemoryCollector()
        previous = set_default_telemetry(collector)
        try:
            with pytest.raises(OperatorError, match="unknown backend"):
                run_shard_jobs([], [0.0], backend="gpu")
        finally:
            set_default_telemetry(previous)
        events = collector.snapshot()["events"]
        assert any(
            e["kind"] == "validation_error" and e["value"] == "gpu"
            for e in events
        )

    def test_invalid_shard_count_emits_validation_event(self):
        from repro.errors import OperatorError
        from repro.streams.shard import resolve_execution

        collector = InMemoryCollector()
        previous = set_default_telemetry(collector)
        try:
            with pytest.raises(OperatorError, match="shards"):
                resolve_execution(0, "serial")
        finally:
            set_default_telemetry(previous)
        events = collector.snapshot()["events"]
        assert any(e["kind"] == "validation_error" for e in events)


# -- execution-mode accounting -------------------------------------------------


def _mode_snapshot(mode: str) -> dict:
    """Instrumented five-stage run over a fixed trace in ``mode``."""
    rng = random.Random(41)
    sources = make_trace(rng, n_tuples=120)
    ticks = trace_ticks(sources)
    collector = InMemoryCollector()
    fjord, _sink = build_five_stage(sources)
    fjord.run(ticks, telemetry=collector, mode=mode)
    return collector.snapshot()


def _scrub_wall_clock(snapshot: dict) -> dict:
    """Drop the wall-clock fields; everything left must be mode-blind."""
    scrubbed = json.loads(json.dumps(snapshot))
    for entry in scrubbed["operators"].values():
        assert entry.pop("busy_ns") > 0
        entry.pop("latency_ns")
    for entry in scrubbed["spans"].values():
        entry.pop("total_ns")
        entry.pop("latency_ns")
    scrubbed["span_log"] = []
    return scrubbed


class TestColumnarAccounting:
    """Row and columnar execution account identically.

    The columnar drain partitions pending entries into the same maximal
    same-port runs as the row drain, so per-operator tuple counts are
    exact, batch counts are exact, and the trace-event log is
    byte-identical across modes; only the wall-clock accumulators
    (busy-ns and the latency histogram) may differ.
    """

    def test_columnar_counters_match_row_exactly(self):
        row = _mode_snapshot("row")
        columnar = _mode_snapshot("columnar")
        assert set(row["operators"]) == set(columnar["operators"])
        for name, entry in row["operators"].items():
            other = columnar["operators"][name]
            for field in (
                "tuples_in", "tuples_out",        # tuples: exact
                "batches", "batch_sizes",          # batches: exact
                "punctuations", "max_queue_depth",
            ):
                assert other[field] == entry[field], (name, field)
            assert entry["busy_ns"] > 0
            assert other["busy_ns"] > 0  # present, but wall-clock
        assert _scrub_wall_clock(row) == _scrub_wall_clock(columnar)

    def test_golden_scenario_events_are_mode_blind(self):
        """The columnar run of the golden shelf scenario replays the
        exact row-path trace-event log (the pinned golden file)."""
        from repro.streams.traceio import read_trace_events

        golden = read_trace_events(GOLDEN_DIR / "rfid_shelf_trace_events.jsonl")
        assert _golden_shelf_events(mode="columnar") == golden


# -- presentation --------------------------------------------------------------


class TestFormatTable:
    def test_contains_all_columns_and_rows(self):
        col = InMemoryCollector()
        col.record_batch("busy_op", 10, 8, 2_000_000)
        col.record_batch("idle_op", 1, 1, 1_000)
        col.sample_queue_depth("busy_op", 7)
        col.count_source("src", 11)
        col.sample_watermark("src", 0.125)
        col.count_tick()
        text = format_table(
            col.snapshot(),
            rollups={
                "point": {
                    "tuples_in": 11,
                    "tuples_out": 9,
                    "batches": 2,
                    "busy_ns": 2_001_000,
                }
            },
        )
        for token in (
            "operator", "tuples_in", "p50_us", "p95_us", "max_queue",
            "busy_op", "idle_op", "src", "point", "ticks=1",
        ):
            assert token in text, token
        # Busiest operator sorts first.
        assert text.index("busy_op") < text.index("idle_op")

    def test_empty_snapshot_renders_header_only(self):
        text = format_table(empty_snapshot())
        assert "operator" in text
        assert "\n\n" not in text  # no trailing sections


# -- surfacing: CLI and golden trace events ------------------------------------


def _golden_shelf_events(mode: str | None = None) -> list[dict]:
    from repro.pipelines.rfid_shelf import build_shelf_processor
    from repro.scenarios.shelf import ShelfScenario

    scenario = ShelfScenario(duration=12.0, seed=3)
    processor = build_shelf_processor(scenario, "smooth+arbitrate")
    collector = InMemoryCollector()
    run = processor.run(
        until=scenario.duration,
        tick=scenario.poll_period,
        sources=scenario.recorded_streams(),
        telemetry=collector,
        mode=mode,
    )
    assert run.output  # the pipeline actually ran
    return run.telemetry["events"]


class TestGoldenTraceEvents:
    GOLDEN = GOLDEN_DIR / "rfid_shelf_trace_events.jsonl"

    def test_events_match_golden(self, tmp_path):
        from repro.streams.traceio import write_trace_events

        assert self.GOLDEN.exists(), (
            f"missing golden file {self.GOLDEN}; regenerate with "
            f"PYTHONPATH=src python {__file__} --regenerate"
        )
        fresh = tmp_path / "events.jsonl"
        write_trace_events(_golden_shelf_events(), fresh)
        assert fresh.read_bytes() == self.GOLDEN.read_bytes(), (
            "trace events of the RFID shelf pipeline drifted from the "
            "golden log; if the change is intentional, regenerate and "
            "review the diff"
        )

    def test_golden_roundtrips(self):
        from repro.streams.traceio import read_trace_events

        events = read_trace_events(self.GOLDEN)
        assert events
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "batch_drain" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))


class TestTraceEventIO:
    def test_write_read_roundtrip(self, tmp_path):
        from repro.streams.traceio import read_trace_events, write_trace_events

        events = [
            {"seq": 0, "kind": "run_start", "nodes": 2},
            {"seq": 1, "kind": "batch_drain", "node": "op", "t": 1.5},
        ]
        path = tmp_path / "events.jsonl"
        assert write_trace_events(events, path) == 2
        assert read_trace_events(path) == events

    def test_read_rejects_malformed_json(self, tmp_path):
        from repro.streams.traceio import read_trace_events

        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "ok"}\nnot json\n')
        with pytest.raises(ReproError, match=":2"):
            read_trace_events(path)

    def test_read_rejects_missing_kind(self, tmp_path):
        from repro.streams.traceio import read_trace_events

        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\n')
        with pytest.raises(ReproError, match="kind"):
            read_trace_events(path)


class TestCliSurfacing:
    def test_stats_and_trace_out_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.streams.traceio import read_trace_events

        trace = tmp_path / "trace.jsonl"
        status = main([
            "run", "fig5", "--fast", "--stats", "--trace-out", str(trace)
        ])
        assert status == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # experiment JSON is untouched
        for token in (
            "operator", "tuples_in", "p50_us", "max_queue",
            "stage", "smooth", "arbitrate", "wrote",
        ):
            assert token in captured.err, token
        events = read_trace_events(trace)
        assert events
        assert all("kind" in e for e in events)
        # The flags must not leak a default collector into later runs.
        assert default_telemetry() is NULL_COLLECTOR

    def test_run_without_flags_collects_nothing(self, capsys):
        from repro.cli import main

        assert default_telemetry() is NULL_COLLECTOR
        status = main(["list"])
        assert status == 0
        assert default_telemetry() is NULL_COLLECTOR


def _regenerate() -> None:
    from repro.streams.traceio import write_trace_events

    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / "rfid_shelf_trace_events.jsonl"
    count = write_trace_events(_golden_shelf_events(), path)
    print(f"wrote {count} trace events to {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
