"""Property-based tests (hypothesis) for the stream substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.aggregates import (
    Avg,
    Count,
    CountDistinct,
    Mad,
    Max,
    Median,
    Min,
    Stdev,
    Sum,
)
from repro.streams.operators import GroupKey, WindowedGroupByOp, run_operator
from repro.streams.aggregates import AggregateSpec
from repro.streams.tuples import StreamTuple
from repro.streams.windows import RowWindow, SlidingWindow, WindowSpec

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# -- aggregates agree with reference implementations -------------------------


@given(st.lists(finite_floats, min_size=1, max_size=60))
def test_sum_matches_numpy(values):
    assert Sum.over(values) == pytest.approx(float(np.sum(values)))


@given(st.lists(finite_floats, min_size=1, max_size=60))
def test_avg_matches_numpy(values):
    assert Avg.over(values) == pytest.approx(float(np.mean(values)))


@given(st.lists(finite_floats, min_size=2, max_size=60))
def test_stdev_matches_numpy_ddof1(values):
    expected = float(np.std(values, ddof=1))
    assert Stdev.over(values) == pytest.approx(expected, abs=1e-6, rel=1e-6)


@given(st.lists(finite_floats, min_size=1, max_size=60))
def test_min_max_bound_all_values(values):
    low, high = Min.over(values), Max.over(values)
    assert low <= high
    assert all(low <= v <= high for v in values)


@given(st.lists(finite_floats, min_size=1, max_size=60))
def test_median_matches_numpy(values):
    assert Median.over(values) == pytest.approx(float(np.median(values)))


@given(st.lists(finite_floats, min_size=1, max_size=60))
def test_mad_is_nonnegative_and_bounded_by_range(values):
    mad = Mad.over(values)
    assert mad >= 0.0
    assert mad <= (max(values) - min(values)) + 1e-9


@given(st.lists(st.one_of(st.none(), finite_floats), max_size=60))
def test_count_ignores_none(values):
    assert Count.over(values) == sum(1 for v in values if v is not None)


@given(st.lists(st.integers(min_value=0, max_value=10), max_size=60))
def test_count_distinct_matches_set(values):
    assert CountDistinct.over(values) == len(set(values))


@given(st.lists(finite_floats, min_size=1, max_size=40))
def test_stdev_zero_iff_constant(values):
    constant = [values[0]] * len(values)
    assert Stdev.over(constant) == pytest.approx(0.0, abs=1e-9)


# -- window invariants ---------------------------------------------------------


sorted_times = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=50,
).map(sorted)


@given(sorted_times, st.floats(min_value=0.1, max_value=20.0))
def test_sliding_window_contents_match_definition(times, width):
    window = SlidingWindow(width)
    for ts in times:
        window.insert(StreamTuple(ts, {"v": ts}))
    now = times[-1]
    window.advance(now)
    expected = [ts for ts in times if ts >= now - width - 1e-9]
    assert [t.timestamp for t in window] == expected


@given(sorted_times, st.floats(min_value=0.1, max_value=20.0))
def test_sliding_window_monotone_under_advance(times, width):
    """Advancing time never grows the window."""
    window = SlidingWindow(width)
    for ts in times:
        window.insert(StreamTuple(ts, {}))
    sizes = []
    now = times[-1]
    for step in range(5):
        window.advance(now + step * width / 2)
        sizes.append(len(window))
    assert sizes == sorted(sizes, reverse=True)


@given(sorted_times, st.integers(min_value=1, max_value=10))
def test_row_window_never_exceeds_capacity(times, capacity):
    window = RowWindow(capacity)
    for ts in times:
        window.insert(StreamTuple(ts, {}))
        assert len(window) <= capacity
    kept = [t.timestamp for t in window]
    assert kept == times[-min(capacity, len(times)):]


# -- windowed group-by invariants -------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # group
            st.integers(min_value=0, max_value=5),  # value id
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50)
def test_groupby_partitions_are_exhaustive_and_disjoint(rows):
    """At one instant, group counts must sum to the number of inputs."""
    items = [
        StreamTuple(0.0, {"g": group, "x": value}) for group, value in rows
    ]
    op = WindowedGroupByOp(
        WindowSpec.range_by(10.0),
        keys=[GroupKey("g")],
        aggregates=[AggregateSpec("count", output="n")],
    )
    out = run_operator(op, items, [0.0])
    assert sum(t["n"] for t in out) == len(items)
    groups = [t["g"] for t in out]
    assert len(groups) == len(set(groups))


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
            finite_floats,
        ),
        min_size=1,
        max_size=50,
    ).map(lambda rows: sorted(rows, key=lambda r: r[0]))
)
@settings(max_examples=50)
def test_groupby_window_average_matches_manual(rows):
    items = [StreamTuple(ts, {"v": v}) for ts, v in rows]
    width = 7.0
    op = WindowedGroupByOp(
        WindowSpec.range_by(width),
        keys=[],
        aggregates=[
            AggregateSpec("avg", argument=lambda t: t["v"], output="m")
        ],
    )
    now = rows[-1][0]
    out = run_operator(op, items, [now])
    expected_values = [v for ts, v in rows if ts >= now - width - 1e-9]
    assert out, "window holds at least the newest tuple"
    assert out[-1]["m"] == pytest.approx(
        sum(expected_values) / len(expected_values)
    )
