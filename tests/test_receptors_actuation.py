"""Unit tests for receptor actuation (§5.3.1 future work)."""

import pytest

from repro.errors import ReceptorError
from repro.receptors.actuation import ActuatableMote, YieldActuationController


def make_mote(min_period=60.0, max_period=300.0, **kwargs):
    defaults = dict(
        field=lambda now: 20.0,
        noise_std=0.0,
        rng=0,
    )
    defaults.update(kwargs)
    return ActuatableMote("m", min_period, max_period, **defaults)


class TestActuatableMote:
    def test_starts_at_base_rate(self):
        assert make_mote().sample_period == 300.0

    def test_set_period_clamped(self):
        mote = make_mote()
        assert mote.set_sample_period(10.0) == 60.0
        assert mote.set_sample_period(1e6) == 300.0
        assert mote.set_sample_period(120.0) == 120.0

    def test_invalid_bounds(self):
        with pytest.raises(ReceptorError):
            make_mote(min_period=300.0, max_period=60.0)
        with pytest.raises(ReceptorError):
            make_mote(min_period=0.0)

    def test_due_schedule_follows_period(self):
        mote = make_mote()
        assert mote.due(0.0)
        assert mote.sample_if_due(0.0)
        assert not mote.due(100.0)
        assert mote.due(300.0)

    def test_schedule_tightens_after_actuation(self):
        mote = make_mote()
        mote.sample_if_due(0.0)
        mote.set_sample_period(60.0)
        # Next sample was already scheduled at the old rate...
        assert not mote.due(60.0)
        # ...but subsequent ones follow the new one.
        mote.sample_if_due(300.0)
        assert mote.due(360.0)

    def test_is_still_a_mote(self):
        readings = make_mote().sample_if_due(0.0)
        assert readings[0]["temp"] == 20.0
        assert readings[0]["mote_id"] == "m"


class TestController:
    def test_miss_halves_period(self):
        mote = make_mote()
        controller = YieldActuationController()
        assert controller.observe(mote, delivered=False) == 150.0
        assert controller.observe(mote, delivered=False) == 75.0

    def test_period_floor(self):
        mote = make_mote()
        controller = YieldActuationController()
        for _ in range(10):
            controller.observe(mote, delivered=False)
        assert mote.sample_period == mote.min_period

    def test_relax_after_patience_hits(self):
        mote = make_mote()
        mote.set_sample_period(60.0)
        controller = YieldActuationController(patience=3, relax_step=60.0)
        controller.observe(mote, delivered=True)
        controller.observe(mote, delivered=True)
        assert mote.sample_period == 60.0  # not yet
        controller.observe(mote, delivered=True)
        assert mote.sample_period == 120.0

    def test_miss_resets_streak(self):
        mote = make_mote()
        mote.set_sample_period(60.0)
        controller = YieldActuationController(patience=2, relax_step=60.0)
        controller.observe(mote, delivered=True)
        controller.observe(mote, delivered=False)  # halve (floor) + reset
        controller.observe(mote, delivered=True)
        assert mote.sample_period == 60.0  # streak restarted

    def test_period_ceiling(self):
        mote = make_mote()
        controller = YieldActuationController(patience=1, relax_step=1e6)
        controller.observe(mote, delivered=True)
        assert mote.sample_period == mote.max_period

    def test_invalid_parameters(self):
        with pytest.raises(ReceptorError):
            YieldActuationController(patience=0)
        with pytest.raises(ReceptorError):
            YieldActuationController(relax_step=0.0)


class TestClosedLoopExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.actuation import actuation_comparison

        return actuation_comparison(n_motes=6, granules=150, seed=3)

    def test_actuation_beats_fixed_yield(self, result):
        assert result["yield"]["actuated"] > result["yield"]["fixed"] + 0.1

    def test_actuation_cheaper_than_always_fast(self, result):
        assert result["energy"]["actuated"] < result["energy"]["always_fast"]

    def test_always_fast_is_the_yield_ceiling(self, result):
        assert (
            result["yield"]["always_fast"]
            >= result["yield"]["actuated"] - 0.02
        )

    def test_fixed_energy_is_baseline(self, result):
        assert result["energy"]["fixed"] == 1.0
