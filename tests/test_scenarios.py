"""Unit tests for the four ground-truth scenarios."""

import numpy as np
import pytest

from repro.scenarios import ShelfScenario


class TestShelfScenario:
    def test_truth_alternates_every_period(self, small_shelf):
        scenario = small_shelf
        assert scenario.true_count(0.0, 0) == 15
        assert scenario.true_count(0.0, 1) == 10
        assert scenario.true_count(45.0, 0) == 10
        assert scenario.true_count(45.0, 1) == 15
        assert scenario.true_count(85.0, 0) == 15

    def test_total_items_conserved(self, small_shelf):
        for now in np.linspace(0, small_shelf.duration, 50):
            total = small_shelf.true_count(now, 0) + small_shelf.true_count(
                now, 1
            )
            assert total == 25

    def test_truth_series_shape(self, small_shelf):
        series = small_shelf.truth_series()
        ticks = small_shelf.ticks()
        assert set(series) == {"shelf0", "shelf1"}
        assert len(series["shelf0"]) == len(ticks)

    def test_recorded_streams_cached(self, small_shelf):
        assert small_shelf.recorded_streams() is small_shelf.recorded_streams()

    def test_recording_covers_both_readers(self, small_shelf):
        recorded = small_shelf.recorded_streams()
        assert set(recorded) == {"reader0", "reader1"}
        assert all(len(v) > 0 for v in recorded.values())

    def test_strong_antenna_reads_more(self, small_shelf):
        recorded = small_shelf.recorded_streams()
        assert len(recorded["reader0"]) > len(recorded["reader1"])

    def test_readings_sorted_by_time(self, small_shelf):
        for readings in small_shelf.recorded_streams().values():
            times = [r.timestamp for r in readings]
            assert times == sorted(times)

    def test_deterministic_given_seed(self):
        a = ShelfScenario(duration=20.0, seed=3).recorded_streams()
        b = ShelfScenario(duration=20.0, seed=3).recorded_streams()
        assert {k: len(v) for k, v in a.items()} == {
            k: len(v) for k, v in b.items()
        }
        assert a["reader0"][0] == b["reader0"][0]

    def test_relocated_shelf_function(self, small_shelf):
        assert small_shelf.relocated_shelf(0.0) == 0
        assert small_shelf.relocated_shelf(40.0) == 1
        assert small_shelf.relocated_shelf(80.0) == 0


class TestIntelLabScenario:
    def test_three_motes_one_group(self, small_intel_lab):
        registry = small_intel_lab.registry
        assert len(registry.devices) == 3
        assert len(registry.groups) == 1
        assert registry.groups[0].granule.name == "room"

    def test_diurnal_truth_bounded(self, small_intel_lab):
        temps = [
            small_intel_lab.room_temperature(t)
            for t in np.linspace(0, small_intel_lab.duration, 100)
        ]
        assert min(temps) > 15.0 and max(temps) < 30.0

    def test_fail_dirty_mote_rises(self, small_intel_lab):
        recorded = small_intel_lab.recorded_streams()
        late = [
            r["temp"]
            for r in recorded["mote3"]
            if r.timestamp > small_intel_lab.duration * 0.9
        ]
        assert min(late) > 30.0

    def test_functioning_motes_stay_sane(self, small_intel_lab):
        recorded = small_intel_lab.recorded_streams()
        for mote_id in ("mote1", "mote2"):
            temps = [r["temp"] for r in recorded[mote_id]]
            assert max(temps) < 30.0

    def test_raw_by_mote_shapes(self, small_intel_lab):
        series = small_intel_lab.raw_by_mote()
        assert set(series) == {"mote1", "mote2", "mote3"}
        times, temps = series["mote1"]
        assert len(times) == len(temps) == len(small_intel_lab.ticks())


class TestRedwoodScenario:
    def test_registry_layout(self, small_redwood):
        registry = small_redwood.registry
        assert len(registry.devices) == small_redwood.n_groups * 2
        assert len(registry.groups) == small_redwood.n_groups
        for group in registry.groups:
            assert len(group.members) == 2

    def test_heights_increase_with_group(self, small_redwood):
        heights = small_redwood.mote_heights
        assert heights["mote_01_0"] > heights["mote_00_0"]
        assert heights["mote_00_1"] == pytest.approx(
            heights["mote_00_0"] + 0.3
        )

    def test_canopy_swings_harder(self, small_redwood):
        scenario = small_redwood
        day = 86400.0
        low = [scenario.temperature(t, 10.0) for t in np.linspace(0, day, 200)]
        high = [scenario.temperature(t, 70.0) for t in np.linspace(0, day, 200)]
        assert max(high) - min(high) > max(low) - min(low)

    def test_logs_complete_despite_loss(self, small_redwood):
        logs = small_redwood.logs()
        epochs = small_redwood.epochs()
        for sensed in logs.values():
            assert len(sensed) == len(epochs)
            assert np.all(np.isfinite(sensed))

    def test_delivered_subset_of_epochs(self, small_redwood):
        recorded = small_redwood.recorded_streams()
        n_epochs = len(small_redwood.epochs())
        for readings in recorded.values():
            assert 0 < len(readings) < n_epochs

    def test_raw_yield_near_target(self, small_redwood):
        recorded = small_redwood.recorded_streams()
        n_epochs = len(small_redwood.epochs())
        total = sum(len(v) for v in recorded.values())
        observed = total / (n_epochs * len(recorded))
        assert observed == pytest.approx(small_redwood.target_yield, abs=0.12)

    def test_granule_logs_average_pairs(self, small_redwood):
        logs = small_redwood.logs()
        granule_logs = small_redwood.granule_logs()
        expected = (logs["mote_00_0"] + logs["mote_00_1"]) / 2
        assert np.allclose(granule_logs["height_00"], expected)


class TestOfficeScenario:
    def test_occupancy_square_wave(self, small_office):
        assert small_office.occupied(10.0)
        assert not small_office.occupied(70.0)
        assert small_office.occupied(130.0)

    def test_registry_has_three_groups(self, small_office):
        registry = small_office.registry
        kinds = {g.receptor_kind for g in registry.groups}
        assert kinds == {"rfid", "mote", "x10"}
        assert len(registry.devices) == 8

    def test_all_groups_share_office_granule(self, small_office):
        assert {
            g.granule.name for g in small_office.registry.groups
        } == {"office"}

    def test_badge_read_only_when_present(self, small_office):
        recorded = small_office.recorded_streams()
        for reader in ("office_reader0", "office_reader1"):
            for reading in recorded[reader]:
                if reading["tag_id"].startswith("badge"):
                    assert small_office.occupied(reading.timestamp)

    def test_errant_tag_only_on_reader1(self, small_office):
        recorded = small_office.recorded_streams()
        reader0_tags = {r["tag_id"] for r in recorded["office_reader0"]}
        reader1_tags = {r["tag_id"] for r in recorded["office_reader1"]}
        assert "errant_foreign_tag" not in reader0_tags
        assert "errant_foreign_tag" in reader1_tags

    def test_sound_levels_track_occupancy(self, small_office):
        recorded = small_office.recorded_streams()
        occupied_noise, empty_noise = [], []
        for reading in recorded["sound_mote1"]:
            target = (
                occupied_noise
                if small_office.occupied(reading.timestamp)
                else empty_noise
            )
            target.append(reading["noise"])
        assert np.mean(occupied_noise) > np.mean(empty_noise) + 50

    def test_truth_series_matches_occupied(self, small_office):
        truth = small_office.truth_series()
        ticks = small_office.ticks()
        for value, tick in zip(truth, ticks):
            assert bool(value) == small_office.occupied(tick)
