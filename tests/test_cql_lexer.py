"""Unit tests for the CQL tokenizer."""

import pytest

from repro.cql.lexer import Token, tokenize
from repro.errors import CQLSyntaxError


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop end


class TestTokenize:
    def test_keywords_uppercased(self):
        assert kinds("select from")[0] == ("keyword", "SELECT")
        assert kinds("select from")[1] == ("keyword", "FROM")

    def test_identifiers_keep_case(self):
        assert kinds("tag_id")[0] == ("name", "tag_id")

    def test_numbers(self):
        assert kinds("5")[0] == ("number", "5")
        assert kinds("5.25")[0] == ("number", "5.25")
        assert kinds(".5")[0] == ("number", ".5")

    def test_string_literal_unquoted(self):
        assert kinds("'5 sec'")[0] == ("string", "5 sec")

    def test_string_escape(self):
        assert kinds(r"'it\'s'")[0] == ("string", "it's")

    def test_operators(self):
        ops = [v for k, v in kinds("<= >= <> != = < > ( ) [ ] , . ; + - * / %")]
        assert ops == [
            "<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", "[", "]",
            ",", ".", ";", "+", "-", "*", "/", "%",
        ]

    def test_comment_skipped(self):
        assert kinds("select -- a comment\n x") == [
            ("keyword", "SELECT"),
            ("name", "x"),
        ]

    def test_whitespace_and_newlines_skipped(self):
        assert len(kinds("a\n\t b")) == 2

    def test_end_sentinel(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "end"

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_unexpected_character(self):
        with pytest.raises(CQLSyntaxError) as err:
            tokenize("select @")
        assert err.value.position == 7

    def test_token_helpers(self):
        token = Token("keyword", "SELECT", 0)
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("WHERE")
        op = Token("op", ",", 0)
        assert op.is_op(",")
        assert not op.is_op(".")

    def test_range_by_bracket_sequence(self):
        parts = kinds("[Range By '5 sec']")
        assert parts == [
            ("op", "["),
            ("keyword", "RANGE"),
            ("keyword", "BY"),
            ("string", "5 sec"),
            ("op", "]"),
        ]
