"""Unit tests for temporal/spatial granules and proximity groups."""

import pytest

from repro.core.granules import ProximityGroup, SpatialGranule, TemporalGranule
from repro.errors import PipelineError


class TestTemporalGranule:
    def test_parse_from_string(self):
        assert TemporalGranule("5 sec").seconds == 5.0

    def test_window_defaults_to_granule(self):
        granule = TemporalGranule("5 sec")
        assert granule.window_seconds == 5.0
        assert not granule.is_expanded

    def test_window_expansion(self):
        granule = TemporalGranule("5 min", smoothing_window="30 min")
        assert granule.seconds == 300.0
        assert granule.window_seconds == 1800.0
        assert granule.is_expanded

    def test_window_smaller_than_granule_rejected(self):
        with pytest.raises(PipelineError):
            TemporalGranule("5 min", smoothing_window="1 min")

    def test_zero_size_rejected(self):
        with pytest.raises(PipelineError):
            TemporalGranule(0.0)

    def test_equality(self):
        assert TemporalGranule(5.0) == TemporalGranule("5 sec")
        assert TemporalGranule(5.0) != TemporalGranule(6.0)
        assert TemporalGranule(5.0) != TemporalGranule(
            5.0, smoothing_window=10.0
        )

    def test_repr_shows_expansion(self):
        assert "window" in repr(
            TemporalGranule("5 min", smoothing_window="30 min")
        )


class TestSpatialGranule:
    def test_identity_by_name(self):
        assert SpatialGranule("shelf0") == SpatialGranule("shelf0")
        assert SpatialGranule("shelf0") != SpatialGranule("shelf1")
        assert hash(SpatialGranule("a")) == hash(SpatialGranule("a"))

    def test_empty_name_rejected(self):
        with pytest.raises(PipelineError):
            SpatialGranule("")

    def test_description_optional(self):
        granule = SpatialGranule("room", description="the office")
        assert granule.description == "the office"


class TestProximityGroup:
    def test_construction(self):
        group = ProximityGroup("g", SpatialGranule("shelf0"), "rfid")
        assert group.receptor_kind == "rfid"
        assert group.members == []

    def test_equality_ignores_members(self):
        a = ProximityGroup("g", SpatialGranule("s"), "rfid")
        b = ProximityGroup("g", SpatialGranule("s"), "rfid")
        a.members.append("r0")
        assert a == b

    def test_empty_name_rejected(self):
        with pytest.raises(PipelineError):
            ProximityGroup("", SpatialGranule("s"), "rfid")

    def test_repr_mentions_granule(self):
        group = ProximityGroup("g", SpatialGranule("shelf0"), "rfid")
        assert "shelf0" in repr(group)
