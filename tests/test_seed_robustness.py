"""Seed robustness: the paper's findings are not a lucky random draw.

Each reproduced finding's *shape* must hold across independent random
seeds, not just the default one. These run on reduced-scale scenarios to
stay fast; the per-seed effect sizes are large enough that three seeds
give meaningful evidence.
"""

import pytest

from repro.experiments.rfid import figure5, shelf_error
from repro.pipelines.rfid_shelf import query1_counts
from repro.scenarios import (
    IntelLabScenario,
    OfficeScenario,
    RedwoodScenario,
    ShelfScenario,
)

SEEDS = (11, 222, 3333)


class TestShelfOrderingAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_figure5_ordering(self, seed):
        scenario = ShelfScenario(duration=120.0, seed=seed)
        errors = figure5(
            scenario, configs=("raw", "smooth", "smooth+arbitrate")
        )
        assert (
            errors["smooth+arbitrate"]
            < errors["smooth"]
            < errors["raw"]
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cleaning_factor(self, seed):
        scenario = ShelfScenario(duration=120.0, seed=seed)
        truth = scenario.truth_series()
        raw = shelf_error(query1_counts(scenario, "raw"), truth)
        cleaned = shelf_error(
            query1_counts(scenario, "smooth+arbitrate"), truth
        )
        assert cleaned < raw / 3


class TestRedwoodAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_yield_progression(self, seed):
        from repro.experiments.redwood import section52

        scenario = RedwoodScenario(
            duration=86400.0, n_groups=4, seed=seed
        )
        stats = section52(scenario)
        assert (
            stats["raw_yield"]
            < stats["smooth_yield"]
            < stats["merge_yield"]
        )
        assert stats["smooth_within_1c"] > 0.9


class TestIntelLabAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_outlier_always_eliminated(self, seed):
        from repro.experiments.intel_lab import figure7

        scenario = IntelLabScenario(
            duration=86400.0,
            failure_onset=0.3 * 86400.0,
            seed=seed,
        )
        result = figure7(scenario)
        assert result["esp_tracking_error_after_failure"] < 1.0
        assert result["naive_tracking_error_after_failure"] > 3.0


class TestOfficeAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_detector_accuracy(self, seed):
        from repro.experiments.office import figure9

        scenario = OfficeScenario(duration=240.0, seed=seed)
        assert figure9(scenario)["accuracy"] > 0.8
