"""Unit coverage for the fault-tolerance primitives.

:mod:`repro.net.recovery` (detector, supervisor, checkpoint store) plus
the two wire-level robustness satellites: the typed
:class:`~repro.errors.FrameTruncated` surfaced on abrupt disconnects,
and the feeder's jittered reconnect backoff.
"""

import asyncio

import pytest

from repro.errors import FrameTruncated, NetError, ProtocolError
from repro.net import protocol
from repro.net.feeder import ReplayFeeder
from repro.net.protocol import FrameDecoder, encode_frame
from repro.net.recovery import (
    ALIVE,
    DEAD,
    RESTARTING,
    SUSPECT,
    CheckpointStore,
    FailureDetector,
    WorkerCheckpoint,
    WorkerSupervisor,
)
from repro.streams.tuples import StreamTuple

WAIT = 20.0


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestFailureDetector:
    def test_silence_escalates_alive_suspect_dead(self):
        clock = FakeClock()
        detector = FailureDetector(
            suspect_after=1.0, dead_after=3.0, clock=clock
        )
        detector.register("w0")
        assert detector.status("w0") == ALIVE
        clock.now = 2.0
        assert detector.status("w0") == SUSPECT
        clock.now = 4.0
        assert detector.status("w0") == DEAD

    def test_traffic_resets_the_silence_clock(self):
        clock = FakeClock()
        detector = FailureDetector(
            suspect_after=1.0, dead_after=3.0, clock=clock
        )
        detector.register("w0")
        clock.now = 2.5
        detector.seen("w0")
        clock.now = 3.2  # 0.7s since the frame: alive again
        assert detector.status("w0") == ALIVE

    def test_check_declares_each_death_once(self):
        clock = FakeClock()
        detector = FailureDetector(
            suspect_after=1.0, dead_after=2.0, clock=clock
        )
        detector.register("w0")
        detector.register("w1")
        detector.seen("w1")
        clock.now = 5.0
        assert detector.check() == ["w0", "w1"]
        assert detector.check() == []  # forced dead: not re-reported
        assert detector.status("w0") == DEAD

    def test_forced_states_override_deadlines_and_traffic(self):
        clock = FakeClock()
        detector = FailureDetector(suspect_after=1.0, clock=clock)
        detector.register("w0")
        detector.mark_restarting("w0")
        detector.seen("w0")  # a straggler frame must not resurrect it
        assert detector.status("w0") == RESTARTING
        detector.mark_dead("w0")
        assert detector.status("w0") == DEAD
        detector.register("w0")  # recovery re-registers: alive again
        assert detector.status("w0") == ALIVE

    def test_no_deadline_means_silence_never_kills(self):
        clock = FakeClock()
        detector = FailureDetector(suspect_after=1.0, clock=clock)
        detector.register("w0")
        clock.now = 1e6
        assert detector.check() == []
        assert detector.status("w0") == SUSPECT

    def test_unknown_worker_reads_dead(self):
        detector = FailureDetector(clock=FakeClock())
        assert detector.status("ghost") == DEAD

    def test_statuses_snapshot_is_sorted(self):
        clock = FakeClock()
        detector = FailureDetector(suspect_after=1.0, clock=clock)
        for label in ("w2", "w0", "w1"):
            detector.register(label)
        detector.mark_dead("w1")
        statuses = detector.statuses()
        assert list(statuses) == ["w0", "w1", "w2"]
        assert statuses["w1"] == DEAD


class TestWorkerSupervisor:
    def run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, WAIT))

    def make(self, **kwargs):
        slept = []

        async def sleep(seconds):
            slept.append(seconds)

        async def spawn(label):
            return "127.0.0.1", 4000 + len(slept)

        supervisor = WorkerSupervisor(spawn, sleep=sleep, **kwargs)
        return supervisor, slept

    def test_backoff_doubles_and_caps(self):
        supervisor, slept = self.make(
            max_restarts=5, backoff_base=0.1, backoff_cap=0.5, jitter=0.0
        )

        async def scenario():
            for _ in range(5):
                assert await supervisor.restart("w0") is not None

        self.run(scenario())
        assert slept == [0.1, 0.2, 0.4, 0.5, 0.5]
        assert supervisor.last_backoff == 0.5

    def test_budget_exhaustion_returns_none_without_spawning(self):
        supervisor, slept = self.make(max_restarts=2, jitter=0.0)

        async def scenario():
            assert await supervisor.restart("w0") is not None
            assert await supervisor.restart("w0") is not None
            assert await supervisor.restart("w0") is None
            # Budgets are per label.
            assert await supervisor.restart("w1") is not None

        self.run(scenario())
        assert supervisor.attempts("w0") == 2
        assert supervisor.attempts("w1") == 1

    def test_reset_reopens_the_budget(self):
        supervisor, _slept = self.make(max_restarts=1, jitter=0.0)

        async def scenario():
            assert await supervisor.restart("w0") is not None
            assert await supervisor.restart("w0") is None
            supervisor.reset("w0")
            assert await supervisor.restart("w0") is not None

        self.run(scenario())

    def test_spawn_failure_counts_as_attempt(self):
        calls = []

        async def sleep(seconds):
            pass

        async def spawn(label):
            calls.append(label)
            raise OSError("no capacity")

        supervisor = WorkerSupervisor(
            spawn, max_restarts=2, sleep=sleep, jitter=0.0
        )

        async def scenario():
            assert await supervisor.restart("w0") is None
            assert await supervisor.restart("w0") is None
            assert await supervisor.restart("w0") is None  # over budget

        self.run(scenario())
        assert calls == ["w0", "w0"]

    def test_jitter_is_seeded_and_bounded(self):
        a, slept_a = self.make(jitter=0.5, seed=11, backoff_base=0.1)
        b, slept_b = self.make(jitter=0.5, seed=11, backoff_base=0.1)

        async def scenario(supervisor):
            await supervisor.restart("w0")
            await supervisor.restart("w0")

        self.run(scenario(a))
        self.run(scenario(b))
        assert slept_a == slept_b  # same seed, same draws
        assert 0.1 <= slept_a[0] < 0.15
        assert 0.2 <= slept_a[1] < 0.3
        assert slept_a[0] != 0.1  # jitter actually applied


class TestCheckpointStore:
    def entry(self, checkpoint_id=1, epoch=0):
        return WorkerCheckpoint(
            checkpoint_id,
            epoch,
            ticks=4,
            state="blob",
            positions={"a": 7},
            per_tick={0: [StreamTuple(0.0, {}, stream="s")]},
            sources=("a", "b"),
        )

    def test_entry_snapshots_are_defensive_copies(self):
        positions = {"a": 7}
        bucket = [StreamTuple(0.0, {}, stream="s")]
        entry = WorkerCheckpoint(
            1, 0, 4, "blob", positions, {0: bucket}, sources=["a"]
        )
        positions["a"] = 99
        bucket.append("poison")
        assert entry.positions == {"a": 7}
        assert len(entry.per_tick[0]) == 1
        assert entry.sources == ("a",)

    def test_latest_wins_and_discard_forgets(self):
        store = CheckpointStore()
        store.record("w0", self.entry(checkpoint_id=1))
        store.record("w0", self.entry(checkpoint_id=2))
        store.record("w1", self.entry(checkpoint_id=3))
        assert store.latest("w0").checkpoint_id == 2
        assert store.labels() == ["w0", "w1"]
        store.discard("w0")
        assert store.latest("w0") is None
        assert store.labels() == ["w1"]


class TestFrameTruncated:
    """Abrupt disconnects surface a typed error, not asyncio internals."""

    def test_is_a_protocol_error(self):
        # Existing except-ProtocolError handlers keep working.
        assert issubclass(FrameTruncated, ProtocolError)

    def test_decoder_eof_mid_frame(self):
        decoder = FrameDecoder()
        data = encode_frame({"type": "drain"})
        decoder.feed(data[: len(data) - 3])
        with pytest.raises(FrameTruncated, match="mid-frame"):
            decoder.eof()

    def test_decoder_eof_mid_header(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00")
        with pytest.raises(FrameTruncated, match="mid-header"):
            decoder.eof()

    def test_decoder_eof_at_boundary_is_clean(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame({"type": "drain"}))
        decoder.eof()  # no buffered remainder: no error

    def test_read_frame_raw_truncated_payload(self):
        async def scenario():
            reader = asyncio.StreamReader()
            data = encode_frame({"type": "drain"})
            reader.feed_data(data[: len(data) - 2])
            reader.feed_eof()
            with pytest.raises(FrameTruncated, match="mid-frame"):
                await protocol.read_frame_raw(reader)

        asyncio.run(asyncio.wait_for(scenario(), WAIT))

    def test_read_frame_raw_truncated_header(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x01")
            reader.feed_eof()
            with pytest.raises(FrameTruncated, match="mid-header"):
                await protocol.read_frame_raw(reader)

        asyncio.run(asyncio.wait_for(scenario(), WAIT))

    def test_clean_eof_is_still_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            assert await protocol.read_frame_raw(reader) is None

        asyncio.run(asyncio.wait_for(scenario(), WAIT))


class TestFeederBackoff:
    def make(self, **kwargs):
        streams = {"s": [StreamTuple(0.0, {"v": 1}, stream="s")]}
        return ReplayFeeder("127.0.0.1", 1, streams, **kwargs)

    def test_default_is_exact_exponential_with_cap(self):
        feeder = self.make(backoff_base=0.05, backoff_cap=0.4)
        delays = [feeder._backoff(n) for n in range(1, 6)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.4]
        assert feeder.last_backoff == 0.4

    def test_jitter_bounded_and_seeded(self):
        a = self.make(backoff_jitter=0.5, backoff_seed=9)
        b = self.make(backoff_jitter=0.5, backoff_seed=9)
        delays_a = [a._backoff(n) for n in range(1, 5)]
        delays_b = [b._backoff(n) for n in range(1, 5)]
        assert delays_a == delays_b
        for attempt, delay in enumerate(delays_a, start=1):
            base = min(1.0, 0.05 * 2 ** (attempt - 1))
            assert base <= delay < base * 1.5

    def test_report_exposes_backoff_ms(self):
        feeder = self.make(backoff_base=0.125)
        assert feeder.report()["reconnect_backoff_ms"] == 0.0
        feeder._backoff(1)
        assert feeder.report()["reconnect_backoff_ms"] == 125.0

    def test_negative_jitter_rejected(self):
        with pytest.raises(NetError):
            self.make(backoff_jitter=-0.1)

    def test_reconnects_on_truncated_credit_frame(self):
        """A gateway dying mid-frame triggers a reconnect, not a crash."""

        async def scenario():
            sessions = []

            async def serve(reader, writer):
                index = len(sessions)
                sessions.append(index)
                hello = await protocol.read_frame(reader)
                assert hello["type"] == "hello"
                await protocol.write_frame(
                    writer,
                    protocol.hello_ack({"s": 8}, hello.get("version")),
                )
                if index == 0:
                    # First connection: cut a credit frame mid-payload.
                    await protocol.read_frame_raw(reader)  # the data frame
                    frame = encode_frame(protocol.credit_frame("s", 1))
                    writer.write(frame[: len(frame) - 4])
                    await writer.drain()
                    writer.close()
                    return
                # Second connection: accept the resend and say goodbye.
                while True:
                    frame = await protocol.read_frame(reader)
                    if frame is None:
                        return
                    if frame["type"] == "bye":
                        await protocol.write_frame(
                            writer, protocol.bye_ack(frame["source"])
                        )
                        return

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            feeder = ReplayFeeder(
                host,
                port,
                {"s": [StreamTuple(0.0, {"v": 1}, stream="s")]},
                backoff_base=0.001,
                backoff_cap=0.002,
            )
            report = await asyncio.wait_for(feeder.run(), WAIT)
            server.close()
            await server.wait_closed()
            assert report["reconnects"] == 1
            assert len(sessions) == 2

        asyncio.run(scenario())
