"""Tests for hierarchical (HiFi-style) composition of ESP deployments."""

import numpy as np
import pytest

from repro.core.compose import EdgeSite, hierarchical_run
from repro.cql import compile_query
from repro.errors import PipelineError
from repro.pipelines.rfid_shelf import build_shelf_processor
from repro.scenarios import ShelfScenario


@pytest.fixture(scope="module")
def two_stores():
    """Two independent store deployments sharing one pipeline design."""
    sites = []
    for index in (0, 1):
        scenario = ShelfScenario(duration=60.0, seed=100 + index)
        processor = build_shelf_processor(scenario, "smooth+arbitrate")
        sites.append(
            (
                scenario,
                EdgeSite(
                    f"store{index}",
                    processor,
                    sources=scenario.recorded_streams(),
                ),
            )
        )
    return sites


class TestEdgeSite:
    def test_site_output_stamped(self, two_stores):
        scenario, site = two_stores[0]
        out = site.run(until=scenario.duration, tick=scenario.poll_period)
        assert out
        assert all(item.stream == "store0" for item in out)
        assert all(item["site"] == "store0" for item in out)

    def test_empty_name_rejected(self, two_stores):
        _scenario, site = two_stores[0]
        with pytest.raises(PipelineError):
            EdgeSite("", site.processor)


class TestHierarchicalRun:
    def parent_query(self):
        # HiFi-style roll-up: chain-wide distinct item count per site,
        # computed over the union of the sites' *cleaned* streams.
        return compile_query(
            "SELECT site, count(distinct tag_id) AS items "
            "FROM store0 [Range By 'NOW'] GROUP BY site "
            "UNION "
            "SELECT site, count(distinct tag_id) AS items "
            "FROM store1 [Range By 'NOW'] GROUP BY site"
        )

    def test_parent_sees_both_sites(self, two_stores):
        scenario = two_stores[0][0]
        out = hierarchical_run(
            [site for _s, site in two_stores],
            self.parent_query(),
            until=scenario.duration,
            tick=scenario.poll_period,
        )
        sites_seen = {item["site"] for item in out}
        assert sites_seen == {"store0", "store1"}

    def test_rollup_counts_track_truth(self, two_stores):
        scenario = two_stores[0][0]
        out = hierarchical_run(
            [site for _s, site in two_stores],
            self.parent_query(),
            until=scenario.duration,
            tick=scenario.poll_period,
        )
        # Each store holds exactly 25 items across its two shelves (the
        # relocated tags move between shelves, never between stores);
        # the cleaned roll-up must track that total closely.
        counts = [item["items"] for item in out if item.timestamp > 10.0]
        assert counts
        assert 21 <= np.mean(counts) <= 26

    def test_coarser_parent_tick(self, two_stores):
        scenario = two_stores[0][0]
        fine = hierarchical_run(
            [site for _s, site in two_stores],
            self.parent_query(),
            until=scenario.duration,
            tick=scenario.poll_period,
        )
        coarse = hierarchical_run(
            [site for _s, site in two_stores],
            self.parent_query(),
            until=scenario.duration,
            tick=scenario.poll_period,
            parent_tick=5.0,
        )
        assert len(coarse) < len(fine)

    def test_duplicate_site_names_rejected(self, two_stores):
        _scenario, site = two_stores[0]
        with pytest.raises(PipelineError):
            hierarchical_run(
                [site, site], self.parent_query(), until=1.0, tick=1.0
            )

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(PipelineError):
            hierarchical_run([], compile_query("SELECT * FROM x"),
                             until=1.0, tick=1.0)

    def test_invalid_parent_tick(self, two_stores):
        _scenario, site = two_stores[0]
        with pytest.raises(PipelineError):
            hierarchical_run(
                [site], self.parent_query(), until=1.0, tick=1.0,
                parent_tick=0.0,
            )
