"""Unit tests for the StreamTuple data model."""

import pytest

from repro.errors import SchemaError
from repro.streams.tuples import StreamTuple


def make(ts=1.0, **fields):
    return StreamTuple(ts, fields, stream="s")


class TestAccess:
    def test_getitem_returns_value(self):
        assert make(tag_id="a")["tag_id"] == "a"

    def test_getitem_missing_raises_schema_error(self):
        with pytest.raises(SchemaError) as err:
            make(tag_id="a")["nope"]
        assert "nope" in str(err.value)
        assert "tag_id" in str(err.value)  # lists available fields

    def test_get_with_default(self):
        assert make().get("missing", 42) == 42

    def test_get_without_default_returns_none(self):
        assert make().get("missing") is None

    def test_contains(self):
        item = make(x=1)
        assert "x" in item
        assert "y" not in item

    def test_len_and_iter(self):
        item = make(a=1, b=2)
        assert len(item) == 2
        assert sorted(item) == ["a", "b"]

    def test_keys_items(self):
        item = make(a=1)
        assert list(item.keys()) == ["a"]
        assert list(item.items()) == [("a", 1)]

    def test_as_dict_is_a_copy(self):
        item = make(a=1)
        copy = item.as_dict()
        copy["a"] = 99
        assert item["a"] == 1

    def test_timestamp_coerced_to_float(self):
        assert isinstance(StreamTuple(3, {}).timestamp, float)

    def test_empty_values_default(self):
        assert len(StreamTuple(0.0)) == 0


class TestDerive:
    def test_derive_overrides_fields(self):
        derived = make(a=1, b=2).derive(values={"b": 3})
        assert derived["a"] == 1
        assert derived["b"] == 3

    def test_derive_keeps_original_untouched(self):
        original = make(a=1)
        original.derive(values={"a": 2})
        assert original["a"] == 1

    def test_derive_changes_timestamp(self):
        assert make(ts=1.0).derive(timestamp=5.0).timestamp == 5.0

    def test_derive_keeps_timestamp_by_default(self):
        assert make(ts=1.5).derive(values={"x": 1}).timestamp == 1.5

    def test_derive_changes_stream(self):
        assert make().derive(stream="other").stream == "other"

    def test_derive_keeps_stream_by_default(self):
        assert make().derive(values={"x": 1}).stream == "s"

    def test_derive_drop_removes_fields(self):
        derived = make(a=1, b=2).derive(drop=("a",))
        assert "a" not in derived
        assert derived["b"] == 2

    def test_derive_drop_missing_field_is_noop(self):
        derived = make(a=1).derive(drop=("zzz",))
        assert derived["a"] == 1

    def test_project_keeps_only_named_fields(self):
        projected = make(a=1, b=2, c=3).project(("a", "c"))
        assert sorted(projected.keys()) == ["a", "c"]


class TestEquality:
    def test_equal_tuples(self):
        assert make(a=1) == make(a=1)

    def test_different_fields_not_equal(self):
        assert make(a=1) != make(a=2)

    def test_different_timestamp_not_equal(self):
        assert make(ts=1.0, a=1) != make(ts=2.0, a=1)

    def test_different_stream_not_equal(self):
        assert StreamTuple(0, {"a": 1}, "x") != StreamTuple(0, {"a": 1}, "y")

    def test_hashable_and_consistent(self):
        assert hash(make(a=1)) == hash(make(a=1))
        assert len({make(a=1), make(a=1), make(a=2)}) == 2

    def test_not_equal_to_other_types(self):
        assert make() != "not a tuple"

    def test_repr_mentions_fields(self):
        text = repr(make(tag_id="t7"))
        assert "tag_id" in text and "t7" in text
