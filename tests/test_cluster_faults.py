"""Differential fault injection: crash-then-recover ≡ never-crashed.

The recovery layer's contract, pinned the same way the rebalance suite
pins membership changes: for every scripted fault — worker kill
mid-epoch, kill during a planned rebalance, connection reset, truncated
frames, a slow worker — the cluster's merged egress is byte-identical
to the in-memory single-node run, and recovery ships bounded checkpoint
state plus only the post-checkpoint frame tail rather than replaying
full history.

Same discipline as the rest of the net suite: real loopback sockets,
no wall-clock sleeps (fake clocks drive liveness deadlines),
``asyncio.wait_for`` as hang insurance only.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetError
from repro.net import protocol
from repro.net.faults import ChaosProxy, FaultEvent, chaos_run
from repro.net.feeder import ReplayFeeder
from repro.net.ops import format_top
from repro.net.protocol import read_frame, write_frame
from repro.net.router import ClusterRouter
from repro.net.service import build_bundle
from repro.net.worker import ClusterWorker

WAIT = 30.0
SEED = 3


def in_memory_output(name, duration):
    bundle = build_bundle(name, duration, SEED)
    run = bundle.processor.run(
        bundle.until, bundle.tick, sources=bundle.streams
    )
    return run.output


class TestChaosDifferential:
    """chaos_run schedules: every fault recovers byte-identically."""

    def run(self, **kwargs):
        async def scenario():
            return await asyncio.wait_for(
                chaos_run("shelf", duration=8.0, seed=SEED, **kwargs),
                WAIT * 2,
            )

        return asyncio.run(scenario())

    def test_control_run_uses_no_recovery(self):
        report = self.run(fault="none", checkpoint_interval=20)
        assert report["identical"]
        recovery = report["recovery"]
        assert recovery["checkpoints_acked"] > 0
        assert recovery["resumes"] == 0
        assert recovery["failovers"] == 0
        assert recovery["replayed_frames"] == 0

    def test_worker_kill_mid_epoch_resumes_from_checkpoint(self):
        report = self.run(fault="kill", checkpoint_interval=20)
        assert report["identical"]
        recovery = report["recovery"]
        # The supervisor respawned the process and the router resumed
        # it from the last acked checkpoint...
        assert recovery["restarts"] >= 1
        assert recovery["resumes"] >= 1
        assert recovery["checkpoints_acked"] >= 1
        assert recovery["failovers"] == 0
        # ...replaying only the post-checkpoint tail, not full history.
        assert 0 < recovery["replayed_frames"] < report["trigger_frame"]

    def test_connection_reset_resumes_surviving_process(self):
        report = self.run(fault="reset", checkpoint_interval=20)
        assert report["identical"]
        assert report["injected"][0]["kind"] == "reset"
        recovery = report["recovery"]
        # The process outlived its connection: resume, no respawn.
        assert recovery["resumes"] >= 1
        assert recovery["restarts"] == 0
        assert 0 < recovery["replayed_frames"] < report["trigger_frame"]

    def test_truncated_frame_triggers_typed_recovery(self):
        report = self.run(fault="truncate", checkpoint_interval=20)
        assert report["identical"]
        assert report["injected"][0]["kind"] == "truncate"
        assert report["recovery"]["resumes"] >= 1

    def test_slow_worker_degrades_without_recovery(self):
        report = self.run(fault="slow", checkpoint_interval=20)
        assert report["identical"]
        assert report["injected"][0]["kind"] == "slow"
        recovery = report["recovery"]
        assert recovery["resumes"] == 0
        assert recovery["failovers"] == 0
        assert recovery["replayed_frames"] == 0

    def test_source_sharded_scenario_survives_a_kill(self):
        # redwood shards whole sources (spatial granules) per worker.
        async def scenario():
            return await asyncio.wait_for(
                chaos_run(
                    "redwood", seed=SEED, fault="kill",
                    checkpoint_interval=20,
                ),
                WAIT * 2,
            )

        report = asyncio.run(scenario())
        assert report["identical"]
        recovery = report["recovery"]
        # The recording is short, so the kill can land mid-stream (a
        # supervised resume) or during the final drain (a failover
        # re-run) — either way the respawn happened and output matched.
        assert recovery["resumes"] + recovery["failovers"] >= 1
        assert recovery["restarts"] >= 1


class TestFailover:
    """No supervisor, or no checkpoints: the span fails over instead."""

    async def _cluster(self, *, n_workers, checkpoint_interval, kill_at):
        bundle = build_bundle("shelf", 8.0, SEED)
        total = sum(len(items) for items in bundle.streams.values())
        workers = []

        async def spawn(label):
            worker = ClusterWorker(build_bundle("shelf", 8.0, SEED))
            workers.append(worker)
            return await worker.start()

        router = ClusterRouter(
            build_bundle("shelf", 8.0, SEED),
            checkpoint_interval=checkpoint_interval,
        )
        specs = []
        for index in range(n_workers):
            host, port = await spawn(f"w{index}")
            specs.append((f"w{index}", host, port))
        host, port = await router.start()
        await router.connect_workers(specs)
        feeder = ReplayFeeder(host, port, bundle.streams)
        feed_task = asyncio.ensure_future(feeder.run())
        try:
            await asyncio.wait_for(
                router.wait_for_data_frames(max(1, int(kill_at * total))),
                WAIT,
            )
            yield router, workers, spawn
            await asyncio.wait_for(feed_task, WAIT)
            await asyncio.wait_for(router.run_until_complete(), WAIT)
        finally:
            if not feed_task.done():
                feed_task.cancel()
                try:
                    await feed_task
                except (asyncio.CancelledError, Exception):
                    pass
            await router.close()
            for worker in workers:
                await worker.close()

    def test_kill_without_supervisor_fails_over_to_survivors(self):
        reference = in_memory_output("shelf", 8.0)

        async def scenario():
            harness = self._cluster(
                n_workers=2, checkpoint_interval=16, kill_at=0.4
            )
            async for router, workers, _spawn in harness:
                await workers[0].close()  # kill w0; no supervisor
                await asyncio.wait_for(
                    router.wait_for_recovery("failovers"), WAIT
                )
            return router

        router = asyncio.run(scenario())
        assert router.result() == reference
        recovery = router.recovery
        assert recovery["failovers"] >= 1
        assert recovery["resumes"] == 0
        # The dead worker had acked checkpoints, so the closed epoch
        # still kept every tick its snapshot covered.
        epochs = router.epochs()
        assert len(epochs) >= 2
        assert epochs[1]["workers"] == ["w1"]

    def test_kill_without_checkpoints_reruns_the_whole_epoch(self):
        reference = in_memory_output("shelf", 8.0)

        async def scenario():
            harness = self._cluster(
                n_workers=2, checkpoint_interval=None, kill_at=0.4
            )
            async for router, workers, _spawn in harness:
                await workers[0].close()
                await asyncio.wait_for(
                    router.wait_for_recovery("failovers"), WAIT
                )
            return router

        router = asyncio.run(scenario())
        assert router.result() == reference
        epochs = router.epochs()
        # No checkpoint existed: nothing from epoch 0 was trustworthy,
        # so its span is empty and the survivors re-ran from tick 0.
        assert epochs[0]["end_tick"] == epochs[0]["start_tick"] == 0

    def test_kill_during_planned_rebalance(self):
        reference = in_memory_output("shelf", 8.0)

        async def scenario():
            harness = self._cluster(
                n_workers=2, checkpoint_interval=16, kill_at=0.3
            )
            async for router, workers, spawn in harness:
                # Kill w0 and immediately request a join: the recovery
                # task and the planned rebalance serialize on the same
                # lock, in whichever order they got there.
                await workers[0].close()
                host, port = await spawn("w2")
                await asyncio.wait_for(
                    router.add_worker("w2", host, port), WAIT
                )
            return router

        router = asyncio.run(scenario())
        assert router.result() == reference
        assert router.epochs()[-1]["workers"][-1] == "w2"

    def test_every_worker_lost_raises_cleanly(self):
        # Sole worker dies, no supervisor: recovery cannot succeed. The
        # failure must surface as a typed error on run_until_complete
        # with the gate left closed — never a hang, never silent loss.
        async def scenario():
            bundle = build_bundle("shelf", 8.0, SEED)
            worker = ClusterWorker(build_bundle("shelf", 8.0, SEED))
            w_host, w_port = await worker.start()
            router = ClusterRouter(
                build_bundle("shelf", 8.0, SEED), checkpoint_interval=16
            )
            host, port = await router.start()
            await router.connect_workers([("w0", w_host, w_port)])
            feeder = ReplayFeeder(host, port, bundle.streams)
            feed_task = asyncio.ensure_future(feeder.run())
            try:
                await asyncio.wait_for(router.wait_for_data_frames(20), WAIT)
                await worker.close()
                with pytest.raises(NetError, match="lost"):
                    await asyncio.wait_for(router.run_until_complete(), WAIT)
            finally:
                feed_task.cancel()
                try:
                    await feed_task
                except (asyncio.CancelledError, Exception):
                    pass
                await router.close()
                await worker.close()

        asyncio.run(asyncio.wait_for(scenario(), WAIT * 2))


class ScriptedWorker:
    """Speaks just enough worker dialect to script credit behaviour.

    Connection 0 grants ``initial_credits`` per source and then goes
    silent (a stalled worker: the router ends up holding forwarded
    frames whose feeder credits it cannot return). Later connections
    grant liberally and ack everything, so recovery can route around
    the stall.
    """

    def __init__(self, *, initial_credits=64, stall_first_connection=False):
        self.initial_credits = initial_credits
        self.stall_first_connection = stall_first_connection
        self.connections = 0
        self.data_frames = 0
        self._server = None
        self._tasks = set()
        self.poke = asyncio.Event()  # send one out-of-band credit frame

    async def start(self):
        self._server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0
        )
        return self._server.sockets[0].getsockname()[:2]

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def _serve(self, reader, writer):
        task = asyncio.current_task()
        self._tasks.add(task)
        connection = self.connections
        self.connections += 1
        stalled = self.stall_first_connection and connection == 0
        try:
            hello = await read_frame(reader)
            label = hello.get("worker", "w?")
            route = await read_frame(reader)
            if route.get("resume"):
                await read_frame(reader)
            sources = route.get("sources") or []
            epoch = int(route.get("epoch", 0))
            await write_frame(
                writer,
                protocol.hello_ack(
                    {name: self.initial_credits for name in sources}, 2
                ),
            )
            poker = asyncio.ensure_future(self._poker(writer, sources))
            try:
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        return
                    kind = frame.get("type")
                    if kind == "data":
                        self.data_frames += 1
                        if not stalled:
                            await write_frame(
                                writer,
                                protocol.credit_frame(frame["source"], 1),
                            )
                    elif kind == "bye":
                        await write_frame(
                            writer, protocol.bye_ack(frame["source"])
                        )
                    elif kind == "drain":
                        await write_frame(
                            writer,
                            protocol.result_end(epoch, label, 0, {}),
                        )
                        return
                    # heartbeats, checkpoints: ignored (never acked)
            finally:
                poker.cancel()
                try:
                    await poker
                except (asyncio.CancelledError, Exception):
                    pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # close() tearing the scripted worker down
        finally:
            self._tasks.discard(task)
            writer.close()

    async def _poker(self, writer, sources):
        await self.poke.wait()
        self.poke.clear()
        await write_frame(writer, protocol.credit_frame(sources[0], 0))


class TestCreditDebtOnLeave:
    """Worker leave under in-flight credit debt: no deadlock, no
    double-grant.

    A stalled worker stops granting credits, so the router is stuck
    holding forwarded-but-uncredited feeder frames when the leave
    freezes the gate. The deadline sweep (fake clock — the test never
    sleeps) declares the staller dead, which aborts the blocked
    forwards, lets the handoff drain, and re-runs everything on the
    survivor. Every data frame must come back with exactly one feeder
    credit — debt neither leaks (deadlock) nor double-pays.
    """

    @given(initial_credits=st.integers(min_value=0, max_value=3))
    @settings(max_examples=5, deadline=None)
    def test_leave_with_stalled_worker(self, initial_credits):
        clock_box = {"now": 0.0}

        async def scenario():
            bundle = build_bundle("shelf", 6.0, SEED)
            staller = ScriptedWorker(
                initial_credits=initial_credits,
                stall_first_connection=True,
            )
            leaver = ScriptedWorker()
            survivor = ScriptedWorker()
            router = ClusterRouter(
                build_bundle("shelf", 6.0, SEED),
                clock=lambda: clock_box["now"],
                suspect_after=1.0,
                dead_after=3.0,
            )
            specs = []
            for label, worker in (
                ("w0", staller), ("w1", leaver), ("w2", survivor)
            ):
                host, port = await worker.start()
                specs.append((label, host, port))
            host, port = await router.start()
            await router.connect_workers(specs)
            feeder = ReplayFeeder(host, port, bundle.streams)
            feed_task = asyncio.ensure_future(feeder.run())
            try:
                # Run until forwarding quiesces: the staller's credits
                # are exhausted, so a forward is blocked on it and the
                # router holds that frame's feeder credit as debt.
                await asyncio.wait_for(
                    router.wait_for_data_frames(1), WAIT
                )
                previous = -1
                while router.data_frames != previous:
                    previous = router.data_frames
                    await asyncio.sleep(0.05)
                assert not feed_task.done()
                leave = asyncio.ensure_future(router.remove_worker("w1"))
                await asyncio.sleep(0)  # let the leave freeze the gate
                # Advance the fake clock past the deadline; keep the
                # survivor visibly alive with one out-of-band frame.
                clock_box["now"] = 10.0
                survivor.poke.set()
                while router.readiness()["workers"].get("w2") != "alive":
                    await asyncio.sleep(0.001)
                died = router.check_workers()
                assert "w0" in died
                await asyncio.wait_for(leave, WAIT)
                report = await asyncio.wait_for(feed_task, WAIT)
                return report, router, set(router.stats()["workers"])
            finally:
                if not feed_task.done():
                    feed_task.cancel()
                    try:
                        await feed_task
                    except (asyncio.CancelledError, Exception):
                        pass
                await router.close()
                for worker in (staller, leaver, survivor):
                    await worker.close()

        report, router, members = asyncio.run(
            asyncio.wait_for(scenario(), WAIT * 2)
        )
        # No deadlock (we got here) and no double-grant: exactly one
        # credit came back per data frame sent, dead-worker debt
        # included.
        assert report["credit_frames"] == sum(report["sent"].values())
        assert router.recovery["forwards_skipped_dead"] >= 1
        assert members == {"w2"}


class TestLivenessOpsPlane:
    """Worker liveness surfaces on /readyz, stats and `repro top`."""

    def test_readyz_and_stats_report_statuses(self):
        async def scenario():
            worker = ClusterWorker(build_bundle("shelf", 6.0, SEED))
            host, port = await worker.start()
            router = ClusterRouter(build_bundle("shelf", 6.0, SEED))
            await router.start()
            await router.connect_workers([("w0", host, port)])
            try:
                readiness = router.readiness()
                assert readiness["workers"] == {"w0": "alive"}
                stats = router.stats()
                assert stats["workers"]["w0"]["status"] == "alive"
                assert stats["checkpoint_interval"] is None
                assert stats["recovery"]["failovers"] == 0
                assert stats["retained_frames"] == 0
            finally:
                await router.close()
                await worker.close()

        asyncio.run(asyncio.wait_for(scenario(), WAIT))

    def test_top_renders_worker_status_column(self):
        document = {
            "readiness": {"ready": True, "reasons": []},
            "telemetry": {},
            "gateway": {
                "epoch": 1,
                "data_frames": 42,
                "shard_key": "tag_id",
                "workers": {
                    "w0": {
                        "address": "127.0.0.1:9000",
                        "sources": 3,
                        "acked": 0,
                        "status": "restarting",
                    },
                    "w1": {
                        "address": "127.0.0.1:9001",
                        "sources": 3,
                        "acked": 0,
                        "status": "alive",
                    },
                },
                "sources": {},
            },
        }
        rendered = format_top(document)
        header = next(
            line for line in rendered.splitlines()
            if line.startswith("worker")
        )
        assert "status" in header
        assert "restarting" in rendered
        assert "alive" in rendered


class TestChaosProxyUnit:
    """The proxy's frame counting and fault primitives, in isolation."""

    def test_transparent_when_schedule_is_empty(self):
        async def scenario():
            async def echo(reader, writer):
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
                    await write_frame(writer, frame)
                writer.close()

            server = await asyncio.start_server(echo, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            proxy = ChaosProxy(host, port)
            proxy_host, proxy_port = await proxy.start()
            reader, writer = await asyncio.open_connection(
                proxy_host, proxy_port
            )
            for index in range(3):
                await write_frame(writer, protocol.bye(f"s{index}"))
                frame = await asyncio.wait_for(read_frame(reader), WAIT)
                assert frame == protocol.bye(f"s{index}")
            writer.close()
            await proxy.close()
            server.close()
            await server.wait_closed()
            assert proxy.injected == []
            assert proxy.connections == 1

        asyncio.run(asyncio.wait_for(scenario(), WAIT))

    def test_truncate_surfaces_frame_truncated_at_receiver(self):
        from repro.errors import FrameTruncated

        async def scenario():
            sink_done = asyncio.Event()

            async def sink(reader, writer):
                with pytest.raises(FrameTruncated):
                    while True:
                        if await read_frame(reader) is None:
                            break
                sink_done.set()
                writer.close()

            server = await asyncio.start_server(sink, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            proxy = ChaosProxy(
                host, port, [FaultEvent("truncate", at_frame=2)]
            )
            proxy_host, proxy_port = await proxy.start()
            _reader, writer = await asyncio.open_connection(
                proxy_host, proxy_port
            )
            await write_frame(writer, protocol.bye("a"))
            await write_frame(writer, protocol.bye("b"))
            await asyncio.wait_for(sink_done.wait(), WAIT)
            writer.close()
            await proxy.close()
            server.close()
            await server.wait_closed()
            assert proxy.injected[0]["frame"] == 2

        asyncio.run(asyncio.wait_for(scenario(), WAIT))
