"""Unit tests for ESPPipeline assembly and the ESPProcessor wiring."""

import pytest

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.core.operators.arbitrate_ops import max_count_arbitrate
from repro.core.operators.merge_ops import spatial_average
from repro.core.operators.point_ops import range_filter
from repro.core.operators.smooth_ops import presence_smoother
from repro.core.operators.virtualize_ops import voting_detector
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.core.stages import Stage, StageKind
from repro.errors import PipelineError
from repro.receptors.motes import Mote
from repro.receptors.registry import DeviceRegistry
from repro.receptors.rfid import DetectionField, RFIDReader, TagPlacement
from repro.streams.tuples import StreamTuple


def certain_field():
    return DetectionField([(0.0, 1.0), (99.0, 1.0)])


def build_rfid_registry(n_readers=2):
    registry = DeviceRegistry()
    for index in range(n_readers):
        granule = SpatialGranule(f"shelf{index}")
        group = registry.add_group(
            f"shelf{index}_readers", granule, receptor_kind="rfid"
        )
        tags = [TagPlacement(f"tag{index}", lambda r, t: 3.0)]
        reader = RFIDReader(
            f"reader{index}",
            shelf=f"shelf{index}",
            tags=tags,
            field=certain_field(),
            sample_period=1.0,
            rng=index,
        )
        registry.assign(reader, group.name)
    return registry


class TestESPPipeline:
    def test_canonical_order(self):
        pipeline = ESPPipeline(
            "rfid",
            temporal_granule=TemporalGranule(5.0),
            point=range_filter("v", high=10),
            smooth=presence_smoother(),
            arbitrate=max_count_arbitrate(tie_break="all"),
        )
        kinds = [s.kind for s in pipeline.sequence]
        assert kinds == [StageKind.POINT, StageKind.SMOOTH, StageKind.ARBITRATE]

    def test_stage_lists_allowed(self):
        pipeline = ESPPipeline(
            "rfid",
            point=[range_filter("v", high=10), range_filter("v", low=0)],
        )
        assert len(pipeline.sequence) == 2

    def test_explicit_sequence(self):
        pipeline = ESPPipeline(
            "rfid",
            sequence=[
                max_count_arbitrate(tie_break="all"),
                presence_smoother(window=5.0),
            ],
        )
        kinds = [s.kind for s in pipeline.sequence]
        assert kinds == [StageKind.ARBITRATE, StageKind.SMOOTH]

    def test_sequence_and_kwargs_mutually_exclusive(self):
        with pytest.raises(PipelineError):
            ESPPipeline(
                "rfid",
                point=range_filter("v", high=1),
                sequence=[presence_smoother(window=1.0)],
            )

    def test_wrong_kind_argument_rejected(self):
        with pytest.raises(PipelineError):
            ESPPipeline("rfid", point=presence_smoother(window=5.0))

    def test_virtualize_rejected_in_kind_pipeline(self):
        with pytest.raises(PipelineError):
            ESPPipeline("rfid", sequence=[voting_detector({"a": None}, 1)])

    def test_repr(self):
        pipeline = ESPPipeline("rfid", smooth=presence_smoother(window=1.0))
        assert "rfid" in repr(pipeline)


class TestESPProcessorWiring:
    def test_empty_pipeline_passes_annotated_readings(self):
        registry = build_rfid_registry(1)
        processor = ESPProcessor(registry)
        run = processor.run(until=2.0, tick=1.0)
        assert len(run.output) == 3  # ticks 0,1,2 with certain detection
        first = run.output[0]
        assert first["spatial_granule"] == "shelf0"
        assert first["proximity_group"] == "shelf0_readers"
        assert first["tag_id"] == "tag0"

    def test_no_devices_rejected(self):
        with pytest.raises(PipelineError):
            ESPProcessor(DeviceRegistry()).run(until=1.0)

    def test_duplicate_pipeline_rejected(self):
        processor = ESPProcessor(build_rfid_registry(1))
        processor.add_pipeline(ESPPipeline("rfid"))
        with pytest.raises(PipelineError):
            processor.add_pipeline(ESPPipeline("rfid"))

    def test_point_stage_filters_per_stream(self):
        registry = build_rfid_registry(1)
        processor = ESPProcessor(registry)
        processor.add_pipeline(
            ESPPipeline(
                "rfid",
                point=Stage.from_function(
                    StageKind.POINT, lambda t: None  # drop everything
                ),
            )
        )
        run = processor.run(until=2.0, tick=1.0)
        assert run.output == []

    def test_smooth_stage_per_stream_instances(self):
        registry = build_rfid_registry(2)
        processor = ESPProcessor(registry)
        processor.add_pipeline(
            ESPPipeline(
                "rfid",
                temporal_granule=TemporalGranule(5.0),
                smooth=presence_smoother(),
            )
        )
        run = processor.run(until=0.0, tick=1.0)
        granules = {t["spatial_granule"] for t in run.output}
        assert granules == {"shelf0", "shelf1"}

    def test_taps_capture_intermediate_streams(self):
        registry = build_rfid_registry(1)
        processor = ESPProcessor(registry)
        processor.add_pipeline(
            ESPPipeline(
                "rfid",
                temporal_granule=TemporalGranule(5.0),
                smooth=presence_smoother(),
            )
        )
        run = processor.run(until=1.0, tick=1.0, taps=("raw", "smooth"))
        assert run.tap("rfid", "raw")
        assert run.tap("rfid", "smooth")
        assert run.tap("rfid", "nonexistent") == []

    def test_sources_override_replays_identically(self):
        registry = build_rfid_registry(1)
        recorded = {
            "reader0": [
                StreamTuple(0.0, {"tag_id": "x", "shelf": "shelf0",
                                  "reader_id": "reader0"}, "reader0")
            ]
        }
        processor = ESPProcessor(registry)
        run1 = processor.run(until=1.0, tick=1.0, sources=recorded)
        run2 = ESPProcessor(registry).run(until=1.0, tick=1.0, sources=recorded)
        assert run1.output == run2.output
        assert run1.output[0]["tag_id"] == "x"

    def test_invalid_tick(self):
        processor = ESPProcessor(build_rfid_registry(1))
        with pytest.raises(PipelineError):
            processor.run(until=1.0, tick=0.0)

    def test_default_tick_is_min_sample_period(self):
        registry = build_rfid_registry(1)
        run = ESPProcessor(registry).run(until=2.0)  # period 1.0
        assert len(run.output) == 3


class TestScopeWidening:
    def build_mote_registry(self):
        registry = DeviceRegistry()
        granule = SpatialGranule("room")
        group = registry.add_group("room_motes", granule, receptor_kind="mote")
        for index in (1, 2):
            mote = Mote(
                f"m{index}",
                field=lambda now: 20.0 + index,
                sample_period=1.0,
                noise_std=0.0,
                rng=index,
            )
            registry.assign(mote, group.name)
        return registry

    def test_merge_unions_group_streams(self):
        registry = self.build_mote_registry()
        processor = ESPProcessor(registry)
        processor.add_pipeline(
            ESPPipeline(
                "mote",
                merge=spatial_average(window=5.0, value_field="temp"),
            )
        )
        run = processor.run(until=0.0, tick=1.0)
        assert len(run.output) == 1  # one row per granule, both motes merged
        assert run.output[0]["readings"] == 2

    def test_arbitrate_unions_all_kind_streams(self):
        registry = build_rfid_registry(2)
        processor = ESPProcessor(registry)
        processor.add_pipeline(
            ESPPipeline(
                "rfid",
                arbitrate=max_count_arbitrate(tie_break="all"),
            )
        )
        run = processor.run(until=0.0, tick=1.0)
        pairs = {(t["spatial_granule"], t["tag_id"]) for t in run.output}
        assert pairs == {("shelf0", "tag0"), ("shelf1", "tag1")}

    def test_stream_stage_after_widening_runs_once(self):
        # Arbitrate (kind scope) then Smooth: smooth applies at kind level.
        registry = build_rfid_registry(2)
        processor = ESPProcessor(registry)
        processor.add_pipeline(
            ESPPipeline(
                "rfid",
                sequence=[
                    max_count_arbitrate(tie_break="all"),
                    presence_smoother(window=5.0),
                ],
            )
        )
        run = processor.run(until=0.0, tick=1.0)
        assert {t["spatial_granule"] for t in run.output} == {
            "shelf0",
            "shelf1",
        }


class TestVirtualize:
    def test_virtualize_requires_virtualize_stage(self):
        processor = ESPProcessor(build_rfid_registry(1))
        with pytest.raises(PipelineError):
            processor.set_virtualize(presence_smoother(window=1.0))

    def test_virtualize_combines_kinds(self):
        registry = build_rfid_registry(1)
        granule = SpatialGranule("shelf0")
        group = registry.add_group("motes", granule, receptor_kind="mote")
        registry.assign(
            Mote("m1", field=lambda now: 600.0, quantity="noise",
                 sample_period=1.0, noise_std=0.0, rng=0),
            "motes",
        )
        processor = ESPProcessor(registry)
        processor.set_virtualize(
            voting_detector(
                votes={
                    "rfid_in": lambda t: "tag_id" in t,
                    "mote_in": lambda t: t.get("noise", 0) > 500,
                },
                threshold=2,
                event="both-agree",
            ),
            stream_names={"rfid": "rfid_in", "mote": "mote_in"},
        )
        run = processor.run(until=0.0, tick=1.0)
        assert run.output and run.output[0]["event"] == "both-agree"


class TestStreamSession:
    """Push-mode (``open_session``) equivalence with the batch run."""

    def _recorded(self):
        def reading(ts, reader):
            shelf = f"shelf{reader[-1]}"
            return StreamTuple(
                ts,
                {"tag_id": f"tag{reader[-1]}", "shelf": shelf,
                 "reader_id": reader},
                reader,
            )

        return {
            "reader0": [reading(t, "reader0") for t in (0.0, 1.0, 2.0, 3.0)],
            "reader1": [reading(t, "reader1") for t in (0.0, 1.5, 2.5)],
        }

    def _processor(self):
        registry = build_rfid_registry(2)
        processor = ESPProcessor(registry)
        processor.add_pipeline(
            ESPPipeline(
                "rfid",
                temporal_granule=TemporalGranule(2.0),
                smooth=presence_smoother(),
            )
        )
        return processor

    def test_session_matches_batch_run(self):
        recorded = self._recorded()
        ref = self._processor().run(until=4.0, tick=1.0, sources=recorded)

        session = self._processor().open_session(until=4.0, tick=1.0)
        assert session.receptor_ids == ("reader0", "reader1")
        arrivals = sorted(
            ((item.timestamp, name, item)
             for name, items in recorded.items() for item in items),
            key=lambda e: (e[0], e[1]),
        )
        for ts, name, item in arrivals:
            session.push(name, item)
            session.advance(ts)
        run = session.close()
        assert run.output == ref.output
        assert run.output  # the comparison is not vacuous

    def test_unknown_receptor_rejected(self):
        session = self._processor().open_session(until=1.0, tick=1.0)
        with pytest.raises(PipelineError, match="unknown receptor"):
            session.push("reader9", StreamTuple(0.0, {"tag_id": "t"}))

    def test_close_is_idempotent(self):
        session = self._processor().open_session(until=1.0, tick=1.0)
        first = session.close()
        second = session.close()
        assert second.output == first.output

    def test_safe_time_tracks_punctuation(self):
        session = self._processor().open_session(until=3.0, tick=1.0)
        assert session.safe_time == float("-inf")
        session.advance(1.5)
        assert session.safe_time == 1.0
