"""Tests for CASE expressions in the CQL subset."""

import pytest

from repro.cql import compile_query, parse
from repro.cql.ast import CaseExpr
from repro.errors import CQLSyntaxError
from repro.streams.tuples import StreamTuple


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


class TestParsing:
    def test_single_branch(self):
        tree = parse(
            "SELECT CASE WHEN a > 1 THEN 'hi' END AS label FROM s"
        )
        expr = tree.items[0].expr
        assert isinstance(expr, CaseExpr)
        assert len(expr.whens) == 1
        assert expr.default is None

    def test_else_branch(self):
        tree = parse(
            "SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END AS flag FROM s"
        )
        assert tree.items[0].expr.default is not None

    def test_multiple_branches(self):
        tree = parse(
            "SELECT CASE WHEN a > 2 THEN 'hot' WHEN a > 1 THEN 'warm' "
            "ELSE 'cold' END AS zone FROM s"
        )
        assert len(tree.items[0].expr.whens) == 2

    def test_case_without_when_rejected(self):
        with pytest.raises(CQLSyntaxError):
            parse("SELECT CASE ELSE 1 END FROM s")

    def test_missing_end_rejected(self):
        with pytest.raises(CQLSyntaxError):
            parse("SELECT CASE WHEN a THEN 1 FROM s")


class TestEvaluation:
    def test_branch_selection(self):
        query = compile_query(
            "SELECT CASE WHEN v > 2 THEN 'big' WHEN v > 0 THEN 'small' "
            "ELSE 'neg' END AS size FROM s"
        )
        rows = [tup(0.0, v=5), tup(0.0, v=1), tup(0.0, v=-1)]
        out = query.run({"s": rows}, [0.0])
        assert [t["size"] for t in out] == ["big", "small", "neg"]

    def test_no_match_no_else_is_null(self):
        query = compile_query(
            "SELECT CASE WHEN v > 100 THEN 1 END AS flag FROM s"
        )
        out = query.run({"s": [tup(0.0, v=1)]}, [0.0])
        assert out[0]["flag"] is None

    def test_case_inside_aggregate_vote_counting(self):
        # A Query-6-style vote written as a conditional sum.
        query = compile_query(
            "SELECT sum(CASE WHEN noise > 525 THEN 1 ELSE 0 END) AS votes "
            "FROM s [Range By 'NOW']"
        )
        rows = [tup(0.0, noise=n) for n in (400, 600, 700)]
        out = query.run({"s": rows}, [0.0])
        assert out[0]["votes"] == 2

    def test_case_over_aggregates(self):
        query = compile_query(
            "SELECT CASE WHEN count(*) > 2 THEN 'busy' ELSE 'quiet' END "
            "AS load FROM s [Range By '5 sec']"
        )
        rows = [tup(0.0, v=i) for i in range(4)]
        out = query.run({"s": rows}, [0.0])
        assert out[0]["load"] == "busy"

    def test_case_in_where(self):
        query = compile_query(
            "SELECT * FROM s WHERE CASE WHEN mode = 'strict' THEN v > 10 "
            "ELSE v > 1 END"
        )
        rows = [
            tup(0.0, mode="strict", v=5),
            tup(0.0, mode="lenient", v=5),
        ]
        out = query.run({"s": rows}, [0.0])
        assert [t["mode"] for t in out] == ["lenient"]
