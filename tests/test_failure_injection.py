"""Failure-injection tests: malformed and adversarial inputs.

A cleaning framework's whole job is dirty data; these tests check that
*structurally* broken inputs (missing fields, wrong types, hostile
values) degrade gracefully — rows are skipped or errors are precise,
never silent corruption.
"""


import pytest

from repro.core.operators.arbitrate_ops import MaxCountArbitrator
from repro.core.operators.merge_ops import sigma_outlier_average
from repro.core.operators.smooth_ops import presence_smoother
from repro.core.stages import StageContext, StageKind
from repro.cql import compile_query
from repro.errors import SchemaError
from repro.streams.operators import run_operator
from repro.streams.tuples import StreamTuple


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


class TestMalformedReadingsThroughStages:
    def test_presence_smoother_drops_readings_without_id(self):
        # Readings without the id field don't crash the stage and don't
        # form a junk None-group — they are simply dropped.
        op = presence_smoother(window=5.0).make(
            StageContext(StageKind.SMOOTH)
        )
        items = [
            tup(0.0, tag_id="a", spatial_granule="g"),
            tup(0.0, spatial_granule="g"),  # no tag_id
        ]
        out = run_operator(op, items, [0.0])
        assert [t["tag_id"] for t in out] == ["a"]
        assert out[0]["count"] == 1

    def test_arbitrator_skips_rows_missing_identity(self):
        op = MaxCountArbitrator(tie_break="all")
        items = [
            tup(0.0, tag_id="a", spatial_granule="g", count=2),
            tup(0.0, count=9),  # no tag, no granule
            tup(0.0, tag_id="b", count=9),  # no granule
        ]
        out = run_operator(op, items, [0.0])
        assert [(t["spatial_granule"], t["tag_id"]) for t in out] == [
            ("g", "a")
        ]

    def test_merge_skips_rows_without_value(self):
        op = sigma_outlier_average(window=10.0).make(
            StageContext(StageKind.MERGE)
        )
        items = [
            tup(0.0, spatial_granule="g", temp=20.0),
            tup(0.0, spatial_granule="g"),  # no temp
        ]
        out = run_operator(op, items, [0.0])
        assert out[0]["readings"] == 1

    def test_merge_with_non_finite_values(self):
        # A sensor reporting NaN must not poison the whole granule
        # forever; NaN windows produce NaN (visible!) not a crash.
        op = sigma_outlier_average(window=1.0).make(
            StageContext(StageKind.MERGE)
        )
        items = [tup(0.0, spatial_granule="g", temp=float("nan"))]
        out = run_operator(op, items, [0.0, 5.0])
        assert all(
            t["temp"] is None or isinstance(t["temp"], float) for t in out
        )

    def test_tuple_access_error_names_the_field(self):
        with pytest.raises(SchemaError) as err:
            tup(0.0, a=1)["missing_field"]
        assert "missing_field" in str(err.value)


class TestAdversarialValues:
    def test_query_filter_with_mixed_types_equality(self):
        # '=' between str and int is False, not an exception.
        query = compile_query("SELECT * FROM s WHERE v = 5")
        out = query.run(
            {"s": [tup(0.0, v="5"), tup(0.0, v=5)]}, [0.0]
        )
        assert len(out) == 1 and out[0]["v"] == 5

    def test_extreme_timestamps(self):
        op = presence_smoother(window=5.0).make(
            StageContext(StageKind.SMOOTH)
        )
        items = [tup(1e12, tag_id="a", spatial_granule="g")]
        out = run_operator(op, items, [1e12])
        assert out[0]["count"] == 1

    def test_huge_tag_population_bounded_state(self):
        # Unique tags every poll (a ghost storm): group state must be
        # garbage-collected as windows drain, not accumulate forever.
        from repro.streams.operators import WindowedGroupByOp, GroupKey
        from repro.streams.aggregates import AggregateSpec
        from repro.streams.windows import WindowSpec

        op = WindowedGroupByOp(
            WindowSpec.range_by(1.0),
            keys=[GroupKey("tag_id")],
            aggregates=[AggregateSpec("count", output="n")],
        )
        for step in range(200):
            op.on_tuple(tup(float(step), tag_id=f"ghost_{step}"))
            op.on_time(float(step))
        assert len(op._windows) <= 3

    def test_empty_sources_produce_empty_output(self):
        query = compile_query(
            "SELECT tag_id, count(*) AS c FROM s [Range By '5 sec'] "
            "GROUP BY tag_id"
        )
        assert query.run({"s": []}, [0.0, 1.0]) == []

    def test_vote_detector_predicate_errors_surface_loudly(self):
        # Predicates are user code: a type-confused predicate raises
        # (errors should never pass silently), and the detector's state
        # machine stays consistent for subsequent well-formed input.
        from repro.core.operators.virtualize_ops import VotingDetector

        detector = VotingDetector(
            votes={"a": lambda t: t.get("noise", 0) > 500, "b": None},
            threshold=2,
        )
        with pytest.raises(TypeError):
            detector.on_tuple(tup(0.0, "a", noise="loud"))  # wrong type
        detector.on_tuple(tup(0.0, "a", noise=700))
        detector.on_tuple(tup(0.0, "b"))
        assert detector.on_time(0.0)  # still fires correctly


class TestScenarioEdgeCases:
    def test_zero_relocated_items(self):
        from repro.scenarios import ShelfScenario

        scenario = ShelfScenario(duration=10.0, relocated_items=0, seed=1)
        assert scenario.true_count(0.0, 0) == 10
        assert scenario.recorded_streams()

    def test_single_poll_experiment(self):
        from repro.scenarios import ShelfScenario
        from repro.pipelines.rfid_shelf import query1_counts

        scenario = ShelfScenario(duration=0.2, seed=1)
        counts = query1_counts(scenario, "smooth+arbitrate")
        assert len(counts["shelf0"]) == 2  # ticks 0.0 and 0.2

    def test_redwood_single_group(self):
        from repro.scenarios import RedwoodScenario
        from repro.experiments.redwood import section52

        scenario = RedwoodScenario(
            duration=0.25 * 86400.0, n_groups=1, seed=2
        )
        stats = section52(scenario)
        assert 0.0 < stats["raw_yield"] < 1.0
        assert stats["n_granules"] == 1

    def test_office_person_never_enters(self):
        from repro.scenarios import OfficeScenario
        from repro.experiments.office import figure9

        scenario = OfficeScenario(duration=60.0, seed=3)
        scenario.occupied = lambda now: False  # empty room throughout
        # Rebuild devices against the new truth.
        scenario.registry = scenario._build_registry()
        scenario._recorded = None
        result = figure9(scenario)
        # Nearly no detections in an empty room.
        assert result["detected"].mean() < 0.2
