"""Unit tests for the CQL parser (AST construction)."""

import pytest

from repro.cql import ast, parse
from repro.errors import CQLSyntaxError


class TestSelectList:
    def test_star(self):
        tree = parse("SELECT * FROM s")
        assert tree.star and not tree.items

    def test_columns(self):
        tree = parse("SELECT a, b FROM s")
        assert [item.expr for item in tree.items] == [
            ast.ColumnRef("a"),
            ast.ColumnRef("b"),
        ]

    def test_explicit_alias(self):
        tree = parse("SELECT 1 AS cnt FROM s")
        assert tree.items[0].alias == "cnt"
        assert tree.items[0].expr == ast.Literal(1)

    def test_implicit_alias(self):
        tree = parse("SELECT a + 1 total FROM s")
        assert tree.items[0].alias == "total"

    def test_string_literal_item(self):
        tree = parse("SELECT 'Person-in-room' FROM s")
        assert tree.items[0].expr == ast.Literal("Person-in-room")

    def test_aggregate_with_distinct(self):
        tree = parse("SELECT count(distinct tag_id) FROM s")
        call = tree.items[0].expr
        assert isinstance(call, ast.FuncCall)
        assert call.distinct and call.name == "count"

    def test_count_star(self):
        call = parse("SELECT count(*) FROM s").items[0].expr
        assert call.args == (ast.Star(),)

    def test_output_names(self):
        tree = parse(
            "SELECT shelf, count(distinct tag_id), avg(temp), a*2 FROM s"
        )
        names = [item.output_name(i) for i, item in enumerate(tree.items)]
        assert names == ["shelf", "count_distinct_tag_id", "avg_temp", "col3"]


class TestFromClause:
    def test_stream_with_window(self):
        source = parse("SELECT * FROM s [Range By '5 sec']").sources[0]
        assert isinstance(source, ast.StreamRef)
        assert source.window.range_seconds == 5.0

    def test_stream_alias(self):
        source = parse("SELECT * FROM rfid r [Range By 'NOW']").sources[0]
        assert source.alias == "r" and source.binding == "r"

    def test_now_window(self):
        source = parse("SELECT * FROM s [Range By 'NOW']").sources[0]
        assert source.window.is_now

    def test_rows_window(self):
        source = parse("SELECT * FROM s [Rows 10]").sources[0]
        assert source.window.row_count == 10

    def test_no_window(self):
        assert parse("SELECT * FROM s").sources[0].window is None

    def test_subquery_source(self):
        tree = parse("SELECT * FROM (SELECT a FROM s) AS sub")
        source = tree.sources[0]
        assert isinstance(source, ast.SubquerySource)
        assert source.alias == "sub"

    def test_subquery_implicit_alias(self):
        source = parse("SELECT * FROM (SELECT a FROM s) sub").sources[0]
        assert source.alias == "sub"

    def test_multiple_sources(self):
        tree = parse("SELECT * FROM a [Range By 'NOW'], b [Range By 'NOW']")
        assert len(tree.sources) == 2

    def test_trailing_comma_tolerated(self):
        tree = parse(
            "SELECT * FROM (SELECT a FROM s) x, WHERE coalesce(x.a, 0) > 1"
        )
        assert len(tree.sources) == 1 and tree.where is not None

    def test_missing_comma_before_subquery_tolerated(self):
        tree = parse(
            "SELECT * FROM s alias [Range By '5 min'] "
            "(SELECT a FROM s) AS sub"
        )
        assert len(tree.sources) == 2


class TestClauses:
    def test_where(self):
        tree = parse("SELECT * FROM s WHERE temp < 50")
        assert tree.where == ast.BinaryOp(
            "<", ast.ColumnRef("temp"), ast.Literal(50)
        )

    def test_group_by_multiple(self):
        tree = parse("SELECT a, b FROM s [Range By '1 sec'] GROUP BY a, b")
        assert tree.group_by == (ast.ColumnRef("a"), ast.ColumnRef("b"))

    def test_group_by_qualified(self):
        tree = parse("SELECT a FROM s t [Range By '1 sec'] GROUP BY t.a")
        assert tree.group_by[0] == ast.ColumnRef("a", qualifier="t")

    def test_having_plain(self):
        tree = parse(
            "SELECT a FROM s [Range By '1 sec'] GROUP BY a HAVING count(*) > 1"
        )
        assert isinstance(tree.having, ast.BinaryOp)

    def test_having_all_subquery(self):
        tree = parse(
            "SELECT g, t FROM s x [Range By 'NOW'] GROUP BY g, t "
            "HAVING count(*) >= ALL(SELECT count(*) FROM s y "
            "[Range By 'NOW'] WHERE x.t = y.t GROUP BY g)"
        )
        having = tree.having
        assert isinstance(having, ast.QuantifiedComparison)
        assert having.quantifier == "ALL"
        assert having.op == ">="

    def test_union(self):
        tree = parse("SELECT a FROM s UNION SELECT a FROM t")
        assert tree.union_with is not None
        assert tree.union_with.sources[0].name == "t"

    def test_union_all(self):
        tree = parse("SELECT a FROM s UNION ALL SELECT a FROM t")
        assert tree.union_all

    def test_trailing_semicolon(self):
        assert parse("SELECT a FROM s;").items


class TestExpressions:
    def expr(self, text):
        return parse(f"SELECT * FROM s WHERE {text}").where

    def test_precedence_and_over_or(self):
        node = self.expr("a = 1 OR b = 2 AND c = 3")
        assert node.op == "OR"
        assert node.right.op == "AND"

    def test_precedence_arithmetic(self):
        node = self.expr("a + b * 2 > 0")
        assert node.left.op == "+"
        assert node.left.right.op == "*"

    def test_parentheses(self):
        node = self.expr("(a + b) * 2 > 0")
        assert node.left.op == "*"

    def test_not(self):
        node = self.expr("NOT a = 1")
        assert isinstance(node, ast.UnaryOp) and node.op == "NOT"

    def test_unary_minus(self):
        node = self.expr("a > -5")
        assert isinstance(node.right, ast.UnaryOp)

    def test_qualified_column(self):
        node = self.expr("ai1.tag_id = ai2.tag_id")
        assert node.left == ast.ColumnRef("tag_id", qualifier="ai1")

    def test_is_null(self):
        node = self.expr("a IS NULL")
        assert node.op == "IS NULL"

    def test_is_not_null(self):
        node = self.expr("a IS NOT NULL")
        assert isinstance(node, ast.UnaryOp) and node.op == "NOT"

    def test_neq_normalized(self):
        assert self.expr("a != 1").op == "<>"

    def test_function_call_multi_arg(self):
        node = self.expr("coalesce(a, 0) >= 2")
        assert node.left.name == "coalesce"
        assert len(node.left.args) == 2

    def test_null_literal(self):
        node = self.expr("a = NULL")
        assert node.right == ast.Literal(None)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM s WHERE",
            "SELECT a FROM s [Range '5 sec']",
            "SELECT a FROM s [Rows 'x']",
            "SELECT a FROM s GROUP a",
            "SELECT a FROM s extra stuff here",
            "SELECT a FROM s HAVING count(*) >= ALL SELECT",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(CQLSyntaxError):
            parse(bad)

    def test_error_carries_position_context(self):
        with pytest.raises(CQLSyntaxError) as err:
            parse("SELECT a FROM s [Range '5 sec']")
        assert "position" in str(err.value)


class TestAstHelpers:
    def test_find_aggregates(self):
        tree = parse(
            "SELECT avg(a) + avg(a), count(*) FROM s [Range By '1 sec']"
        )
        found = ast.find_aggregates(
            tree.items[0].expr, frozenset({"avg", "count"})
        )
        assert len(found) == 2  # both occurrences, same structural call
        assert found[0] == found[1]

    def test_walk_visits_descendants(self):
        node = parse("SELECT * FROM s WHERE a + 1 > b").where
        assert ast.ColumnRef("b") in list(node.walk())

    def test_expr_equality_and_hash(self):
        a1 = ast.BinaryOp("+", ast.ColumnRef("a"), ast.Literal(1))
        a2 = ast.BinaryOp("+", ast.ColumnRef("a"), ast.Literal(1))
        assert a1 == a2 and hash(a1) == hash(a2)
        assert a1 != ast.BinaryOp("-", ast.ColumnRef("a"), ast.Literal(1))
