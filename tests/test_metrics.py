"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics import (
    alert_rate,
    average_relative_error,
    detection_accuracy,
    detection_confusion,
    epoch_yield,
    percent_within,
    yield_by_entity,
)
from repro.metrics.epoch_yield import coverage_mask


class TestAverageRelativeError:
    def test_equation_1(self):
        # |8-10|/10 and |12-10|/10 -> mean 0.2
        assert average_relative_error([8, 12], [10, 10]) == pytest.approx(0.2)

    def test_perfect_reporting(self):
        assert average_relative_error([5, 5], [5, 5]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            average_relative_error([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            average_relative_error([], [])

    def test_zero_truth_rejected(self):
        with pytest.raises(ReproError):
            average_relative_error([1], [0])

    def test_accepts_numpy_arrays(self):
        reported = np.array([9.0, 11.0])
        truth = np.array([10.0, 10.0])
        assert average_relative_error(reported, truth) == pytest.approx(0.1)


class TestPercentWithin:
    def test_fraction_within_tolerance(self):
        assert percent_within([1.0, 2.5, 3.0], [1.5, 1.0, 3.0], 1.0) == (
            pytest.approx(2 / 3)
        )

    def test_boundary_inclusive(self):
        assert percent_within([2.0], [1.0], 1.0) == 1.0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ReproError):
            percent_within([1.0], [1.0], -0.1)


class TestAlertRate:
    def test_false_alerts_per_second(self):
        reported = [3, 6, 2, 8]  # two dips below 5
        truth = [10, 10, 10, 10]
        assert alert_rate(reported, truth, 5, duration=2.0) == 1.0

    def test_true_alerts_not_counted(self):
        reported = [3]
        truth = [3]  # genuinely low: not a false alert
        assert alert_rate(reported, truth, 5, duration=1.0) == 0.0

    def test_invalid_duration(self):
        with pytest.raises(ReproError):
            alert_rate([1], [10], 5, duration=0.0)


class TestEpochYield:
    def test_fraction(self):
        assert epoch_yield([True, False, True, True]) == 0.75

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            epoch_yield([])

    def test_by_entity(self):
        yields = yield_by_entity(
            {"m1": [True, True], "m2": [True, False]}
        )
        assert yields == {"m1": 1.0, "m2": 0.5}

    def test_by_entity_empty_rejected(self):
        with pytest.raises(ReproError):
            yield_by_entity({})

    def test_coverage_mask(self):
        mask = coverage_mask([0, 2, 2, 99], n_epochs=4)
        assert mask.tolist() == [True, False, True, False]

    def test_coverage_mask_invalid_size(self):
        with pytest.raises(ReproError):
            coverage_mask([], 0)


class TestDetection:
    def test_accuracy(self):
        assert detection_accuracy(
            [True, False, True], [True, True, True]
        ) == pytest.approx(2 / 3)

    def test_confusion(self):
        confusion = detection_confusion(
            [True, True, False, False], [True, False, True, False]
        )
        assert confusion == {
            "true_positive": 1,
            "false_positive": 1,
            "false_negative": 1,
            "true_negative": 1,
        }

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            detection_accuracy([True], [True, False])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            detection_accuracy([], [])
