"""Shared fixtures: small, fast scenario instances for integration tests."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    IntelLabScenario,
    OfficeScenario,
    RedwoodScenario,
    ShelfScenario,
)


@pytest.fixture(scope="session")
def small_shelf() -> ShelfScenario:
    """A 120-second shelf scenario (3 relocation phases)."""
    return ShelfScenario(duration=120.0, seed=7)


@pytest.fixture(scope="session")
def small_intel_lab() -> IntelLabScenario:
    """Half a day of the Intel-lab trace, failure at 0.1 day."""
    return IntelLabScenario(
        duration=0.5 * 86400.0,
        failure_onset=0.1 * 86400.0,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_redwood() -> RedwoodScenario:
    """A 1-day, 4-group redwood scenario."""
    return RedwoodScenario(duration=86400.0, n_groups=4, seed=7)


@pytest.fixture(scope="session")
def small_office() -> OfficeScenario:
    """A 240-second office scenario (4 occupancy phases)."""
    return OfficeScenario(duration=240.0, seed=7)
