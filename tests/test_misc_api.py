"""Coverage of small API surfaces: reprs, exports, edge paths."""


import repro
from repro.core.granules import SpatialGranule, TemporalGranule
from repro.core.pipeline import ESPRun
from repro.cql import parse
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec


class TestPublicExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_streams_all_resolves(self):
        import repro.streams as streams

        for name in streams.__all__:
            assert getattr(streams, name) is not None

    def test_operator_toolkit_all_resolves(self):
        import repro.core.operators as ops

        for name in ops.__all__:
            assert getattr(ops, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()


class TestReprs:
    def test_esp_run_repr(self):
        run = ESPRun()
        run.output = [StreamTuple(0.0, {"x": 1})]
        run.taps["rfid/raw"] = []
        text = repr(run)
        assert "1 tuples" in text and "rfid/raw" in text

    def test_select_repr_mentions_clauses(self):
        tree = parse(
            "SELECT a FROM s [Range By '5 sec'] WHERE a > 1 "
            "GROUP BY a HAVING count(*) > 1"
        )
        text = repr(tree)
        for fragment in ("items=", "sources=", "where=", "group_by=",
                         "having="):
            assert fragment in text

    def test_stream_ref_repr(self):
        tree = parse("SELECT * FROM s alias [Range By 'NOW']")
        assert "AS alias" in repr(tree.sources[0])

    def test_subquery_source_repr(self):
        tree = parse("SELECT * FROM (SELECT a FROM s) AS sub")
        assert "AS sub" in repr(tree.sources[0])

    def test_window_spec_reprs(self):
        assert "NOW" in repr(WindowSpec.now())
        assert "Rows 3" in repr(WindowSpec.rows(3))
        assert "5" in repr(WindowSpec.range_by(5.0))

    def test_case_expr_repr(self):
        tree = parse("SELECT CASE WHEN a THEN 1 ELSE 0 END AS x FROM s")
        text = repr(tree.items[0].expr)
        assert "WHEN" in text and "ELSE" in text

    def test_quantified_repr(self):
        tree = parse(
            "SELECT g, t FROM s x [Range By 'NOW'] GROUP BY g, t "
            "HAVING count(*) >= ALL(SELECT count(*) FROM s y "
            "[Range By 'NOW'] WHERE x.t = y.t GROUP BY g)"
        )
        assert "ALL" in repr(tree.having)

    def test_granule_reprs(self):
        assert "5s" in repr(TemporalGranule(5.0))
        assert "shelf0" in repr(SpatialGranule("shelf0"))


class TestSmallEdges:
    def test_union_chain_equality_semantics(self):
        first = parse("SELECT a FROM s UNION SELECT a FROM t")
        second = parse("SELECT a FROM s UNION SELECT a FROM t")
        assert first == second

    def test_select_not_equal_to_other_type(self):
        assert parse("SELECT a FROM s") != 42

    def test_compiled_query_ignores_unknown_streams_when_multi_input(self):
        from repro.cql import compile_query

        query = compile_query(
            "SELECT l.v AS x FROM a l [Range By 'NOW'], b r [Range By 'NOW'] "
            "WHERE l.k = r.k"
        )
        # A tuple from a stream the query never mentions is dropped.
        out = query.on_tuple(StreamTuple(0.0, {"k": 1, "v": 2}, "mystery"))
        assert out == []

    def test_first_time_helper_none(self):
        import numpy as np

        from repro.experiments.intel_lab import _first_time

        assert _first_time(np.array([1.0, 2.0]), np.array([False, False])) is None
        assert _first_time(np.array([1.0, 2.0]), np.array([False, True])) == 2.0

    def test_receptor_kind_values(self):
        from repro.receptors.base import ReceptorKind

        assert {k.value for k in ReceptorKind} == {"rfid", "mote", "x10"}

    def test_duration_is_now_property(self):
        from repro.streams.time import Duration

        assert Duration(0.0).is_now
        assert not Duration(1.0).is_now
