"""Unit tests for the relational stream operators."""

import pytest

from repro.errors import OperatorError
from repro.streams.aggregates import AggregateSpec
from repro.streams.operators import (
    ChainOp,
    FilterOp,
    GroupKey,
    MapOp,
    SinkOp,
    StaticJoinOp,
    UnionOp,
    WindowedGroupByOp,
    WindowJoinOp,
    run_operator,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


class TestFilterMap:
    def test_filter_keeps_matching(self):
        op = FilterOp(lambda t: t["v"] > 2)
        assert op.on_tuple(tup(0, v=3)) == [tup(0, v=3)]
        assert op.on_tuple(tup(0, v=1)) == []

    def test_filter_on_time_is_empty(self):
        assert FilterOp(lambda t: True).on_time(1.0) == []

    def test_map_transforms(self):
        op = MapOp(lambda t: t.derive(values={"v": t["v"] * 2}))
        assert op.on_tuple(tup(0, v=2))[0]["v"] == 4

    def test_map_none_drops(self):
        assert MapOp(lambda t: None).on_tuple(tup(0, v=1)) == []

    def test_map_list_fans_out(self):
        op = MapOp(lambda t: [t, t])
        assert len(op.on_tuple(tup(0, v=1))) == 2

    def test_union_passthrough(self):
        assert UnionOp().on_tuple(tup(0, v=1)) == [tup(0, v=1)]

    def test_union_renames_stream(self):
        out = UnionOp(output_stream="merged").on_tuple(tup(0, stream="a", v=1))
        assert out[0].stream == "merged"


class TestStaticJoin:
    TABLE = [{"tag_id": "a", "sku": 1}, {"tag_id": "b", "sku": 2}]

    def test_inner_join_enriches(self):
        op = StaticJoinOp(
            self.TABLE, on=lambda t, row: t["tag_id"] == row["tag_id"]
        )
        out = op.on_tuple(tup(0, tag_id="a"))
        assert out[0]["sku"] == 1

    def test_inner_join_stream_fields_win(self):
        op = StaticJoinOp(
            [{"tag_id": "a", "v": "table"}],
            on=lambda t, row: t["tag_id"] == row["tag_id"],
        )
        out = op.on_tuple(tup(0, tag_id="a", v="stream"))
        assert out[0]["v"] == "stream"

    def test_semi_join_filters(self):
        op = StaticJoinOp(
            self.TABLE,
            on=lambda t, row: t["tag_id"] == row["tag_id"],
            how="semi",
        )
        assert op.on_tuple(tup(0, tag_id="a")) == [tup(0, tag_id="a")]
        assert op.on_tuple(tup(0, tag_id="zzz")) == []

    def test_anti_join(self):
        op = StaticJoinOp(
            self.TABLE,
            on=lambda t, row: t["tag_id"] == row["tag_id"],
            how="anti",
        )
        assert op.on_tuple(tup(0, tag_id="a")) == []
        assert len(op.on_tuple(tup(0, tag_id="zzz"))) == 1

    def test_unknown_mode(self):
        with pytest.raises(OperatorError):
            StaticJoinOp([], on=lambda t, r: True, how="outer")


class TestWindowedGroupBy:
    def build(self, **kwargs):
        defaults = dict(
            window=WindowSpec.range_by(5.0),
            keys=[GroupKey("shelf")],
            aggregates=[
                AggregateSpec(
                    "count",
                    argument=lambda t: t["tag_id"],
                    distinct=True,
                    output="n",
                )
            ],
        )
        defaults.update(kwargs)
        return WindowedGroupByOp(**defaults)

    def test_counts_distinct_per_group(self):
        items = [
            tup(0.0, shelf=0, tag_id="a"),
            tup(0.0, shelf=0, tag_id="a"),
            tup(0.0, shelf=1, tag_id="b"),
        ]
        out = run_operator(self.build(), items, [0.0])
        by_shelf = {t["shelf"]: t["n"] for t in out}
        assert by_shelf == {0: 1, 1: 1}

    def test_window_eviction_reduces_count(self):
        items = [tup(0.0, shelf=0, tag_id="a"), tup(3.0, shelf=0, tag_id="b")]
        out = run_operator(self.build(), items, [0.0, 3.0, 6.0])
        ns = [t["n"] for t in out]
        assert ns == [1, 2, 1]  # 'a' evicted by t=6

    def test_empty_group_emits_nothing_and_is_dropped(self):
        op = self.build()
        out = run_operator(op, [tup(0.0, shelf=0, tag_id="a")], [0.0, 10.0])
        assert len(out) == 1
        assert op._windows == {}  # state cleaned up after eviction

    def test_global_aggregate_with_no_keys(self):
        op = WindowedGroupByOp(
            WindowSpec.range_by(5.0),
            keys=[],
            aggregates=[AggregateSpec("count", output="c")],
        )
        out = run_operator(op, [tup(0.0, v=1), tup(0.0, v=2)], [0.0])
        assert out[0]["c"] == 2

    def test_having_filters_rows(self):
        op = self.build(having=lambda row, _all: row["n"] >= 2)
        items = [
            tup(0.0, shelf=0, tag_id="a"),
            tup(0.0, shelf=0, tag_id="b"),
            tup(0.0, shelf=1, tag_id="c"),
        ]
        out = run_operator(op, items, [0.0])
        assert [t["shelf"] for t in out] == [0]

    def test_having_sees_all_rows(self):
        # keep only the group(s) with the max count — Query 3's pattern
        op = self.build(
            having=lambda row, rows: row["n"] >= max(r["n"] for r in rows)
        )
        items = [
            tup(0.0, shelf=0, tag_id="a"),
            tup(0.0, shelf=0, tag_id="b"),
            tup(0.0, shelf=1, tag_id="c"),
        ]
        out = run_operator(op, items, [0.0])
        assert [t["shelf"] for t in out] == [0]

    def test_emit_every_suppresses_off_cycle_output(self):
        op = self.build(emit_every=2.0)
        items = [tup(0.0, shelf=0, tag_id="a")]
        out = run_operator(op, items, [0.0, 1.0, 2.0])
        assert [t.timestamp for t in out] == [0.0, 2.0]

    def test_requires_keys_or_aggregates(self):
        with pytest.raises(OperatorError):
            WindowedGroupByOp(WindowSpec.range_by(5.0))

    def test_invalid_emit_every(self):
        with pytest.raises(OperatorError):
            self.build(emit_every=0.0)

    def test_output_stream_stamped(self):
        op = self.build(output_stream="cleaned")
        out = run_operator(op, [tup(0.0, shelf=0, tag_id="a")], [0.0])
        assert out[0].stream == "cleaned"


class TestWindowJoin:
    def test_joins_matching_pairs_at_punctuation(self):
        op = WindowJoinOp(
            WindowSpec.range_by(5.0),
            WindowSpec.range_by(5.0),
            predicate=lambda lhs, rhs: lhs["k"] == rhs["k"],
        )
        op.on_tuple(tup(0.0, k=1, left="L"), port=0)
        op.on_tuple(tup(0.0, k=1, right="R"), port=1)
        op.on_tuple(tup(0.0, k=2, right="R2"), port=1)
        out = op.on_time(0.0)
        assert len(out) == 1
        assert out[0]["left"] == "L" and out[0]["right"] == "R"

    def test_left_fields_win_on_conflict(self):
        op = WindowJoinOp(
            WindowSpec.now(),
            WindowSpec.now(),
            predicate=lambda lhs, rhs: True,
        )
        op.on_tuple(tup(0.0, v="left"), port=0)
        op.on_tuple(tup(0.0, v="right"), port=1)
        assert op.on_time(0.0)[0]["v"] == "left"

    def test_invalid_port(self):
        op = WindowJoinOp(
            WindowSpec.now(), WindowSpec.now(), predicate=lambda lhs, rhs: True
        )
        with pytest.raises(OperatorError):
            op.on_tuple(tup(0.0), port=2)

    def test_custom_combine(self):
        op = WindowJoinOp(
            WindowSpec.now(),
            WindowSpec.now(),
            predicate=lambda lhs, rhs: True,
            combine=lambda lhs, rhs: StreamTuple(
                lhs.timestamp, {"sum": lhs["v"] + rhs["v"]}
            ),
        )
        op.on_tuple(tup(0.0, v=1), port=0)
        op.on_tuple(tup(0.0, v=2), port=1)
        assert op.on_time(0.0)[0]["sum"] == 3


class TestChainAndSink:
    def test_chain_applies_in_order(self):
        chain = ChainOp(
            [
                MapOp(lambda t: t.derive(values={"v": t["v"] + 1})),
                FilterOp(lambda t: t["v"] > 1),
            ]
        )
        assert chain.on_tuple(tup(0, v=1))[0]["v"] == 2
        assert chain.on_tuple(tup(0, v=0)) == []

    def test_chain_on_time_pipes_stage_outputs_forward(self):
        group = WindowedGroupByOp(
            WindowSpec.range_by(5.0),
            keys=[],
            aggregates=[AggregateSpec("count", output="c")],
        )
        chain = ChainOp([group, MapOp(lambda t: t.derive(values={"x": 9}))])
        chain.on_tuple(tup(0.0, v=1))
        out = chain.on_time(0.0)
        assert out[0]["c"] == 1 and out[0]["x"] == 9

    def test_chain_requires_stages(self):
        with pytest.raises(OperatorError):
            ChainOp([])

    def test_sink_collects_and_calls_back(self):
        seen = []
        sink = SinkOp(callback=seen.append)
        sink.on_tuple(tup(0, v=1))
        assert sink.results == [tup(0, v=1)]
        assert seen == [tup(0, v=1)]


class TestRunOperator:
    def test_delivers_tuples_before_matching_tick(self):
        op = WindowedGroupByOp(
            WindowSpec.now(),
            keys=[],
            aggregates=[AggregateSpec("count", output="c")],
        )
        out = run_operator(op, [tup(1.0, v=1)], [0.0, 1.0])
        assert [(t.timestamp, t["c"]) for t in out] == [(1.0, 1)]

    def test_sorts_input_by_timestamp(self):
        op = FilterOp(lambda t: True)
        out = run_operator(op, [tup(2.0, v=2), tup(1.0, v=1)], [2.0])
        assert [t.timestamp for t in out] == [1.0, 2.0]
