"""Unit tests for the query planner: stateless, aggregation and HAVING."""

import pytest

from repro.cql import compile_query
from repro.errors import PlanError
from repro.streams.tuples import StreamTuple


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


class TestStateless:
    def test_select_star_passthrough(self):
        query = compile_query("SELECT * FROM s")
        out = query.run({"s": [tup(0.0, v=1)]}, [0.0])
        assert out[0]["v"] == 1

    def test_where_filter(self):
        query = compile_query("SELECT * FROM s WHERE temp < 50")
        out = query.run(
            {"s": [tup(0.0, temp=30), tup(1.0, temp=80)]}, [0.0, 1.0]
        )
        assert [t["temp"] for t in out] == [30]

    def test_projection_with_alias(self):
        query = compile_query("SELECT temp AS celsius, 1 AS one FROM s")
        out = query.run({"s": [tup(0.0, temp=20)]}, [0.0])
        assert out[0].as_dict() == {"celsius": 20, "one": 1}

    def test_expression_projection(self):
        query = compile_query("SELECT temp * 2 + 1 AS x FROM s")
        out = query.run({"s": [tup(0.0, temp=10)]}, [0.0])
        assert out[0]["x"] == 21

    def test_missing_field_is_null(self):
        query = compile_query("SELECT * FROM s WHERE temp < 50")
        out = query.run({"s": [tup(0.0, other=1)]}, [0.0])
        assert out == []  # NULL comparison is false

    def test_qualifier_matching_alias_resolves(self):
        query = compile_query("SELECT * FROM s alias WHERE alias.v > 1")
        out = query.run({"s": [tup(0.0, v=2)]}, [0.0])
        assert len(out) == 1

    def test_unknown_qualifier_falls_back_to_bare(self):
        # Paper Query 6 writes sensors.noise over stream sensors_input.
        query = compile_query("SELECT * FROM sensors_input WHERE sensors.noise > 5")
        out = query.run({"sensors_input": [tup(0.0, noise=10)]}, [0.0])
        assert len(out) == 1

    def test_having_without_groupby_rejected(self):
        with pytest.raises(PlanError):
            compile_query("SELECT a FROM s HAVING a > 1")

    def test_single_stream_accepts_renamed_input(self):
        # The ESP processor renames streams; single-input queries adapt.
        query = compile_query("SELECT * FROM expected_name WHERE v > 0")
        out = query.run({"some_other_name": [tup(0.0, v=1)]}, [0.0])
        assert len(out) == 1


class TestAggregation:
    def test_windowed_count_distinct(self):
        query = compile_query(
            "SELECT shelf, count(distinct tag_id) AS n "
            "FROM s [Range By '5 sec'] GROUP BY shelf"
        )
        rows = [
            tup(0.0, shelf=0, tag_id="a"),
            tup(0.0, shelf=0, tag_id="a"),
            tup(0.0, shelf=1, tag_id="b"),
        ]
        out = query.run({"s": rows}, [0.0])
        assert {t["shelf"]: t["n"] for t in out} == {0: 1, 1: 1}

    def test_aggregate_without_window_rejected(self):
        with pytest.raises(PlanError) as err:
            compile_query("SELECT count(*) FROM s")
        assert "window" in str(err.value)

    def test_where_applies_before_window(self):
        query = compile_query(
            "SELECT count(*) AS c FROM s [Range By '10 sec'] WHERE v > 0"
        )
        out = query.run({"s": [tup(0.0, v=1), tup(0.0, v=-1)]}, [0.0])
        assert out[0]["c"] == 1

    def test_global_aggregate_empty_window_emits_nothing(self):
        query = compile_query(
            "SELECT count(*) AS c FROM s [Range By 'NOW']"
        )
        out = query.run({"s": [tup(0.0, v=1)]}, [0.0, 1.0])
        assert [t["c"] for t in out] == [1]  # nothing at t=1

    def test_having_over_aggregate(self):
        query = compile_query(
            "SELECT tag_id FROM s [Range By '5 sec'] "
            "GROUP BY tag_id HAVING count(*) >= 2"
        )
        rows = [tup(0.0, tag_id="a"), tup(0.0, tag_id="a"), tup(0.0, tag_id="b")]
        out = query.run({"s": rows}, [0.0])
        assert [t["tag_id"] for t in out] == ["a"]

    def test_having_aggregate_not_in_select(self):
        query = compile_query(
            "SELECT 1 AS cnt FROM s [Range By 'NOW'] "
            "HAVING count(distinct tag_id) > 1"
        )
        out = query.run(
            {"s": [tup(0.0, tag_id="a"), tup(0.0, tag_id="b")]}, [0.0]
        )
        assert out[0]["cnt"] == 1
        out2 = compile_query(
            "SELECT 1 AS cnt FROM s [Range By 'NOW'] "
            "HAVING count(distinct tag_id) > 1"
        ).run({"s": [tup(0.0, tag_id="a")]}, [0.0])
        assert out2 == []

    def test_implicit_group_by_bare_column(self):
        # Paper Query 5's subquery: bare column next to aggregates.
        query = compile_query(
            "SELECT g, avg(v) AS m FROM s [Range By '5 sec']"
        )
        rows = [tup(0.0, g="x", v=1.0), tup(0.0, g="y", v=3.0)]
        out = query.run({"s": rows}, [0.0])
        assert {t["g"]: t["m"] for t in out} == {"x": 1.0, "y": 3.0}

    def test_expression_over_aggregates(self):
        query = compile_query(
            "SELECT max(v) - min(v) AS spread FROM s [Range By '5 sec']"
        )
        rows = [tup(0.0, v=v) for v in (1.0, 5.0, 3.0)]
        out = query.run({"s": rows}, [0.0])
        assert out[0]["spread"] == 4.0

    def test_sliding_window_semantics_across_ticks(self):
        query = compile_query(
            "SELECT count(*) AS c FROM s [Range By '2 sec']"
        )
        rows = [tup(0.0, v=1), tup(1.0, v=1), tup(3.5, v=1)]
        out = query.run({"s": rows}, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert [t["c"] for t in out] == [1, 2, 2, 1, 1]

    def test_aggregate_argument_count_validation(self):
        with pytest.raises(PlanError):
            compile_query("SELECT avg(a, b) FROM s [Range By '1 sec']")


class TestQuantifiedHaving:
    QUERY = """
        SELECT spatial_granule, tag_id
        FROM arbitrate_input ai1 [Range By 'NOW']
        GROUP BY spatial_granule, tag_id
        HAVING count(*) >= ALL(SELECT count(*)
                               FROM arbitrate_input ai2 [Range By 'NOW']
                               WHERE ai1.tag_id = ai2.tag_id
                               GROUP BY spatial_granule)
    """

    def rows(self, counts: dict):
        out = []
        for (granule, tag), n in counts.items():
            out.extend(
                tup(0.0, spatial_granule=granule, tag_id=tag)
                for _ in range(n)
            )
        return out

    def test_attributes_to_max_count_granule(self):
        out = compile_query(self.QUERY).run(
            {"arbitrate_input": self.rows({("g0", "a"): 3, ("g1", "a"): 1})},
            [0.0],
        )
        assert [(t["spatial_granule"], t["tag_id"]) for t in out] == [("g0", "a")]

    def test_tie_keeps_both(self):
        out = compile_query(self.QUERY).run(
            {"arbitrate_input": self.rows({("g0", "a"): 2, ("g1", "a"): 2})},
            [0.0],
        )
        assert len(out) == 2  # >= ALL keeps ties on both sides

    def test_independent_tags(self):
        out = compile_query(self.QUERY).run(
            {
                "arbitrate_input": self.rows(
                    {("g0", "a"): 3, ("g1", "a"): 1, ("g1", "b"): 1}
                )
            },
            [0.0],
        )
        pairs = {(t["spatial_granule"], t["tag_id"]) for t in out}
        assert pairs == {("g0", "a"), ("g1", "b")}

    def test_mismatched_stream_rejected(self):
        with pytest.raises(PlanError):
            compile_query(
                "SELECT g, t FROM s x [Range By 'NOW'] GROUP BY g, t "
                "HAVING count(*) >= ALL(SELECT count(*) FROM other y "
                "[Range By 'NOW'] WHERE x.t = y.t GROUP BY g)"
            )

    def test_uncorrelated_subquery_rejected(self):
        with pytest.raises(PlanError) as err:
            compile_query(
                "SELECT g, t FROM s x [Range By 'NOW'] GROUP BY g, t "
                "HAVING count(*) >= ALL(SELECT count(*) FROM s y "
                "[Range By 'NOW'] GROUP BY g)"
            )
        assert "correlated" in str(err.value)

    def test_correlation_not_in_group_keys_rejected(self):
        with pytest.raises(PlanError):
            compile_query(
                "SELECT g FROM s x [Range By 'NOW'] GROUP BY g "
                "HAVING count(*) >= ALL(SELECT count(*) FROM s y "
                "[Range By 'NOW'] WHERE x.t = y.t GROUP BY g)"
            )

    def test_any_quantifier(self):
        query = compile_query(
            "SELECT spatial_granule, tag_id "
            "FROM s ai1 [Range By 'NOW'] GROUP BY spatial_granule, tag_id "
            "HAVING count(*) > ANY(SELECT count(*) FROM s ai2 "
            "[Range By 'NOW'] WHERE ai1.tag_id = ai2.tag_id "
            "GROUP BY spatial_granule)"
        )
        out = query.run(
            {"s": self.rows({("g0", "a"): 3, ("g1", "a"): 1})}, [0.0]
        )
        # g0 (3) > some count (1) -> passes; g1 (1) > nothing -> fails
        assert [(t["spatial_granule"]) for t in out] == ["g0"]


class TestUnion:
    def test_union_merges_streams(self):
        query = compile_query("SELECT v FROM a UNION SELECT v FROM b")
        out = query.run(
            {"a": [tup(0.0, v=1)], "b": [tup(0.0, v=2)]}, [0.0]
        )
        assert sorted(t["v"] for t in out) == [1, 2]

    def test_union_of_aggregates(self):
        query = compile_query(
            "SELECT count(*) AS c FROM a [Range By 'NOW'] "
            "UNION SELECT count(*) AS c FROM b [Range By 'NOW']"
        )
        out = query.run(
            {"a": [tup(0.0, v=1)], "b": [tup(0.0, v=1), tup(0.0, v=2)]},
            [0.0],
        )
        assert sorted(t["c"] for t in out) == [1, 2]


class TestPlanErrors:
    def test_from_required(self):
        from repro.cql.ast import Select

        with pytest.raises(PlanError):
            compile_query(Select([], []))

    def test_input_streams_listed(self):
        query = compile_query("SELECT * FROM stream_a")
        assert query.input_streams == ["stream_a"]

    def test_repr_mentions_query(self):
        assert "SELECT" in repr(compile_query("SELECT * FROM s"))
