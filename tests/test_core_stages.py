"""Unit tests for Stage definitions and the three programming models."""

import pytest

from repro.core.stages import (
    ArbitrateStage,
    MergeStage,
    PointStage,
    SmoothStage,
    Stage,
    StageContext,
    StageKind,
    VirtualizeStage,
)
from repro.errors import PipelineError
from repro.streams.operators import FilterOp
from repro.streams.tuples import StreamTuple


class TestStageKind:
    def test_pipeline_order(self):
        kinds = [
            StageKind.POINT,
            StageKind.SMOOTH,
            StageKind.MERGE,
            StageKind.ARBITRATE,
            StageKind.VIRTUALIZE,
        ]
        assert [k.order for k in kinds] == [0, 1, 2, 3, 4]

    def test_scopes(self):
        assert StageKind.POINT.scope == "stream"
        assert StageKind.SMOOTH.scope == "stream"
        assert StageKind.MERGE.scope == "group"
        assert StageKind.ARBITRATE.scope == "kind"
        assert StageKind.VIRTUALIZE.scope == "deployment"


class TestProgrammingModels:
    def test_from_query(self):
        stage = Stage.from_query(StageKind.POINT, "SELECT * FROM s WHERE v > 1")
        op = stage.make(StageContext(StageKind.POINT))
        out = op.on_tuple(StreamTuple(0.0, {"v": 2}, "s"))
        assert len(out) == 1

    def test_from_query_validates_syntax_eagerly(self):
        from repro.errors import CQLSyntaxError

        with pytest.raises(CQLSyntaxError):
            Stage.from_query(StageKind.POINT, "SELECT FROM nothing")

    def test_from_query_instances_independent(self):
        stage = Stage.from_query(
            StageKind.SMOOTH,
            "SELECT count(*) AS c FROM s [Range By '10 sec']",
        )
        ctx = StageContext(StageKind.SMOOTH)
        first, second = stage.make(ctx), stage.make(ctx)
        first.on_tuple(StreamTuple(0.0, {"v": 1}, "s"))
        assert first.on_time(0.0)[0]["c"] == 1
        assert second.on_time(0.0) == []  # no shared window state

    def test_from_function(self):
        stage = Stage.from_function(
            StageKind.POINT,
            lambda t: t if t["v"] > 0 else None,
        )
        op = stage.make(StageContext(StageKind.POINT))
        assert op.on_tuple(StreamTuple(0, {"v": 1})) != []
        assert op.on_tuple(StreamTuple(0, {"v": -1})) == []

    def test_from_operator_factory(self):
        stage = Stage.from_operator(
            StageKind.POINT, lambda ctx: FilterOp(lambda t: True)
        )
        assert isinstance(stage.make(StageContext(StageKind.POINT)), FilterOp)

    def test_factory_returning_non_operator_rejected(self):
        stage = Stage.from_operator(StageKind.POINT, lambda ctx: "nope")
        with pytest.raises(PipelineError):
            stage.make(StageContext(StageKind.POINT))

    def test_factory_receives_context(self):
        seen = {}

        def factory(ctx):
            seen["ctx"] = ctx
            return FilterOp(lambda t: True)

        stage = Stage.from_operator(StageKind.SMOOTH, factory)
        context = StageContext(StageKind.SMOOTH, stream_name="reader0")
        stage.make(context)
        assert seen["ctx"].stream_name == "reader0"


class TestConvenienceBuilders:
    def test_builders_set_kind(self):
        assert PointStage("SELECT * FROM s").kind is StageKind.POINT
        assert SmoothStage("SELECT * FROM s").kind is StageKind.SMOOTH
        assert MergeStage("SELECT * FROM s").kind is StageKind.MERGE
        assert ArbitrateStage("SELECT * FROM s").kind is StageKind.ARBITRATE
        assert VirtualizeStage("SELECT * FROM s").kind is StageKind.VIRTUALIZE

    def test_builder_accepts_factory(self):
        stage = PointStage(lambda ctx: FilterOp(lambda t: True))
        assert stage.kind is StageKind.POINT

    def test_builder_passthrough_of_matching_stage(self):
        inner = Stage.from_query(StageKind.POINT, "SELECT * FROM s")
        assert PointStage(inner) is inner

    def test_builder_rejects_mismatched_stage(self):
        inner = Stage.from_query(StageKind.SMOOTH, "SELECT * FROM s")
        with pytest.raises(PipelineError):
            PointStage(inner)

    def test_builder_rejects_operator_instance(self):
        with pytest.raises(PipelineError) as err:
            PointStage(FilterOp(lambda t: True))
        assert "factory" in str(err.value)

    def test_builder_rejects_garbage(self):
        with pytest.raises(PipelineError):
            PointStage(42)

    def test_repr(self):
        assert "point" in repr(PointStage("SELECT * FROM s"))
