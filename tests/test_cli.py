"""Tests for the ``python -m repro`` experiment CLI."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_fast(self):
        args = build_parser().parse_args(["run", "fig5", "--fast"])
        assert args.command == "run"
        assert args.experiment == "fig5"
        assert args.fast

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_paper_values_are_json(self, capsys):
        assert main(["paper"]) == 0
        values = json.loads(capsys.readouterr().out)
        assert values["fig3_raw_error"] == 0.41

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_run_fig5_fast(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert set(result) == {
            "raw",
            "smooth",
            "arbitrate",
            "arbitrate+smooth",
            "smooth+arbitrate",
        }
        assert result["smooth+arbitrate"] < result["raw"]

    def test_run_fig9_fast(self, capsys):
        assert main(["run", "fig9", "--fast"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert 0.5 < result["accuracy"] <= 1.0

    def test_run_actuation_fast(self, capsys):
        assert main(["run", "actuation", "--fast"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["yield"]["actuated"] > result["yield"]["fixed"]


class TestDump:
    def test_fig6_dump_writes_sweep_csv(self, capsys, tmp_path):
        assert main(
            ["run", "fig6", "--fast", "--dump", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "fig6_sweep.csv" in err
        content = (tmp_path / "fig6_sweep.csv").read_text()
        assert content.startswith("granule_s,avg_relative_error")
        assert len(content.strip().splitlines()) > 3

    def test_fig3_dump_writes_all_traces(self, capsys, tmp_path):
        assert main(
            ["run", "fig3", "--fast", "--dump", str(tmp_path)]
        ) == 0
        names = {path.name for path in tmp_path.iterdir()}
        assert {
            "fig3_reality.csv",
            "fig3_raw.csv",
            "fig3_smooth.csv",
            "fig3_smooth_arbitrate.csv",
        } <= names
        header = (tmp_path / "fig3_reality.csv").read_text().splitlines()[0]
        assert header == "time_s,shelf0,shelf1"

    def test_fig9_dump_writes_occupancy(self, capsys, tmp_path):
        assert main(
            ["run", "fig9", "--fast", "--dump", str(tmp_path)]
        ) == 0
        occupancy = (tmp_path / "fig9_occupancy.csv").read_text()
        assert occupancy.startswith("time_s,truth,detected")
