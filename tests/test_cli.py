"""Tests for the ``python -m repro`` experiment CLI."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_fast(self):
        args = build_parser().parse_args(["run", "fig5", "--fast"])
        assert args.command == "run"
        assert args.experiment == "fig5"
        assert args.fast

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_paper_values_are_json(self, capsys):
        assert main(["paper"]) == 0
        values = json.loads(capsys.readouterr().out)
        assert values["fig3_raw_error"] == 0.41

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_run_fig5_fast(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert set(result) == {
            "raw",
            "smooth",
            "arbitrate",
            "arbitrate+smooth",
            "smooth+arbitrate",
        }
        assert result["smooth+arbitrate"] < result["raw"]

    def test_run_fig9_fast(self, capsys):
        assert main(["run", "fig9", "--fast"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert 0.5 < result["accuracy"] <= 1.0

    def test_run_actuation_fast(self, capsys):
        assert main(["run", "actuation", "--fast"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["yield"]["actuated"] > result["yield"]["fixed"]


class TestDump:
    def test_fig6_dump_writes_sweep_csv(self, capsys, tmp_path):
        assert main(
            ["run", "fig6", "--fast", "--dump", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "fig6_sweep.csv" in err
        content = (tmp_path / "fig6_sweep.csv").read_text()
        assert content.startswith("granule_s,avg_relative_error")
        assert len(content.strip().splitlines()) > 3

    def test_fig3_dump_writes_all_traces(self, capsys, tmp_path):
        assert main(
            ["run", "fig3", "--fast", "--dump", str(tmp_path)]
        ) == 0
        names = {path.name for path in tmp_path.iterdir()}
        assert {
            "fig3_reality.csv",
            "fig3_raw.csv",
            "fig3_smooth.csv",
            "fig3_smooth_arbitrate.csv",
        } <= names
        header = (tmp_path / "fig3_reality.csv").read_text().splitlines()[0]
        assert header == "time_s,shelf0,shelf1"

    def test_fig9_dump_writes_occupancy(self, capsys, tmp_path):
        assert main(
            ["run", "fig9", "--fast", "--dump", str(tmp_path)]
        ) == 0
        occupancy = (tmp_path / "fig9_occupancy.csv").read_text()
        assert occupancy.startswith("time_s,truth,detected")


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestNetworkSubcommands:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "shelf"])
        assert args.command == "serve"
        assert args.scenario == "shelf"
        assert args.host == "127.0.0.1"
        assert args.port == 7007
        assert args.policy == "block"
        assert args.queue_bound == 64
        assert args.slack == 1.5

    def test_serve_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "shelf", "--policy", "drop-sideways"]
            )

    def test_serve_rejects_nonpositive_queue_bound(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "shelf", "--queue-bound", "0"]
            )

    def test_serve_observability_flags(self):
        args = build_parser().parse_args(["serve", "shelf"])
        assert args.ops_port is None  # ops plane is off by default
        assert args.stats is False
        assert args.trace_out is None
        assert args.span_out is None
        args = build_parser().parse_args(
            [
                "serve", "shelf", "--ops-port", "0", "--stats",
                "--trace-out", "events.jsonl", "--span-out", "spans.jsonl",
            ]
        )
        assert args.ops_port == 0
        assert args.stats is True
        assert args.trace_out == "events.jsonl"
        assert args.span_out == "spans.jsonl"

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.command == "top"
        assert args.host == "127.0.0.1"
        assert args.port == 7008
        assert args.interval == 2.0
        assert args.iterations is None
        assert args.clear is True

    def test_top_arguments(self):
        args = build_parser().parse_args(
            [
                "top", "--port", "9009", "--interval", "0.5",
                "--iterations", "3", "--no-clear",
            ]
        )
        assert args.port == 9009
        assert args.interval == 0.5
        assert args.iterations == 3
        assert args.clear is False

    def test_top_unreachable_endpoint_fails_cleanly(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = str(probe.getsockname()[1])
        probe.close()
        rc = main(["top", "--port", port, "--iterations", "1"])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().err

    def test_feed_arguments(self):
        args = build_parser().parse_args(
            [
                "feed", "redwood", "--port", "9001",
                "--mean-delay", "0.5", "--loss-yield", "0.8",
                "--rate", "4.0",
            ]
        )
        assert args.command == "feed"
        assert args.scenario == "redwood"
        assert args.port == 9001
        assert args.mean_delay == 0.5
        assert args.loss_yield == 0.8
        assert args.rate == 4.0

    def test_serve_and_feed_loopback_roundtrip(self, capsys):
        """The two subcommands against each other on an ephemeral port:
        ``serve`` (a subprocess) must emit a summary with gateway
        stats, ``feed`` (in-process) a delivery report."""
        import os
        import socket
        import subprocess
        import sys
        import time

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = str(probe.getsockname()[1])
        probe.close()

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "shelf",
                "--port", port, "--duration", "4.0", "--slack", "0.0",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            for _ in range(200):  # wait for the listener, 0.05 s steps
                try:
                    socket.create_connection(
                        ("127.0.0.1", int(port)), timeout=0.5
                    ).close()
                    break
                except OSError:
                    time.sleep(0.05)
            else:
                pytest.fail("serve subprocess never started listening")
            rc = main(
                ["feed", "shelf", "--port", port, "--duration", "4.0"]
            )
            out, err = server.communicate(timeout=60)
        finally:
            if server.poll() is None:
                server.kill()
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sent"]
        assert server.returncode == 0, err
        summary = json.loads(out)
        assert summary["scenario"] == "shelf"
        assert summary["output_tuples"] > 0
        assert "gateway" in summary

    def test_serve_with_ops_plane_and_top_roundtrip(self, capsys, tmp_path):
        """``serve --ops-port`` exposes /healthz, /metrics and /snapshot
        while the gateway waits; ``repro top`` renders a frame from it;
        ``--span-out`` lands the span log as JSONL after the run."""
        import os
        import socket
        import subprocess
        import sys
        import time
        import urllib.request

        ports = []
        for _ in range(2):
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            ports.append(str(probe.getsockname()[1]))
            probe.close()
        port, ops_port = ports
        span_out = tmp_path / "spans.jsonl"

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "shelf",
                "--port", port, "--ops-port", ops_port,
                "--duration", "4.0", "--slack", "0.0",
                "--span-out", str(span_out),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            for _ in range(200):
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{ops_port}/healthz", timeout=0.5
                    ) as response:
                        assert response.read() == b"ok\n"
                    break
                except OSError:
                    time.sleep(0.05)
            else:
                pytest.fail("ops endpoint never came up")
            with urllib.request.urlopen(
                f"http://127.0.0.1:{ops_port}/metrics", timeout=5.0
            ) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain"
                )
            rc = main(
                [
                    "top", "--port", ops_port,
                    "--iterations", "1", "--no-clear",
                ]
            )
            assert rc == 0
            frame = capsys.readouterr().out
            assert "status: not ready" in frame  # nothing connected yet
            rc = main(
                ["feed", "shelf", "--port", port, "--duration", "4.0"]
            )
            assert rc == 0
            out, err = server.communicate(timeout=60)
        finally:
            if server.poll() is None:
                server.kill()
        assert server.returncode == 0, err
        summary = json.loads(out)
        assert summary["ops_address"] == f"127.0.0.1:{ops_port}"
        spans = [
            json.loads(line)
            for line in span_out.read_text().splitlines()
            if line
        ]
        assert spans, "span log should be non-empty after a fed run"
        for record in spans[:10]:
            assert record["kind"] == "span"
            assert (
                record["queue_ns"] + record["reorder_ns"]
                + record["session_ns"] + record["sweep_ns"]
            ) == record["e2e_ns"]
