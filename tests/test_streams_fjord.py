"""Unit tests for the Fjord pipelined executor."""

import pytest

from repro.errors import OperatorError
from repro.streams.aggregates import AggregateSpec
from repro.streams.fjord import Fjord
from repro.streams.operators import (
    FilterOp,
    GroupKey,
    MapOp,
    Operator,
    UnionOp,
    WindowedGroupByOp,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


def ticks(until, period=1.0):
    return [i * period for i in range(int(until / period) + 1)]


class TestWiring:
    def test_source_to_sink(self):
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, v=1), tup(1.0, v=2)])
        sink = fjord.add_sink("out", inputs=["src"])
        fjord.run(ticks(2))
        assert [t["v"] for t in sink.results] == [1, 2]

    def test_operator_chain(self):
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, v=1), tup(0.0, v=5)])
        fjord.add_operator("f", FilterOp(lambda t: t["v"] > 2), inputs=["src"])
        fjord.add_operator(
            "m", MapOp(lambda t: t.derive(values={"v": t["v"] * 10})),
            inputs=["f"],
        )
        sink = fjord.add_sink("out", inputs=["m"])
        fjord.run(ticks(1))
        assert [t["v"] for t in sink.results] == [50]

    def test_merges_sources_by_timestamp(self):
        fjord = Fjord()
        fjord.add_source("a", [tup(0.0, v="a0"), tup(2.0, v="a2")])
        fjord.add_source("b", [tup(1.0, v="b1")])
        fjord.add_operator("u", UnionOp(), inputs=["a", "b"])
        sink = fjord.add_sink("out", inputs=["u"])
        fjord.run(ticks(3))
        assert [t["v"] for t in sink.results] == ["a0", "b1", "a2"]

    def test_multi_port_inputs(self):
        class PortRecorder(Operator):
            def __init__(self):
                self.seen = []

            def on_tuple(self, item, port=0):
                self.seen.append((port, item["v"]))
                return []

        recorder = PortRecorder()
        fjord = Fjord()
        fjord.add_source("a", [tup(0.0, v="left")])
        fjord.add_source("b", [tup(0.0, v="right")])
        fjord.add_operator("r", recorder, inputs=[("a", 0), ("b", 1)])
        fjord.run(ticks(1))
        assert sorted(recorder.seen) == [(0, "left"), (1, "right")]

    def test_duplicate_names_rejected(self):
        fjord = Fjord()
        fjord.add_source("x", [])
        with pytest.raises(OperatorError):
            fjord.add_source("x", [])
        fjord.add_operator("op", UnionOp(), inputs=["x"])
        with pytest.raises(OperatorError):
            fjord.add_operator("op", UnionOp(), inputs=["x"])

    def test_unknown_upstream_rejected(self):
        fjord = Fjord()
        with pytest.raises(OperatorError):
            fjord.add_operator("op", UnionOp(), inputs=["ghost"])

    def test_cycle_detected(self):
        fjord = Fjord()
        fjord.add_source("src", [])
        a = UnionOp()
        fjord.add_operator("a", a, inputs=["src"])
        fjord.add_operator("b", UnionOp(), inputs=["a"])
        # Manually wire b -> a to close a cycle.
        fjord._nodes["b"].downstream.append(("a", 0))
        fjord._order = None
        with pytest.raises(OperatorError):
            fjord.run(ticks(1))


class TestPunctuationSemantics:
    def test_same_instant_pipelining(self):
        """A downstream windowed op must see upstream on_time output at the
        same tick — the Smooth→Arbitrate requirement of Figure 4."""
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, shelf=0, tag_id="a")])
        fjord.add_operator(
            "smooth",
            WindowedGroupByOp(
                WindowSpec.range_by(5.0),
                keys=[GroupKey("tag_id"), GroupKey("shelf")],
                aggregates=[AggregateSpec("count", output="count")],
            ),
            inputs=["src"],
        )
        fjord.add_operator(
            "downstream",
            WindowedGroupByOp(
                WindowSpec.now(),
                keys=[GroupKey("shelf")],
                aggregates=[AggregateSpec("count", output="n")],
            ),
            inputs=["smooth"],
        )
        sink = fjord.add_sink("out", inputs=["downstream"])
        fjord.run([0.0])
        assert len(sink.results) == 1
        assert sink.results[0].timestamp == 0.0

    def test_tuples_later_than_final_tick_not_delivered(self):
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, v=1), tup(99.0, v=2)])
        sink = fjord.add_sink("out", inputs=["src"])
        fjord.run([0.0, 1.0])
        assert [t["v"] for t in sink.results] == [1]

    def test_deterministic_across_runs(self):
        def build():
            fjord = Fjord()
            fjord.add_source("a", [tup(0.0, v=1), tup(1.0, v=2)])
            fjord.add_source("b", [tup(0.0, v=3)])
            fjord.add_operator("u", UnionOp(), inputs=["a", "b"])
            sink = fjord.add_sink("out", inputs=["u"])
            fjord.run(ticks(2))
            return [t["v"] for t in sink.results]

        assert build() == build()

    def test_fan_out_to_two_sinks(self):
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, v=1)])
        sink1 = fjord.add_sink("s1", inputs=["src"])
        sink2 = fjord.add_sink("s2", inputs=["src"])
        fjord.run([0.0])
        assert len(sink1.results) == len(sink2.results) == 1


class TestSourceOrderValidation:
    """Out-of-order source tuples fail fast with a precise diagnostic."""

    def test_out_of_order_source_raises(self):
        fjord = Fjord()
        fjord.add_source("mote3", [tup(0.0, v=1), tup(5.0, v=2), tup(2.0, v=3)])
        fjord.add_sink("out", inputs=["mote3"])
        with pytest.raises(OperatorError) as excinfo:
            fjord.run(ticks(6))
        message = str(excinfo.value)
        assert "mote3" in message
        assert "2" in message and "5" in message
        assert message == (
            "source 'mote3' is out of order: timestamp 2 arrived after 5"
        )

    def test_regression_in_second_source_named_correctly(self):
        fjord = Fjord()
        fjord.add_source("clean", [tup(0.0, v=1), tup(1.0, v=2)])
        fjord.add_source("dirty", [tup(0.0, v=3), tup(3.0, v=4), tup(1.0, v=5)])
        fjord.add_sink("out", inputs=["clean", "dirty"])
        with pytest.raises(OperatorError, match="source 'dirty' is out of order"):
            fjord.run(ticks(4))

    def test_duplicate_timestamps_are_in_order(self):
        fjord = Fjord()
        fjord.add_source("src", [tup(1.0, v=1), tup(1.0, v=2), tup(1.0, v=3)])
        sink = fjord.add_sink("out", inputs=["src"])
        fjord.run(ticks(2))
        assert [t["v"] for t in sink.results] == [1, 2, 3]

    def test_tuples_before_regression_are_delivered(self):
        """The check fires lazily, at the pull that meets the bad tuple."""
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, v=1), tup(4.0, v=2), tup(3.0, v=3)])
        sink = fjord.add_sink("out", inputs=["src"])
        with pytest.raises(OperatorError, match="out of order"):
            fjord.run(ticks(5))
        assert [t["v"] for t in sink.results] == [1]


class TestFjordSession:
    """Push-mode execution must replicate the pull-based run exactly."""

    def _windowed(self, sources):
        """A fjord with a stateful windowed aggregate over two sources."""
        fjord = Fjord()
        for name, items in sources.items():
            fjord.add_source(name, items)
        fjord.add_operator(
            "agg",
            WindowedGroupByOp(
                WindowSpec("range", 2.0),
                keys=(),
                aggregates=[AggregateSpec("count", None, output="n")],
            ),
            inputs=sorted(sources),
        )
        sink = fjord.add_sink("out", inputs=["agg"])
        return fjord, sink

    def _data(self):
        return {
            "a": [tup(0.0, "a", v=1), tup(1.5, "a", v=2), tup(3.0, "a", v=3)],
            "b": [tup(0.5, "b", v=4), tup(1.5, "b", v=5), tup(2.5, "b", v=6)],
        }

    def test_session_matches_run(self):
        data = self._data()
        ref_fjord, ref_sink = self._windowed(data)
        ref_fjord.run(ticks(4))

        empty = {name: [] for name in data}
        fjord, sink = self._windowed(empty)
        session = fjord.open_session(ticks(4))
        arrivals = sorted(
            ((item.timestamp, name, item) for name, items in data.items()
             for item in items),
            key=lambda e: (e[0], e[1]),
        )
        for ts, name, item in arrivals:
            session.push(name, item)
            session.advance(ts)  # everything strictly below ts is safe
        session.close()
        assert sink.results == ref_sink.results

    def test_advance_respects_watermark(self):
        fjord, _sink = self._windowed({"a": [], "b": []})
        session = fjord.open_session([0.0, 1.0, 2.0])
        assert session.advance(1.5) == [0.0, 1.0]
        assert session.safe_time == 1.0
        assert session.advance(1.5) == []  # stale watermark: no-op
        assert session.advance(float("inf")) == [2.0]

    def test_push_behind_cursor_raises(self):
        fjord, _sink = self._windowed({"a": [], "b": []})
        session = fjord.open_session([0.0, 1.0, 2.0])
        session.advance(1.5)
        with pytest.raises(OperatorError, match="behind the session"):
            session.push("a", tup(0.5, "a", v=1))

    def test_push_unknown_source_raises(self):
        fjord, _sink = self._windowed({"a": [], "b": []})
        session = fjord.open_session([0.0, 1.0])
        with pytest.raises(OperatorError, match="unknown session source"):
            session.push("nope", tup(0.5, "nope", v=1))

    def test_per_source_regression_raises(self):
        fjord, _sink = self._windowed({"a": [], "b": []})
        session = fjord.open_session([0.0, 5.0])
        session.push("a", tup(3.0, "a", v=1))
        with pytest.raises(OperatorError, match="out of order"):
            session.push("a", tup(1.0, "a", v=2))

    def test_close_flushes_and_is_idempotent(self):
        data = {"a": [tup(0.5, "a", v=1)], "b": []}
        ref_fjord, ref_sink = self._windowed(data)
        ref_fjord.run(ticks(3))

        fjord, sink = self._windowed({"a": [], "b": []})
        session = fjord.open_session(ticks(3))
        session.push("a", tup(0.5, "a", v=1))
        session.close()
        session.close()  # second close is a no-op
        assert sink.results == ref_sink.results
        with pytest.raises(OperatorError, match="closed"):
            session.push("a", tup(2.5, "a", v=9))
        with pytest.raises(OperatorError, match="closed"):
            session.advance(10.0)

    def test_descending_ticks_rejected(self):
        fjord, _sink = self._windowed({"a": [], "b": []})
        with pytest.raises(OperatorError, match="ascending"):
            fjord.open_session([2.0, 1.0])
