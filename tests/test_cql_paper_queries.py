"""Every query printed in the paper parses and runs with the documented
semantics — the acceptance test for the CQL subset's scope."""

import pytest

from repro.cql import compile_query, parse
from repro.streams.tuples import StreamTuple

QUERY_1 = """
SELECT shelf, count(distinct tag_id)
FROM rfid_data [Range By '5 sec']
GROUP BY shelf
"""

QUERY_2 = """
SELECT tag_id, count(*)
FROM smooth_input [Range By '5 sec']
GROUP BY tag_id
"""

QUERY_3 = """
SELECT spatial_granule, tag_id
FROM arbitrate_input ai1 [Range By 'NOW']
GROUP BY spatial_granule, tag_id
HAVING count(*) >= ALL(SELECT count(*)
                       FROM arbitrate_input ai2
                       [Range By 'NOW']
                       WHERE ai1.tag_id = ai2.tag_id
                       GROUP BY spatial_granule)
"""

QUERY_4 = """
SELECT *
FROM point_input
WHERE temp < 50
"""

# Query 5 as printed has two typos (missing comma before the derived
# table — which the parser tolerates — and an impossible rejection band:
# "a.avg + a.stdev < s.temp AND a.avg - a.stdev > s.temp" selects
# readings simultaneously above and below the band). This is the
# intended, satisfiable form; see DESIGN.md.
QUERY_5 = """
SELECT spatial_granule, AVG(temp)
FROM merge_input s [Range By '5 min']
     (SELECT spatial_granule, avg(temp) as avg,
             stdev(temp) as stdev
      FROM merge_input [Range By '5 min']) as a
WHERE a.spatial_granule = s.spatial_granule AND
      s.temp < a.avg + a.stdev AND
      s.temp > a.avg - a.stdev
GROUP BY spatial_granule
"""

QUERY_6 = """
SELECT 'Person-in-room'
FROM (SELECT 1 as cnt
      FROM sensors_input [Range By 'NOW']
      WHERE sensors.noise > 525) as sensor_count,
     (SELECT 1 as cnt
      FROM rfid_input [Range By 'NOW']
      HAVING count(distinct tag_id) > 1)
      as rfid_count,
     (SELECT 1 as cnt
      FROM motion_input [Range By 'NOW']
      WHERE value = 'ON') as motion_count,
WHERE sensor_count.cnt +
      rfid_count.cnt +
      motion_count.cnt >= 2
"""

ALL_QUERIES = {
    "query1": QUERY_1,
    "query2": QUERY_2,
    "query3": QUERY_3,
    "query4": QUERY_4,
    "query5": QUERY_5,
    "query6": QUERY_6,
}


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_parses(name):
    assert parse(ALL_QUERIES[name]) is not None


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_compiles(name):
    assert compile_query(ALL_QUERIES[name]) is not None


def tup(ts, stream, **fields):
    return StreamTuple(ts, fields, stream)


def test_query1_counts_items_per_shelf():
    rows = [
        tup(0.0, "rfid_data", shelf=0, tag_id="a"),
        tup(1.0, "rfid_data", shelf=0, tag_id="b"),
        tup(1.0, "rfid_data", shelf=0, tag_id="a"),
        tup(1.0, "rfid_data", shelf=1, tag_id="c"),
    ]
    out = compile_query(QUERY_1).run({"rfid_data": rows}, [0.0, 1.0])
    at_1 = {
        t["shelf"]: t["count_distinct_tag_id"]
        for t in out
        if t.timestamp == 1.0
    }
    assert at_1 == {0: 2, 1: 1}


def test_query2_interpolates_within_window():
    # Tag read at t=0 only; the 5s window keeps reporting it through t=5.
    rows = [tup(0.0, "smooth_input", tag_id="a")]
    out = compile_query(QUERY_2).run(
        {"smooth_input": rows}, [0.0, 2.0, 5.0, 6.0]
    )
    times = [t.timestamp for t in out]
    assert times == [0.0, 2.0, 5.0]  # gone by 6.0


def test_query3_attributes_tag_to_strongest_granule():
    rows = (
        [tup(0.0, "arbitrate_input", spatial_granule="shelf0", tag_id="a")] * 3
        + [tup(0.0, "arbitrate_input", spatial_granule="shelf1", tag_id="a")]
    )
    out = compile_query(QUERY_3).run({"arbitrate_input": rows}, [0.0])
    assert [(t["spatial_granule"], t["tag_id"]) for t in out] == [
        ("shelf0", "a")
    ]


def test_query4_drops_fail_dirty_readings():
    rows = [
        tup(0.0, "point_input", temp=22.0, mote_id="m1"),
        tup(0.0, "point_input", temp=104.0, mote_id="m3"),
    ]
    out = compile_query(QUERY_4).run({"point_input": rows}, [0.0])
    assert [t["mote_id"] for t in out] == ["m1"]


def test_query5_discards_sigma_outlier():
    rows = [
        tup(0.0, "merge_input", spatial_granule="room", temp=v)
        for v in (21.0, 22.0, 90.0)
    ]
    out = compile_query(QUERY_5).run({"merge_input": rows}, [0.0])
    assert len(out) == 1
    assert out[0]["avg_temp"] == pytest.approx(21.5)


def test_query6_votes_two_of_three():
    feeds = {
        "sensors_input": [tup(0.0, "sensors_input", noise=700)],
        "rfid_input": [
            tup(0.0, "rfid_input", tag_id="b0"),
            tup(0.0, "rfid_input", tag_id="b1"),
        ],
        "motion_input": [tup(0.0, "motion_input", value="ON")],
    }
    out = compile_query(QUERY_6).run(feeds, [0.0])
    assert out and out[0]["col0"] == "Person-in-room"
