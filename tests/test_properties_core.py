"""Property-based tests for ESP core invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.operators.arbitrate_ops import MaxCountArbitrator
from repro.core.operators.merge_ops import sigma_outlier_average
from repro.core.operators.virtualize_ops import VotingDetector
from repro.core.stages import StageContext, StageKind
from repro.streams.time import parse_duration
from repro.streams.tuples import StreamTuple

# -- arbitration invariants -----------------------------------------------------

claims_strategy = st.dictionaries(
    keys=st.tuples(
        st.sampled_from(["g0", "g1", "g2"]),
        st.sampled_from(["a", "b", "c", "d"]),
    ),
    values=st.integers(min_value=1, max_value=9),
    min_size=1,
    max_size=12,
)


def arbitrate(claims, tie_break="all", strength=None):
    op = MaxCountArbitrator(tie_break=tie_break, strength=strength)
    for (granule, tag), count in claims.items():
        op.on_tuple(
            StreamTuple(
                0.0,
                {"spatial_granule": granule, "tag_id": tag, "count": count},
            )
        )
    return op.on_time(0.0)


@given(claims_strategy)
def test_arbitrate_emits_at_most_one_granule_per_tag_with_weakest(claims):
    strength = {"g0": 1.0, "g1": 0.6, "g2": 0.3}
    out = arbitrate(claims, tie_break="weakest", strength=strength)
    tags = [t["tag_id"] for t in out]
    assert len(tags) == len(set(tags))


@given(claims_strategy)
def test_arbitrate_every_claimed_tag_is_attributed(claims):
    out = arbitrate(claims)
    claimed_tags = {tag for _granule, tag in claims}
    assert {t["tag_id"] for t in out} == claimed_tags


@given(claims_strategy)
def test_arbitrate_winner_has_max_count(claims):
    out = arbitrate(claims)
    for row in out:
        tag = row["tag_id"]
        best = max(
            count for (_g, t), count in claims.items() if t == tag
        )
        assert claims[(row["spatial_granule"], tag)] == best


@given(claims_strategy)
def test_arbitrate_never_invents_granules(claims):
    out = arbitrate(claims)
    for row in out:
        assert (row["spatial_granule"], row["tag_id"]) in claims


# -- merge outlier invariants ------------------------------------------------------


readings_strategy = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


def run_merge(values, k=1.0):
    op = sigma_outlier_average(window=10.0, k=k).make(
        StageContext(StageKind.MERGE)
    )
    for value in values:
        op.on_tuple(StreamTuple(0.0, {"spatial_granule": "g", "temp": value}))
    return op.on_time(0.0)


@given(readings_strategy)
def test_merge_output_within_input_range(values):
    out = run_merge(values)
    if out:
        assert min(values) - 1e-9 <= out[0]["temp"] <= max(values) + 1e-9


@given(readings_strategy)
def test_merge_survivor_count_bounded(values):
    out = run_merge(values)
    if out:
        assert 1 <= out[0]["readings"] <= len(values)


@given(readings_strategy)
def test_merge_constant_input_is_identity(values):
    constant = [values[0]] * len(values)
    out = run_merge(constant)
    assert out and out[0]["temp"] == pytest.approx(values[0])
    assert out[0]["readings"] == len(constant)


@given(
    st.lists(
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        min_size=2,
        max_size=10,
    ),
    st.floats(min_value=50.0, max_value=500.0),
)
def test_merge_rejects_single_extreme_outlier(cluster, offset):
    """A lone far-away reading never survives among >= 2 close readings."""
    values = [10.0 + v for v in cluster] + [10.0 + offset]
    out = run_merge(values)
    assert out
    # Output must stay near the cluster, not be dragged by the outlier.
    assert out[0]["temp"] < 10.0 + 5.0


# -- voting detector invariants ------------------------------------------------------


@given(
    st.dictionaries(
        keys=st.sampled_from(["s1", "s2", "s3"]),
        values=st.booleans(),
        min_size=0,
        max_size=3,
    ),
    st.integers(min_value=1, max_value=3),
)
def test_voting_threshold_monotone(fired, threshold):
    def run(thresh):
        op = VotingDetector(
            votes={"s1": None, "s2": None, "s3": None}, threshold=thresh
        )
        for stream, is_on in fired.items():
            if is_on:
                op.on_tuple(StreamTuple(0.0, {}, stream))
        return bool(op.on_time(0.0))

    votes = sum(fired.values())
    assert run(threshold) == (votes >= threshold)
    if threshold < 3 and run(threshold + 1):
        assert run(threshold)  # firing at k+1 implies firing at k


# -- duration parsing total behaviour -------------------------------------------------


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_parse_duration_roundtrip_numeric(seconds):
    assert parse_duration(seconds).seconds == seconds


@given(
    st.integers(min_value=1, max_value=10000),
    st.sampled_from(["sec", "min", "hour"]),
)
def test_parse_duration_unit_scaling(value, unit):
    scale = {"sec": 1.0, "min": 60.0, "hour": 3600.0}[unit]
    assert parse_duration(f"{value} {unit}").seconds == value * scale
