"""Tests for the ingestion wire protocol framing and payloads."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net import protocol
from repro.net.protocol import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    record_to_tuple,
    tuple_to_record,
)
from repro.streams.tuples import StreamTuple


class TestFraming:
    def test_roundtrip_single_frame(self):
        frame = protocol.hello(["reader0", "reader1"])
        decoded = FrameDecoder().feed(encode_frame(frame))
        assert decoded == [frame]

    def test_split_across_arbitrary_boundaries(self):
        frames = [
            protocol.hello(["a"]),
            protocol.heartbeat(["a"]),
            protocol.bye("a"),
        ]
        wire = b"".join(encode_frame(f) for f in frames)
        for cut in range(1, len(wire) - 1):
            decoder = FrameDecoder()
            out = decoder.feed(wire[:cut]) + decoder.feed(wire[cut:])
            assert out == frames
            assert len(decoder) == 0

    def test_byte_at_a_time(self):
        frame = protocol.credit_frame("a", 7)
        decoder = FrameDecoder()
        out = []
        for i in encode_frame(frame):
            out.extend(decoder.feed(bytes([i])))
        assert out == [frame]

    def test_oversized_length_prefix_rejected(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(header)

    def test_oversized_frame_not_encodable(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "data", "blob": "x" * (MAX_FRAME_BYTES)})

    def test_non_object_payload_rejected(self):
        payload = b"[1, 2, 3]"
        wire = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)

    def test_typeless_object_rejected(self):
        payload = b'{"version": 1}'
        wire = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)

    def test_garbage_payload_rejected(self):
        payload = b"\xff\xfe not json"
        wire = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)


class TestFrameSizeGuard:
    """The configurable max-frame-size hardening (hostile prefixes)."""

    def test_custom_cap_enforced_on_decoder(self):
        decoder = FrameDecoder(max_frame_bytes=32)
        assert decoder.max_frame_bytes == 32
        small = encode_frame(protocol.drain())
        assert decoder.feed(small) == [protocol.drain()]
        big = encode_frame(protocol.hello([f"reader{i}" for i in range(20)]))
        with pytest.raises(ProtocolError, match="32-byte limit"):
            decoder.feed(big)

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValueError):
            FrameDecoder(max_frame_bytes=0)
        with pytest.raises(ValueError):
            FrameDecoder(max_frame_bytes=-1)

    def test_hostile_length_prefix_rejected_before_buffering(self):
        # A 4 GiB length prefix must cost 4 bytes of inspection, never
        # an allocation: the decoder raises from the header alone.
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="4294967295"):
            decoder.feed(b"\xff\xff\xff\xff")
        assert len(decoder) <= 4

    def test_gateway_rejects_hostile_prefix_and_closes(self):
        # End to end: a connection writing a hostile length prefix gets
        # an error frame and a closed connection; the gateway survives.
        from repro.net.gateway import IngestGateway

        class _Session:
            receptor_ids = ("reader0",)
            safe_time = float("-inf")

            def push(self, *a, **k):
                pass

            def advance(self, watermark):
                return []

            def close(self):
                return None

        async def scenario():
            gateway = IngestGateway(_Session(), slack=0.0)
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame(protocol.hello(["reader0"])))
            await writer.drain()
            ack = await protocol.read_frame(reader)
            assert ack["type"] == "hello_ack"
            writer.write(b"\xff\xff\xff\xff")
            await writer.drain()
            reply = await protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "limit" in reply["reason"]
            assert await reader.read() == b""  # server closed the stream
            writer.close()
            await gateway.close()

        asyncio.run(asyncio.wait_for(scenario(), 20.0))


class TestConstructors:
    def test_hello_carries_version_and_sorted_sources(self):
        frame = protocol.hello(["b", "a"])
        assert frame["version"] == PROTOCOL_VERSION
        assert frame["sources"] == ["a", "b"]

    def test_hello_ack_credits_forms(self):
        assert protocol.hello_ack(None)["credits"] is None
        assert protocol.hello_ack({"a": 4})["credits"] == {"a": 4}

    def test_data_frame_fields(self):
        item = StreamTuple(2.5, {"v": 1}, stream="rfid")
        frame = protocol.data_frame("reader0", 9, 3.25, item)
        assert frame["source"] == "reader0"
        assert frame["seq"] == 9
        assert frame["arrival"] == 3.25
        assert record_to_tuple(frame["record"]) == item


class TestClusterDialect:
    """Round-trips and pinned bytes for the protocol-2 cluster frames."""

    FRAMES = [
        protocol.worker_hello("w0"),
        protocol.route(3, 12, ["r1", "r0"]),
        protocol.drain(),
        protocol.result(
            3, 7, [{"__ts__": 1.5, "__stream__": "rfid", "tag_id": "T1"}]
        ),
        protocol.result_end(3, "w0", 61, {"policy": "block"}),
    ]

    def test_protocol_version_is_2_and_v1_stays_supported(self):
        assert PROTOCOL_VERSION == 2
        assert protocol.SUPPORTED_VERSIONS == (1, 2)

    def test_every_cluster_frame_roundtrips(self):
        for frame in self.FRAMES:
            assert FrameDecoder().feed(encode_frame(frame)) == [frame]

    def test_worker_hello_fields(self):
        frame = protocol.worker_hello("w3")
        assert frame["worker"] == "w3"
        assert frame["version"] == PROTOCOL_VERSION

    def test_route_sorts_sources_and_coerces_ints(self):
        frame = protocol.route(1.0, 4.0, ["b", "a"])
        assert frame["sources"] == ["a", "b"]
        assert frame["epoch"] == 1 and isinstance(frame["epoch"], int)
        assert frame["start_tick"] == 4

    def test_result_end_defaults_telemetry_to_null(self):
        frame = protocol.result_end(0, "w0", 5, {})
        assert frame["telemetry"] is None
        rich = protocol.result_end(0, "w0", 5, {}, {"counters": {}})
        assert rich["telemetry"] == {"counters": {}}

    def test_pinned_wire_bytes(self):
        # Golden encodings: any drift here breaks mixed-version
        # clusters, so the exact bytes are pinned.
        golden = [
            b'\x00\x00\x006{"type": "worker_hello", "version": 2, '
            b'"worker": "w0"}',
            b'\x00\x00\x00H{"epoch": 3, "sources": ["r0", "r1"], '
            b'"start_tick": 12, "type": "route"}',
            b'\x00\x00\x00\x11{"type": "drain"}',
            b'\x00\x00\x00m{"epoch": 3, "records": [{"__stream__": "rfid", '
            b'"__ts__": 1.5, "tag_id": "T1"}], "tick": 7, "type": "result"}',
            b'\x00\x00\x00p{"epoch": 3, "stats": {"policy": "block"}, '
            b'"telemetry": null, "ticks": 61, "type": "result_end", '
            b'"worker": "w0"}',
        ]
        assert [encode_frame(f) for f in self.FRAMES] == golden

    def test_raw_read_returns_payload_for_verbatim_relay(self):
        async def scenario():
            server_reader = asyncio.StreamReader()
            frame = protocol.route(0, 0, ["a"])
            server_reader.feed_data(encode_frame(frame))
            server_reader.feed_eof()
            decoded, payload = await protocol.read_frame_raw(server_reader)
            assert decoded == frame
            assert encode_frame(frame) == (
                len(payload).to_bytes(4, "big") + payload
            )
            assert await protocol.read_frame_raw(server_reader) is None

        asyncio.run(asyncio.wait_for(scenario(), 20.0))


class TestVersionHandshake:
    """Compat negotiation: v1 feeders keep working, v3 is refused."""

    WAIT = 20.0

    class _Session:
        receptor_ids = ("reader0",)
        safe_time = float("-inf")

        def push(self, *a, **k):
            pass

        def advance(self, watermark):
            return []

        def close(self):
            return None

    def _handshake(self, version):
        from repro.net.gateway import IngestGateway

        async def scenario():
            gateway = IngestGateway(self._Session(), slack=0.0)
            host, port = await gateway.start()
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(
                writer, protocol.hello(["reader0"], version=version)
            )
            reply = await protocol.read_frame(reader)
            writer.close()
            await gateway.close()
            return reply

        return asyncio.run(asyncio.wait_for(scenario(), self.WAIT))

    def test_v1_hello_acked_with_v1(self):
        reply = self._handshake(1)
        assert reply["type"] == "hello_ack"
        assert reply["version"] == 1

    def test_v2_hello_acked_with_v2(self):
        reply = self._handshake(2)
        assert reply["type"] == "hello_ack"
        assert reply["version"] == 2

    def test_future_version_refused_with_supported_list(self):
        reply = self._handshake(3)
        assert reply["type"] == "error"
        assert "[1, 2]" in reply["reason"]

    def test_worker_requires_exact_v2(self):
        from repro.net.worker import ClusterWorker

        async def scenario():
            worker = ClusterWorker("shelf", duration=6.0, seed=3)
            host, port = await worker.start()
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(
                writer, protocol.worker_hello("w0", version=1)
            )
            reply = await protocol.read_frame(reader)
            writer.close()
            await worker.close()
            return reply

        reply = asyncio.run(asyncio.wait_for(scenario(), self.WAIT))
        assert reply["type"] == "error"
        assert "requires protocol 2" in reply["reason"]


class TestTupleEncoding:
    def test_roundtrip(self):
        item = StreamTuple(1.5, {"tag_id": "T1", "count": 3}, stream="rfid")
        assert record_to_tuple(tuple_to_record(item)) == item

    def test_missing_timestamp_rejected(self):
        with pytest.raises(ProtocolError):
            record_to_tuple({"v": 1})

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.dictionaries(
            st.text(min_size=1, max_size=8).filter(
                lambda k: not k.startswith("_")
            ),
            st.one_of(
                st.integers(min_value=-1000, max_value=1000),
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                st.text(max_size=12),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        ),
        st.text(max_size=8),
    )
    @settings(max_examples=60)
    def test_roundtrip_arbitrary_json_values(self, ts, fields, stream):
        item = StreamTuple(ts, fields, stream=stream)
        decoded = FrameDecoder().feed(
            encode_frame(protocol.data_frame("s", 0, ts, item))
        )
        assert record_to_tuple(decoded[0]["record"]) == item
