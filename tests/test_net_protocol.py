"""Tests for the ingestion wire protocol framing and payloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net import protocol
from repro.net.protocol import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    record_to_tuple,
    tuple_to_record,
)
from repro.streams.tuples import StreamTuple


class TestFraming:
    def test_roundtrip_single_frame(self):
        frame = protocol.hello(["reader0", "reader1"])
        decoded = FrameDecoder().feed(encode_frame(frame))
        assert decoded == [frame]

    def test_split_across_arbitrary_boundaries(self):
        frames = [
            protocol.hello(["a"]),
            protocol.heartbeat(["a"]),
            protocol.bye("a"),
        ]
        wire = b"".join(encode_frame(f) for f in frames)
        for cut in range(1, len(wire) - 1):
            decoder = FrameDecoder()
            out = decoder.feed(wire[:cut]) + decoder.feed(wire[cut:])
            assert out == frames
            assert len(decoder) == 0

    def test_byte_at_a_time(self):
        frame = protocol.credit_frame("a", 7)
        decoder = FrameDecoder()
        out = []
        for i in encode_frame(frame):
            out.extend(decoder.feed(bytes([i])))
        assert out == [frame]

    def test_oversized_length_prefix_rejected(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(header)

    def test_oversized_frame_not_encodable(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "data", "blob": "x" * (MAX_FRAME_BYTES)})

    def test_non_object_payload_rejected(self):
        payload = b"[1, 2, 3]"
        wire = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)

    def test_typeless_object_rejected(self):
        payload = b'{"version": 1}'
        wire = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)

    def test_garbage_payload_rejected(self):
        payload = b"\xff\xfe not json"
        wire = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)


class TestConstructors:
    def test_hello_carries_version_and_sorted_sources(self):
        frame = protocol.hello(["b", "a"])
        assert frame["version"] == PROTOCOL_VERSION
        assert frame["sources"] == ["a", "b"]

    def test_hello_ack_credits_forms(self):
        assert protocol.hello_ack(None)["credits"] is None
        assert protocol.hello_ack({"a": 4})["credits"] == {"a": 4}

    def test_data_frame_fields(self):
        item = StreamTuple(2.5, {"v": 1}, stream="rfid")
        frame = protocol.data_frame("reader0", 9, 3.25, item)
        assert frame["source"] == "reader0"
        assert frame["seq"] == 9
        assert frame["arrival"] == 3.25
        assert record_to_tuple(frame["record"]) == item


class TestTupleEncoding:
    def test_roundtrip(self):
        item = StreamTuple(1.5, {"tag_id": "T1", "count": 3}, stream="rfid")
        assert record_to_tuple(tuple_to_record(item)) == item

    def test_missing_timestamp_rejected(self):
        with pytest.raises(ProtocolError):
            record_to_tuple({"v": 1})

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.dictionaries(
            st.text(min_size=1, max_size=8).filter(
                lambda k: not k.startswith("_")
            ),
            st.one_of(
                st.integers(min_value=-1000, max_value=1000),
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                st.text(max_size=12),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        ),
        st.text(max_size=8),
    )
    @settings(max_examples=60)
    def test_roundtrip_arbitrary_json_values(self, ts, fields, stream):
        item = StreamTuple(ts, fields, stream=stream)
        decoded = FrameDecoder().feed(
            encode_frame(protocol.data_frame("s", 0, ts, item))
        )
        assert record_to_tuple(decoded[0]["record"]) == item
