"""Differential tests: cluster output is byte-identical to single-node.

The determinism contract of :mod:`repro.net.cluster`: for any worker
count — and across live worker join/leave rebalances mid-stream — the
router + workers + egress merge produce *exactly* the tuples, in
exactly the order, of (a) the in-memory batch run and (b) a
single-gateway loopback run of the same scenario.

Same discipline as ``test_net_gateway.py``: real sockets on loopback
ephemeral ports, no wall-clock sleeps, ``asyncio.wait_for`` guards as
hang insurance only.
"""

import asyncio

import pytest

from repro.net.cluster import merge_epochs, serve_cluster
from repro.net.feeder import ReplayFeeder
from repro.net.gateway import IngestGateway
from repro.net.router import ClusterRouter
from repro.net.service import build_bundle
from repro.net.worker import ClusterWorker
from repro.receptors.network import DelayModel
from repro.streams.telemetry import InMemoryCollector

WAIT = 30.0  # hang guard for awaits; never approached on a healthy run

#: (scenario, duration override) — durations sized so each case feeds
#: hundreds of frames (shelf) / the full default recording (redwood)
#: yet completes in seconds.
CASES = [("shelf", 12.0), ("redwood", None)]

SEED = 3


def in_memory_output(name, duration):
    bundle = build_bundle(name, duration, SEED)
    run = bundle.processor.run(
        bundle.until, bundle.tick, sources=bundle.streams
    )
    return run.output


async def gateway_loopback_output(name, duration, slack=0.0):
    """The existing single-gateway serve/feed path, for the 3-way check."""
    bundle = build_bundle(name, duration, SEED)
    session = bundle.processor.open_session(
        until=bundle.until, tick=bundle.tick
    )
    gateway = IngestGateway(session, slack=slack)
    host, port = await gateway.start()
    feeder = ReplayFeeder(host, port, bundle.streams)
    await asyncio.wait_for(feeder.run(), WAIT)
    await asyncio.wait_for(gateway.run_until_drained(), WAIT)
    run = await gateway.close()
    return run.output


async def cluster_run(
    name,
    n_workers,
    duration,
    *,
    slack=0.0,
    events=(),
    delay_model=None,
    telemetry=None,
    instrument_workers=False,
):
    """Drive a full in-process cluster; returns (output, router, workers).

    ``events`` is a list of ``(fraction, action, label)`` rebalance
    triggers: once ``fraction`` of the recording's frames have been
    forwarded, ``join``/``leave`` the labelled worker.
    """
    bundle = build_bundle(name, duration, SEED)
    total_frames = sum(len(items) for items in bundle.streams.values())
    workers = {}

    async def spawn(label):
        worker = ClusterWorker(
            build_bundle(name, duration, SEED),
            slack=slack,
            telemetry=InMemoryCollector() if instrument_workers else None,
        )
        host, port = await worker.start()
        workers[label] = worker
        return label, host, port

    specs = [await spawn(f"w{i}") for i in range(n_workers)]
    router = ClusterRouter(
        build_bundle(name, duration, SEED), slack=slack, telemetry=telemetry
    )
    host, port = await router.start()
    await router.connect_workers(specs)
    feeder = ReplayFeeder(
        host, port, bundle.streams, delay_model=delay_model
    )
    feed_task = asyncio.ensure_future(feeder.run())
    try:
        for fraction, action, label in events:
            threshold = max(1, int(fraction * total_frames))
            await asyncio.wait_for(
                router.wait_for_data_frames(threshold), WAIT
            )
            if action == "join":
                spec = await spawn(label)
                await asyncio.wait_for(router.add_worker(*spec), WAIT)
            else:
                await asyncio.wait_for(router.remove_worker(label), WAIT)
        await asyncio.wait_for(feed_task, WAIT)
        await asyncio.wait_for(router.run_until_complete(), WAIT)
        output = router.result()
    finally:
        feed_task.cancel()
        await router.close()
        for worker in workers.values():
            await worker.close()
    return output, router


class TestClusterEquivalence:
    """1/2/4 workers × shelf/redwood, all byte-identical to single-node."""

    @pytest.mark.parametrize("name,duration", CASES)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_in_memory_and_single_gateway(
        self, name, duration, n_workers
    ):
        reference = in_memory_output(name, duration)
        assert reference  # non-vacuous

        async def scenario():
            single = await gateway_loopback_output(name, duration)
            clustered, router = await cluster_run(name, n_workers, duration)
            return single, clustered, router

        single, clustered, router = asyncio.run(scenario())
        assert single == reference
        assert clustered == reference
        stats = router.stats()
        assert stats["epoch"] == 0  # no rebalance: one epoch end to end
        assert len(router.epochs()) == 1

    def test_shelf_with_network_delays_and_slack(self):
        # Reordered arrivals: slack at the delay cap keeps the cluster
        # byte-identical, the same contract as a single gateway.
        reference = in_memory_output("shelf", 12.0)

        async def scenario():
            return await cluster_run(
                "shelf",
                2,
                12.0,
                slack=1.5,
                delay_model=DelayModel(0.4, 1.5, rng=7),
            )

        clustered, router = asyncio.run(scenario())
        assert clustered == reference


class TestRebalance:
    """Live membership changes mid-stream lose and duplicate nothing."""

    @pytest.mark.parametrize("name,duration", CASES)
    def test_worker_join_mid_stream(self, name, duration):
        reference = in_memory_output(name, duration)

        async def scenario():
            return await cluster_run(
                name, 2, duration, events=[(0.3, "join", "w2")]
            )

        clustered, router = asyncio.run(scenario())
        assert clustered == reference
        epochs = router.epochs()
        assert [e["epoch"] for e in epochs] == [0, 1]
        assert epochs[1]["workers"] == ["w0", "w1", "w2"]
        # The spans tile the tick axis: no tick lost, none duplicated.
        assert epochs[0]["start_tick"] == 0
        assert epochs[0]["end_tick"] == epochs[1]["start_tick"]

    @pytest.mark.parametrize("name,duration", CASES)
    def test_worker_join_then_leave(self, name, duration):
        reference = in_memory_output(name, duration)

        async def scenario():
            return await cluster_run(
                name,
                2,
                duration,
                events=[(0.2, "join", "w2"), (0.6, "leave", "w0")],
            )

        clustered, router = asyncio.run(scenario())
        assert clustered == reference
        epochs = router.epochs()
        assert [e["epoch"] for e in epochs] == [0, 1, 2]
        assert epochs[2]["workers"] == ["w1", "w2"]
        boundaries = [(e["start_tick"], e["end_tick"]) for e in epochs]
        for (_, end), (start, _) in zip(boundaries, boundaries[1:]):
            assert end == start

    def test_rebalance_under_network_delays(self):
        reference = in_memory_output("shelf", 12.0)

        async def scenario():
            return await cluster_run(
                "shelf",
                2,
                12.0,
                slack=1.5,
                delay_model=DelayModel(0.4, 1.5, rng=7),
                events=[(0.4, "join", "w2")],
            )

        clustered, _router = asyncio.run(scenario())
        assert clustered == reference


class TestClusterSmoke:
    """The CI loopback smoke: 3 workers, telemetry rollup, ops surface."""

    def test_three_worker_smoke_with_rollup(self):
        reference = in_memory_output("shelf", 8.0)
        collector = InMemoryCollector()

        async def scenario():
            return await cluster_run(
                "shelf", 3, 8.0, telemetry=collector,
                instrument_workers=True,
            )

        clustered, router = asyncio.run(scenario())
        assert clustered == reference
        # Worker telemetry was absorbed into the cluster rollup under
        # node labels; stage counters merge unprefixed.
        snapshot = collector.snapshot()
        labelled = [
            key for key in snapshot["counters"] if key.startswith("w")
        ]
        assert any(key.startswith("w0.") for key in labelled)
        stats = router.stats()
        assert stats["data_frames"] == sum(
            entry["offered"] for entry in stats["sources"].values()
        )
        readiness = router.readiness()
        assert isinstance(readiness["ready"], bool)

    def test_serve_cluster_summary(self):
        # The service-level wrapper (what `repro cluster` runs).
        async def scenario():
            workers = []
            specs = []
            for index in range(2):
                worker = ClusterWorker("shelf", duration=8.0, seed=SEED)
                host, port = await worker.start()
                workers.append(worker)
                specs.append((f"w{index}", host, port))
            bundle = build_bundle("shelf", 8.0, SEED)

            async def feed(host, port):
                feeder = ReplayFeeder(host, port, bundle.streams)
                await feeder.run()

            feed_tasks = []

            def ready(host, port):
                feed_tasks.append(asyncio.ensure_future(feed(host, port)))

            summary = await asyncio.wait_for(
                serve_cluster(
                    "shelf",
                    specs,
                    duration=8.0,
                    seed=SEED,
                    slack=0.0,
                    ready=ready,
                ),
                WAIT,
            )
            for task in feed_tasks:
                await task
            for worker in workers:
                await worker.close()
            return summary

        summary = asyncio.run(scenario())
        assert summary["scenario"] == "shelf"
        assert summary["workers"] == ["w0", "w1"]
        assert summary["output_tuples"] == len(
            in_memory_output("shelf", 8.0)
        )
        assert summary["epochs"][0]["workers"] == ["w0", "w1"]


class TestMergeEpochs:
    """Unit coverage for the epoch-sliced egress merge."""

    def test_spans_mask_ticks_outside_their_epoch(self):
        from repro.streams.tuples import StreamTuple

        def tup(ts, key):
            return StreamTuple(ts, {"tag_id": key}, stream="s")

        epochs = [
            {
                "start": 0,
                "end": 1,
                "results": {
                    "w0": {"per_tick": {0: [tup(0.0, "a")], 1: [tup(1.0, "stale")]}},
                },
            },
            {
                "start": 1,
                "end": 2,
                "results": {
                    "w0": {"per_tick": {0: [tup(0.0, "dup")], 1: [tup(1.0, "b")]}},
                    "w1": {"per_tick": {1: [tup(1.0, "a")]}},
                },
            },
        ]
        merged = merge_epochs(epochs, 2, "tag_id")
        assert [t.get("tag_id") for t in merged] == ["a", "a", "b"]

    def test_cross_worker_tick_ordering_is_key_sorted(self):
        from repro.streams.tuples import StreamTuple

        def tup(key):
            return StreamTuple(0.0, {"tag_id": key}, stream="s")

        epochs = [
            {
                "start": 0,
                "end": 1,
                "results": {
                    "w1": {"per_tick": {0: [tup("c"), tup("a")]}},
                    "w0": {"per_tick": {0: [tup("b")]}},
                },
            }
        ]
        merged = merge_epochs(epochs, 1, "tag_id")
        assert [t.get("tag_id") for t in merged] == ["a", "b", "c"]
