"""Unit tests for the CQL window machinery."""

import pytest

from repro.errors import WindowError
from repro.streams.tuples import StreamTuple
from repro.streams.windows import (
    NowWindow,
    RowWindow,
    SlidingWindow,
    WindowSpec,
)


def tup(ts, **fields):
    return StreamTuple(ts, fields or {"v": ts})


class TestWindowSpec:
    def test_range_by_parses_duration(self):
        assert WindowSpec.range_by("5 sec").range_seconds == 5.0

    def test_now_spec(self):
        spec = WindowSpec.now()
        assert spec.is_now
        assert isinstance(spec.make_window(), NowWindow)

    def test_rows_spec(self):
        spec = WindowSpec.rows(3)
        assert spec.row_count == 3
        assert isinstance(spec.make_window(), RowWindow)

    def test_range_spec_makes_sliding_window(self):
        assert isinstance(
            WindowSpec.range_by(5.0).make_window(), SlidingWindow
        )

    def test_rows_have_no_time_range(self):
        with pytest.raises(WindowError):
            WindowSpec.rows(3).range_seconds

    def test_range_has_no_row_count(self):
        with pytest.raises(WindowError):
            WindowSpec.range_by(5.0).row_count

    def test_invalid_kind(self):
        with pytest.raises(WindowError):
            WindowSpec("tumbling", 5)

    def test_nonpositive_rows_rejected(self):
        with pytest.raises(WindowError):
            WindowSpec.rows(0)

    def test_equality_and_hash(self):
        assert WindowSpec.range_by("5 sec") == WindowSpec.range_by(5.0)
        assert WindowSpec.rows(3) != WindowSpec.rows(4)
        assert hash(WindowSpec.now()) == hash(WindowSpec.now())


class TestSlidingWindow:
    def test_holds_range_exclusive_inclusive(self):
        window = SlidingWindow(5.0)
        window.insert(tup(0.0))
        window.insert(tup(3.0))
        window.advance(5.0)
        assert [t.timestamp for t in window] == [0.0, 3.0]
        window.advance(5.1)
        assert [t.timestamp for t in window] == [3.0]

    def test_tuple_visible_for_exactly_range(self):
        window = SlidingWindow(5.0)
        window.insert(tup(1.0))
        window.advance(6.0)
        assert len(window) == 1  # 6.0 - 5.0 = 1.0, boundary evicts
        window.advance(6.0 + 1e-6)
        assert len(window) == 0

    def test_insert_evicts_immediately(self):
        window = SlidingWindow(2.0)
        window.insert(tup(0.0))
        window.insert(tup(10.0))
        assert [t.timestamp for t in window] == [10.0]

    def test_out_of_order_insert_rejected(self):
        window = SlidingWindow(5.0)
        window.insert(tup(5.0))
        with pytest.raises(WindowError):
            window.insert(tup(1.0))

    def test_equal_timestamps_allowed(self):
        window = SlidingWindow(5.0)
        window.insert(tup(1.0))
        window.insert(tup(1.0))
        assert len(window) == 2

    def test_contents_returns_copy(self):
        window = SlidingWindow(5.0)
        window.insert(tup(1.0))
        window.contents().clear()
        assert len(window) == 1

    def test_nonpositive_range_rejected(self):
        with pytest.raises(WindowError):
            SlidingWindow(0.0)

    def test_advance_backwards_is_harmless(self):
        window = SlidingWindow(5.0)
        window.insert(tup(3.0))
        window.advance(4.0)
        window.advance(2.0)  # stale punctuation must not resurrect/evict
        assert len(window) == 1


class TestNowWindow:
    def test_keeps_only_current_instant(self):
        window = NowWindow()
        window.insert(tup(1.0))
        window.insert(tup(2.0))
        assert [t.timestamp for t in window] == [2.0]
        window.advance(2.0)
        assert len(window) == 1
        window.advance(3.0)
        assert len(window) == 0

    def test_multiple_tuples_same_instant(self):
        window = NowWindow()
        window.insert(tup(1.0, v=1))
        window.insert(tup(1.0, v=2))
        assert len(window) == 2


class TestRowWindow:
    def test_keeps_last_n(self):
        window = RowWindow(2)
        for ts in (1.0, 2.0, 3.0):
            window.insert(tup(ts))
        assert [t.timestamp for t in window] == [2.0, 3.0]

    def test_time_advance_does_not_evict(self):
        window = RowWindow(2)
        window.insert(tup(1.0))
        window.advance(100.0)
        assert len(window) == 1

    def test_invalid_count(self):
        with pytest.raises(WindowError):
            RowWindow(0)
