"""Tests for MultiSensorMote and BBQ-style model-driven cleaning."""

import numpy as np
import pytest

from repro.core.operators.virtualize_ops import (
    CorrelationModelCleaner,
    correlation_model_cleaner,
)
from repro.core.stages import StageContext, StageKind
from repro.errors import OperatorError, ReceptorError
from repro.receptors.motes import FailDirtyModel, MultiSensorMote
from repro.streams.tuples import StreamTuple


class TestMultiSensorMote:
    def make(self, **kwargs):
        defaults = dict(
            fields={
                "temp": lambda now: 20.0,
                "voltage": lambda now: 2.8,
            },
            noise_std=0.0,
            sample_period=60.0,
            rng=0,
        )
        defaults.update(kwargs)
        return MultiSensorMote("mm", **defaults)

    def test_emits_all_quantities_in_one_tuple(self):
        readings = self.make().poll(60.0)
        assert len(readings) == 1
        reading = readings[0]
        assert reading["temp"] == 20.0
        assert reading["voltage"] == 2.8
        assert reading["mote_id"] == "mm"
        assert reading["epoch"] == 1

    def test_per_quantity_noise(self):
        mote = self.make(noise_std={"temp": 1.0, "voltage": 0.0})
        values = [mote.poll(i * 60.0)[0] for i in range(20)]
        temps = {v["temp"] for v in values}
        volts = {v["voltage"] for v in values}
        assert len(temps) > 1
        assert volts == {2.8}

    def test_fail_dirty_corrupts_only_fail_quantity(self):
        mote = self.make(
            fail_dirty=FailDirtyModel(onset=0.0, drift_rate=1.0),
            fail_quantity="temp",
        )
        sensed = mote.sense(100.0)
        assert sensed["temp"] == pytest.approx(120.0)
        assert sensed["voltage"] == 2.8

    def test_requires_fields(self):
        with pytest.raises(ReceptorError):
            MultiSensorMote("m", fields={})

    def test_fail_quantity_must_exist(self):
        with pytest.raises(ReceptorError):
            self.make(
                fail_dirty=FailDirtyModel(onset=0.0, drift_rate=1.0),
                fail_quantity="humidity",
            )

    def test_negative_noise_rejected(self):
        with pytest.raises(ReceptorError):
            self.make(noise_std={"temp": -1.0})

    def test_lossy_channel(self):
        class DropAll:
            def deliver(self):
                return False

        assert self.make(channel=DropAll()).poll(0.0) == []


def feed(cleaner, pairs):
    """Feed (voltage, temp) pairs; return kept temps."""
    kept = []
    for index, (x, y) in enumerate(pairs):
        out = cleaner.on_tuple(
            StreamTuple(float(index), {"voltage": x, "temp": y})
        )
        kept.extend(t["temp"] for t in out)
    return kept


def correlated_pairs(n, rng, slope=10.0, noise=0.1):
    xs = 2.8 + 0.05 * rng.standard_normal(n)
    ys = 20.0 + slope * (xs - 2.8) + noise * rng.standard_normal(n)
    return list(zip(xs, ys))


class TestCorrelationModelCleaner:
    def test_consistent_readings_pass(self):
        rng = np.random.default_rng(0)
        cleaner = CorrelationModelCleaner(warmup=30, k=4.0)
        pairs = correlated_pairs(200, rng)
        kept = feed(cleaner, pairs)
        assert len(kept) >= 195  # near-zero false rejections

    def test_inconsistent_reading_rejected(self):
        rng = np.random.default_rng(1)
        cleaner = CorrelationModelCleaner(warmup=30, k=4.0)
        feed(cleaner, correlated_pairs(100, rng))
        out = cleaner.on_tuple(
            StreamTuple(0.0, {"voltage": 2.8, "temp": 95.0})
        )
        assert out == []

    def test_no_rejection_during_warmup(self):
        cleaner = CorrelationModelCleaner(warmup=50)
        wild = [(2.8, 20.0), (2.8, 500.0), (2.8, -40.0)] * 5
        kept = feed(cleaner, wild)
        assert len(kept) == len(wild)

    def test_missing_fields_pass_through(self):
        cleaner = CorrelationModelCleaner(warmup=2)
        out = cleaner.on_tuple(StreamTuple(0.0, {"other": 1}))
        assert len(out) == 1

    def test_prediction_learns_slope(self):
        rng = np.random.default_rng(2)
        cleaner = CorrelationModelCleaner(warmup=10, alpha=0.02)
        feed(cleaner, correlated_pairs(500, rng, slope=10.0, noise=0.05))
        assert cleaner.predict(2.9) - cleaner.predict(2.8) == pytest.approx(
            1.0, abs=0.3
        )

    def test_slow_drift_detected_not_tracked(self):
        # A fault creeping at +0.05 per reading must eventually be
        # rejected rather than dragged along (the learn-gate's job).
        rng = np.random.default_rng(3)
        cleaner = CorrelationModelCleaner(
            warmup=50, k=4.0, k_learn=2.0, alpha=0.02
        )
        feed(cleaner, correlated_pairs(300, rng, noise=0.1))
        drift_kept = 0
        for step in range(400):
            out = cleaner.on_tuple(
                StreamTuple(
                    0.0, {"voltage": 2.8, "temp": 20.0 + 0.05 * step}
                )
            )
            drift_kept += len(out)
        assert drift_kept < 100  # rejected long before the drift ends

    def test_invalid_parameters(self):
        with pytest.raises(OperatorError):
            CorrelationModelCleaner(k=0.0)
        with pytest.raises(OperatorError):
            CorrelationModelCleaner(alpha=0.0)
        with pytest.raises(OperatorError):
            CorrelationModelCleaner(warmup=1)
        with pytest.raises(OperatorError):
            CorrelationModelCleaner(k=2.0, k_learn=3.0)

    def test_stage_builder(self):
        stage = correlation_model_cleaner()
        assert stage.kind is StageKind.VIRTUALIZE
        assert isinstance(
            stage.make(StageContext(StageKind.VIRTUALIZE)),
            CorrelationModelCleaner,
        )


class TestLoneMoteExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.model_based import model_based_comparison

        return model_based_comparison(duration=1.2 * 86400.0,
                                      failure_onset=0.4 * 86400.0)

    def test_raw_stream_ruined_by_failure(self, result):
        assert result["raw_error_after_failure"] > 10.0

    def test_model_cleaning_without_redundancy(self, result):
        assert result["cleaned_error_after_failure"] < 1.5

    def test_detection_soon_after_onset(self, result):
        first = result["first_post_onset_rejection"]
        assert first is not None
        assert first - result["failure_onset"] < 3 * 3600.0

    def test_low_false_rejection_rate(self, result):
        assert result["pre_onset_false_rejection_rate"] < 0.03

    def test_faulty_readings_suppressed(self, result):
        assert result["cleaned_coverage_after_failure"] < 0.2
