"""Tests for the bounded ingress queue and its overload policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetError
from repro.net.overload import (
    BLOCKED,
    DROPPED,
    OVERLOAD_POLICIES,
    QUEUED,
    BoundedIngressQueue,
)
from repro.streams.telemetry import InMemoryCollector


class TestPolicies:
    def test_block_refuses_without_dropping(self):
        queue = BoundedIngressQueue(2, "block")
        assert queue.offer("a") == QUEUED
        assert queue.offer("b") == QUEUED
        assert queue.offer("c") == BLOCKED
        assert queue.blocked == 1
        assert queue.dropped == 0
        assert queue.take() == "a"
        assert queue.offer("c") == QUEUED
        assert [queue.take(), queue.take()] == ["b", "c"]

    def test_drop_oldest_keeps_freshest(self):
        queue = BoundedIngressQueue(2, "drop-oldest")
        queue.offer("a")
        queue.offer("b")
        assert queue.offer("c") == QUEUED  # admitted; "a" was shed
        assert queue.dropped == 1
        assert [queue.take(), queue.take()] == ["b", "c"]

    def test_drop_newest_keeps_oldest(self):
        queue = BoundedIngressQueue(2, "drop-newest")
        queue.offer("a")
        queue.offer("b")
        assert queue.offer("c") == DROPPED
        assert queue.dropped == 1
        assert [queue.take(), queue.take()] == ["a", "b"]

    def test_take_from_empty_raises(self):
        with pytest.raises(NetError):
            BoundedIngressQueue(1, "block").take()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(NetError):
            BoundedIngressQueue(0, "block")
        with pytest.raises(NetError):
            BoundedIngressQueue(4, "drop-sideways")

    def test_max_depth_high_watermark(self):
        queue = BoundedIngressQueue(8, "block")
        for i in range(5):
            queue.offer(i)
        queue.take()
        queue.take()
        queue.offer(5)
        assert queue.max_depth == 5


class TestTelemetry:
    def test_counters_and_depth_gauge(self):
        collector = InMemoryCollector()
        queue = BoundedIngressQueue(
            2, "drop-newest", label="m0", telemetry=collector
        )
        queue.offer("a")
        queue.offer("b")
        queue.offer("c")  # dropped
        queue.take()
        counters = collector.snapshot()["counters"]
        assert counters["gateway.m0.offered"] == 3
        assert counters["gateway.m0.dropped"] == 1
        assert counters["gateway.m0.delivered"] == 1
        ops = collector.snapshot()["operators"]
        assert ops["gateway:m0"]["max_queue_depth"] == 2

    def test_blocked_counter(self):
        collector = InMemoryCollector()
        queue = BoundedIngressQueue(
            1, "block", label="m1", telemetry=collector
        )
        queue.offer("a")
        queue.offer("b")
        assert collector.snapshot()["counters"]["gateway.m1.blocked"] == 1


@given(
    policy=st.sampled_from(OVERLOAD_POLICIES),
    bound=st.integers(min_value=1, max_value=8),
    # Each step: True = offer the next item, False = take (if non-empty).
    steps=st.lists(st.booleans(), min_size=1, max_size=200),
)
@settings(max_examples=120)
def test_accounting_invariant_for_every_policy(policy, bound, steps):
    """For any arrival/drain interleaving on any policy:

    ``offered == delivered + dropped + len(queue)`` at every step, and
    the telemetry counters equal the queue's own counters at the end.
    """
    collector = InMemoryCollector()
    queue = BoundedIngressQueue(
        bound, policy, label="prop", telemetry=collector
    )
    next_item = 0
    for do_offer in steps:
        if do_offer:
            outcome = queue.offer(next_item)
            if outcome != BLOCKED:
                next_item += 1
        elif len(queue):
            queue.take()
        assert queue.offered == (
            queue.delivered + queue.dropped + len(queue)
        )
        assert len(queue) <= bound
    while len(queue):
        queue.take()
    assert queue.offered == queue.delivered + queue.dropped
    counters = collector.snapshot()["counters"]
    assert counters.get("gateway.prop.offered", 0) == queue.offered
    assert counters.get("gateway.prop.dropped", 0) == queue.dropped
    assert counters.get("gateway.prop.delivered", 0) == queue.delivered
    assert counters.get("gateway.prop.blocked", 0) == queue.blocked
