"""Operator-state checkpointing: snapshot mid-run, resume elsewhere.

The recovery layer's core claim: a checkpoint taken at a quiesced point
and restored into a *freshly built identical pipeline* continues the
computation exactly — same outputs, same order — as the session that
never stopped. These tests pin that at every layer the cluster
composes: the reorder buffer, the Fjord session, the ESP session
facade, and the wire codec the blob rides in.
"""

import pytest

from repro.errors import OperatorError
from repro.net.recovery import (
    STATE_BLOB_BUDGET,
    decode_state,
    encode_state,
)
from repro.net.service import build_bundle
from repro.streams.reorder import ReorderBuffer
from repro.streams.tuples import StreamTuple

SEED = 3

#: (scenario, duration) — shelf is record-sharded RFID cleaning,
#: redwood is source-sharded mote calibration; between them every
#: stateful operator family holds a checkpointable mid-window state.
CASES = [("shelf", 12.0), ("redwood", None)]


def arrival_schedule(bundle):
    """Every reading of every stream, in (timestamp, source) order."""
    entries = [
        (item.timestamp, name, item)
        for name, stream in bundle.streams.items()
        for item in stream
    ]
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return entries


def drive(session, schedule, start, stop, advance_every=7):
    """Push schedule[start:stop], punctuating every few arrivals."""
    for index in range(start, stop):
        timestamp, name, item = schedule[index]
        session.push(name, item)
        if index % advance_every == 0:
            session.advance(timestamp)


class TestSessionCheckpoint:
    """FjordSession/ESPStreamSession snapshot + restore mid-stream."""

    @pytest.mark.parametrize("name,duration", CASES)
    @pytest.mark.parametrize("fraction", [0.25, 0.6])
    def test_restore_resumes_identical_output(self, name, duration, fraction):
        bundle = build_bundle(name, duration, SEED)
        schedule = arrival_schedule(bundle)
        cut = max(1, int(len(schedule) * fraction))

        baseline = bundle.processor.open_session(
            until=bundle.until, tick=bundle.tick
        )
        drive(baseline, schedule, 0, cut)
        blob, size = encode_state(baseline.checkpoint())
        assert blob is not None and 0 < size <= STATE_BLOB_BUDGET

        resumed = build_bundle(name, duration, SEED).processor.open_session(
            until=bundle.until, tick=bundle.tick
        )
        resumed.restore(decode_state(blob))
        # Checkpointing is pure: the baseline continues unbothered, the
        # restored clone continues from the same instant — identically.
        drive(baseline, schedule, cut, len(schedule))
        drive(resumed, schedule, cut, len(schedule))
        assert baseline.close().output == resumed.close().output

    def test_checkpoint_matches_uninterrupted_reference(self):
        bundle = build_bundle("shelf", 12.0, SEED)
        reference = bundle.processor.run(
            bundle.until, bundle.tick, sources=bundle.streams
        ).output
        schedule = arrival_schedule(bundle)
        cut = len(schedule) // 3

        session = bundle.processor.open_session(
            until=bundle.until, tick=bundle.tick
        )
        drive(session, schedule, 0, cut)
        blob, _size = encode_state(session.checkpoint())
        resumed = build_bundle("shelf", 12.0, SEED).processor.open_session(
            until=bundle.until, tick=bundle.tick
        )
        resumed.restore(decode_state(blob))
        drive(resumed, schedule, cut, len(schedule))
        assert resumed.close().output == reference

    def test_restore_requires_fresh_session(self):
        bundle = build_bundle("shelf", 8.0, SEED)
        schedule = arrival_schedule(bundle)
        session = bundle.processor.open_session(
            until=bundle.until, tick=bundle.tick
        )
        drive(session, schedule, 0, 5)
        state = session.checkpoint()
        with pytest.raises(OperatorError):
            session.restore(state)  # not fresh: it has pushed already
        session.close()

    def test_restore_rejects_mismatched_pipeline(self):
        shelf = build_bundle("shelf", 8.0, SEED)
        state = shelf.processor.open_session(
            until=shelf.until, tick=shelf.tick
        ).checkpoint()
        redwood = build_bundle("redwood", None, SEED)
        other = redwood.processor.open_session(
            until=redwood.until, tick=redwood.tick
        )
        with pytest.raises(OperatorError):
            other.restore(state)


class TestReorderBufferCheckpoint:
    def tuples(self):
        return [
            StreamTuple(float(ts), {"v": ts}, stream="s")
            for ts in (3, 1, 5, 2, 8, 4)
        ]

    def test_restore_reproduces_release_sequence(self):
        items = self.tuples()
        baseline = ReorderBuffer(slack=2.0)
        clone_feed = []
        for index, item in enumerate(items[:3]):
            baseline.push(float(index), item)
        state = baseline.checkpoint()

        restored = ReorderBuffer(slack=2.0)
        restored.restore(state)
        assert len(restored) == len(baseline)
        assert restored.watermark == baseline.watermark
        for index, item in enumerate(items[3:], start=3):
            a = baseline.push(float(index) + 3.0, item)
            b = restored.push(float(index) + 3.0, item)
            assert a == b
            clone_feed.extend(b)
        assert baseline.flush() == restored.flush()
        assert baseline.dropped == restored.dropped
        assert baseline.released == restored.released

    def test_restore_needs_fresh_buffer(self):
        buffer = ReorderBuffer(slack=1.0)
        buffer.push(5.0, StreamTuple(0.5, {}, stream="s"))
        with pytest.raises(OperatorError):
            buffer.restore(
                {
                    "dropped": 0,
                    "released": 0,
                    "heap": [],
                    "sequence": 0,
                    "frontier": float("-inf"),
                    "horizon": float("-inf"),
                }
            )


class TestStateCodec:
    def test_roundtrip_preserves_structures(self):
        state = {
            "heap": [(1.0, 0, StreamTuple(1.0, {"x": 1}, stream="s"))],
            "counts": {"a": 1, "b": 2},
            "cursor": 17,
        }
        blob, size = encode_state(state)
        assert blob is not None and size == len(blob)
        decoded = decode_state(blob)
        assert decoded["counts"] == state["counts"]
        assert decoded["cursor"] == 17
        assert decoded["heap"][0][2].get("x") == 1

    def test_oversized_state_is_refused_not_shipped(self):
        huge = {"blob": "x" * (2 * STATE_BLOB_BUDGET)}
        # Incompressible payloads overflow the frame budget: the codec
        # must refuse (blob=None) so the worker can ack ok=false.
        import os

        huge = {"blob": os.urandom(2 * STATE_BLOB_BUDGET)}
        blob, size = encode_state(huge)
        assert blob is None
        assert size > STATE_BLOB_BUDGET
