"""Dtype edge cases for the numpy-typed column storage layer.

The typed layer (:mod:`repro.streams.typedcols`) must be *invisible* in
results: every test here pins either a detection decision (which
columns become arrays, which stay lists and why) or an exactness
property (decode returns the same native objects, masks and reductions
match the sequential loop bit for bit). The whole module runs on the
no-numpy CI leg too — there the typed path is inert and the assertions
collapse onto the list fallback, which is precisely the behaviour the
leg exists to prove.
"""

from __future__ import annotations

import math
import pickle
import random
import struct

import pytest

from repro.streams import typedcols
from repro.streams.aggregates import AggregateSpec, get_aggregate
from repro.streams.columnar import MISSING, ColumnBatch, FieldCompare
from repro.streams.shard import partition_batch
from repro.streams.tuples import StreamTuple

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the test extras
    HAVE_HYPOTHESIS = False

needs_numpy = pytest.mark.skipif(
    not typedcols.numpy_available(),
    reason="typed columns need numpy; the fallback is covered by the "
    "same assertions degenerating to lists",
)


@pytest.fixture(autouse=True)
def eager_typed_columns():
    """Typed storage on with min_rows=1, so tiny fixtures get arrays.

    Without numpy this is a no-op (``typed_columns_enabled`` stays
    False) and every test below exercises the pure-list fallback.
    """
    previous = typedcols.set_typed_columns(True, 1)
    typedcols.reset_storage_stats()
    yield
    typedcols.set_typed_columns(*previous)


def rows_of(field, values, t0=0.0):
    return [
        StreamTuple(t0 + i, {field: v, "seq": i}, "s")
        for i, v in enumerate(values)
    ]


def batch_of(field, values):
    return ColumnBatch.from_tuples(rows_of(field, values))


def float_bits(x):
    return struct.pack("<d", x)


# -- detection ----------------------------------------------------------------


class TestDetection:
    @needs_numpy
    def test_int_column_becomes_int64(self):
        batch = batch_of("v", [1, 2, 3, 4])
        col = batch.column("v")
        assert typedcols.is_typed(col)
        assert col.dtype.kind == "i"

    @needs_numpy
    def test_float_column_becomes_float64(self):
        batch = batch_of("v", [0.5, 1.5, math.inf, -0.0])
        col = batch.column("v")
        assert typedcols.is_typed(col)
        assert col.dtype.kind == "f"

    def test_mixed_int_float_stays_list(self):
        """Mixing dtypes must not silently promote the ints."""
        batch = batch_of("v", [1, 2.0, 3, 4.0])
        assert isinstance(batch.column("v"), list)
        decoded = [t["v"] for t in batch.tuples()]
        assert [type(v) for v in decoded] == [int, float, int, float]

    def test_bool_stays_list(self):
        """bool is an int subclass but must never become int64 cells."""
        batch = batch_of("v", [True, False, True, True])
        assert isinstance(batch.column("v"), list)
        decoded = [t["v"] for t in batch.tuples()]
        assert decoded == [True, False, True, True]
        assert all(type(v) is bool for v in decoded)

    def test_missing_bearing_column_stays_list(self):
        """A union over disjoint schemas leaves MISSING holes."""
        rows = [
            StreamTuple(0.0, {"temp": 20.0}, "motes"),
            StreamTuple(0.5, {"tag": "T1"}, "rfid"),
            StreamTuple(1.0, {"temp": 21.0}, "motes"),
            StreamTuple(1.5, {"temp": 22.0}, "motes"),
        ]
        batch = ColumnBatch.from_tuples(rows)
        col = batch.column("temp")
        assert isinstance(col, list)
        assert col[1] is MISSING
        decoded = batch.tuples()
        assert "temp" not in decoded[1]
        assert decoded[0]["temp"] == 20.0

    def test_none_stays_list(self):
        batch = batch_of("v", [1, None, 3, 4])
        assert isinstance(batch.column("v"), list)
        assert [t["v"] for t in batch.tuples()] == [1, None, 3, 4]

    def test_int64_overflow_stays_list(self):
        """Python ints beyond int64 must stay exact arbitrary precision."""
        big = 2**63  # INT64_MAX + 1
        batch = batch_of("v", [1, 2, big, -(2**70)])
        assert isinstance(batch.column("v"), list)
        decoded = [t["v"] for t in batch.tuples()]
        assert decoded == [1, 2, big, -(2**70)]

    @needs_numpy
    def test_min_rows_threshold(self):
        previous = typedcols.set_typed_columns(min_rows=4)
        try:
            assert isinstance(batch_of("v", [1, 2, 3]).column("v"), list)
            assert typedcols.is_typed(batch_of("v", [1, 2, 3, 4]).column("v"))
        finally:
            typedcols.set_typed_columns(*previous)

    def test_disabled_stays_list(self):
        previous = typedcols.set_typed_columns(False)
        try:
            assert isinstance(batch_of("v", [1, 2, 3, 4]).column("v"), list)
        finally:
            typedcols.set_typed_columns(*previous)

    @needs_numpy
    def test_storage_stats_counters(self):
        typedcols.reset_storage_stats()
        # column access forces the (lazy) encode that takes the decision
        batch_of("v", [1, 2, 3, 4]).column("v")
        batch_of("v", [0.5, 1.5, 2.5]).column("v")
        batch_of("v", [1, 2.0, 3, 4.0]).column("v")
        stats = typedcols.storage_stats()
        assert stats["typed_int"] >= 1
        assert stats["typed_float"] >= 1
        assert stats["list_mixed"] >= 1
        assert stats["typed_cells"] >= 7
        # the "seq" companion column is int-typed too; only relative
        # floors are asserted so the fixture schema can evolve


# -- exact round-trips ---------------------------------------------------------


class TestRoundTrip:
    def test_int_identity(self):
        values = [0, -1, 2**53, -(2**53), typedcols.INT64_MAX, typedcols.INT64_MIN]
        decoded = [t["v"] for t in batch_of("v", values).tuples()]
        assert decoded == values
        assert all(type(v) is int for v in decoded)

    def test_float_bit_identity(self):
        values = [0.0, -0.0, 1e-300, math.inf, -math.inf, 0.1 + 0.2]
        decoded = [t["v"] for t in batch_of("v", values).tuples()]
        assert [float_bits(v) for v in decoded] == [
            float_bits(v) for v in values
        ]
        assert all(type(v) is float for v in decoded)

    def test_nan_round_trip(self):
        decoded = [t["v"] for t in batch_of("v", [1.0, math.nan, 3.0]).tuples()]
        assert decoded[0] == 1.0 and decoded[2] == 3.0
        assert math.isnan(decoded[1])
        assert type(decoded[1]) is float

    def test_signed_zero_round_trip(self):
        decoded = [t["v"] for t in batch_of("v", [-0.0, 0.0]).tuples()]
        assert math.copysign(1.0, decoded[0]) == -1.0
        assert math.copysign(1.0, decoded[1]) == 1.0

    @needs_numpy
    def test_pickle_round_trip(self):
        """Typed batches cross the processes shard backend via pickle."""
        batch = batch_of("v", [1.5, 2.5, 3.5, 4.5])
        assert typedcols.is_typed(batch.column("v"))
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.tuples() == batch.tuples()

    def test_partition_batch_preserves_values(self):
        rows = rows_of("v", [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        batch = ColumnBatch.from_tuples(rows)
        parts = partition_batch(batch, "seq", 3)
        assert sorted(
            (t for p in parts for t in p.tuples()), key=lambda t: t.timestamp
        ) == rows


# -- mask equivalence ----------------------------------------------------------


class TestMaskEquivalence:
    CASES = [
        ("int col vs int", [1, 5, -3, 8, 5], "<", 5),
        ("int col vs int eq", [1, 5, -3, 8, 5], "==", 5),
        ("float col vs float", [0.5, 2.5, -1.0, math.nan], ">=", 0.5),
        ("float col vs int", [0.5, 2.0, 3.5, 2.0], "==", 2),
        ("int col vs float", [1, 2, 3, 4], "<", 2.5),
        ("float col vs huge int", [1e20, 2e20, 3.0, 4.0], ">", 2**60),
        ("int col vs huge int", [1, 2, 3, 4], "<", 2**70),
    ]

    @pytest.mark.parametrize("label,values,op,rhs", CASES)
    def test_mask_matches_per_row(self, label, values, op, rhs):
        field = "v"
        rows = rows_of(field, values)
        batch = ColumnBatch.from_tuples(rows)
        pred = FieldCompare(field, op, rhs)
        assert [bool(m) for m in pred.mask(batch)] == [pred(t) for t in rows]

    @needs_numpy
    def test_int_col_vs_float_value_falls_back(self):
        """int64 vs float comparison would promote the column lossily
        (2**53 + 1 == float(2**53)), so the mask must take the loop."""
        big = 2**53 + 1
        rows = rows_of("v", [big, 2, 3, 4])
        batch = ColumnBatch.from_tuples(rows)
        assert typedcols.is_typed(batch.column("v"))
        pred = FieldCompare("v", "==", float(2**53))
        mask = pred.mask(batch)
        assert isinstance(mask, list)  # fallback, not a numpy array
        assert mask == [pred(t) for t in rows]

    @needs_numpy
    def test_where_with_array_mask(self):
        batch = batch_of("v", [1, 7, 3, 9, 5])
        kept = batch.where(FieldCompare("v", ">", 4).mask(batch))
        assert [t["v"] for t in kept.tuples()] == [7, 9, 5]


# -- aggregate equivalence -----------------------------------------------------


def loop_result(name, values):
    agg = get_aggregate(name)
    for v in values:
        agg.add(v)
    return agg.result()


class TestAggregateEquivalence:
    NAMES = ["count", "sum", "avg", "min", "max", "first", "last", "stdev"]
    COLUMNS = [
        [1, 2, 3, 4, 5],
        [-7, 0, 7, 2**40],
        [0.5, 1.5, -2.5, 3.5],
        [math.nan, 1.0, 2.0],
        [-0.0, 0.0, 1.0],
        [2**53, 2**53, 2**53],  # int sum bound exceeded → loop path
        [1, 2.0, 3],  # mixed → list storage → loop path
    ]

    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("i", range(len(COLUMNS)))
    def test_field_spec_matches_loop(self, name, i):
        values = self.COLUMNS[i]
        rows = rows_of("v", values)
        spec = AggregateSpec(name, field="v")
        got, want = spec.evaluate(rows), loop_result(name, values)
        if isinstance(want, float) and math.isnan(want):
            assert math.isnan(got)
        else:
            assert got == want
            assert type(got) is type(want)

    def test_nan_min_max_match_loop(self):
        """NaN poisons numpy min/max differently from Python's — the
        typed path must defer, not disagree."""
        values = [2.0, math.nan, 1.0]
        rows = rows_of("v", values)
        for name in ("min", "max"):
            got = AggregateSpec(name, field="v").evaluate(rows)
            want = loop_result(name, values)
            assert float_bits(got) == float_bits(want)

    def test_signed_zero_extremum_matches_loop(self):
        """min([-0.0, 0.0]) keeps the first-seen zero's sign bit."""
        for values in ([-0.0, 0.0, 0.5], [0.0, -0.0, 0.5]):
            rows = rows_of("v", values)
            got = AggregateSpec("min", field="v").evaluate(rows)
            want = loop_result("min", values)
            assert float_bits(got) == float_bits(want)

    def test_empty_window(self):
        for name in self.NAMES:
            spec = AggregateSpec(name, field="v")
            assert spec.evaluate([]) == loop_result(name, [])

    def test_distinct_takes_loop_path(self):
        rows = rows_of("v", [3, 3, 1, 1, 2])
        spec = AggregateSpec("count", field="v", distinct=True)
        assert spec.evaluate(rows) == 3


# -- property sweep ------------------------------------------------------------


def assert_typed_equals_list(values):
    """One trace, both storage classes: masks and reductions agree."""
    rows = rows_of("v", values)
    preds = [
        FieldCompare("v", "<", 2),
        FieldCompare("v", ">=", 0.5),
        FieldCompare("v", "==", 1),
    ]
    specs = [AggregateSpec(n, field="v") for n in ("sum", "min", "max", "avg")]

    typed_batch = ColumnBatch.from_tuples(rows)
    typed_masks = [[bool(m) for m in p.mask(typed_batch)] for p in preds]
    typed_aggs = [s.evaluate(rows) for s in specs]

    previous = typedcols.set_typed_columns(False)
    try:
        list_batch = ColumnBatch.from_tuples(rows)
        assert all(
            isinstance(col, list) for col in list_batch.columns.values()
        )
        list_masks = [list(p.mask(list_batch)) for p in preds]
        list_aggs = [s.evaluate(rows) for s in specs]
    finally:
        typedcols.set_typed_columns(*previous)

    assert typed_masks == list_masks
    for got, want in zip(typed_aggs, list_aggs):
        if isinstance(want, float) and math.isnan(want):
            assert math.isnan(got)
        elif isinstance(want, float):
            assert float_bits(got) == float_bits(want)
        else:
            assert got == want
    assert typed_batch.tuples() == list_batch.tuples()


if HAVE_HYPOTHESIS:

    numeric_columns = st.one_of(
        st.lists(st.integers(min_value=-(2**70), max_value=2**70), max_size=40),
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=40,
        ),
        st.lists(
            st.one_of(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.floats(allow_nan=True, width=64),
            ),
            max_size=40,
        ),
    )

    class TestPropertyBased:
        @settings(max_examples=60, deadline=None)
        @given(values=numeric_columns)
        def test_typed_equals_list(self, values):
            assert_typed_equals_list(values)

else:  # pragma: no cover - exercised only without hypothesis installed

    class TestPropertyBased:
        @pytest.mark.parametrize("seed", range(60))
        def test_typed_equals_list(self, seed):
            rng = random.Random(seed)
            n = rng.randrange(0, 40)
            kind = rng.choice(("int", "float", "mixed"))
            values = []
            for _ in range(n):
                if kind == "int" or (kind == "mixed" and rng.random() < 0.5):
                    values.append(rng.randrange(-(2**70), 2**70))
                else:
                    values.append(
                        rng.choice(
                            (math.nan, math.inf, -0.0, rng.uniform(-9, 9))
                        )
                    )
            assert_typed_equals_list(values)
