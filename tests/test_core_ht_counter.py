"""Tests for the Horvitz–Thompson population-count estimator."""

import numpy as np
import pytest

from repro.core.operators.adaptive_ops import (
    HorvitzThompsonCounter,
    horvitz_thompson_counter,
)
from repro.core.stages import StageContext, StageKind
from repro.errors import OperatorError
from repro.streams.tuples import StreamTuple


def drive_population(op, n_tags, p, polls, rng, group="g"):
    """Simulate a population of n_tags each read w.p. p per poll."""
    outputs = []
    for poll in range(polls):
        now = float(poll)
        for tag in range(n_tags):
            if rng.random() < p:
                op.on_tuple(
                    StreamTuple(
                        now, {"tag_id": f"t{tag}", "spatial_granule": group}
                    )
                )
        outputs.append(op.on_time(now))
    return outputs


class TestEstimator:
    def test_reliable_population_exact(self):
        op = HorvitzThompsonCounter(window_polls=10)
        rng = np.random.default_rng(0)
        outputs = drive_population(op, n_tags=10, p=1.0, polls=15, rng=rng)
        final = outputs[-1][0]
        assert final["estimated_count"] == pytest.approx(10.0, abs=0.01)
        assert final["observed_count"] == 10

    def test_unreliable_population_unbiased(self):
        """At p=0.15 with a 10-poll window, the naive distinct count
        misses ~20% of tags; the HT estimate recovers the truth."""
        estimates, observed = [], []
        for seed in range(12):
            op = HorvitzThompsonCounter(window_polls=10)
            rng = np.random.default_rng(seed)
            outputs = drive_population(
                op, n_tags=20, p=0.15, polls=40, rng=rng
            )
            final = outputs[-1][0]
            estimates.append(final["estimated_count"])
            observed.append(final["observed_count"])
        assert np.mean(observed) < 19.0  # naive count biased low
        assert np.mean(estimates) == pytest.approx(20.0, abs=2.0)
        assert abs(np.mean(estimates) - 20.0) < abs(
            np.mean(observed) - 20.0
        )

    def test_groups_estimated_independently(self):
        op = HorvitzThompsonCounter(window_polls=5)
        for poll in range(6):
            now = float(poll)
            op.on_tuple(
                StreamTuple(now, {"tag_id": "a", "spatial_granule": "g0"})
            )
            op.on_tuple(
                StreamTuple(now, {"tag_id": "b", "spatial_granule": "g1"})
            )
            out = op.on_time(now)
        groups = {t["spatial_granule"]: t["estimated_count"] for t in out}
        assert set(groups) == {"g0", "g1"}

    def test_departed_tags_age_out(self):
        op = HorvitzThompsonCounter(window_polls=3)
        op.on_tuple(
            StreamTuple(0.0, {"tag_id": "a", "spatial_granule": "g"})
        )
        op.on_time(0.0)
        for poll in range(1, 6):
            out = op.on_time(float(poll))
        assert out == []
        assert op._reads == {}

    def test_malformed_rows_skipped(self):
        op = HorvitzThompsonCounter(window_polls=3)
        op.on_tuple(StreamTuple(0.0, {"tag_id": "a"}))  # no granule
        op.on_tuple(StreamTuple(0.0, {"spatial_granule": "g"}))  # no tag
        assert op.on_time(0.0) == []

    def test_invalid_window(self):
        with pytest.raises(OperatorError):
            HorvitzThompsonCounter(window_polls=0)

    def test_stage_builder(self):
        stage = horvitz_thompson_counter(window_polls=25)
        assert stage.kind is StageKind.SMOOTH
        assert isinstance(
            stage.make(StageContext(StageKind.SMOOTH)),
            HorvitzThompsonCounter,
        )

    def test_estimate_never_below_observed(self):
        op = HorvitzThompsonCounter(window_polls=10)
        rng = np.random.default_rng(5)
        outputs = drive_population(op, n_tags=15, p=0.3, polls=30, rng=rng)
        for step in outputs:
            for row in step:
                assert (
                    row["estimated_count"] >= row["observed_count"] - 1e-9
                )
