"""Unit tests for the replay feeder: schedule, pacing, reconnection.

Real sockets, fake time: ``sleep`` and ``clock`` are injected so backoff
and pacing are asserted exactly, with zero wall-clock waiting.
"""

import asyncio
import socket

import pytest

from repro.errors import NetError
from repro.net import protocol
from repro.net.feeder import ReplayFeeder
from repro.net.gateway import IngestGateway
from repro.net.protocol import read_frame, write_frame
from repro.receptors.network import DelayModel, GilbertElliottChannel
from repro.streams.tuples import StreamTuple


def tup(ts, **fields):
    return StreamTuple(ts, fields, stream="s")


class FakeSession:
    """The minimal pipeline-session surface the gateway drives."""

    def __init__(self, receptor_ids=("a",)):
        self.receptor_ids = tuple(receptor_ids)
        self.pushed = []
        self.watermarks = []
        self.closed = False

    @property
    def safe_time(self):
        return float("-inf")

    def push(self, source, item):
        self.pushed.append((source, item))

    def advance(self, watermark):
        self.watermarks.append(watermark)
        return []

    def close(self):
        self.closed = True
        return self


class FakeTime:
    """A clock that only moves when someone sleeps on it."""

    def __init__(self):
        self.now = 100.0
        self.sleeps = []

    def clock(self):
        return self.now

    async def sleep(self, seconds):
        self.sleeps.append(round(seconds, 6))
        self.now += seconds
        await asyncio.sleep(0)  # stay cooperative


class TestSchedule:
    def _streams(self, n=20):
        return {"a": [tup(float(i), v=i) for i in range(n)]}

    def test_no_impairments_is_identity_order(self):
        feeder = ReplayFeeder("h", 1, self._streams(5))
        schedule = feeder._build_schedule()
        assert [(a, s, q) for a, s, q, _ in schedule] == [
            (float(i), "a", i) for i in range(5)
        ]

    def test_delay_model_sorts_by_arrival_keeps_all(self):
        feeder = ReplayFeeder(
            "h", 1, self._streams(30),
            delay_model=DelayModel(mean_delay=2.0, max_delay=8.0, rng=7),
        )
        schedule = feeder._build_schedule()
        arrivals = [a for a, _s, _q, _i in schedule]
        assert arrivals == sorted(arrivals)
        assert sorted(q for _a, _s, q, _i in schedule) == list(range(30))
        assert any(
            a != i.timestamp for a, _s, _q, i in schedule
        )  # delays actually applied
        assert all(a >= i.timestamp for a, _s, _q, i in schedule)

    def test_channel_loss_counted_and_sequence_gaps_preserved(self):
        channel = GilbertElliottChannel(
            0.3, 0.3, deliver_good=0.9, deliver_bad=0.1, rng=11
        )
        feeder = ReplayFeeder("h", 1, self._streams(60), channel=channel)
        schedule = feeder._build_schedule()
        assert feeder.lost["a"] > 0  # the channel really dropped some
        assert len(schedule) + feeder.lost["a"] == 60
        survivors = [q for _a, _s, q, _i in schedule]
        assert survivors == sorted(survivors)
        # Lost readings consumed their sequence numbers: gaps, no reuse.
        assert len(set(survivors)) == len(survivors)
        assert set(survivors) < set(range(60))

    def test_empty_streams_rejected(self):
        with pytest.raises(NetError, match="at least one source"):
            ReplayFeeder("h", 1, {})

    def test_bad_rate_and_attempts_rejected(self):
        with pytest.raises(NetError, match="rate"):
            ReplayFeeder("h", 1, self._streams(1), rate=0)
        with pytest.raises(NetError, match="max_attempts"):
            ReplayFeeder("h", 1, self._streams(1), max_attempts=0)


class TestBackoff:
    def test_exponential_with_cap(self):
        feeder = ReplayFeeder(
            "h", 1, {"a": [tup(0.0)]},
            backoff_base=0.05, backoff_cap=0.3,
        )
        assert [feeder._backoff(n) for n in range(1, 6)] == [
            0.05, 0.1, 0.2, 0.3, 0.3
        ]

    def test_unreachable_gateway_raises_after_backoff(self):
        # Grab a port that is guaranteed closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        fake = FakeTime()
        feeder = ReplayFeeder(
            "127.0.0.1", port, {"a": [tup(0.0)]},
            max_attempts=3, backoff_base=0.05, backoff_cap=1.0,
            sleep=fake.sleep,
        )
        with pytest.raises(NetError, match="unreachable after 3"):
            asyncio.run(feeder.run())
        # Two backoff sleeps before the third, fatal, attempt.
        assert fake.sleeps == [0.05, 0.1]


class TestReconnect:
    def test_resumes_after_midstream_disconnect(self):
        """First connection is cut right after the handshake; the
        feeder must reconnect and redeliver everything (at-least-once:
        the gateway sees every sequence number at least once)."""
        streams = {"a": [tup(float(i), v=i) for i in range(6)]}
        connections = []
        received = []
        done = asyncio.Event()

        async def handle(reader, writer):
            connections.append(True)
            hello = await read_frame(reader)
            assert hello["type"] == "hello"
            await write_frame(writer, protocol.hello_ack(None))
            if len(connections) == 1:
                writer.close()  # cut the session mid-stream
                return
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if frame["type"] == "data":
                    received.append(frame["seq"])
                elif frame["type"] == "bye":
                    await write_frame(
                        writer, protocol.bye_ack(frame["source"])
                    )
                    done.set()

        async def scenario():
            fake = FakeTime()
            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            feeder = ReplayFeeder(
                "127.0.0.1", port, streams, sleep=fake.sleep
            )
            report = await asyncio.wait_for(feeder.run(), timeout=20)
            await asyncio.wait_for(done.wait(), timeout=20)
            server.close()
            await server.wait_closed()
            return report

        report = asyncio.run(scenario())
        assert report["reconnects"] >= 1
        assert len(connections) == 2
        assert set(received) == set(range(6))  # nothing permanently lost
        assert report["sent"]["a"] >= 6  # at-least-once may resend


class TestPacing:
    def test_rate_multiplier_paces_sends(self):
        """rate=2.0 over arrivals [0, 1, 3] must pause 0.5 s then
        1.0 s on the injected clock — and never sleep for the first
        frame."""
        fake = FakeTime()
        session = FakeSession(("a",))

        async def scenario():
            gateway = IngestGateway(session, slack=0.0)
            host, port = await gateway.start()
            feeder = ReplayFeeder(
                host, port,
                {"a": [tup(0.0, v=0), tup(1.0, v=1), tup(3.0, v=2)]},
                rate=2.0, sleep=fake.sleep, clock=fake.clock,
            )
            report = await asyncio.wait_for(feeder.run(), timeout=20)
            await asyncio.wait_for(
                gateway.run_until_drained(), timeout=20
            )
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert fake.sleeps == [0.5, 1.0]
        assert report["sent"] == {"a": 3}
        assert [item.timestamp for _src, item in session.pushed] == [
            0.0, 1.0, 3.0
        ]
        assert session.closed

    def test_unpaced_replay_never_sleeps(self):
        fake = FakeTime()
        session = FakeSession(("a",))

        async def scenario():
            gateway = IngestGateway(session, slack=0.0)
            host, port = await gateway.start()
            feeder = ReplayFeeder(
                host, port, {"a": [tup(0.0, v=0), tup(5.0, v=1)]},
                sleep=fake.sleep, clock=fake.clock,
            )
            await asyncio.wait_for(feeder.run(), timeout=20)
            await asyncio.wait_for(
                gateway.run_until_drained(), timeout=20
            )
            await gateway.close()

        asyncio.run(scenario())
        assert fake.sleeps == []


class TestHeartbeat:
    def test_heartbeats_sent_during_replay(self):
        """A paced replay with a heartbeat interval emits heartbeat
        frames between data frames (fake clock: no real waiting)."""
        heartbeats = []
        done = asyncio.Event()

        async def handle(reader, writer):
            await read_frame(reader)
            await write_frame(writer, protocol.hello_ack(None))
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if frame["type"] == "heartbeat":
                    heartbeats.append(frame["sources"])
                elif frame["type"] == "bye":
                    await write_frame(
                        writer, protocol.bye_ack(frame["source"])
                    )
                    done.set()

        async def scenario():
            fake = FakeTime()
            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            feeder = ReplayFeeder(
                "127.0.0.1", port,
                {"a": [tup(0.0, v=0), tup(10.0, v=1)]},
                rate=1.0, heartbeat_interval=2.0,
                sleep=fake.sleep, clock=fake.clock,
            )
            await asyncio.wait_for(feeder.run(), timeout=20)
            await asyncio.wait_for(done.wait(), timeout=20)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())
        assert heartbeats  # at least one heartbeat made it out
        assert all(sources == ["a"] for sources in heartbeats)
