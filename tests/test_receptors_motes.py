"""Unit tests for motes, fail-dirty faults and the loss channels."""

import numpy as np
import pytest

from repro.errors import ReceptorError
from repro.receptors.motes import FailDirtyModel, Mote
from repro.receptors.network import GilbertElliottChannel, PerfectChannel


class TestFailDirty:
    def test_inactive_before_onset(self):
        fault = FailDirtyModel(onset=100.0, drift_rate=0.01)
        assert not fault.active(99.9)
        assert fault.active(100.0)

    def test_drift_from_value_at_failure(self):
        fault = FailDirtyModel(onset=0.0, drift_rate=1.0)
        rng = np.random.default_rng(0)
        assert fault.corrupt(0.0, 20.0, rng) == 20.0
        assert fault.corrupt(10.0, 25.0, rng) == 30.0  # anchored at 20

    def test_zero_drift_rejected(self):
        with pytest.raises(ReceptorError):
            FailDirtyModel(onset=0.0, drift_rate=0.0)

    def test_noise_added_after_failure(self):
        fault = FailDirtyModel(onset=0.0, drift_rate=1.0, noise_std=5.0)
        rng = np.random.default_rng(0)
        values = {fault.corrupt(1.0, 0.0, rng) for _ in range(10)}
        assert len(values) > 1


class TestMote:
    def test_reading_fields(self):
        mote = Mote(
            "mote1",
            field=lambda now: 20.0,
            sample_period=300.0,
            noise_std=0.0,
            extra_fields={"height_m": 30.0},
            rng=0,
        )
        readings = mote.poll(600.0)
        assert len(readings) == 1
        reading = readings[0]
        assert reading["mote_id"] == "mote1"
        assert reading["temp"] == 20.0
        assert reading["epoch"] == 2
        assert reading["height_m"] == 30.0

    def test_noise_applied(self):
        mote = Mote("m", field=lambda now: 20.0, noise_std=1.0, rng=0)
        values = {mote.poll(t * 300.0)[0]["temp"] for t in range(10)}
        assert len(values) == 10
        assert all(abs(v - 20.0) < 6.0 for v in values)

    def test_custom_quantity_name(self):
        mote = Mote(
            "m", field=lambda now: 500.0, quantity="noise",
            noise_std=0.0, rng=0,
        )
        assert mote.poll(0.0)[0]["noise"] == 500.0

    def test_fail_dirty_overrides_field(self):
        mote = Mote(
            "m",
            field=lambda now: 20.0,
            noise_std=0.0,
            fail_dirty=FailDirtyModel(onset=0.0, drift_rate=1.0),
            rng=0,
        )
        assert mote.sense(100.0) == 120.0

    def test_lossy_channel_drops_readings(self):
        class DropAll:
            def deliver(self):
                return False

        mote = Mote("m", field=lambda now: 1.0, channel=DropAll(), rng=0)
        assert mote.poll(0.0) == []

    def test_negative_noise_rejected(self):
        with pytest.raises(ReceptorError):
            Mote("m", field=lambda now: 1.0, noise_std=-1.0)


class TestChannels:
    def test_perfect_channel(self):
        channel = PerfectChannel()
        assert all(channel.deliver() for _ in range(100))
        assert channel.expected_yield() == 1.0

    def test_gilbert_elliott_long_run_yield(self):
        channel = GilbertElliottChannel.with_target_yield(
            0.40, mean_bad_epochs=8.0, rng=123
        )
        assert channel.expected_yield() == pytest.approx(0.40, abs=1e-9)
        delivered = sum(channel.deliver() for _ in range(60000))
        assert delivered / 60000 == pytest.approx(0.40, abs=0.04)

    def test_burstiness_creates_long_outages(self):
        channel = GilbertElliottChannel.with_target_yield(
            0.40, mean_bad_epochs=10.0, rng=7
        )
        outcomes = [channel.deliver() for _ in range(5000)]
        # longest dry spell should far exceed what i.i.d. 40% would give
        longest, current = 0, 0
        for ok in outcomes:
            current = 0 if ok else current + 1
            longest = max(longest, current)
        assert longest >= 15

    def test_stationary_fraction(self):
        channel = GilbertElliottChannel(0.1, 0.3, rng=0)
        assert channel.stationary_good_fraction() == pytest.approx(0.75)

    def test_invalid_probabilities(self):
        with pytest.raises(ReceptorError):
            GilbertElliottChannel(1.5, 0.5)
        with pytest.raises(ReceptorError):
            GilbertElliottChannel(0.0, 0.0)

    def test_unreachable_target_yield(self):
        with pytest.raises(ReceptorError):
            GilbertElliottChannel.with_target_yield(
                0.99, mean_bad_epochs=5.0, deliver_good=0.97
            )

    def test_infeasible_burst_length(self):
        with pytest.raises(ReceptorError):
            GilbertElliottChannel.with_target_yield(
                0.05, mean_bad_epochs=1.0, deliver_bad=0.02
            )

    def test_start_state_override(self):
        channel = GilbertElliottChannel(
            0.0, 1.0, deliver_good=1.0, deliver_bad=0.0,
            rng=0, start_good=True,
        )
        assert channel.deliver()
