"""Reconfigurability: the same pipeline cleans a different quantity.

The paper's §6.1 point about declarative stages: switching the sensor
pipeline from temperature to sound "involves only a small change in each
query". Here the redwood-style Smooth+Merge pipeline cleans *humidity*
from multi-sensor motes by changing nothing but the value field.
"""

import math

import numpy as np
import pytest

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.core.operators import sliding_average, spatial_average
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.receptors.motes import MultiSensorMote
from repro.receptors.network import GilbertElliottChannel
from repro.receptors.registry import DeviceRegistry

DAY = 86400.0


@pytest.fixture(scope="module")
def humid_deployment():
    """Two multi-sensor motes (temp + humidity) with bursty loss."""

    def temp(now):
        return 15.0 + 4.0 * math.sin(2 * math.pi * now / DAY)

    def humidity(now):
        # Relative humidity runs roughly opposite to temperature.
        return 70.0 - 2.5 * math.sin(2 * math.pi * now / DAY)

    registry = DeviceRegistry()
    granule = SpatialGranule("band")
    group = registry.add_group("band_pair", granule, receptor_kind="mote")
    rng = np.random.default_rng(77)
    for member in range(2):
        mote = MultiSensorMote(
            f"hm{member}",
            fields={"temp": temp, "humidity": humidity},
            noise_std={"temp": 0.1, "humidity": 0.4},
            sample_period=300.0,
            channel=GilbertElliottChannel.with_target_yield(
                0.5, 6.0, rng=np.random.default_rng(rng.integers(2**63))
            ),
            rng=np.random.default_rng(rng.integers(2**63)),
        )
        registry.assign(mote, group.name)
    return registry


def run_pipeline(registry, value_field):
    pipeline = ESPPipeline(
        "mote",
        temporal_granule=TemporalGranule("5 min", smoothing_window="30 min"),
        smooth=sliding_average(value_field=value_field),
        merge=spatial_average(value_field=value_field),
    )
    processor = ESPProcessor(registry).add_pipeline(pipeline)
    return processor.run(until=DAY, tick=300.0)


class TestQuantitySwap:
    def test_humidity_cleaned_by_field_rename_only(self, humid_deployment):
        run = run_pipeline(humid_deployment, "humidity")
        values = [t["humidity"] for t in run.output]
        assert values, "pipeline produced output"
        # Humidity stays in its physical band after cleaning.
        assert 65.0 < np.mean(values) < 75.0
        assert min(values) > 60.0 and max(values) < 80.0

    def test_temperature_path_unchanged(self, humid_deployment):
        run = run_pipeline(humid_deployment, "temp")
        values = [t["temp"] for t in run.output]
        assert 10.0 < np.mean(values) < 20.0

    def test_yield_recovered_for_both_quantities(self, humid_deployment):
        for field in ("temp", "humidity"):
            run = run_pipeline(humid_deployment, field)
            epochs = {int(round(t.timestamp / 300.0)) for t in run.output}
            # ~50% raw yield per mote; smooth+merge across the pair
            # should cover the large majority of epochs.
            assert len(epochs) > 0.8 * (DAY / 300.0)

    def test_multi_quantity_readings_carry_both_fields(self, humid_deployment):
        device = humid_deployment.devices[0]
        sensed = device.sense(0.0)
        assert set(sensed) == {"temp", "humidity"}
