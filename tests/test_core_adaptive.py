"""Unit tests for the adaptive (self-sizing window) smoother."""

import pytest

from repro.core.operators.adaptive_ops import AdaptiveSmoother, adaptive_smoother
from repro.core.stages import StageContext, StageKind
from repro.errors import OperatorError
from repro.streams.tuples import StreamTuple


def read(ts, tag="a", granule="g"):
    return StreamTuple(ts, {"tag_id": tag, "spatial_granule": granule})


def drive(op, polls):
    """Drive one poll per entry; entry = number of reads that poll."""
    out = []
    for index, reads in enumerate(polls):
        now = float(index)
        for _ in range(reads):
            op.on_tuple(read(now))
        out.append(op.on_time(now))
    return out


class TestPresenceSemantics:
    def test_reliable_tag_reported_every_poll(self):
        op = AdaptiveSmoother()
        out = drive(op, [1] * 20)
        assert all(len(step) == 1 for step in out)
        assert out[-1][0]["tag_id"] == "a"
        assert out[-1][0]["spatial_granule"] == "g"

    def test_flaky_tag_interpolated_through_gaps(self):
        # p ~ 0.33: a 2-poll gap must not drop the tag once the window
        # has grown to cover it.
        pattern = [1, 0, 0] * 12
        op = AdaptiveSmoother(delta=0.05)
        out = drive(op, pattern)
        tail = out[12:]  # after warm-up
        missing = sum(1 for step in tail if not step)
        assert missing <= 2

    def test_departed_reliable_tag_dropped_quickly(self):
        op = AdaptiveSmoother(delta=0.05)
        out = drive(op, [1] * 20 + [0] * 10)
        # With p near 1 the silence probability collapses within a few
        # polls (the estimate p-hat dilutes as zeros enter the window).
        absent_from = next(
            i for i, step in enumerate(out) if i >= 20 and not step
        )
        assert absent_from <= 24

    def test_departed_flaky_tag_gets_benefit_of_doubt(self):
        op = AdaptiveSmoother(delta=0.05)
        out = drive(op, [1, 0, 0] * 10 + [0] * 40)
        last_seen = max(i for i, step in enumerate(out) if step)
        # Still reported for a few polls after the final read (p ~ 1/3
        # needs ~ln(20)/ln(1.5) ~ 7 silent polls), but not forever.
        assert 30 <= last_seen <= 45

    def test_window_size_reported(self):
        op = AdaptiveSmoother()
        out = drive(op, [1] * 10)
        assert all(step[0]["window_polls"] >= 1 for step in out if step)

    def test_confidence_reported_and_bounded(self):
        op = AdaptiveSmoother(delta=0.05)
        out = drive(op, [1] * 20)
        confidences = [step[0]["confidence"] for step in out if step]
        assert all(0.0 <= c <= 1.0 for c in confidences)
        # A tag read every poll has near-certain detection confidence.
        assert confidences[-1] > 0.99

    def test_confidence_lower_for_flaky_tags(self):
        reliable = AdaptiveSmoother(delta=0.05, max_polls=6)
        flaky = AdaptiveSmoother(delta=0.05, max_polls=6)
        out_reliable = drive(reliable, [1] * 12)
        out_flaky = drive(flaky, [1, 0, 0] * 4)
        last_reliable = out_reliable[-1][0]["confidence"]
        flaky_steps = [step for step in out_flaky if step]
        last_flaky = flaky_steps[-1][0]["confidence"]
        assert last_flaky < last_reliable

    def test_state_garbage_collected(self):
        op = AdaptiveSmoother(max_polls=10)
        drive(op, [1] * 3 + [0] * 15)
        assert op._states == {}

    def test_readings_without_id_ignored(self):
        op = AdaptiveSmoother()
        op.on_tuple(StreamTuple(0.0, {"other": 1}))
        assert op.on_time(0.0) == []


class TestController:
    def test_window_grows_for_flaky_tags(self):
        op = AdaptiveSmoother(delta=0.05, min_polls=2, max_polls=150)
        drive(op, [1, 0, 0, 0] * 15)  # p ~ 0.25
        state = op._states["a"]
        # completeness bound: ln(20)/0.25 ~ 12 polls
        assert state.window_polls >= 8

    def test_window_stays_small_for_reliable_tags(self):
        op = AdaptiveSmoother(delta=0.05, min_polls=2)
        drive(op, [1] * 30)
        assert op._states["a"].window_polls <= 6

    def test_window_clamped_at_max(self):
        op = AdaptiveSmoother(delta=0.01, min_polls=2, max_polls=20)
        drive(op, [1, 0, 0, 0, 0, 0, 0, 0, 0, 0] * 10)  # p ~ 0.1
        assert op._states["a"].window_polls <= 20

    def test_invalid_parameters(self):
        with pytest.raises(OperatorError):
            AdaptiveSmoother(delta=0.0)
        with pytest.raises(OperatorError):
            AdaptiveSmoother(delta=1.5)
        with pytest.raises(OperatorError):
            AdaptiveSmoother(min_polls=5, max_polls=2)

    def test_stage_builder(self):
        stage = adaptive_smoother()
        assert stage.kind is StageKind.SMOOTH
        assert isinstance(
            stage.make(StageContext(StageKind.SMOOTH)), AdaptiveSmoother
        )


class TestPipelineIntegration:
    def test_adaptive_config_runs(self, small_shelf):
        from repro.experiments.rfid import shelf_error
        from repro.pipelines.rfid_shelf import query1_counts

        truth = small_shelf.truth_series()
        adaptive_error = shelf_error(
            query1_counts(small_shelf, "adaptive+arbitrate"), truth
        )
        raw_error = shelf_error(query1_counts(small_shelf, "raw"), truth)
        assert adaptive_error < raw_error / 2

    def test_adaptive_tracks_distinct_tags_per_granule(self, small_shelf):
        from repro.pipelines.rfid_shelf import query1_counts

        counts = query1_counts(small_shelf, "adaptive+arbitrate")
        # Counts must be in a sane range (0..25 items exist).
        for series in counts.values():
            assert series.max() <= 25
