"""Tests for CQL subset extensions: BETWEEN/IN/LIKE and stream operators."""

import pytest

from repro.cql import compile_query, parse
from repro.errors import CQLSyntaxError, PlanError
from repro.streams.tuples import StreamTuple


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields, stream)


def run_filter(where, rows, ticks=(0.0,)):
    query = compile_query(f"SELECT * FROM s WHERE {where}")
    return query.run({"s": rows}, list(ticks))


class TestBetween:
    def test_inclusive_bounds(self):
        rows = [tup(0.0, v=v) for v in (4, 5, 7, 10, 11)]
        out = run_filter("v BETWEEN 5 AND 10", rows)
        assert [t["v"] for t in out] == [5, 7, 10]

    def test_not_between(self):
        rows = [tup(0.0, v=v) for v in (4, 5, 7, 11)]
        out = run_filter("v NOT BETWEEN 5 AND 10", rows)
        assert [t["v"] for t in out] == [4, 11]

    def test_between_with_expressions(self):
        rows = [tup(0.0, v=6, lo=5, hi=7), tup(0.0, v=9, lo=5, hi=7)]
        out = run_filter("v BETWEEN lo AND hi", rows)
        assert [t["v"] for t in out] == [6]

    def test_between_null_is_false(self):
        out = run_filter("v BETWEEN 1 AND 5", [tup(0.0, other=1)])
        assert out == []


class TestIn:
    def test_membership(self):
        rows = [tup(0.0, tag=t) for t in ("a", "b", "c")]
        out = run_filter("tag IN ('a', 'c')", rows)
        assert [t["tag"] for t in out] == ["a", "c"]

    def test_not_in(self):
        rows = [tup(0.0, tag=t) for t in ("a", "b", "c")]
        out = run_filter("tag NOT IN ('a', 'c')", rows)
        assert [t["tag"] for t in out] == ["b"]

    def test_numeric_list(self):
        rows = [tup(0.0, v=v) for v in (1, 2, 3)]
        out = run_filter("v IN (1, 3)", rows)
        assert [t["v"] for t in out] == [1, 3]

    def test_single_element(self):
        out = run_filter("v IN (2)", [tup(0.0, v=2), tup(0.0, v=3)])
        assert len(out) == 1

    def test_subquery_rejected_with_clear_error(self):
        with pytest.raises(CQLSyntaxError) as err:
            parse("SELECT * FROM s WHERE v IN (SELECT v FROM t)")
        assert "subquery" in str(err.value)


class TestLike:
    def test_percent_wildcard(self):
        rows = [tup(0.0, tag=t) for t in ("ghost_1", "s0_01", "ghost_2")]
        out = run_filter("tag LIKE 'ghost%'", rows)
        assert [t["tag"] for t in out] == ["ghost_1", "ghost_2"]

    def test_not_like_point_filter(self):
        # The ghost-filtering Point stage, written declaratively.
        rows = [tup(0.0, tag_id=t) for t in ("ghost_r0_1", "s0_01")]
        out = run_filter("tag_id NOT LIKE 'ghost%'", rows)
        assert [t["tag_id"] for t in out] == ["s0_01"]

    def test_underscore_wildcard(self):
        rows = [tup(0.0, tag=t) for t in ("a1", "a22", "b1")]
        out = run_filter("tag LIKE 'a_'", rows)
        assert [t["tag"] for t in out] == ["a1"]

    def test_exact_match_without_wildcards(self):
        rows = [tup(0.0, tag=t) for t in ("on", "only")]
        out = run_filter("tag LIKE 'on'", rows)
        assert [t["tag"] for t in out] == ["on"]

    def test_regex_metacharacters_escaped(self):
        rows = [tup(0.0, tag=t) for t in ("a.b", "axb")]
        out = run_filter("tag LIKE 'a.b'", rows)
        assert [t["tag"] for t in out] == ["a.b"]

    def test_null_is_false(self):
        assert run_filter("tag LIKE 'x%'", [tup(0.0, other=1)]) == []

    def test_non_literal_pattern_rejected(self):
        with pytest.raises((PlanError, CQLSyntaxError)):
            compile_query("SELECT * FROM s WHERE a LIKE b")


class TestStreamOperators:
    QUERY = """
        SELECT ISTREAM tag_id, count(*) AS c
        FROM s [Range By '5 sec']
        GROUP BY tag_id
    """

    def test_istream_emits_only_new_rows(self):
        # Same window contents at consecutive ticks -> emitted once.
        rows = [tup(0.0, tag_id="a")]
        out = compile_query(self.QUERY).run({"s": rows}, [0.0, 1.0, 2.0])
        assert [(t.timestamp, t["tag_id"]) for t in out] == [(0.0, "a")]

    def test_istream_reemits_on_change(self):
        rows = [tup(0.0, tag_id="a"), tup(1.0, tag_id="a")]
        out = compile_query(self.QUERY).run({"s": rows}, [0.0, 1.0])
        # count changes 1 -> 2, so the t=1 row is an insertion.
        assert [(t.timestamp, t["c"]) for t in out] == [(0.0, 1), (1.0, 2)]

    def test_dstream_emits_departures(self):
        query = """
            SELECT DSTREAM tag_id, count(*) AS c
            FROM s [Range By '2 sec']
            GROUP BY tag_id
        """
        rows = [tup(0.0, tag_id="a")]
        out = compile_query(query).run({"s": rows}, [0.0, 1.0, 2.0, 3.0])
        # Row exists for ticks 0..2, disappears at t=3.
        assert [(t.timestamp, t["tag_id"]) for t in out] == [(3.0, "a")]

    def test_rstream_is_default_behaviour(self):
        plain = self.QUERY.replace("ISTREAM ", "")
        rstream = self.QUERY.replace("ISTREAM", "RSTREAM")
        rows = [tup(0.0, tag_id="a")]
        ticks = [0.0, 1.0]
        out_plain = compile_query(plain).run({"s": rows}, ticks)
        out_rstream = compile_query(rstream).run({"s": rows}, ticks)
        assert len(out_plain) == len(out_rstream) == 2

    def test_prefix_form(self):
        query = """
            ISTREAM (SELECT tag_id, count(*) AS c
                     FROM s [Range By '5 sec'] GROUP BY tag_id)
        """
        tree = parse(query)
        assert tree.stream_op == "ISTREAM"
        rows = [tup(0.0, tag_id="a")]
        out = compile_query(query).run({"s": rows}, [0.0, 1.0])
        assert len(out) == 1

    def test_istream_on_stateless_select(self):
        # ISTREAM over a filter dedupes identical consecutive rows.
        query = "SELECT ISTREAM tag FROM s WHERE tag LIKE 'a%'"
        rows = [tup(0.0, tag="a1"), tup(1.0, tag="a1"), tup(2.0, tag="a2")]
        out = compile_query(query).run({"s": rows}, [0.0, 1.0, 2.0])
        assert [t["tag"] for t in out] == ["a1", "a2"]
