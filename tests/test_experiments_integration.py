"""Integration tests: the experiment drivers reproduce the paper's shape.

These run on reduced-scale scenarios (session fixtures) so the suite
stays fast; the full-scale numbers live in the benchmark harness and
EXPERIMENTS.md.
"""

import pytest

from repro.experiments.intel_lab import figure7
from repro.experiments.office import figure9, threshold_sweep
from repro.experiments.redwood import section52
from repro.experiments.rfid import figure3, figure5, figure6


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self, small_shelf):
        return figure3(small_shelf)

    def test_trace_keys(self, result):
        assert set(result["traces"]) == {
            "reality",
            "raw",
            "smooth",
            "smooth_arbitrate",
        }

    def test_error_ordering(self, result):
        errors = result["errors"]
        assert errors["smooth_arbitrate"] < errors["smooth"] < errors["raw"]

    def test_raw_data_near_useless(self, result):
        assert result["errors"]["raw"] > 0.3

    def test_cleaned_error_small(self, result):
        assert result["errors"]["smooth_arbitrate"] < 0.12

    def test_raw_generates_false_alerts_cleaned_does_not(self, result):
        assert result["raw_alert_rate_per_sec"] > 0.2
        assert (
            result["cleaned_alert_rate_per_sec"]
            < result["raw_alert_rate_per_sec"] / 10
        )

    def test_traces_aligned_with_ticks(self, result):
        n = len(result["ticks"])
        for config, traces in result["traces"].items():
            for series in traces.values():
                assert len(series) == n


class TestFigure5:
    @pytest.fixture(scope="class")
    def errors(self, small_shelf):
        return figure5(small_shelf)

    def test_all_configs_present(self, errors):
        assert set(errors) == {
            "raw",
            "smooth",
            "arbitrate",
            "arbitrate+smooth",
            "smooth+arbitrate",
        }

    def test_paper_ordering_holds(self, errors):
        # Fig 5: smooth+arbitrate best; arbitrate-only ~ raw;
        # arbitrate-before-smooth no better than smooth-only's ballpark.
        assert errors["smooth+arbitrate"] == min(errors.values())
        assert errors["arbitrate"] > 0.6 * errors["raw"]
        assert errors["smooth+arbitrate"] < 0.6 * errors["smooth"]

    def test_order_matters(self, errors):
        assert errors["smooth+arbitrate"] < errors["arbitrate+smooth"]


class TestFigure6:
    def test_u_shape(self, small_shelf):
        sweep = figure6(small_shelf, granule_sizes=(0.2, 1.0, 5.0, 30.0))
        assert sweep[0.2] > sweep[5.0]
        assert sweep[30.0] > sweep[5.0]

    def test_returns_requested_sizes(self, small_shelf):
        sweep = figure6(small_shelf, granule_sizes=(1.0, 5.0))
        assert set(sweep) == {1.0, 5.0}


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self, small_intel_lab):
        return figure7(small_intel_lab)

    def test_outlier_rises_past_point_threshold(self, result):
        assert result["outlier_peak"] > 50.0

    def test_esp_tracks_functioning_motes(self, result):
        assert result["esp_tracking_error_after_failure"] < 1.0

    def test_naive_average_dragged_upward(self, result):
        assert (
            result["naive_tracking_error_after_failure"]
            > 5 * result["esp_tracking_error_after_failure"]
        )

    def test_elimination_happens_soon_after_onset(self, result):
        elimination = result["esp_elimination_time"]
        assert elimination is not None
        assert result["failure_onset"] <= elimination
        assert elimination < result["failure_onset"] + 3 * 3600.0

    def test_raw_series_cover_three_motes(self, result):
        assert set(result["raw"]) == {"mote1", "mote2", "mote3"}


class TestSection52:
    @pytest.fixture(scope="class")
    def result(self, small_redwood):
        return section52(small_redwood)

    def test_yield_strictly_improves_along_pipeline(self, result):
        assert (
            result["raw_yield"]
            < result["smooth_yield"]
            < result["merge_yield"]
        )

    def test_raw_yield_matches_channel_target(self, result, small_redwood):
        assert result["raw_yield"] == pytest.approx(
            small_redwood.target_yield, abs=0.12
        )

    def test_smooth_accuracy_high(self, result):
        assert result["smooth_within_1c"] > 0.9

    def test_merge_trades_accuracy_for_yield(self, result):
        assert result["merge_within_1c"] <= result["smooth_within_1c"]
        assert result["merge_within_1c"] > 0.85

    def test_slot_counts(self, result, small_redwood):
        assert result["n_motes"] == small_redwood.n_groups * 2
        assert result["n_granules"] == small_redwood.n_groups


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self, small_office):
        return figure9(small_office)

    def test_accuracy_near_paper(self, result):
        assert result["accuracy"] > 0.8

    def test_detector_not_always_on(self, result):
        detected = result["detected"]
        assert 0 < detected.sum() < len(detected)

    def test_panels_present(self, result):
        assert set(result["rfid_counts"]) == {
            "office_reader0",
            "office_reader1",
        }
        assert len(result["sound"]) == 3
        assert len(result["x10_events"]) == 3

    def test_confusion_sums_to_steps(self, result):
        confusion = result["confusion"]
        assert sum(confusion.values()) == len(result["ticks"])

    def test_threshold_sweep_covers_thresholds(self, small_office):
        sweep = threshold_sweep(small_office, thresholds=(1, 2))
        assert set(sweep) == {1, 2}
        assert all(0.0 <= acc <= 1.0 for acc in sweep.values())
