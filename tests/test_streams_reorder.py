"""Tests for the reorder buffer and network delay model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperatorError, ReceptorError
from repro.receptors.network import DelayModel
from repro.streams.reorder import (
    ReorderBuffer,
    delayed_arrivals,
    reorder_arrivals,
)
from repro.streams.tuples import StreamTuple


def tup(ts, **fields):
    return StreamTuple(ts, fields or {"v": ts})


class TestReorderBuffer:
    def test_in_order_stream_passes_through(self):
        buffer = ReorderBuffer(slack=0.0)
        out = []
        for ts in (0.0, 1.0, 2.0):
            out.extend(buffer.push(ts, tup(ts)))
        assert [t.timestamp for t in out] == [0.0, 1.0, 2.0]
        assert buffer.dropped == 0

    def test_reorders_within_slack(self):
        buffer = ReorderBuffer(slack=2.0)
        released = []
        # tuple ts=1 arrives after ts=2 (1s late), within slack
        released.extend(buffer.push(2.0, tup(2.0)))
        released.extend(buffer.push(2.5, tup(1.0)))
        released.extend(buffer.push(4.5, tup(3.0)))
        released.extend(buffer.flush())
        assert [t.timestamp for t in released] == [1.0, 2.0, 3.0]
        assert buffer.dropped == 0

    def test_holds_until_horizon(self):
        buffer = ReorderBuffer(slack=5.0)
        assert buffer.push(0.0, tup(0.0)) == []  # horizon = -5
        assert len(buffer) == 1
        out = buffer.push(5.0, tup(5.0))  # horizon = 0 -> releases ts 0
        assert [t.timestamp for t in out] == [0.0]

    def test_too_late_tuple_dropped(self):
        buffer = ReorderBuffer(slack=1.0)
        buffer.push(0.0, tup(0.0))
        buffer.push(5.0, tup(5.0))  # releases up to ts 4 -> frontier 0
        buffer.push(6.1, tup(6.0))  # releases ts 5 -> frontier 5
        out = buffer.push(7.0, tup(2.0))  # ts 2 < frontier: hopeless
        # The late arrival is shed, but its arrival time still advanced
        # the horizon to 6.0 — which uncovers the buffered ts-6 tuple.
        assert [t.timestamp for t in out] == [6.0]
        assert buffer.dropped == 1

    def test_flush_empties_buffer(self):
        buffer = ReorderBuffer(slack=100.0)
        buffer.push(0.0, tup(3.0))
        buffer.push(0.0, tup(1.0))
        assert [t.timestamp for t in buffer.flush()] == [1.0, 3.0]
        assert len(buffer) == 0

    def test_stable_for_equal_timestamps(self):
        buffer = ReorderBuffer(slack=0.0)
        first, second = tup(1.0, v="first"), tup(1.0, v="second")
        out = buffer.push(1.0, first) + buffer.push(1.0, second)
        assert [t["v"] for t in out] == ["first", "second"]

    def test_negative_slack_rejected(self):
        with pytest.raises(OperatorError):
            ReorderBuffer(slack=-1.0)

    def test_counters(self):
        buffer = ReorderBuffer(slack=0.0)
        buffer.push(0.0, tup(0.0))
        buffer.push(1.0, tup(1.0))
        assert buffer.released == 2


@st.composite
def arrival_traces(draw):
    """Sense times plus bounded random delays, in arrival order."""
    n = draw(st.integers(min_value=1, max_value=40))
    sense = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    delays = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    pairs = sorted(
        ((ts + d, tup(ts, idx=i)) for i, (ts, d) in enumerate(zip(sense, delays))),
        key=lambda pair: pair[0],
    )
    return pairs, max(delays)


class TestReorderProperties:
    @given(arrival_traces())
    @settings(max_examples=60)
    def test_sufficient_slack_is_lossless_and_sorted(self, trace):
        pairs, max_delay = trace
        ordered, dropped = reorder_arrivals(pairs, slack=max_delay + 0.01)
        assert dropped == 0
        assert len(ordered) == len(pairs)
        times = [t.timestamp for t in ordered]
        assert times == sorted(times)

    @given(arrival_traces(), st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=60)
    def test_any_slack_output_is_sorted_and_complete_minus_drops(
        self, trace, slack
    ):
        pairs, _max_delay = trace
        ordered, dropped = reorder_arrivals(pairs, slack=slack)
        times = [t.timestamp for t in ordered]
        assert times == sorted(times)
        assert len(ordered) + dropped == len(pairs)


class TestDelayModel:
    def test_samples_bounded(self):
        model = DelayModel(mean_delay=2.0, max_delay=10.0, rng=0)
        draws = [model.sample() for _ in range(2000)]
        assert all(0.0 <= d <= 10.0 for d in draws)
        assert np.mean(draws) == pytest.approx(2.0, abs=0.3)

    def test_invalid_parameters(self):
        with pytest.raises(ReceptorError):
            DelayModel(mean_delay=0.0, max_delay=1.0)
        with pytest.raises(ReceptorError):
            DelayModel(mean_delay=5.0, max_delay=1.0)

    def test_delayed_arrivals_sorted_by_arrival(self):
        model = DelayModel(mean_delay=1.0, max_delay=5.0, rng=1)
        readings = [tup(float(i)) for i in range(30)]
        pairs = list(delayed_arrivals(readings, model))
        arrivals = [a for a, _t in pairs]
        assert arrivals == sorted(arrivals)
        assert all(a >= t.timestamp for a, t in pairs)


class TestEndToEndWithDelays:
    def test_delayed_redwood_trace_cleansable_with_slack(self):
        """Delayed readings reordered at the gateway feed the engine
        without violating the window order contract."""
        from repro.scenarios import RedwoodScenario
        from repro.pipelines.sensornet import build_redwood_processor

        scenario = RedwoodScenario(duration=86400.0 / 2, n_groups=2, seed=9)
        recorded = scenario.recorded_streams()
        model = DelayModel(mean_delay=60.0, max_delay=280.0, rng=4)
        delayed_sources = {}
        total_dropped = 0
        for mote_id, readings in recorded.items():
            ordered, dropped = reorder_arrivals(
                delayed_arrivals(readings, model), slack=280.0
            )
            delayed_sources[mote_id] = ordered
            total_dropped += dropped
        assert total_dropped == 0  # slack >= max delay
        run = build_redwood_processor(scenario).run(
            until=scenario.duration,
            tick=scenario.epoch,
            sources=delayed_sources,
        )
        assert run.output  # pipeline runs cleanly over reordered data


class TestReorderEdgeCases:
    """Boundary behavior the ingestion gateway leans on."""

    def test_duplicate_timestamps_release_in_sequence_order(self):
        """Equal-timestamp tuples come out in ascending explicit
        sequence, regardless of arrival interleaving — the gateway
        forwards sender sequence numbers for exactly this."""
        buffer = ReorderBuffer(slack=5.0)
        buffer.push(0.0, tup(1.0, v="third"), sequence=2)
        buffer.push(0.1, tup(1.0, v="first"), sequence=0)
        buffer.push(0.2, tup(1.0, v="second"), sequence=1)
        out = buffer.flush()
        assert [t["v"] for t in out] == ["first", "second", "third"]

    def test_duplicate_timestamps_default_to_arrival_order(self):
        buffer = ReorderBuffer(slack=5.0)
        for v in ("a", "b", "c"):
            buffer.push(0.0, tup(2.0, v=v))
        assert [t["v"] for t in buffer.flush()] == ["a", "b", "c"]

    def test_arrival_exactly_at_slack_horizon_admitted(self):
        """delay == slack sits exactly on the release horizon: it must
        be admitted (and released immediately), not dropped — even when
        the subtraction picks up float rounding."""
        slack = 1.0
        buffer = ReorderBuffer(slack=slack)
        ts = 0.1 + 0.2  # classic non-representable sum
        out = buffer.push(ts + slack, tup(ts))
        assert [t.timestamp for t in out] == [ts]
        assert buffer.dropped == 0

    def test_arrival_just_past_horizon_dropped(self):
        buffer = ReorderBuffer(slack=1.0)
        buffer.push(5.0, tup(5.0))  # horizon now 4.0
        out = buffer.push(5.0, tup(2.0))  # 2.0 << 4.0: hopeless
        assert out == []
        assert buffer.dropped == 1

    def test_drop_still_releases_uncovered_tuples(self):
        """A dropped arrival advances the horizon like any other; the
        tuples it uncovers must release on that same push, or a
        watermark-driven consumer would see them behind its
        punctuation."""
        buffer = ReorderBuffer(slack=1.0)
        assert buffer.push(0.5, tup(1.0)) == []  # buffered
        out = buffer.push(3.0, tup(0.5))  # late: dropped; horizon 2.0
        assert buffer.dropped == 1
        assert [t.timestamp for t in out] == [1.0]  # uncovered
        assert buffer.watermark == 2.0

    def test_flush_after_partial_release(self):
        buffer = ReorderBuffer(slack=2.0)
        buffer.push(0.0, tup(0.0))
        buffer.push(3.0, tup(3.0))  # releases ts 0.0 (horizon 1.0)
        buffer.push(3.5, tup(2.5))  # still buffered
        assert len(buffer) == 2
        out = buffer.flush()
        assert [t.timestamp for t in out] == [2.5, 3.0]
        assert len(buffer) == 0
        assert buffer.released == 3
        assert buffer.watermark == float("inf")
        # Post-flush arrivals are late by definition.
        assert buffer.push(10.0, tup(9.0)) == []
        assert buffer.dropped == 1

    def test_watermark_tracks_frontier_and_horizon(self):
        buffer = ReorderBuffer(slack=1.0)
        assert buffer.watermark == float("-inf")
        buffer.push(2.0, tup(1.5))  # horizon 1.0, ts 1.5 buffered
        assert buffer.watermark == 1.0
        out = buffer.push(3.0, tup(3.0))  # horizon 2.0: releases 1.5
        assert [t.timestamp for t in out] == [1.5]
        assert buffer.watermark == 2.0  # horizon leads the frontier

    def test_released_never_behind_watermark(self):
        """The gateway's core safety contract: once ``watermark``
        returns W, no later release carries a timestamp more than 1 ns
        below W — under any interleaving of admits and drops."""
        rng = np.random.default_rng(17)
        buffer = ReorderBuffer(slack=0.3)
        floor = float("-inf")
        for ts in np.cumsum(rng.exponential(0.2, size=300)):
            delay = min(1.5, rng.exponential(0.4))
            for item in buffer.push(float(ts + delay), tup(float(ts))):
                assert item.timestamp >= floor - 1e-9
            floor = max(floor, buffer.watermark)
        for item in buffer.flush():
            assert item.timestamp >= floor - 1e-9
