"""Unit tests for durations, the simulation clock and epochs."""

import pytest

from repro.errors import WindowError
from repro.streams.time import Duration, SimClock, epoch_of, parse_duration


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("5 sec", 5.0),
            ("'5 sec'", 5.0),
            ("0.5 sec", 0.5),
            ("5 min", 300.0),
            ("30 min", 1800.0),
            ("1 hour", 3600.0),
            ("2 days", 172800.0),
            ("200 ms", 0.2),
            ("5s", 5.0),
            ("5 seconds", 5.0),
            ("7", 7.0),
        ],
    )
    def test_accepted_spellings(self, text, expected):
        assert parse_duration(text).seconds == pytest.approx(expected)

    def test_now_is_zero_width(self):
        assert parse_duration("NOW").is_now
        assert parse_duration("now").seconds == 0.0

    def test_numeric_input(self):
        assert parse_duration(2.5).seconds == 2.5

    def test_duration_passthrough(self):
        d = Duration(3.0)
        assert parse_duration(d) is d

    def test_unknown_unit_rejected(self):
        with pytest.raises(WindowError):
            parse_duration("5 parsecs")

    def test_garbage_rejected(self):
        with pytest.raises(WindowError):
            parse_duration("sec 5")

    def test_negative_rejected(self):
        with pytest.raises(WindowError):
            Duration(-1.0)


class TestDuration:
    def test_comparisons_with_durations_and_floats(self):
        assert Duration(5) == Duration(5)
        assert Duration(5) == 5.0
        assert Duration(3) < Duration(5)
        assert Duration(5) <= 5.0
        assert Duration(6) > 5
        assert Duration(5) >= Duration(5)

    def test_arithmetic(self):
        assert (Duration(2) + 3).seconds == 5.0
        assert (Duration(2) * 3).seconds == 6.0
        assert (3 * Duration(2)).seconds == 6.0

    def test_float_conversion(self):
        assert float(Duration(2.5)) == 2.5

    def test_hashable(self):
        assert len({Duration(5), Duration(5.0), Duration(6)}) == 2

    def test_repr(self):
        assert "NOW" in repr(Duration(0))
        assert "5" in repr(Duration(5))


class TestSimClock:
    def test_ticks_inclusive_of_end(self):
        clock = SimClock(period=0.5)
        assert list(clock.ticks(until=1.5)) == [0.0, 0.5, 1.0, 1.5]

    def test_ticks_resist_float_drift(self):
        clock = SimClock(period=0.1)
        ticks = list(clock.ticks(until=100.0))
        assert len(ticks) == 1001
        assert ticks[-1] == pytest.approx(100.0, abs=1e-9)

    def test_tick_count_matches_ticks(self):
        clock = SimClock(period=0.2)
        assert clock.tick_count(until=700.0) == len(list(
            SimClock(period=0.2).ticks(until=700.0)
        ))

    def test_advance(self):
        clock = SimClock(period=2.0, start=1.0)
        assert clock.advance() == 3.0
        assert clock.now == 3.0

    def test_nonpositive_period_rejected(self):
        with pytest.raises(WindowError):
            SimClock(period=0.0)


class TestEpochOf:
    def test_basic_binning(self):
        assert epoch_of(0.0, 300.0) == 0
        assert epoch_of(299.9, 300.0) == 0
        assert epoch_of(300.0, 300.0) == 1

    def test_boundary_tolerance(self):
        # 0.1*3 accumulates to 0.30000000000000004; binning must not
        # push a boundary sample into the next epoch's predecessor.
        assert epoch_of(0.1 * 3, 0.3) == 1

    def test_custom_start(self):
        assert epoch_of(10.0, 5.0, start=10.0) == 0

    def test_invalid_epoch_length(self):
        with pytest.raises(WindowError):
            epoch_of(1.0, 0.0)
