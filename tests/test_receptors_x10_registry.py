"""Unit tests for X10 detectors and the device registry."""

import pytest

from repro.core.granules import SpatialGranule
from repro.errors import ReceptorError
from repro.receptors.base import Receptor, ReceptorKind
from repro.receptors.registry import DeviceRegistry
from repro.receptors.rfid import RFIDReader
from repro.receptors.x10 import X10MotionDetector


class TestX10:
    def test_fires_only_on(self):
        detector = X10MotionDetector(
            "x10_1", occupied=lambda now: True,
            detect_probability=1.0, false_on_probability=0.0, rng=0,
        )
        readings = detector.poll(3.0)
        assert readings[0]["value"] == "ON"
        assert readings[0]["sensor_id"] == "x10_1"

    def test_silent_when_not_detected(self):
        detector = X10MotionDetector(
            "x10_1", occupied=lambda now: True,
            detect_probability=0.0, false_on_probability=0.0, rng=0,
        )
        assert detector.poll(0.0) == []

    def test_miss_rate(self):
        detector = X10MotionDetector(
            "x", occupied=lambda now: True,
            detect_probability=0.3, false_on_probability=0.0, rng=1,
        )
        hits = sum(bool(detector.poll(float(t))) for t in range(4000))
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_false_positives_when_empty(self):
        detector = X10MotionDetector(
            "x", occupied=lambda now: False,
            detect_probability=0.9, false_on_probability=0.05, rng=2,
        )
        hits = sum(bool(detector.poll(float(t))) for t in range(4000))
        assert hits / 4000 == pytest.approx(0.05, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ReceptorError):
            X10MotionDetector("x", occupied=lambda now: True,
                              detect_probability=2.0)


class TestRegistry:
    def make(self):
        registry = DeviceRegistry()
        office = SpatialGranule("office")
        registry.add_group("readers", office, receptor_kind="rfid")
        registry.add_group("x10s", office, receptor_kind="x10")
        return registry, office

    def reader(self, name="r0"):
        return RFIDReader(name, shelf="office", tags=[], rng=0)

    def test_assign_and_lookup(self):
        registry, office = self.make()
        reader = self.reader()
        registry.assign(reader, "readers")
        assert registry.device("r0") is reader
        assert registry.group_of("r0").name == "readers"
        assert registry.granule_of("r0") == office
        assert registry.group_of("r0").members == ["r0"]

    def test_kind_mismatch_rejected(self):
        registry, _office = self.make()
        with pytest.raises(ReceptorError) as err:
            registry.assign(self.reader(), "x10s")
        assert "rfid" in str(err.value)

    def test_duplicate_device_rejected(self):
        registry, _office = self.make()
        registry.assign(self.reader(), "readers")
        with pytest.raises(ReceptorError):
            registry.assign(self.reader(), "readers")

    def test_unknown_group_rejected(self):
        registry, _office = self.make()
        with pytest.raises(ReceptorError):
            registry.assign(self.reader(), "nope")

    def test_duplicate_group_rejected(self):
        registry, office = self.make()
        with pytest.raises(ReceptorError):
            registry.add_group("readers", office, receptor_kind="rfid")

    def test_unknown_device_lookups(self):
        registry, _office = self.make()
        with pytest.raises(ReceptorError):
            registry.device("ghost")
        with pytest.raises(ReceptorError):
            registry.group_of("ghost")

    def test_granule_idempotent_by_name(self):
        registry = DeviceRegistry()
        registry.add_group("g1", SpatialGranule("room"), receptor_kind="mote")
        registry.add_group("g2", SpatialGranule("room"), receptor_kind="x10")
        assert len(registry.granules) == 1
        assert len(registry.groups_for_granule("room")) == 2

    def test_devices_in_group(self):
        registry, _office = self.make()
        registry.assign(self.reader("r0"), "readers")
        registry.assign(self.reader("r1"), "readers")
        assert {d.receptor_id for d in registry.devices_in_group("readers")} == {
            "r0",
            "r1",
        }
        with pytest.raises(ReceptorError):
            registry.devices_in_group("ghost")


class TestReceptorBase:
    def test_poll_abstract(self):
        receptor = Receptor("x", ReceptorKind.MOTE, sample_period=1.0)
        with pytest.raises(NotImplementedError):
            receptor.poll(0.0)

    def test_invalid_sample_period(self):
        with pytest.raises(ReceptorError):
            Receptor("x", ReceptorKind.MOTE, sample_period=-1.0)

    def test_repr(self):
        receptor = Receptor("x", ReceptorKind.X10, sample_period=2.0)
        assert "x10" in repr(receptor)
