"""Cluster-wide distributed tracing: exact per-hop phase accounting.

The tentpole contract of PR 10: with tracing enabled the router stamps
a trace context onto every routed data frame, workers ship hop stamps
back on ``result`` frames, and the router closes one ``cluster.e2e``
span per delivered tuple whose seven per-hop phases — ``router.queue``,
``router.forward``, ``wire.transit``, ``worker.queue``,
``worker.reorder``, ``worker.session``, ``merge.egress`` — sum
*exactly* (integer nanoseconds, shared boundary stamps) to the
end-to-end figure. Three invariants pinned here:

- **Heisenberg-free**: enabling tracing never changes the egress — the
  traced cluster stays byte-identical to the in-memory reference.
- **Exactly-once spans**: every fed frame closes exactly one
  ``cluster.e2e`` span record, under unique ingest ids — including
  across a mid-stream rebalance, where re-run tuples are flagged
  ``replayed`` and the epoch-ownership rule dedupes their commits.
- **Exact phase telescoping**: per-record phase durations sum to
  ``e2e_ns`` with zero slack, and the worker-labeled histogram
  families roll up on the router's collector.

Same harness discipline as ``test_cluster_equivalence.py`` (real
loopback sockets, no wall-clock sleeps); the cluster drivers are
imported from there.
"""

import asyncio

from repro.net.service import build_bundle
from repro.streams.telemetry import InMemoryCollector

from tests.test_cluster_equivalence import (
    SEED,
    cluster_run,
    in_memory_output,
)

#: The per-record integer-ns phase fields, in hop order; their sum must
#: equal ``e2e_ns`` exactly for every span record.
PHASE_KEYS = (
    "router_queue_ns",
    "router_forward_ns",
    "wire_transit_ns",
    "worker_queue_ns",
    "worker_reorder_ns",
    "worker_session_ns",
    "merge_egress_ns",
)

#: Histogram families recorded per worker label (``<label>:<name>``).
SPAN_NAMES = (
    "router.queue",
    "router.forward",
    "wire.transit",
    "worker.queue",
    "worker.reorder",
    "worker.session",
    "merge.egress",
    "cluster.e2e",
)

_CACHE = {}


def traced_cluster(name="shelf", duration=8.0, n_workers=2, events=()):
    """One traced cluster run, memoised per configuration.

    Returns ``(output, snapshot, fed_frames)`` where ``fed_frames`` is
    the recording's total data-frame count (= the expected span count).
    """
    key = (name, duration, n_workers, tuple(events))
    if key not in _CACHE:
        collector = InMemoryCollector()

        async def scenario():
            return await cluster_run(
                name,
                n_workers,
                duration,
                telemetry=collector,
                events=list(events),
            )

        output, _router = asyncio.run(scenario())
        bundle = build_bundle(name, duration, SEED)
        fed = sum(len(items) for items in bundle.streams.values())
        _CACHE[key] = (output, collector.snapshot(), fed)
    return _CACHE[key]


def cluster_spans(snapshot):
    return [
        record
        for record in snapshot["span_log"]
        if record.get("kind") == "cluster_span"
    ]


class TestClusterTracing:
    def test_traced_output_stays_byte_identical(self):
        """Tracing must be observationally free: same egress bytes."""
        output, _snapshot, _fed = traced_cluster()
        assert output == in_memory_output("shelf", 8.0)
        assert output  # non-vacuous

    def test_every_tuple_closes_exactly_one_e2e_span(self):
        _output, snapshot, fed = traced_cluster()
        records = cluster_spans(snapshot)
        assert len(records) == fed
        ids = [record["ingest_id"] for record in records]
        assert len(set(ids)) == len(ids)
        # The histogram rollup agrees with the log.
        e2e_count = sum(
            entry["count"]
            for name, entry in snapshot["spans"].items()
            if name.endswith(":cluster.e2e")
        )
        assert e2e_count == fed

    def test_phase_durations_sum_exactly_to_e2e(self):
        """The exactness contract, hop by hop: integer nanoseconds,
        shared boundary stamps, zero accounting slack."""
        _output, snapshot, _fed = traced_cluster()
        records = cluster_spans(snapshot)
        assert records  # non-vacuous
        for record in records:
            assert sum(record[key] for key in PHASE_KEYS) == (
                record["e2e_ns"]
            ), record

    def test_worker_labeled_span_families_roll_up(self):
        _output, snapshot, _fed = traced_cluster()
        spans = snapshot["spans"]
        for worker in ("w0", "w1"):
            for name in SPAN_NAMES:
                assert f"{worker}:{name}" in spans
        # Same-clock-domain phases are non-negative by construction;
        # cross-domain ones (wire.transit, merge.egress) are too on
        # loopback, where every stamp shares one clock.
        for record in cluster_spans(snapshot):
            for key in PHASE_KEYS:
                assert record[key] >= 0, (key, record)

    def test_no_replays_in_a_quiet_run(self):
        _output, snapshot, _fed = traced_cluster()
        assert not any(
            record["replayed"] for record in cluster_spans(snapshot)
        )

    def test_rebalance_replays_are_flagged_and_deduped(self):
        """A mid-stream leave restarts the epoch and replays history;
        re-run tuples carry ``replayed`` yet still commit exactly one
        span each, and the egress stays byte-identical."""
        output, snapshot, fed = traced_cluster(
            n_workers=2, events=((0.5, "leave", "w1"),)
        )
        assert output == in_memory_output("shelf", 8.0)
        records = cluster_spans(snapshot)
        assert len(records) == fed
        ids = [record["ingest_id"] for record in records]
        assert len(set(ids)) == len(ids)
        replayed = [record for record in records if record["replayed"]]
        assert replayed  # the rebalance actually re-ran tuples
        for record in records:
            assert sum(record[key] for key in PHASE_KEYS) == (
                record["e2e_ns"]
            )
