"""Unit tests for the columnar batch representation.

Covers the ColumnBatch encoding itself — round-trips, lazy
materialization, slice views, schema union, out-of-order detection —
plus the vectorizable callables and the ChainOp zero-copy regression.
The cross-mode *execution* equivalence lives in
``tests/test_columnar_equivalence.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import OperatorError, SchemaError
from repro.streams.columnar import (
    MISSING,
    AddFields,
    ColumnBatch,
    ColumnMap,
    ColumnPredicate,
    FieldCompare,
    SetStream,
    coalesce,
)
from repro.streams.fjord import Fjord
from repro.streams.operators import ChainOp, FilterOp, MapOp, UnionOp
from repro.streams.tuples import StreamTuple


def make_rows(n=8, stream="s"):
    rng = random.Random(n)
    return [
        StreamTuple(
            float(i),
            {"tag_id": f"T{i % 3}", "value": round(rng.uniform(0, 50), 3)},
            stream,
        )
        for i in range(n)
    ]


# -- encode / decode round-trip ------------------------------------------------


class TestRoundTrip:
    def test_from_tuples_tuples_identity(self):
        rows = make_rows(10)
        batch = ColumnBatch.from_tuples(rows)
        assert batch.tuples() == rows
        assert len(batch) == 10
        assert list(batch) == rows

    def test_round_trip_through_columns(self):
        """Decoding a batch built column-wise yields equal tuples."""
        rows = make_rows(6)
        encoded = ColumnBatch.from_tuples(rows)
        rebuilt = ColumnBatch(
            list(encoded.timestamps),
            list(encoded.streams),
            {f: list(col) for f, col in encoded.columns.items()},
        )
        assert rebuilt.tuples() == rows
        assert rebuilt == encoded

    def test_mixed_schema_round_trip(self):
        rows = [
            StreamTuple(0.0, {"a": 1}, "x"),
            StreamTuple(1.0, {"b": 2.5}, "y"),
            StreamTuple(2.0, {"a": 3, "b": 4.5}, "x"),
        ]
        batch = ColumnBatch.from_tuples(rows)
        assert batch.columns["a"][1] is MISSING
        assert batch.columns["b"][0] is MISSING
        # Decoded rows must not grow phantom fields.
        decoded = ColumnBatch(
            batch.timestamps, batch.streams, batch.columns
        ).tuples()
        assert decoded == rows
        assert "b" not in decoded[0]
        assert "a" not in decoded[1]

    def test_empty_batch(self):
        batch = ColumnBatch.empty()
        assert len(batch) == 0
        assert batch.tuples() == []
        assert ColumnBatch.from_tuples([]) == batch

    def test_ragged_columns_rejected(self):
        with pytest.raises(OperatorError, match="ragged"):
            ColumnBatch([0.0, 1.0], ["s", "s"], {"x": [1]})
        with pytest.raises(OperatorError, match="ragged"):
            ColumnBatch([0.0], ["s", "s"], {})


# -- lazy materialization ------------------------------------------------------


class TestLazyMaterialization:
    def test_from_tuples_caches_input_rows(self):
        rows = make_rows(4)
        batch = ColumnBatch.from_tuples(rows)
        assert batch.is_materialized
        assert batch.tuples() is not None
        # The cache is the very list/objects handed in — zero decode cost.
        assert batch.tuples()[0] is rows[0]

    def test_column_built_batch_is_lazy(self):
        batch = ColumnBatch([0.0, 1.0], ["s", "s"], {"x": [1, 2]})
        assert not batch.is_materialized
        first = batch.tuples()
        assert batch.is_materialized
        assert batch.tuples() is first  # cached, not rebuilt

    def test_with_stream_shares_columns_and_defers(self):
        rows = make_rows(5)
        batch = ColumnBatch.from_tuples(rows)
        assert batch.columns  # force the encode: sharing is column-level
        relabeled = batch.with_stream("other")
        assert relabeled.columns is batch.columns  # shared, not copied
        assert not relabeled.is_materialized
        assert [t.stream for t in relabeled.tuples()] == ["other"] * 5
        assert [t.as_dict() for t in relabeled.tuples()] == [
            t.as_dict() for t in rows
        ]

    def test_with_stream_unencoded_stays_lazy(self):
        rows = make_rows(5)
        batch = ColumnBatch.from_tuples(rows)
        relabeled = batch.with_stream("other")
        assert not batch.is_encoded  # relabeling never forces an encode
        assert not relabeled.is_encoded
        assert [t.stream for t in relabeled.tuples()] == ["other"] * 5
        # The relabeled rows share the originals' value dicts outright.
        assert relabeled.tuples()[0]._values is rows[0]._values

    def test_with_columns_shares_untouched_columns(self):
        batch = ColumnBatch.from_tuples(make_rows(5))
        assert batch.columns  # force the encode
        extended = batch.with_columns({"granule": "g0"})
        assert extended.columns["tag_id"] is batch.columns["tag_id"]
        assert extended.columns["granule"] == ["g0"] * 5
        expected = [
            t.derive(values={"granule": "g0"}) for t in batch.tuples()
        ]
        assert extended.tuples() == expected

    def test_with_columns_unencoded_stays_lazy(self):
        batch = ColumnBatch.from_tuples(make_rows(5))
        extended = batch.with_columns({"granule": "g0"})
        assert not batch.is_encoded  # adding constants derives rows
        assert not extended.is_encoded
        expected = [
            t.derive(values={"granule": "g0"}) for t in batch.tuples()
        ]
        assert extended.tuples() == expected
        assert extended.columns["granule"] == ["g0"] * 5


# -- slice views ---------------------------------------------------------------


class TestSliceViews:
    def test_take_subset(self):
        rows = make_rows(8)
        batch = ColumnBatch.from_tuples(rows)
        view = batch.take([1, 4, 6])
        assert view.tuples() == [rows[1], rows[4], rows[6]]
        # Cached rows slice through: same objects, no re-decode.
        assert view.tuples()[0] is rows[1]

    def test_take_all_returns_self(self):
        batch = ColumnBatch.from_tuples(make_rows(4))
        assert batch.take(range(4)) is batch

    def test_take_nothing_is_empty(self):
        batch = ColumnBatch.from_tuples(make_rows(4))
        assert len(batch.take([])) == 0

    def test_where_mask(self):
        rows = make_rows(8)
        batch = ColumnBatch.from_tuples(rows)
        mask = [t["value"] < 25.0 for t in rows]
        kept = batch.where(mask)
        assert kept.tuples() == [t for t in rows if t["value"] < 25.0]

    def test_where_all_truthy_returns_self(self):
        batch = ColumnBatch.from_tuples(make_rows(4))
        assert batch.where([1, True, "yes", 2]) is batch

    def test_where_wrong_length_rejected(self):
        batch = ColumnBatch.from_tuples(make_rows(4))
        with pytest.raises(OperatorError, match="mask"):
            batch.where([True])

    def test_concat_unions_schema(self):
        a = ColumnBatch.from_tuples([StreamTuple(0.0, {"x": 1}, "a")])
        b = ColumnBatch.from_tuples([StreamTuple(1.0, {"y": 2}, "b")])
        merged = ColumnBatch.concat([a, b])
        assert merged.columns["x"][1] is MISSING
        assert merged.columns["y"][0] is MISSING
        assert merged.tuples() == a.tuples() + b.tuples()

    def test_coalesce_mixed_payloads(self):
        rows = make_rows(6)
        run = [
            rows[0],
            rows[1],
            ColumnBatch.from_tuples(rows[2:4]),
            rows[4],
            ColumnBatch.from_tuples(rows[5:]),
        ]
        assert coalesce(run).tuples() == rows

    def test_coalesce_single_batch_is_identity(self):
        batch = ColumnBatch.from_tuples(make_rows(3))
        assert coalesce([batch]) is batch


# -- out-of-order detection ----------------------------------------------------


class TestOutOfOrderDetection:
    @staticmethod
    def _row_path_message(items):
        """The exact error the row executor raises for these source rows."""
        fjord = Fjord()
        fjord.add_source("dev0", items)
        fjord.add_sink("out", inputs=["dev0"])
        with pytest.raises(OperatorError) as err:
            fjord.run([10.0])
        return str(err.value)

    def test_matches_row_path_error(self):
        items = [
            StreamTuple(0.0, {"x": 1}),
            StreamTuple(2.0, {"x": 2}),
            StreamTuple(1.0, {"x": 3}),
        ]
        expected = self._row_path_message(items)
        batch = ColumnBatch.from_tuples(items)
        with pytest.raises(OperatorError) as err:
            batch.assert_time_ordered("dev0")
        assert str(err.value) == expected

    def test_tolerates_jitter_like_row_path(self):
        """Sub-nanosecond regressions pass, exactly as in the executor."""
        items = [StreamTuple(1.0, {}), StreamTuple(1.0 - 1e-10, {})]
        batch = ColumnBatch.from_tuples(items)
        assert batch.assert_time_ordered("dev0") == items[-1].timestamp

    def test_chained_checks_carry_last_stamp(self):
        first = ColumnBatch.from_tuples([StreamTuple(5.0, {})])
        second = ColumnBatch.from_tuples([StreamTuple(3.0, {})])
        last = first.assert_time_ordered("dev0")
        with pytest.raises(OperatorError, match="out of order"):
            second.assert_time_ordered("dev0", last=last)

    def test_empty_batch_passes_through_last(self):
        assert ColumnBatch.empty().assert_time_ordered("dev0", last=7.5) == 7.5


# -- vectorizable callables ----------------------------------------------------


class TestVectorizableCallables:
    def test_add_fields_row_vs_columnar(self):
        rows = make_rows(5)
        fn = AddFields({"granule": "g1", "group": "p2"})
        row_out = [fn(t) for t in rows]
        col_out = fn.columnar(ColumnBatch.from_tuples(rows)).tuples()
        assert col_out == row_out

    def test_set_stream_row_vs_columnar(self):
        rows = make_rows(5)
        fn = SetStream("renamed")
        assert fn.columnar(ColumnBatch.from_tuples(rows)).tuples() == [
            fn(t) for t in rows
        ]

    def test_field_compare_mask(self):
        rows = make_rows(10)
        pred = FieldCompare("value", "<", 25.0)
        batch = ColumnBatch.from_tuples(rows)
        # list(...) because the mask may be a numpy bool array when the
        # column is typed; entries still compare equal element-wise.
        assert list(pred.mask(batch)) == [pred(t) for t in rows]

    def test_field_compare_missing_field_matches_row_error(self):
        pred = FieldCompare("absent", "<", 1.0)
        rows = [StreamTuple(0.0, {"x": 1}, "s")]
        with pytest.raises(SchemaError) as row_err:
            pred(rows[0])
        with pytest.raises(SchemaError) as mask_err:
            pred.mask(ColumnBatch.from_tuples(rows))
        assert str(mask_err.value) == str(row_err.value)

    def test_field_compare_rejects_unknown_op(self):
        with pytest.raises(OperatorError, match="unknown comparison"):
            FieldCompare("x", "~", 1)

    def test_column_map_and_predicate_wrappers(self):
        rows = make_rows(6)
        batch = ColumnBatch.from_tuples(rows)
        double = ColumnMap(
            lambda t: t.derive(values={"value": t["value"] * 2}),
            lambda b: b.with_column(
                "value", [v * 2 for v in b.column("value")]
            ),
        )
        assert double.columnar(batch).tuples() == [double(t) for t in rows]
        keep = ColumnPredicate(
            lambda t: t["value"] > 10.0,
            lambda b: [v > 10.0 for v in b.column("value")],
        )
        assert list(keep.mask(batch)) == [keep(t) for t in rows]

    def test_column_access_errors(self):
        batch = ColumnBatch.from_tuples(make_rows(2))
        with pytest.raises(OperatorError, match="no field"):
            batch.column("nope")
        assert batch.has_full_column("tag_id")
        assert not batch.has_full_column("nope")


# -- ChainOp zero-copy regression ----------------------------------------------


class CountingBatch(ColumnBatch):
    """ColumnBatch subclass counting every new batch object built."""

    constructed = 0

    def __init__(self, *args, **kwargs):
        type(self).constructed += 1
        super().__init__(*args, **kwargs)


class TestChainOpShortCircuit:
    def test_all_pass_chain_builds_no_new_batches(self):
        """A chain whose stages reject nothing must forward the input
        batch object itself — zero per-stage re-wrapping."""
        chain = ChainOp(
            [
                FilterOp(lambda t: True),
                UnionOp(),  # no relabel: identity on batches
                FilterOp(lambda t: t.timestamp >= 0.0),
            ]
        )
        CountingBatch.constructed = 0
        batch = CountingBatch.from_tuples(make_rows(16))
        assert CountingBatch.constructed == 1  # the input itself
        out = chain.on_column_batch(batch)
        assert out is batch
        assert CountingBatch.constructed == 1  # nothing re-wrapped

    def test_rejecting_stage_still_filters(self):
        chain = ChainOp(
            [FilterOp(lambda t: True), FilterOp(lambda t: t.timestamp < 3.0)]
        )
        rows = make_rows(8)
        out = chain.on_column_batch(ColumnBatch.from_tuples(rows))
        assert out.tuples() == [t for t in rows if t.timestamp < 3.0]

    def test_row_path_skips_upfront_copy(self):
        """The first stage must receive the caller's sequence itself,
        not a defensive copy (the fix this test pins)."""
        seen = []

        class Probe(MapOp):
            def __init__(self):
                super().__init__(lambda t: t)

            def on_batch(self, items, port=0):
                seen.append(items)
                return list(items)

        chain = ChainOp([Probe()])
        rows = make_rows(4)
        out = chain.on_batch(rows)
        assert seen[0] is rows
        assert out == rows
        assert out is not rows  # caller's list is never aliased back

    def test_empty_chain_input_short_circuits(self):
        chain = ChainOp([FilterOp(lambda t: True)])
        empty = ColumnBatch.empty()
        assert chain.on_column_batch(empty) is empty
        assert chain.on_batch([]) == []
