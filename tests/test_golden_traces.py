"""Golden-trace regression tests.

The cleaned output of two small scenario pipelines — one RFID shelf
deployment, one mote deployment — is pinned byte-for-byte to JSONL
files checked in under ``tests/golden/``. Any change to pipeline
semantics, operator numerics, emission order or serialization shows up
here as a diff against a reviewable artifact.

Regenerate (after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/test_golden_traces.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.streams.traceio import read_jsonl, write_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"


def _shelf_run(**kwargs):
    from repro.pipelines.rfid_shelf import build_shelf_processor
    from repro.scenarios.shelf import ShelfScenario

    scenario = ShelfScenario(duration=12.0, seed=3)
    processor = build_shelf_processor(scenario, "smooth+arbitrate")
    return processor.run(
        until=scenario.duration,
        tick=scenario.poll_period,
        sources=scenario.recorded_streams(),
        **kwargs,
    )


def _redwood_run(**kwargs):
    from repro.pipelines.sensornet import build_redwood_processor
    from repro.scenarios.redwood import RedwoodScenario

    scenario = RedwoodScenario(
        duration=0.05 * 86400.0, n_groups=2, seed=3
    )
    processor = build_redwood_processor(scenario)
    return processor.run(
        until=scenario.duration,
        sources=scenario.recorded_streams(),
        **kwargs,
    )


CASES = {
    "rfid_shelf_smooth_arbitrate": _shelf_run,
    "redwood_smooth_merge": _redwood_run,
}


def _serialize(run, path: Path) -> None:
    write_jsonl(run.output, path)


@pytest.mark.parametrize("case", sorted(CASES))
class TestGoldenTraces:
    def test_output_matches_golden(self, case, tmp_path):
        golden = GOLDEN_DIR / f"{case}.jsonl"
        assert golden.exists(), (
            f"missing golden file {golden}; regenerate with "
            f"PYTHONPATH=src python {__file__} --regenerate"
        )
        fresh = tmp_path / "fresh.jsonl"
        _serialize(CASES[case](), fresh)
        assert fresh.read_bytes() == golden.read_bytes(), (
            f"cleaned output of {case!r} drifted from the golden trace; "
            f"if the change is intentional, regenerate and review the diff"
        )

    def test_sharded_output_matches_golden(self, case, tmp_path):
        """The determinism guarantee, pinned against the same artifact."""
        golden = GOLDEN_DIR / f"{case}.jsonl"
        shard_key = "tag_id" if case.startswith("rfid") else "spatial_granule"
        fresh = tmp_path / "sharded.jsonl"
        _serialize(
            CASES[case](shards=3, backend="threads", shard_key=shard_key),
            fresh,
        )
        assert fresh.read_bytes() == golden.read_bytes()

    @pytest.mark.parametrize("mode", ("columnar", "fused"))
    def test_mode_output_matches_golden(self, case, mode, tmp_path):
        """Columnar and fused execution are pinned to the row artifact."""
        golden = GOLDEN_DIR / f"{case}.jsonl"
        fresh = tmp_path / f"{mode}.jsonl"
        _serialize(CASES[case](mode=mode), fresh)
        assert fresh.read_bytes() == golden.read_bytes(), (
            f"{mode!r} execution of {case!r} drifted from the row-path "
            f"golden trace; the modes must stay bit-identical"
        )

    @pytest.mark.parametrize("mode", ("columnar", "fused"))
    def test_sharded_mode_output_matches_golden(self, case, mode, tmp_path):
        golden = GOLDEN_DIR / f"{case}.jsonl"
        shard_key = "tag_id" if case.startswith("rfid") else "spatial_granule"
        fresh = tmp_path / f"sharded_{mode}.jsonl"
        _serialize(
            CASES[case](
                shards=3, backend="threads", shard_key=shard_key, mode=mode
            ),
            fresh,
        )
        assert fresh.read_bytes() == golden.read_bytes()

    def test_golden_roundtrips(self, case):
        """The checked-in artifact itself parses back losslessly."""
        golden = GOLDEN_DIR / f"{case}.jsonl"
        items = read_jsonl(golden)
        assert items, f"golden trace {case!r} is empty"
        assert all(
            a.timestamp <= b.timestamp for a, b in zip(items, items[1:])
        )


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for case, run in CASES.items():
        path = GOLDEN_DIR / f"{case}.jsonl"
        count = write_jsonl(run().output, path)
        print(f"wrote {count} tuples to {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
