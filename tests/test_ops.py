"""The observability plane: span correlation, /metrics, and `repro top`.

Three layers under test. (1) The Prometheus renderer — a golden check
pins the histogram ``le`` edges to ``LATENCY_BUCKETS_NS`` exactly, and
a small parser asserts the output is well-formed text exposition.
(2) The :class:`~repro.net.ops.OpsServer` HTTP endpoints, exercised
over real loopback sockets. (3) End-to-end span correlation: a
loopback serve/feed run must produce per-phase span durations that sum
*exactly* (integer nanoseconds — the phases share boundary stamps) to
the end-to-end figure, with ``/metrics`` gateway counters matching the
ingress queues' own accounting.
"""

import asyncio
import json
import re

import pytest

from repro.errors import NetError
from repro.net.gateway import IngestGateway
from repro.net.ops import (
    OpsServer,
    format_top,
    render_prometheus,
    snapshot_document,
)
from repro.net.service import feed_scenario, serve_scenario
from repro.streams.telemetry import (
    LATENCY_BUCKETS_NS,
    SPAN_PHASES,
    InMemoryCollector,
    empty_snapshot,
)

from tests.test_net_gateway import WAIT, loopback, shelf_case

SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.einf+]+)$"
)


def parse_exposition(text):
    """Parse Prometheus text exposition into (name, labels, value) rows.

    Raises on any line that is neither a comment nor a well-formed
    sample — the validity check the acceptance criteria ask for.
    """
    samples = []
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        name, labels, value = match.groups()
        parsed = {}
        if labels:
            for pair in re.findall(r'(\w+)="([^"]*)"', labels):
                parsed[pair[0]] = pair[1]
        samples.append((name, parsed, float(value)))
    return samples


def synthetic_snapshot():
    collector = InMemoryCollector()
    collector.record_batch("point:s0", 10, 8, 3_000)
    collector.record_batch("point:s0", 6, 6, 7_000)
    collector.record_punctuation("point:s0", 2, 1_500)
    collector.sample_queue_depth("gateway:s0", 4)
    collector.count_source("s0", 16)
    collector.sample_watermark("gateway:s0", 0.25)
    collector.count("gateway.s0.offered", 16)
    collector.count("gateway.s0.delivered", 16)
    collector.record_span("ingest.e2e", 12_345)
    collector.record_span("ingest.e2e", 2_000_000_000_000)  # overflow
    return collector.snapshot()


class TestRenderPrometheus:
    def test_empty_snapshot_renders_valid_empty_exposition(self):
        text = render_prometheus(empty_snapshot())
        assert parse_exposition(text) == []

    def test_samples_parse_and_counters_match(self):
        samples = parse_exposition(render_prometheus(synthetic_snapshot()))
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert ({"operator": "point:s0"}, 16.0) in by_name[
            "repro_operator_tuples_in_total"
        ]
        assert ({"operator": "point:s0"}, 11_500.0) in by_name[
            "repro_operator_busy_ns_total"
        ]
        assert ({"operator": "gateway:s0"}, 4.0) in by_name[
            "repro_operator_max_queue_depth"
        ]
        assert ({"key": "gateway.s0.offered"}, 16.0) in by_name[
            "repro_counter_total"
        ]
        assert ({"source": "gateway:s0"}, 0.25) in by_name[
            "repro_source_max_watermark_lag_seconds"
        ]
        assert ({"source": "s0"}, 16.0) in by_name[
            "repro_source_tuples_total"
        ]

    def test_histogram_le_edges_match_latency_buckets_exactly(self):
        """Golden: every rendered histogram uses the collector's exact
        integer bucket edges plus +Inf — a drifted edge would corrupt
        every dashboard recorded against the old ones."""
        samples = parse_exposition(render_prometheus(synthetic_snapshot()))
        expected = [str(edge) for edge in LATENCY_BUCKETS_NS] + ["+Inf"]
        series = {}
        for name, labels, _value in samples:
            if name.endswith("_latency_ns_bucket"):
                key = (name, labels.get("operator") or labels.get("span"))
                series.setdefault(key, []).append(labels["le"])
        assert series  # non-vacuous
        for key, edges in series.items():
            assert edges == expected, key

    def test_histogram_buckets_cumulative_and_consistent(self):
        samples = parse_exposition(render_prometheus(synthetic_snapshot()))
        buckets = [
            value
            for name, labels, value in samples
            if name == "repro_span_latency_ns_bucket"
        ]
        assert buckets == sorted(buckets)  # cumulative => monotone
        count = [
            value
            for name, _labels, value in samples
            if name == "repro_span_latency_ns_count"
        ]
        total = [
            value
            for name, _labels, value in samples
            if name == "repro_span_latency_ns_sum"
        ]
        assert buckets[-1] == count[0] == 2.0  # +Inf bucket == _count
        assert total[0] == 12_345.0 + 2_000_000_000_000.0

    def test_operator_sum_is_busy_ns(self):
        """record_batch adds the identical elapsed value to both the
        histogram and busy_ns, so busy_ns is the exact _sum."""
        samples = parse_exposition(render_prometheus(synthetic_snapshot()))
        sums = {
            labels.get("operator"): value
            for name, labels, value in samples
            if name == "repro_operator_latency_ns_sum"
        }
        assert sums == {"point:s0": 11_500.0, "gateway:s0": 0.0}

    def test_label_escaping(self):
        snapshot = empty_snapshot()
        snapshot["counters"]['odd"key\\name'] = 1
        text = render_prometheus(snapshot)
        assert '\\"' in text and "\\\\" in text

    def test_cluster_span_families_get_worker_labels(self):
        """Golden: a ``worker:span`` family name (the absorb(node=...)
        prefix convention) renders as separate span/worker labels with
        the exact LATENCY_BUCKETS_NS ``le`` edges."""
        collector = InMemoryCollector()
        collector.record_span("w0:cluster.e2e", 5_000)
        collector.record_span("w1:cluster.e2e", 7_000)
        collector.record_span("w0:router.queue", 1_000)
        collector.record_span("ingest.e2e", 2_000)  # unprefixed: no label
        samples = parse_exposition(render_prometheus(collector.snapshot()))
        series = {}
        edges = {}
        for name, labels, value in samples:
            if name == "repro_span_latency_ns_count":
                key = (labels.get("span"), labels.get("worker"))
                series[key] = value
            if name == "repro_span_latency_ns_bucket":
                key = (labels.get("span"), labels.get("worker"))
                edges.setdefault(key, []).append(labels["le"])
        assert series == {
            ("cluster.e2e", "w0"): 1.0,
            ("cluster.e2e", "w1"): 1.0,
            ("router.queue", "w0"): 1.0,
            ("ingest.e2e", None): 1.0,
        }
        expected = [str(edge) for edge in LATENCY_BUCKETS_NS] + ["+Inf"]
        for key, seen in edges.items():
            assert seen == expected, key

    def test_recovery_counters_render_all_families(self):
        """Golden: every RECOVERY_COUNTERS key renders as its own
        ``repro_recovery_<key>_total`` family with HELP/TYPE lines,
        zeros included — absent keys must not vanish from the scrape."""
        from repro.net.ops import RECOVERY_COUNTERS

        text = render_prometheus(
            empty_snapshot(), recovery={"resumes": 3, "failovers": 1}
        )
        samples = parse_exposition(text)
        values = {name: value for name, _labels, value in samples}
        expected_names = {
            f"repro_recovery_{key}_total" for key, _help in RECOVERY_COUNTERS
        }
        assert set(values) == expected_names
        assert {
            "checkpoints_acked",
            "checkpoints_rejected",
            "resumes",
            "restarts",
            "failovers",
            "replayed_frames",
            "forwards_skipped_dead",
        } == {key for key, _help in RECOVERY_COUNTERS}
        assert values["repro_recovery_resumes_total"] == 3.0
        assert values["repro_recovery_failovers_total"] == 1.0
        assert values["repro_recovery_restarts_total"] == 0.0
        for metric in expected_names:
            assert f"# HELP {metric} " in text
            assert f"# TYPE {metric} counter" in text

    def test_recovery_omitted_without_mapping(self):
        text = render_prometheus(empty_snapshot())
        assert "repro_recovery_" not in text


async def http_request(host, port, path, method="GET"):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii")
    )
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=WAIT)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("utf-8").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8")


class TestOpsServer:
    def setup_gateway(self, collector):
        factory, _streams, until, tick = shelf_case(duration=4.0)
        session = factory().open_session(
            until=until, tick=tick, telemetry=collector
        )
        return IngestGateway(session, slack=0.0, telemetry=collector)

    def test_endpoints(self):
        async def scenario():
            collector = InMemoryCollector()
            gateway = self.setup_gateway(collector)
            ops = OpsServer(gateway, telemetry=collector)
            host, port = await ops.start()
            results = {}
            results["healthz"] = await http_request(host, port, "/healthz")
            results["readyz"] = await http_request(host, port, "/readyz")
            results["metrics"] = await http_request(host, port, "/metrics")
            results["snapshot"] = await http_request(host, port, "/snapshot")
            results["missing"] = await http_request(host, port, "/nope")
            results["post"] = await http_request(
                host, port, "/metrics", method="POST"
            )
            await ops.close()
            await ops.close()  # idempotent
            return results

        results = asyncio.run(scenario())
        status, headers, body = results["healthz"]
        assert (status, body) == (200, "ok\n")
        assert int(headers["content-length"]) == len(b"ok\n")

        # Not started, nothing connected: not ready, reasons say why.
        status, _headers, body = results["readyz"]
        assert status == 503
        verdict = json.loads(body)
        assert verdict["ready"] is False
        assert any("not started" in r for r in verdict["reasons"])
        assert any("connected" in r for r in verdict["reasons"])

        status, headers, body = results["metrics"]
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        parse_exposition(body)

        status, headers, body = results["snapshot"]
        assert status == 200
        assert headers["content-type"] == "application/json"
        document = json.loads(body)
        assert set(document) == {"telemetry", "gateway", "readiness"}
        assert document["gateway"]["policy"] == "block"

        assert results["missing"][0] == 404
        assert results["post"][0] == 405

    def test_double_start_rejected(self):
        async def scenario():
            ops = OpsServer(self.setup_gateway(None))
            await ops.start()
            try:
                with pytest.raises(NetError):
                    await ops.start()
            finally:
                await ops.close()

        asyncio.run(scenario())

    def test_null_collector_serves_empty_metrics(self):
        async def scenario():
            ops = OpsServer(self.setup_gateway(None))  # no-op default
            host, port = await ops.start()
            result = await http_request(host, port, "/metrics")
            await ops.close()
            return result

        status, _headers, body = asyncio.run(scenario())
        assert status == 200
        assert parse_exposition(body) == []


class TestSpanCorrelationLoopback:
    def run_loopback(self):
        factory, streams, until, tick = shelf_case(duration=8.0)
        collector = InMemoryCollector()
        run, gateway, report = asyncio.run(
            loopback(
                factory, streams, until, tick,
                slack=0.0, telemetry=collector,
                feeder_kwargs={"telemetry": collector},
            )
        )
        return run, gateway, report, collector.snapshot()

    def test_phase_durations_sum_exactly_to_e2e(self):
        """The tentpole invariant: phases are contiguous and share
        boundary stamps, so queue + reorder + session + sweep == e2e
        exactly — integer nanoseconds, no accounting slack needed."""
        run, _gateway, report, snapshot = self.run_loopback()
        assert run.output  # non-vacuous
        spans = snapshot["spans"]
        for phase in SPAN_PHASES:
            assert f"ingest.{phase}" in spans
        total_sent = sum(report["sent"].values())
        assert spans["ingest.e2e"]["count"] == total_sent
        phase_total = sum(
            spans[f"ingest.{phase}"]["total_ns"] for phase in SPAN_PHASES
        )
        assert phase_total == spans["ingest.e2e"]["total_ns"]
        for record in snapshot["span_log"]:
            assert record["kind"] == "span"
            assert (
                record["queue_ns"] + record["reorder_ns"]
                + record["session_ns"] + record["sweep_ns"]
            ) == record["e2e_ns"]

    def test_span_log_correlates_every_ingested_tuple(self):
        _run, _gateway, report, snapshot = self.run_loopback()
        log = snapshot["span_log"]
        assert len(log) == sum(report["sent"].values())
        ids = [record["ingest_id"] for record in log]
        assert len(set(ids)) == len(ids)  # correlation ids are unique
        assert {record["source"] for record in log} == set(report["sent"])

    def test_metrics_match_queue_accounting_exactly(self):
        _run, gateway, _report, snapshot = self.run_loopback()
        samples = parse_exposition(render_prometheus(snapshot))
        counters = {
            labels["key"]: value
            for name, labels, value in samples
            if name == "repro_counter_total"
        }
        for name, stats in gateway.stats()["sources"].items():
            assert stats["offered"] == (
                stats["delivered"] + stats["dropped_overload"]
            )
            assert counters[f"gateway.{name}.offered"] == stats["offered"]
            assert counters[f"gateway.{name}.delivered"] == (
                stats["delivered"]
            )
            assert counters.get(f"gateway.{name}.dropped", 0) == (
                stats["dropped_overload"]
            )

    def test_feeder_telemetry_counters_mirror_report(self):
        _run, _gateway, report, snapshot = self.run_loopback()
        counters = snapshot["counters"]
        for name, sent in report["sent"].items():
            assert counters.get(f"feeder.{name}.sent", 0) == sent
        assert counters.get("feeder.credit_frames", 0) == (
            report["credit_frames"]
        )
        assert counters.get("feeder.reconnects", 0) == report["reconnects"]
        assert counters.get("feeder.blocked_waits", 0) == (
            report["blocked_waits"]
        )


class TestServeScenarioOps:
    """serve_scenario --ops-port wiring, polled while a feed runs."""

    def test_ops_endpoint_live_during_serve(self):
        async def scenario():
            collector = InMemoryCollector()
            ops_addr = {}
            gw_addr = {}
            serve = asyncio.ensure_future(
                serve_scenario(
                    "shelf",
                    port=0,
                    duration=6.0,
                    telemetry=collector,
                    ready=lambda h, p: gw_addr.update(host=h, port=p),
                    ops_port=0,
                    ops_ready=lambda h, p: ops_addr.update(host=h, port=p),
                )
            )
            while not gw_addr or not ops_addr:
                await asyncio.sleep(0)
            # Before any feeder connects: alive but not ready.
            status, _h, _b = await http_request(
                ops_addr["host"], ops_addr["port"], "/healthz"
            )
            assert status == 200
            status, _h, body = await http_request(
                ops_addr["host"], ops_addr["port"], "/readyz"
            )
            assert status == 503
            await feed_scenario(
                "shelf",
                gw_addr["host"],
                gw_addr["port"],
                duration=6.0,
                telemetry=collector,
            )
            summary = await asyncio.wait_for(serve, timeout=WAIT)
            return summary

        summary = asyncio.run(scenario())
        assert summary["ops_address"] is not None
        assert summary["output_tuples"] > 0

    def test_readyz_turns_ready_once_sources_connect(self):
        async def scenario():
            collector = InMemoryCollector()
            factory, streams, until, tick = shelf_case(duration=4.0)
            session = factory().open_session(
                until=until, tick=tick, telemetry=collector
            )
            gateway = IngestGateway(session, slack=0.0, telemetry=collector)
            ops = OpsServer(gateway, telemetry=collector)
            ops_host, ops_port = await ops.start()
            host, port = await gateway.start()

            from repro.net.feeder import ReplayFeeder

            feeder = ReplayFeeder(host, port, streams)
            await asyncio.wait_for(feeder.run(), timeout=WAIT)
            status, _h, body = await http_request(
                ops_host, ops_port, "/readyz"
            )
            await asyncio.wait_for(
                gateway.run_until_drained(), timeout=WAIT
            )
            await gateway.close()
            await ops.close()
            return status, json.loads(body)

        status, verdict = asyncio.run(scenario())
        assert status == 200
        assert verdict == {"ready": True, "reasons": []}


class TestFormatTop:
    def document(self):
        snapshot = synthetic_snapshot()
        gateway_stats = {
            "policy": "block",
            "queue_bound": 64,
            "slack": 0.0,
            "sources": {
                "s0": {
                    "offered": 16, "delivered": 16, "dropped_overload": 0,
                    "blocked": 0, "depth": 0, "max_depth": 4,
                    "dropped_late": 0, "released": 16,
                    "final": True, "evicted": False,
                },
            },
        }
        readiness = {"ready": True, "reasons": []}
        return snapshot_document(snapshot, gateway_stats, readiness)

    def test_snapshot_document_summarises_logs(self):
        snapshot = synthetic_snapshot()
        snapshot["events"].append({"seq": 0, "kind": "x"})
        document = snapshot_document(snapshot, None, None)
        telemetry = document["telemetry"]
        assert telemetry["events_total"] == 1
        assert telemetry["span_log_total"] == 0
        assert "events" not in telemetry and "span_log" not in telemetry

    def test_renders_operator_span_and_source_tables(self):
        frame = format_top(self.document())
        assert "status: ready" in frame
        assert "point:s0" in frame
        assert "ingest.e2e" in frame
        assert "s0" in frame
        # overflow-bucket percentile renders as inf, not a number
        assert "inf" in frame

    def test_rates_from_consecutive_documents(self):
        previous = self.document()
        current = self.document()
        current["telemetry"]["operators"]["point:s0"]["tuples_in"] += 20
        frame = format_top(current, previous, interval=2.0)
        assert re.search(r"point:s0\s+10\b", frame)

    def test_not_ready_status_lists_reasons(self):
        document = self.document()
        document["readiness"] = {
            "ready": False, "reasons": ["gateway not started"],
        }
        frame = format_top(document)
        assert "not ready" in frame
        assert "gateway not started" in frame

    def test_cluster_latency_columns_and_recovery_row(self):
        """The worker table grows e2e percentile columns fed by the
        ``<worker>:cluster.e2e`` span family, and the router's
        recovery counters render as their own row."""
        collector = InMemoryCollector()
        collector.record_span("w0:cluster.e2e", 5_000)
        document = self.document()
        document["telemetry"]["spans"] = collector.snapshot()["spans"]
        document["gateway"].update(
            epoch=0,
            data_frames=7,
            shard_key="tag_id",
            workers={
                "w0": {"address": "127.0.0.1:9", "sources": 1, "acked": 0},
                "w1": {"address": "127.0.0.1:8", "sources": 1, "acked": 0},
            },
            recovery={"resumes": 2, "failovers": 0},
        )
        frame = format_top(document)
        header = next(
            line for line in frame.splitlines()
            if line.startswith("worker")
        )
        assert "e2e_p50_us" in header and "e2e_p95_us" in header
        w0 = next(
            line for line in frame.splitlines() if line.startswith("w0 ")
        )
        w1 = next(
            line for line in frame.splitlines() if line.startswith("w1 ")
        )
        assert " 5 " in w0  # 5_000ns bucket edge -> 5us percentile
        assert " - " in w1  # no spans recorded for w1 yet
        assert "recovery: failovers=0  resumes=2" in frame
