"""Tests for observability surfaces: EXPLAIN, describe(), flow stats."""

import pytest

from repro.cql import compile_query
from repro.streams.fjord import Fjord
from repro.streams.operators import FilterOp, UnionOp
from repro.streams.tuples import StreamTuple


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields or {"v": ts}, stream)


class TestExplain:
    def test_stateless_plan(self):
        plan = compile_query("SELECT * FROM s WHERE v > 1").explain()
        assert "plan for: SELECT * FROM s WHERE v > 1" in plan
        assert "FilterOp" in plan
        assert "<- stream 's'" in plan
        assert "-> output" in plan

    def test_aggregation_plan_shows_groupby(self):
        plan = compile_query(
            "SELECT g, count(*) FROM s [Range By '5 sec'] GROUP BY g"
        ).explain()
        assert "WindowedGroupByOp" in plan

    def test_join_plan_shows_join_operator(self):
        plan = compile_query(
            "SELECT l.v AS x FROM a l [Range By 'NOW'], "
            "b r [Range By 'NOW'] WHERE l.k = r.k"
        ).explain()
        assert "_InstantJoinOp" in plan
        assert "'a'" in plan and "'b'" in plan

    def test_outer_combine_plan(self):
        plan = compile_query(
            "SELECT 'x' FROM (SELECT 1 AS c FROM a [Range By 'NOW']) p, "
            "(SELECT 1 AS c FROM b [Range By 'NOW']) q, "
            "WHERE coalesce(p.c, 0) + coalesce(q.c, 0) >= 1"
        ).explain()
        assert "_OuterCombineOp" in plan

    def test_every_node_listed_once(self):
        query = compile_query("SELECT * FROM s WHERE v > 1")
        plan = query.explain()
        node_lines = [l for l in plan.splitlines() if l.startswith("  [")]
        assert len(node_lines) == len(query._nodes)


class TestFjordStats:
    def build(self):
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, v=1), tup(1.0, v=5)])
        fjord.add_operator("f", FilterOp(lambda t: t["v"] > 2), inputs=["src"])
        sink = fjord.add_sink("out", inputs=["f"])
        return fjord, sink

    def test_stats_zero_before_run(self):
        fjord, _sink = self.build()
        assert fjord.stats() == {"f": (0, 0), "out": (0, 0)}

    def test_stats_count_flow(self):
        fjord, sink = self.build()
        fjord.run([0.0, 1.0])
        stats = fjord.stats()
        assert stats["f"] == (2, 1)  # filter dropped one tuple
        assert stats["out"] == (1, 0)  # sink consumes, emits nothing
        assert len(sink.results) == 1

    def test_describe_lists_wiring_and_counts(self):
        fjord, _sink = self.build()
        fjord.run([0.0, 1.0])
        text = fjord.describe()
        assert "f [FilterOp] <- source:src" in text
        assert "out [SinkOp] <- f" in text
        assert "(2 in / 1 out)" in text

    def test_describe_union_multiple_upstreams(self):
        fjord = Fjord()
        fjord.add_source("a", [tup(0.0, "a")])
        fjord.add_source("b", [tup(0.0, "b")])
        fjord.add_operator("u", UnionOp(), inputs=["a", "b"])
        fjord.add_sink("out", inputs=["u"])
        text = fjord.describe()
        assert "u [UnionOp] <- source:a, source:b" in text

    def test_point_stage_volume_reduction_visible(self, small_shelf):
        """The §3.2 'early elimination' claim, read off the flow stats."""
        from repro.pipelines.rfid_shelf import build_shelf_processor

        processor = build_shelf_processor(small_shelf, "smooth")
        run = processor.run(
            until=small_shelf.duration,
            tick=small_shelf.poll_period,
            sources=small_shelf.recorded_streams(),
            taps=("raw", "smooth"),
        )
        raw_volume = len(run.tap("rfid", "raw"))
        smooth_volume = len(run.tap("rfid", "smooth"))
        assert raw_volume > 0 and smooth_volume > 0


class TestFlowCountersMultiOperatorDag:
    """Exact tuples_in/tuples_out accounting across a branching DAG with
    a two-port window join — the counters the sharded engine sums."""

    def build(self):
        from repro.streams.operators import MapOp, WindowJoinOp
        from repro.streams.windows import WindowSpec

        fjord = Fjord()
        fjord.add_source(
            "left", [tup(0.0, v=1), tup(1.0, v=2), tup(2.0, v=3)]
        )
        fjord.add_source("right", [tup(0.0, w=10), tup(1.0, w=20)])
        fjord.add_operator(
            "f_left", FilterOp(lambda t: t["v"] > 1), inputs=["left"]
        )
        fjord.add_operator(
            "f_right", FilterOp(lambda t: True), inputs=["right"]
        )
        fjord.add_operator(
            "join",
            WindowJoinOp(
                WindowSpec.range_by(10.0),
                WindowSpec.range_by(10.0),
                predicate=lambda lhs, rhs: True,
            ),
            inputs=[("f_left", 0), ("f_right", 1)],
        )
        fjord.add_operator(
            "annotate",
            MapOp(lambda t: t.derive(values={"tagged": True})),
            inputs=["join"],
        )
        sink = fjord.add_sink("out", inputs=["annotate"])
        return fjord, sink

    def test_exact_counts_per_node(self):
        fjord, sink = self.build()
        fjord.run([0.0, 1.0, 2.0])
        stats = fjord.stats()
        # Filters: per-branch pass-through accounting.
        assert stats["f_left"] == (3, 2)  # v=1 dropped
        assert stats["f_right"] == (2, 2)
        # Join consumes both ports; emits the windows' cross product at
        # each punctuation: |L|*|R| = 0*1 + 1*2 + 2*2 = 6.
        assert stats["join"] == (4, 6)
        assert stats["annotate"] == (6, 6)
        assert stats["out"] == (6, 0)
        assert len(sink.results) == 6

    def test_counts_deterministic_across_builds(self):
        """Batched delivery accounts identically on every fresh build."""
        fjord, _sink = self.build()
        fjord.run([0.0, 1.0, 2.0])
        reference = fjord.stats()
        rebuilt, _ = self.build()
        rebuilt.run([0.0, 1.0, 2.0])
        assert rebuilt.stats() == reference

    def test_sharded_run_sums_counters(self):
        """ESPRun.stats equals the sequential per-node counters."""
        from repro.pipelines.rfid_shelf import build_shelf_processor
        from repro.scenarios.shelf import ShelfScenario

        scenario = ShelfScenario(duration=20.0, seed=5)
        sources = scenario.recorded_streams()

        def run(**kwargs):
            processor = build_shelf_processor(scenario, "smooth+arbitrate")
            return processor.run(
                until=scenario.duration,
                tick=scenario.poll_period,
                sources=sources,
                **kwargs,
            )

        sequential = run()
        sharded = run(shards=4, backend="serial", shard_key="tag_id")
        assert sequential.stats
        assert sharded.stats == sequential.stats
        total_in = sum(i for i, _o in sequential.stats.values())
        assert total_in > 0
