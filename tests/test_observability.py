"""Tests for observability surfaces: EXPLAIN, describe(), flow stats."""


from repro.cql import compile_query
from repro.streams.fjord import Fjord
from repro.streams.operators import FilterOp, UnionOp
from repro.streams.tuples import StreamTuple


def tup(ts, stream="s", **fields):
    return StreamTuple(ts, fields or {"v": ts}, stream)


class TestExplain:
    def test_stateless_plan(self):
        plan = compile_query("SELECT * FROM s WHERE v > 1").explain()
        assert "plan for: SELECT * FROM s WHERE v > 1" in plan
        assert "FilterOp" in plan
        assert "<- stream 's'" in plan
        assert "-> output" in plan

    def test_aggregation_plan_shows_groupby(self):
        plan = compile_query(
            "SELECT g, count(*) FROM s [Range By '5 sec'] GROUP BY g"
        ).explain()
        assert "WindowedGroupByOp" in plan

    def test_join_plan_shows_join_operator(self):
        plan = compile_query(
            "SELECT l.v AS x FROM a l [Range By 'NOW'], "
            "b r [Range By 'NOW'] WHERE l.k = r.k"
        ).explain()
        assert "_InstantJoinOp" in plan
        assert "'a'" in plan and "'b'" in plan

    def test_outer_combine_plan(self):
        plan = compile_query(
            "SELECT 'x' FROM (SELECT 1 AS c FROM a [Range By 'NOW']) p, "
            "(SELECT 1 AS c FROM b [Range By 'NOW']) q, "
            "WHERE coalesce(p.c, 0) + coalesce(q.c, 0) >= 1"
        ).explain()
        assert "_OuterCombineOp" in plan

    def test_every_node_listed_once(self):
        query = compile_query("SELECT * FROM s WHERE v > 1")
        plan = query.explain()
        node_lines = [
            line for line in plan.splitlines() if line.startswith("  [")
        ]
        assert len(node_lines) == len(query._nodes)


class TestFjordStats:
    def build(self):
        fjord = Fjord()
        fjord.add_source("src", [tup(0.0, v=1), tup(1.0, v=5)])
        fjord.add_operator("f", FilterOp(lambda t: t["v"] > 2), inputs=["src"])
        sink = fjord.add_sink("out", inputs=["f"])
        return fjord, sink

    def test_stats_zero_before_run(self):
        fjord, _sink = self.build()
        assert fjord.stats() == {"f": (0, 0), "out": (0, 0)}

    def test_stats_count_flow(self):
        fjord, sink = self.build()
        fjord.run([0.0, 1.0])
        stats = fjord.stats()
        assert stats["f"] == (2, 1)  # filter dropped one tuple
        assert stats["out"] == (1, 0)  # sink consumes, emits nothing
        assert len(sink.results) == 1

    def test_describe_lists_wiring_and_counts(self):
        fjord, _sink = self.build()
        fjord.run([0.0, 1.0])
        text = fjord.describe()
        assert "f [FilterOp] <- source:src" in text
        assert "out [SinkOp] <- f" in text
        assert "(2 in / 1 out)" in text

    def test_describe_union_multiple_upstreams(self):
        fjord = Fjord()
        fjord.add_source("a", [tup(0.0, "a")])
        fjord.add_source("b", [tup(0.0, "b")])
        fjord.add_operator("u", UnionOp(), inputs=["a", "b"])
        fjord.add_sink("out", inputs=["u"])
        text = fjord.describe()
        assert "u [UnionOp] <- source:a, source:b" in text

    def test_point_stage_volume_reduction_visible(self, small_shelf):
        """The §3.2 'early elimination' claim, read off the flow stats."""
        from repro.pipelines.rfid_shelf import build_shelf_processor

        processor = build_shelf_processor(small_shelf, "smooth")
        run = processor.run(
            until=small_shelf.duration,
            tick=small_shelf.poll_period,
            sources=small_shelf.recorded_streams(),
            taps=("raw", "smooth"),
        )
        raw_volume = len(run.tap("rfid", "raw"))
        smooth_volume = len(run.tap("rfid", "smooth"))
        assert raw_volume > 0 and smooth_volume > 0


class TestFlowCountersMultiOperatorDag:
    """Exact tuples_in/tuples_out accounting across a branching DAG with
    a two-port window join — the counters the sharded engine sums."""

    def build(self):
        from repro.streams.operators import MapOp, WindowJoinOp
        from repro.streams.windows import WindowSpec

        fjord = Fjord()
        fjord.add_source(
            "left", [tup(0.0, v=1), tup(1.0, v=2), tup(2.0, v=3)]
        )
        fjord.add_source("right", [tup(0.0, w=10), tup(1.0, w=20)])
        fjord.add_operator(
            "f_left", FilterOp(lambda t: t["v"] > 1), inputs=["left"]
        )
        fjord.add_operator(
            "f_right", FilterOp(lambda t: True), inputs=["right"]
        )
        fjord.add_operator(
            "join",
            WindowJoinOp(
                WindowSpec.range_by(10.0),
                WindowSpec.range_by(10.0),
                predicate=lambda lhs, rhs: True,
            ),
            inputs=[("f_left", 0), ("f_right", 1)],
        )
        fjord.add_operator(
            "annotate",
            MapOp(lambda t: t.derive(values={"tagged": True})),
            inputs=["join"],
        )
        sink = fjord.add_sink("out", inputs=["annotate"])
        return fjord, sink

    def test_exact_counts_per_node(self):
        fjord, sink = self.build()
        fjord.run([0.0, 1.0, 2.0])
        stats = fjord.stats()
        # Filters: per-branch pass-through accounting.
        assert stats["f_left"] == (3, 2)  # v=1 dropped
        assert stats["f_right"] == (2, 2)
        # Join consumes both ports; emits the windows' cross product at
        # each punctuation: |L|*|R| = 0*1 + 1*2 + 2*2 = 6.
        assert stats["join"] == (4, 6)
        assert stats["annotate"] == (6, 6)
        assert stats["out"] == (6, 0)
        assert len(sink.results) == 6

    def test_counts_deterministic_across_builds(self):
        """Batched delivery accounts identically on every fresh build."""
        fjord, _sink = self.build()
        fjord.run([0.0, 1.0, 2.0])
        reference = fjord.stats()
        rebuilt, _ = self.build()
        rebuilt.run([0.0, 1.0, 2.0])
        assert rebuilt.stats() == reference

    def test_sharded_run_sums_counters(self):
        """ESPRun.stats equals the sequential per-node counters."""
        from repro.pipelines.rfid_shelf import build_shelf_processor
        from repro.scenarios.shelf import ShelfScenario

        scenario = ShelfScenario(duration=20.0, seed=5)
        sources = scenario.recorded_streams()

        def run(**kwargs):
            processor = build_shelf_processor(scenario, "smooth+arbitrate")
            return processor.run(
                until=scenario.duration,
                tick=scenario.poll_period,
                sources=sources,
                **kwargs,
            )

        sequential = run()
        sharded = run(shards=4, backend="serial", shard_key="tag_id")
        assert sequential.stats
        assert sharded.stats == sequential.stats
        total_in = sum(i for i, _o in sequential.stats.values())
        assert total_in > 0


class _TupleAtATime:
    """Shim hiding an operator's ``on_batch`` fast path.

    Forwards ``on_tuple``/``on_time`` but inherits the base protocol's
    per-tuple ``on_batch`` loop, so a run through the shim is the
    tuple-at-a-time reference semantics for the wrapped operator.
    """

    def __init__(self, inner):
        from repro.streams.operators import Operator

        self._inner = inner
        self._fallback = Operator.on_batch

    def on_tuple(self, item, port=0):
        return self._inner.on_tuple(item, port)

    def on_batch(self, items, port=0):
        return self._fallback(self, items, port)

    def on_time(self, timestamp):
        return self._inner.on_time(timestamp)


class TestBatchFastPathAccounting:
    """Differential proof that ``on_batch`` fast paths emit exactly the
    concatenation of per-tuple outputs — same results, same flow
    counters — which is what keeps telemetry honest under batching."""

    def _sources(self):
        import random

        rng = random.Random(13)
        streams = {}
        for name in ("a", "b"):
            now = 0.0
            items = []
            for i in range(150):
                if rng.random() > 0.4:
                    now += rng.choice((0.25, 0.5, 1.0))
                items.append(
                    StreamTuple(now, {"v": rng.randrange(0, 40)}, name)
                )
            streams[name] = items
        return streams

    def _build(self, wrap):
        from repro.streams.operators import MapOp, StaticJoinOp

        sources = self._sources()
        fjord = Fjord()
        for name, items in sources.items():
            fjord.add_source(name, items)
        ops = {
            "f": FilterOp(lambda t: t["v"] % 3 != 0),
            "m": MapOp(lambda t: t.derive(values={"d": t["v"] * 2})),
            "j": StaticJoinOp(
                [{"v": v, "label": f"L{v % 5}"} for v in range(40)],
                on=lambda item, row: item["v"] == row["v"],
            ),
            "u": UnionOp(output_stream="merged"),
        }
        if wrap:
            ops = {name: _TupleAtATime(op) for name, op in ops.items()}
        fjord.add_operator("f", ops["f"], inputs=["a", "b"])
        fjord.add_operator("m", ops["m"], inputs=["f"])
        fjord.add_operator("j", ops["j"], inputs=["m"])
        fjord.add_operator("u", ops["u"], inputs=["j"])
        sink = fjord.add_sink("out", inputs=["u"])
        return fjord, sink

    def test_batched_equals_tuple_at_a_time(self):
        ticks = [0.5 * i for i in range(80)]
        fast_fjord, fast_sink = self._build(wrap=False)
        fast_fjord.run(ticks)
        slow_fjord, slow_sink = self._build(wrap=True)
        slow_fjord.run(ticks)
        assert fast_sink.results == slow_sink.results
        assert fast_fjord.stats() == slow_fjord.stats()

    def test_batched_telemetry_totals_match(self):
        from repro.streams.telemetry import InMemoryCollector

        ticks = [0.5 * i for i in range(80)]
        totals = []
        for wrap in (False, True):
            collector = InMemoryCollector()
            fjord, _sink = self._build(wrap=wrap)
            fjord.run(ticks, telemetry=collector)
            snapshot = collector.snapshot()
            totals.append({
                name: (entry["tuples_in"], entry["tuples_out"])
                for name, entry in snapshot["operators"].items()
            })
        assert totals[0] == totals[1]
