"""Unit tests for the RFID reader simulator."""

import pytest

from repro.errors import ReceptorError
from repro.receptors.rfid import DetectionField, RFIDReader, TagPlacement


def fixed_tag(tag_id="t0", distance=3.0):
    return TagPlacement(tag_id, lambda reader, now: distance)


class TestDetectionField:
    def test_monotone_default(self):
        field = DetectionField.default()
        assert field(0.0) >= field(3.0) >= field(6.0) >= field(9.0)

    def test_interpolation_between_anchors(self):
        field = DetectionField([(0.0, 1.0), (10.0, 0.0)])
        assert field(5.0) == pytest.approx(0.5)

    def test_clamped_below_first_anchor(self):
        field = DetectionField([(3.0, 0.8), (10.0, 0.0)])
        assert field(1.0) == 0.8

    def test_zero_beyond_last_anchor(self):
        field = DetectionField([(0.0, 1.0), (10.0, 0.1)])
        assert field(50.0) == 0.0

    def test_requires_two_anchors(self):
        with pytest.raises(ReceptorError):
            DetectionField([(0.0, 1.0)])

    def test_unsorted_anchors_rejected(self):
        with pytest.raises(ReceptorError):
            DetectionField([(5.0, 0.5), (0.0, 1.0)])

    def test_probability_bounds_validated(self):
        with pytest.raises(ReceptorError):
            DetectionField([(0.0, 1.5), (5.0, 0.0)])


class TestRFIDReader:
    def make_reader(self, tags, **kwargs):
        defaults = dict(shelf="shelf0", rng=42)
        defaults.update(kwargs)
        return RFIDReader("reader0", tags=tags, **defaults)

    def test_reading_fields(self):
        reader = self.make_reader(
            [fixed_tag()], field=DetectionField([(0.0, 1.0), (99.0, 1.0)])
        )
        readings = reader.poll(1.0)
        assert len(readings) == 1
        reading = readings[0]
        assert reading["tag_id"] == "t0"
        assert reading["shelf"] == "shelf0"
        assert reading["reader_id"] == "reader0"
        assert reading.timestamp == 1.0
        assert reading.stream == "reader0"

    def test_certain_detection_at_probability_one(self):
        reader = self.make_reader(
            [fixed_tag(str(i)) for i in range(10)],
            field=DetectionField([(0.0, 1.0), (99.0, 1.0)]),
        )
        assert len(reader.poll(0.0)) == 10

    def test_no_detection_beyond_range(self):
        reader = self.make_reader(
            [fixed_tag(distance=200.0)],
            field=DetectionField.default(),
        )
        assert all(not reader.poll(t) for t in range(100))

    def test_detection_rate_matches_probability(self):
        probability = 0.6
        reader = self.make_reader(
            [fixed_tag()],
            field=DetectionField([(0.0, probability), (99.0, probability)]),
        )
        hits = sum(len(reader.poll(t)) for t in range(4000))
        assert hits / 4000 == pytest.approx(probability, abs=0.03)

    def test_distance_function_receives_reader_and_time(self):
        seen = []

        def distance(reader_id, now):
            seen.append((reader_id, now))
            return 3.0

        reader = self.make_reader([TagPlacement("t", distance)])
        reader.poll(7.0)
        assert seen == [("reader0", 7.0)]

    def test_gain_scales_probability(self):
        field = DetectionField([(0.0, 0.5), (99.0, 0.5)])
        strong = self.make_reader([fixed_tag()], field=field, gain=2.0, rng=1)
        assert strong.detection_probability(3.0) == 1.0
        weak = self.make_reader([fixed_tag()], field=field, gain=0.5, rng=2)
        assert weak.detection_probability(3.0) == 0.25

    def test_ghost_reads_marked_and_rate_limited(self):
        reader = self.make_reader(
            [], ghost_rate=0.5, field=DetectionField.default()
        )
        readings = [r for t in range(2000) for r in reader.poll(float(t))]
        assert readings, "ghost reads expected"
        assert all(r["tag_id"].startswith("ghost_") for r in readings)
        assert len(readings) / 2000 == pytest.approx(0.5, abs=0.05)
        # ghost ids unique — they never accidentally smooth into presence
        ids = [r["tag_id"] for r in readings]
        assert len(set(ids)) == len(ids)

    def test_invalid_parameters(self):
        with pytest.raises(ReceptorError):
            self.make_reader([], gain=0.0)
        with pytest.raises(ReceptorError):
            self.make_reader([], ghost_rate=1.5)
        with pytest.raises(ReceptorError):
            RFIDReader("r", shelf=0, tags=[], sample_period=0.0)

    def test_stream_generates_all_ticks(self):
        reader = self.make_reader(
            [fixed_tag()],
            field=DetectionField([(0.0, 1.0), (99.0, 1.0)]),
            sample_period=0.5,
        )
        readings = list(reader.stream(until=2.0))
        assert [r.timestamp for r in readings] == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_deterministic_with_same_seed(self):
        def run(seed):
            reader = self.make_reader([fixed_tag()], rng=seed)
            return [len(reader.poll(t)) for t in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8) or True  # different seeds may coincide
