"""The Point stage's value: early elimination of junk readings.

The paper notes the RFID reader's built-in checksum filtering plays the
Point role in the shelf deployment (§4) and that Point "may also be used
to improve performance through early elimination of data" (§3.2). These
tests quantify both: accuracy with/without the ghost filter under a
noisy reader, and the data-volume reduction Point provides.
"""

import pytest

from repro.core.operators import max_count_arbitrate, presence_smoother
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.experiments.rfid import shelf_error
from repro.pipelines.rfid_shelf import count_series, query1_counts
from repro.scenarios import ShelfScenario


@pytest.fixture(scope="module")
def ghosty_shelf():
    """A shelf scenario with an unusually ghost-prone reader pair."""
    scenario = ShelfScenario(duration=120.0, ghost_rate=0.05, seed=11)
    scenario.recorded_streams()
    return scenario


def _error_without_point(scenario):
    pipeline = ESPPipeline(
        "rfid",
        temporal_granule=scenario.temporal_granule,
        sequence=[
            presence_smoother(),
            max_count_arbitrate(
                tie_break="weakest", strength=scenario.strength
            ),
        ],
    )
    processor = ESPProcessor(scenario.registry).add_pipeline(pipeline)
    run = processor.run(
        until=scenario.duration,
        tick=scenario.poll_period,
        sources=scenario.recorded_streams(),
    )
    counts = count_series(
        run.output,
        scenario.ticks(),
        [granule.name for granule in scenario.granules],
        scenario.poll_period,
    )
    return shelf_error(counts, scenario.truth_series())


class TestGhostFilterValue:
    def test_point_stage_removes_ghost_error(self, ghosty_shelf):
        with_point = shelf_error(
            query1_counts(ghosty_shelf, "smooth+arbitrate"),
            ghosty_shelf.truth_series(),
        )
        without_point = _error_without_point(ghosty_shelf)
        # Ghost tags each linger a full smoothing window; dropping them
        # at Point more than halves the error.
        assert with_point < without_point / 2

    def test_ghosts_present_in_raw_data(self, ghosty_shelf):
        recorded = ghosty_shelf.recorded_streams()
        ghost_reads = sum(
            1
            for readings in recorded.values()
            for reading in readings
            if str(reading["tag_id"]).startswith("ghost_")
        )
        assert ghost_reads > 20

    def test_early_elimination_reduces_volume(self, ghosty_shelf):
        """Point shrinks the stream before the stateful stages see it —
        the §3.2 performance argument."""
        from repro.core.operators.point_ops import ghost_filter
        from repro.core.stages import StageContext, StageKind

        op = ghost_filter().make(StageContext(StageKind.POINT))
        recorded = ghosty_shelf.recorded_streams()
        total = kept = 0
        for readings in recorded.values():
            for reading in readings:
                total += 1
                kept += len(op.on_tuple(reading))
        assert kept < total
        assert total - kept > 20
