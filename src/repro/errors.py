"""Exception hierarchy shared across the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A tuple or stream did not match the schema an operator expected."""


class WindowError(ReproError):
    """Invalid window specification or window-state misuse."""


class AggregateError(ReproError):
    """Invalid aggregate usage (unknown name, empty-state result, ...)."""


class OperatorError(ReproError):
    """A stream operator was configured or driven incorrectly."""


class PlanError(ReproError):
    """A query plan could not be constructed or executed."""


class CQLSyntaxError(ReproError):
    """The CQL text could not be tokenized or parsed.

    Attributes:
        position: Character offset into the query text where the problem
            was detected, or ``None`` when unknown.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ReceptorError(ReproError):
    """A receptor simulator was configured or driven incorrectly."""


class PipelineError(ReproError):
    """An ESP pipeline was assembled or executed incorrectly."""


class NetError(ReproError):
    """The ingestion gateway or replay feeder failed."""


class ProtocolError(NetError):
    """A wire frame was malformed or violated the handshake contract."""


class FrameTruncated(ProtocolError):
    """The connection closed (or reset) in the middle of a frame.

    A subclass of :class:`ProtocolError` so existing handlers keep
    working, but distinct so recovery code can tell an abrupt mid-frame
    disconnect (retryable: reconnect and replay) from a malformed frame
    (fatal: the peer is speaking garbage).
    """
