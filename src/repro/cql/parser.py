"""Recursive-descent parser for the CQL subset.

Produces the AST defined in :mod:`repro.cql.ast`. The grammar covers every
query printed in the paper (Queries 1–6) plus the natural generalizations
(UNION chains, row windows, NOT/parenthesized boolean logic).

Deliberate leniencies, documented because the paper's query listings
contain typos we want to accept verbatim:

- trailing commas in FROM-clause source lists (paper Query 6);
- a missing comma between a windowed stream reference and a following
  parenthesized subquery source (paper Query 5);
- qualifiers that match no FROM binding fall back to unqualified column
  resolution at plan time (paper Query 6 writes ``sensors.noise`` for a
  stream bound as ``sensors_input``).
"""

from __future__ import annotations

from repro.cql import ast
from repro.cql.lexer import Token, tokenize
from repro.errors import CQLSyntaxError
from repro.streams.windows import WindowSpec

#: Comparison operator spellings normalized to canonical forms.
_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    """Token-cursor parser; one instance per parse call."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- cursor helpers --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            self.fail(f"expected {' or '.join(names)}")
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            self.fail(f"expected {op!r}")
        return self.advance()

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def fail(self, message: str) -> None:
        token = self.current
        context = self.text[max(0, token.position - 20) : token.position + 20]
        raise CQLSyntaxError(
            f"{message} at position {token.position} "
            f"(near {context!r}, got {token.kind} {token.value!r})",
            position=token.position,
        )

    # -- grammar ----------------------------------------------------------------

    def parse_query(self) -> ast.Select:
        select = self.parse_select()
        head = select
        tail = select
        while self.current.is_keyword("UNION"):
            self.advance()
            union_all = self.accept_keyword("ALL")
            nxt = self.parse_select()
            tail.union_with = nxt
            tail.union_all = union_all
            tail = nxt
        self.accept_op(";")
        if self.current.kind != "end":
            self.fail("unexpected trailing input")
        return head

    def parse_select(self) -> ast.Select:
        # Prefix relation-to-stream form: ISTREAM (SELECT ...).
        if self.current.is_keyword("ISTREAM", "DSTREAM", "RSTREAM"):
            stream_op = self.advance().value
            self.expect_op("(")
            select = self.parse_select()
            self.expect_op(")")
            select.stream_op = stream_op
            return select
        self.expect_keyword("SELECT")
        stream_op = None
        if self.current.is_keyword("ISTREAM", "DSTREAM", "RSTREAM"):
            stream_op = self.advance().value
        star = False
        items: list[ast.SelectItem] = []
        if self.current.is_op("*"):
            self.advance()
            star = True
        else:
            items.append(self.parse_select_item())
            while self.accept_op(","):
                items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        sources = self.parse_sources()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: list[ast.ColumnRef] = []
        if self.current.is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by.append(self.parse_column_ref())
            while self.accept_op(","):
                group_by.append(self.parse_column_ref())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        return ast.Select(
            items,
            sources,
            star=star,
            where=where,
            group_by=group_by,
            having=having,
            stream_op=stream_op,
        )

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.parse_identifier("alias")
        elif self.current.kind == "name":
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def parse_identifier(self, what: str) -> str:
        if self.current.kind == "name":
            return self.advance().value
        # Allow non-reserved-feeling keywords as identifiers after AS
        # (the paper aliases a column as "avg" via "as avg" — but avg is a
        # plain name for us; keywords like ALL are not valid identifiers).
        self.fail(f"expected {what}")
        raise AssertionError("unreachable")

    def parse_sources(self) -> list["ast.StreamRef | ast.SubquerySource"]:
        sources = [self.parse_source()]
        while True:
            if self.accept_op(","):
                # Tolerate a trailing comma (paper Query 6) — if the next
                # token starts a clause keyword or the end, stop.
                if self.current.is_keyword("WHERE", "GROUP", "HAVING", "UNION") or (
                    self.current.kind == "end"
                ):
                    break
                sources.append(self.parse_source())
                continue
            # Tolerate a missing comma before a parenthesized subquery
            # source (paper Query 5).
            if self.current.is_op("("):
                sources.append(self.parse_source())
                continue
            break
        return sources

    def parse_source(self) -> "ast.StreamRef | ast.SubquerySource":
        if self.current.is_op("("):
            self.advance()
            select = self.parse_select()
            self.expect_op(")")
            alias = None
            if self.accept_keyword("AS"):
                alias = self.parse_identifier("subquery alias")
            elif self.current.kind == "name":
                alias = self.advance().value
            return ast.SubquerySource(select, alias)
        if self.current.kind != "name":
            self.fail("expected stream name or subquery")
        name = self.advance().value
        alias = None
        if self.current.kind == "name":
            alias = self.advance().value
        window = self.parse_window()
        return ast.StreamRef(name, alias=alias, window=window)

    def parse_window(self) -> WindowSpec | None:
        if not self.current.is_op("["):
            return None
        self.advance()
        if self.accept_keyword("RANGE"):
            self.expect_keyword("BY")
            if self.current.kind == "string":
                size = self.advance().value
            elif self.current.kind == "number":
                size = self.advance().value
            else:
                self.fail("expected window size")
                raise AssertionError("unreachable")
            self.expect_op("]")
            return WindowSpec.range_by(size)
        if self.accept_keyword("ROWS"):
            if self.current.kind != "number":
                self.fail("expected row count")
            count = int(self.advance().value)
            self.expect_op("]")
            return WindowSpec.rows(count)
        self.fail("expected Range By or Rows in window")
        raise AssertionError("unreachable")

    def parse_column_ref(self) -> ast.ColumnRef:
        if self.current.kind != "name":
            self.fail("expected column name")
        first = self.advance().value
        if self.accept_op("."):
            if self.current.kind != "name":
                self.fail("expected column name after '.'")
            second = self.advance().value
            return ast.ColumnRef(second, qualifier=first)
        return ast.ColumnRef(first)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.current.is_keyword("OR"):
            self.advance()
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.current.is_keyword("AND"):
            self.advance()
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        # Postfix NOT, as in "a NOT IN (...)" / "a NOT BETWEEN x AND y" /
        # "a NOT LIKE 'p'". (A *prefix* NOT is handled by parse_not.)
        negate = False
        if self.current.is_keyword("NOT") and self.tokens[
            self.index + 1
        ].is_keyword("BETWEEN", "IN", "LIKE"):
            self.advance()
            negate = True
        if self.current.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            test = ast.BinaryOp(
                "AND",
                ast.BinaryOp(">=", left, low),
                ast.BinaryOp("<=", left, high),
            )
            return ast.UnaryOp("NOT", test) if negate else test
        if self.current.is_keyword("IN"):
            self.advance()
            self.expect_op("(")
            if self.current.is_keyword("SELECT"):
                self.fail("IN (subquery) is not in the supported subset")
            choices = [self.parse_additive()]
            while self.accept_op(","):
                choices.append(self.parse_additive())
            self.expect_op(")")
            test: ast.Expr = ast.BinaryOp("=", left, choices[0])
            for choice in choices[1:]:
                test = ast.BinaryOp(
                    "OR", test, ast.BinaryOp("=", left, choice)
                )
            return ast.UnaryOp("NOT", test) if negate else test
        if self.current.is_keyword("LIKE"):
            self.advance()
            if self.current.kind != "string":
                self.fail("LIKE expects a string pattern")
            pattern = self.advance().value
            test = ast.BinaryOp("LIKE", left, ast.Literal(pattern))
            return ast.UnaryOp("NOT", test) if negate else test
        if self.current.kind == "op" and self.current.value in _COMPARISONS:
            op = self.advance().value
            if op == "!=":
                op = "<>"
            if self.current.is_keyword("ALL", "ANY", "SOME"):
                quantifier = self.advance().value
                if quantifier == "SOME":
                    quantifier = "ANY"
                self.expect_op("(")
                subquery = self.parse_select()
                self.expect_op(")")
                return ast.QuantifiedComparison(op, left, quantifier, subquery)
            right = self.parse_additive()
            return ast.BinaryOp(op, left, right)
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            test = ast.BinaryOp("IS NULL", left, ast.Literal(None))
            return ast.UnaryOp("NOT", test) if negated else test
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.current.is_op("+", "-"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.current.is_op("*", "/", "%"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.current.is_op("-"):
            self.advance()
            return ast.UnaryOp("-", self.parse_unary())
        if self.current.is_op("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_case(self) -> ast.Expr:
        """``CASE WHEN cond THEN value ... [ELSE value] END``."""
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        if not whens:
            self.fail("CASE needs at least one WHEN branch")
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseExpr(whens, default)

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.is_keyword("CASE"):
            self.advance()
            return self.parse_case()
        if token.kind == "number":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.kind == "name":
            name = self.advance().value
            if self.current.is_op("("):
                return self.parse_func_call(name)
            if self.accept_op("."):
                if self.current.kind != "name":
                    self.fail("expected column name after '.'")
                column = self.advance().value
                return ast.ColumnRef(column, qualifier=name)
            return ast.ColumnRef(name)
        self.fail("expected expression")
        raise AssertionError("unreachable")

    def parse_func_call(self, name: str) -> ast.FuncCall:
        self.expect_op("(")
        distinct = self.accept_keyword("DISTINCT")
        args: list[ast.Expr] = []
        if self.current.is_op("*"):
            self.advance()
            args.append(ast.Star())
        elif not self.current.is_op(")"):
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")
        return ast.FuncCall(name, args, distinct=distinct)


def parse(text: str) -> ast.Select:
    """Parse CQL text into a :class:`repro.cql.ast.Select` AST.

    Raises:
        CQLSyntaxError: On lexical or grammatical errors, with the source
            position of the problem.
    """
    return _Parser(text).parse_query()
