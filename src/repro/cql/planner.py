"""Query planner: compiles a CQL AST onto :mod:`repro.streams` operators.

The compiled artifact is a :class:`CompiledQuery` — itself a stream
:class:`~repro.streams.operators.Operator` — so a declarative query can be
dropped anywhere an ESP stage or a Fjord node is expected (the paper's
"stages may be implemented by declarative continuous queries", §3.3).

Supported plan shapes, in the order the planner tries them:

1. **Stateless select** — no window aggregation: WHERE filter plus a
   projection evaluated per input tuple (paper Query 4, the Query 6
   subqueries without aggregates).
2. **Windowed aggregation** — one windowed stream, GROUP BY + aggregates,
   optional HAVING, including the correlated ``>= ALL(subquery)`` pattern
   (paper Queries 1, 2, 3, and the Query 6 subqueries with aggregates).
3. **Join** — multiple FROM sources (windowed streams and/or derived
   subqueries) combined at each time instant, then filtered / aggregated
   (paper Query 5).
4. **Outer combine** — the all-derived-sources special case where missing
   sides contribute no fields instead of suppressing output (paper
   Query 6's vote; use ``coalesce`` to default missing votes to 0).
5. **Union** — chains of selects merged into one output stream.

Known, documented restrictions: quantified (ALL/ANY) subqueries must be
correlated self-references of the outer stream following the paper's
Query 3 shape; nested aggregates are rejected; ORDER BY is not part of the
subset (continuous queries have no final order).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.cql import ast
from repro.cql.functions import get_function
from repro.cql.parser import parse
from repro.errors import PlanError
from repro.streams.aggregates import AggregateSpec, aggregate_names
from repro.streams.operators import (
    FilterOp,
    GroupKey,
    MapOp,
    Operator,
    UnionOp,
    WindowedGroupByOp,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec

#: Sentinel distinguishing "field absent" from a stored None.
_MISSING = object()


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


class Scope:
    """Resolves column references against runtime tuples.

    Args:
        bindings: FROM-clause binding names visible in this scope (stream
            aliases / subquery aliases). Qualifiers that match no binding
            are ignored and the bare column name is used instead — a
            leniency required by the paper's Query 6, which qualifies a
            column with ``sensors`` although the stream is bound as
            ``sensors_input``.
        qualified_fields: Whether runtime tuples carry ``binding.field``
            keys (join outputs) in addition to bare field names.
    """

    def __init__(self, bindings: Sequence[str], qualified_fields: bool = False):
        self.bindings = set(bindings)
        self.qualified_fields = qualified_fields

    def resolve(self, ref: ast.ColumnRef) -> Callable[[StreamTuple], Any]:
        """Compile a column reference into a tuple-reading closure.

        Missing fields evaluate to ``None`` (SQL NULL), which lets WHERE
        predicates over outer-combined rows behave sensibly.
        """
        name = ref.name
        qualifier = ref.qualifier if ref.qualifier in self.bindings else None
        if qualifier and self.qualified_fields:
            # Strict: a qualified reference reads only its own source's
            # field. Falling back to a bare name here would silently read
            # another source's column on outer-combined rows where this
            # source is absent (SQL NULL is the correct answer).
            dotted = f"{qualifier}.{name}"
            return lambda t: t.get(dotted)

        def read_bare(t: StreamTuple) -> Any:
            value = t.get(name, _MISSING)
            if value is not _MISSING:
                return value
            # Fall back to a unique ``*.name`` qualified key.
            suffix = f".{name}"
            hits = [k for k in t.keys() if k.endswith(suffix)]
            if len(hits) == 1:
                return t.get(hits[0])
            return None

        return read_bare


def _as_bool(value: Any) -> bool:
    """SQL-ish truthiness: NULL and false are false."""
    return bool(value) if value is not None else False


def compile_expr(
    expr: ast.Expr,
    scope: Scope,
    agg_fields: Mapping[ast.FuncCall, str] | None = None,
) -> Callable[[StreamTuple], Any]:
    """Compile an expression into a closure over a runtime tuple.

    Args:
        expr: Expression AST.
        scope: Column resolution scope.
        agg_fields: When compiling post-aggregation expressions (SELECT
            items / HAVING over grouped rows), maps each aggregate call to
            the output field carrying its value.

    Raises:
        PlanError: On aggregates outside an aggregation context, unknown
            scalar functions, or a bare ``*`` outside ``count(*)``.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda t: value
    if isinstance(expr, ast.ColumnRef):
        return scope.resolve(expr)
    if isinstance(expr, ast.Star):
        raise PlanError("'*' is only valid as count(*) or the full select list")
    if isinstance(expr, ast.UnaryOp):
        inner = compile_expr(expr.operand, scope, agg_fields)
        if expr.op == "-":
            return lambda t: None if inner(t) is None else -inner(t)
        if expr.op == "NOT":
            return lambda t: not _as_bool(inner(t))
        raise PlanError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, scope, agg_fields)
    if isinstance(expr, ast.FuncCall):
        if expr.name in aggregate_names():
            if agg_fields is None or expr not in agg_fields:
                raise PlanError(
                    f"aggregate {expr.name!r} used outside an aggregation "
                    "context (add a window and GROUP BY)"
                )
            field = agg_fields[expr]
            return lambda t, _f=field: t.get(_f)
        fn = get_function(expr.name)
        arg_fns = [compile_expr(a, scope, agg_fields) for a in expr.args]
        return lambda t: fn(*(f(t) for f in arg_fns))
    if isinstance(expr, ast.CaseExpr):
        compiled_whens = [
            (
                compile_expr(cond, scope, agg_fields),
                compile_expr(result, scope, agg_fields),
            )
            for cond, result in expr.whens
        ]
        compiled_default = (
            compile_expr(expr.default, scope, agg_fields)
            if expr.default is not None
            else None
        )

        def case(t: StreamTuple) -> Any:
            for cond_fn, result_fn in compiled_whens:
                if _as_bool(cond_fn(t)):
                    return result_fn(t)
            return compiled_default(t) if compiled_default else None

        return case
    if isinstance(expr, ast.QuantifiedComparison):
        raise PlanError(
            "ALL/ANY subqueries are only supported in HAVING following the "
            "paper's Query 3 shape"
        )
    raise PlanError(f"cannot compile expression node {expr!r}")


def _compile_binary(
    expr: ast.BinaryOp,
    scope: Scope,
    agg_fields: Mapping[ast.FuncCall, str] | None,
) -> Callable[[StreamTuple], Any]:
    left = compile_expr(expr.left, scope, agg_fields)
    right = compile_expr(expr.right, scope, agg_fields)
    op = expr.op
    if op == "AND":
        return lambda t: _as_bool(left(t)) and _as_bool(right(t))
    if op == "OR":
        return lambda t: _as_bool(left(t)) or _as_bool(right(t))
    if op == "IS NULL":
        return lambda t: left(t) is None
    if op in ("=", "<>"):
        def compare_eq(t: StreamTuple, _negate=(op == "<>")) -> Any:
            lhs, rhs = left(t), right(t)
            if lhs is None or rhs is None:
                return False
            return (lhs != rhs) if _negate else (lhs == rhs)

        return compare_eq
    if op in ("<", "<=", ">", ">="):
        import operator as _operator

        py_op = {
            "<": _operator.lt,
            "<=": _operator.le,
            ">": _operator.gt,
            ">=": _operator.ge,
        }[op]

        def compare_ord(t: StreamTuple) -> Any:
            lhs, rhs = left(t), right(t)
            if lhs is None or rhs is None:
                return False
            return py_op(lhs, rhs)

        return compare_ord
    if op == "LIKE":
        import re

        if not isinstance(expr.right, ast.Literal) or not isinstance(
            expr.right.value, str
        ):
            raise PlanError("LIKE requires a string literal pattern")
        # SQL wildcards: % -> any run, _ -> any single character.
        regex = re.compile(
            "^"
            + re.escape(expr.right.value).replace("%", ".*").replace("_", ".")
            + "$"
        )

        def like(t: StreamTuple) -> Any:
            value = left(t)
            if value is None:
                return False
            return regex.match(str(value)) is not None

        return like
    if op in ("+", "-", "*", "/", "%"):
        import operator as _operator

        py_arith = {
            "+": _operator.add,
            "-": _operator.sub,
            "*": _operator.mul,
            "/": _operator.truediv,
            "%": _operator.mod,
        }[op]

        def arith(t: StreamTuple) -> Any:
            lhs, rhs = left(t), right(t)
            if lhs is None or rhs is None:
                return None
            return py_arith(lhs, rhs)

        return arith
    raise PlanError(f"unknown binary operator {op!r}")


# ---------------------------------------------------------------------------
# Plan graph
# ---------------------------------------------------------------------------


class _PlanNode:
    """One operator in a compiled query's internal mini-DAG."""

    __slots__ = ("op", "downstream", "pending")

    def __init__(self, op: Operator):
        self.op = op
        #: (node index, port)
        self.downstream: list[tuple[int, int]] = []
        self.pending: list[tuple[StreamTuple, int]] = []


class CompiledQuery(Operator):
    """An executable continuous query, usable as a stream operator.

    Input tuples are routed to the query's stream references by their
    ``stream`` attribute; punctuations drive windows exactly as in the
    Fjord executor. Use :meth:`run` for one-shot evaluation over in-memory
    streams, or plug the instance into a pipeline/Fjord for online use.

    Attributes:
        text: Original query text, when compiled from text.
        input_streams: The stream names this query subscribes to.
    """

    def __init__(
        self,
        nodes: list[_PlanNode],
        entries: Mapping[str, Sequence[tuple[int, int]]],
        output_index: int,
        text: str | None = None,
    ):
        self._nodes = nodes
        self._entries = {k: list(v) for k, v in entries.items()}
        self._output_index = output_index
        self.text = text

    @property
    def input_streams(self) -> list[str]:
        """Names of the streams this query reads."""
        return sorted(self._entries)

    # -- Operator protocol ------------------------------------------------------

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        routes = self._entries.get(item.stream)
        if routes is None:
            if len(self._entries) == 1:
                # Single-stream queries accept any input stream: the ESP
                # processor renames streams as it wires stages together.
                routes = next(iter(self._entries.values()))
            else:
                return []
        outputs: list[StreamTuple] = []
        queue: list[tuple[int, StreamTuple, int]] = [
            (idx, item, in_port) for idx, in_port in routes
        ]
        self._cascade(queue, outputs)
        return outputs

    def on_time(self, now: float) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        for index, node in enumerate(self._nodes):
            self._drain(index, node, outputs)
            for out in node.op.on_time(now):
                self._route(index, out, outputs)
        for index, node in enumerate(self._nodes):
            self._drain(index, node, outputs)
        return outputs

    # -- internals ----------------------------------------------------------------

    def _route(
        self, index: int, item: StreamTuple, outputs: list[StreamTuple]
    ) -> None:
        if index == self._output_index:
            outputs.append(item)
            return
        for target, port in self._nodes[index].downstream:
            self._nodes[target].pending.append((item, port))

    def _drain(
        self, index: int, node: _PlanNode, outputs: list[StreamTuple]
    ) -> None:
        while node.pending:
            item, port = node.pending.pop(0)
            for out in node.op.on_tuple(item, port):
                self._route(index, out, outputs)

    def _cascade(
        self,
        queue: list[tuple[int, StreamTuple, int]],
        outputs: list[StreamTuple],
    ) -> None:
        while queue:
            index, item, port = queue.pop(0)
            for out in self._nodes[index].op.on_tuple(item, port):
                if index == self._output_index:
                    outputs.append(out)
                    continue
                for target, tport in self._nodes[index].downstream:
                    queue.append((target, out, tport))

    # -- convenience ----------------------------------------------------------------

    def explain(self) -> str:
        """A human-readable description of the compiled plan.

        One line per plan node, in execution order, with the stream
        subscriptions and the output node marked — the streaming
        analogue of SQL EXPLAIN.

        Example output for ``SELECT * FROM s WHERE v > 1``::

            plan for: SELECT * FROM s WHERE v > 1
              [0] _Identity <- stream 's'
              [1] FilterOp  -> output
        """
        subscriptions: dict[int, list[str]] = {}
        for stream, routes in self._entries.items():
            for index, _port in routes:
                subscriptions.setdefault(index, []).append(stream)
        lines = []
        label = (self.text or "<ast>").strip().replace("\n", " ")
        lines.append(f"plan for: {label}")
        for index, node in enumerate(self._nodes):
            parts = [f"  [{index}] {type(node.op).__name__}"]
            if index in subscriptions:
                streams = ", ".join(
                    f"{name!r}" for name in sorted(subscriptions[index])
                )
                parts.append(f" <- stream {streams}")
            if index == self._output_index:
                parts.append("  -> output")
            lines.append("".join(parts))
        return "\n".join(lines)

    def run(
        self,
        sources: Mapping[str, Iterable[StreamTuple]],
        ticks: Iterable[float],
    ) -> list[StreamTuple]:
        """Evaluate the query over in-memory streams.

        Args:
            sources: Stream name to timestamp-sorted tuples. Tuples are
                re-labelled with the source's stream name so routing works
                regardless of how they were constructed.
            ticks: Punctuation times, ascending.

        Returns:
            All output tuples, in emission order.
        """
        merged: list[StreamTuple] = []
        for name, items in sources.items():
            merged.extend(t.derive(stream=name) for t in items)
        merged.sort(key=lambda t: t.timestamp)
        out: list[StreamTuple] = []
        index = 0
        for tick in ticks:
            while index < len(merged) and merged[index].timestamp <= tick + 1e-9:
                out.extend(self.on_tuple(merged[index]))
                index += 1
            out.extend(self.on_time(tick))
        return out

    def __repr__(self) -> str:
        label = self.text.strip().split("\n")[0] if self.text else "<ast>"
        return f"CompiledQuery({label!r}, streams={self.input_streams})"


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class _Builder:
    """Accumulates plan nodes while compiling one query."""

    def __init__(self):
        self.nodes: list[_PlanNode] = []
        self.entries: dict[str, list[tuple[int, int]]] = {}

    def add(self, op: Operator, upstream: Sequence[tuple[int, int]] = ()) -> int:
        """Add an operator fed by ``upstream`` (node index, output port)."""
        index = len(self.nodes)
        self.nodes.append(_PlanNode(op))
        for up_index, port in upstream:
            self.nodes[up_index].downstream.append((index, port))
        return index

    def subscribe(self, stream: str, node: int, port: int = 0) -> None:
        self.entries.setdefault(stream, []).append((node, port))


class _Identity(Operator):
    """Pass-through node (used as plan entry/exit points)."""

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        return [item]


class _StreamifyOp(Operator):
    """CQL relation-to-stream operators ISTREAM / DSTREAM.

    The engine's default emission is RSTREAM-like: the full result
    relation at every instant. ISTREAM keeps only rows absent from the
    previous instant's relation; DSTREAM emits the rows that *left* the
    relation (timestamped at the instant they disappeared). Rows are
    compared by field values; timestamps are ignored for identity.
    """

    def __init__(self, mode: str):
        if mode not in ("ISTREAM", "DSTREAM"):
            raise PlanError(f"unknown stream operator {mode!r}")
        self._mode = mode
        self._previous: dict[frozenset, StreamTuple] = {}
        self._current: dict[frozenset, StreamTuple] = {}

    @staticmethod
    def _key(item: StreamTuple) -> frozenset:
        return frozenset(item.items())

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        self._current[self._key(item)] = item
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        current, self._current = self._current, {}
        previous, self._previous = self._previous, current
        if self._mode == "ISTREAM":
            return [
                item for key, item in current.items() if key not in previous
            ]
        return [
            item.derive(timestamp=now)
            for key, item in previous.items()
            if key not in current
        ]


def compile_query(
    query: "str | ast.Select",
    output_stream: str = "",
) -> CompiledQuery:
    """Compile CQL text (or a parsed AST) into a :class:`CompiledQuery`.

    Args:
        query: Query text or AST.
        output_stream: Stream name stamped on output tuples, so compiled
            queries can be chained by name in a pipeline.

    Raises:
        CQLSyntaxError: On parse errors.
        PlanError: On constructs outside the supported subset.
    """
    text = query if isinstance(query, str) else None
    tree = parse(query) if isinstance(query, str) else query
    builder = _Builder()
    output_index = _plan_select(tree, builder, output_stream)
    return CompiledQuery(builder.nodes, builder.entries, output_index, text=text)


def _plan_select(
    select: ast.Select, builder: _Builder, output_stream: str
) -> int:
    """Plan a select (with union chain); returns the output node index."""
    if select.union_with is None:
        return _plan_single_select(select, builder, output_stream)
    branch_outputs = []
    node: ast.Select | None = select
    while node is not None:
        branch_outputs.append(_plan_single_select(node, builder, output_stream))
        node = node.union_with
    union_index = builder.add(
        UnionOp(output_stream or None),
        upstream=[(idx, 0) for idx in branch_outputs],
    )
    return union_index


def _plan_single_select(
    select: ast.Select, builder: _Builder, output_stream: str
) -> int:
    if not select.sources:
        raise PlanError("FROM clause is required")
    if len(select.sources) == 1:
        output = _plan_one_source(select, builder, output_stream)
    else:
        output = _plan_join(select, builder, output_stream)
    if select.stream_op in ("ISTREAM", "DSTREAM"):
        output = builder.add(
            _StreamifyOp(select.stream_op), upstream=[(output, 0)]
        )
    return output  # RSTREAM / None: the default full-relation emission


# -- single-source plans -------------------------------------------------------


def _plan_one_source(
    select: ast.Select, builder: _Builder, output_stream: str
) -> int:
    source = select.sources[0]
    scope = Scope([_binding_of(source)])
    upstream_index, window = _plan_source_input(source, builder)
    aggregates = _collect_aggregates(select)
    if not aggregates and not select.group_by:
        return _plan_stateless(
            select, builder, scope, upstream_index, output_stream
        )
    if window is None:
        raise PlanError(
            "aggregation requires a window on the stream "
            "(e.g. [Range By '5 sec'])"
        )
    return _plan_aggregation(
        select, builder, scope, upstream_index, window, aggregates, output_stream
    )


def _plan_source_input(
    source: "ast.StreamRef | ast.SubquerySource", builder: _Builder
) -> tuple[int, WindowSpec | None]:
    """Plan a FROM source; returns (node feeding its tuples, its window)."""
    if isinstance(source, ast.StreamRef):
        entry = builder.add(_Identity())
        builder.subscribe(source.name, entry)
        return entry, source.window
    # Derived table: plan the subquery; its rows are instant-valid.
    sub_output = _plan_select(source.select, builder, output_stream="")
    passthrough = builder.add(_Identity(), upstream=[(sub_output, 0)])
    return passthrough, WindowSpec.now()


def _binding_of(source: "ast.StreamRef | ast.SubquerySource") -> str:
    binding = source.binding
    if binding is None:
        raise PlanError("subqueries in FROM must be aliased (\"AS name\")")
    return binding


def _plan_stateless(
    select: ast.Select,
    builder: _Builder,
    scope: Scope,
    upstream: int,
    output_stream: str,
) -> int:
    index = upstream
    if select.having is not None:
        raise PlanError("HAVING requires GROUP BY or aggregates")
    if select.where is not None:
        predicate = compile_expr(select.where, scope)
        index = builder.add(
            FilterOp(lambda t, _p=predicate: _as_bool(_p(t))),
            upstream=[(index, 0)],
        )
    if select.star:
        if output_stream:
            index = builder.add(
                MapOp(lambda t: t.derive(stream=output_stream)),
                upstream=[(index, 0)],
            )
        return index
    projections = [
        (item.output_name(pos), compile_expr(item.expr, scope))
        for pos, item in enumerate(select.items)
    ]

    def project(t: StreamTuple) -> StreamTuple:
        return StreamTuple(
            t.timestamp,
            {name: fn(t) for name, fn in projections},
            output_stream or t.stream,
        )

    return builder.add(MapOp(project), upstream=[(index, 0)])


def _collect_aggregates(select: ast.Select) -> list[ast.FuncCall]:
    """Unique aggregate calls in the SELECT list and HAVING clause."""
    names = aggregate_names()
    calls: list[ast.FuncCall] = []
    for item in select.items:
        calls.extend(ast.find_aggregates(item.expr, names))
    if select.having is not None and not isinstance(
        select.having, ast.QuantifiedComparison
    ):
        calls.extend(ast.find_aggregates(select.having, names))
    if isinstance(select.having, ast.QuantifiedComparison):
        calls.extend(ast.find_aggregates(select.having.left, names))
    unique: list[ast.FuncCall] = []
    for call in calls:
        if call not in unique:
            unique.append(call)
    return unique


def _aggregate_spec(
    call: ast.FuncCall, scope: Scope, output: str
) -> AggregateSpec:
    if len(call.args) > 1:
        raise PlanError(f"aggregate {call.name!r} takes at most one argument")
    if not call.args or isinstance(call.args[0], ast.Star):
        if call.distinct and not call.args:
            raise PlanError("count(distinct) needs an argument")
        argument = None
        if call.args and call.distinct:
            raise PlanError("count(distinct *) is not valid")
    else:
        arg_expr = call.args[0]
        if (
            isinstance(arg_expr, ast.ColumnRef)
            and not scope.qualified_fields
            and (arg_expr.qualifier is None or arg_expr.qualifier not in scope.bindings)
        ):
            # A bare column reference over non-join rows reads exactly
            # ``row.get(name)`` — declare it as ``field=`` so the
            # windowed evaluation can vectorize over typed columns.
            # Qualified references (join scopes) keep the compiled
            # closure: their dotted-key resolution has no field= analog.
            return AggregateSpec(
                call.name,
                field=arg_expr.name,
                distinct=call.distinct,
                output=output,
            )
        argument = compile_expr(arg_expr, scope)
    return AggregateSpec(
        call.name, argument=argument, distinct=call.distinct, output=output
    )


def _plan_aggregation(
    select: ast.Select,
    builder: _Builder,
    scope: Scope,
    upstream: int,
    window: WindowSpec,
    aggregate_calls: list[ast.FuncCall],
    output_stream: str,
) -> int:
    index = upstream
    if select.where is not None:
        predicate = compile_expr(select.where, scope)
        index = builder.add(
            FilterOp(lambda t, _p=predicate: _as_bool(_p(t))),
            upstream=[(index, 0)],
        )
    # Group keys: GROUP BY columns, plus bare SELECT-list columns not
    # already grouped. The implicit part is a deliberate leniency: the
    # paper's Query 5 subquery selects ``spatial_granule`` next to
    # aggregates without a GROUP BY clause (a typo in the listing); the
    # only sensible continuous-query reading is to group by it.
    group_refs = list(select.group_by)
    grouped_names = {ref.name for ref in group_refs}
    for item in select.items:
        expr = item.expr
        if isinstance(expr, ast.ColumnRef) and expr.name not in grouped_names:
            group_refs.append(expr)
            grouped_names.add(expr.name)
    keys = [GroupKey(ref.name, scope.resolve(ref)) for ref in group_refs]
    # Aggregates: stable output field per unique call.
    agg_fields: dict[ast.FuncCall, str] = {}
    specs: list[AggregateSpec] = []
    for position, call in enumerate(aggregate_calls):
        field = _preferred_agg_name(select, call, position)
        agg_fields[call] = field
        specs.append(_aggregate_spec(call, scope, field))
    having = _plan_having(select, scope, agg_fields)
    group_index = builder.add(
        WindowedGroupByOp(
            window,
            keys=keys,
            aggregates=specs,
            having=having,
            output_stream=output_stream,
        ),
        upstream=[(index, 0)],
    )
    return _plan_post_projection(
        select, builder, group_index, agg_fields, output_stream
    )


def _preferred_agg_name(
    select: ast.Select, call: ast.FuncCall, position: int
) -> str:
    """Pick the output field for an aggregate: the SELECT alias if the item
    is exactly this call, else a canonical derived name."""
    for item in select.items:
        if item.expr == call and item.alias:
            return item.alias
    return ast.SelectItem(call).output_name(position)


def _plan_having(
    select: ast.Select,
    scope: Scope,
    agg_fields: Mapping[ast.FuncCall, str],
) -> Callable[[StreamTuple, list[StreamTuple]], bool] | None:
    having = select.having
    if having is None:
        return None
    if isinstance(having, ast.QuantifiedComparison):
        return _plan_quantified_having(select, having, agg_fields)
    row_scope = Scope([], qualified_fields=False)
    predicate = compile_expr(having, row_scope, agg_fields)
    return lambda row, _all, _p=predicate: _as_bool(_p(row))


def _plan_quantified_having(
    select: ast.Select,
    having: ast.QuantifiedComparison,
    agg_fields: Mapping[ast.FuncCall, str],
) -> Callable[[StreamTuple, list[StreamTuple]], bool]:
    """Compile ``HAVING agg op ALL(SELECT agg FROM same ... WHERE outer.c =
    inner.c GROUP BY g)`` — the paper's Query 3 arbitration pattern.

    Validity conditions (checked, with actionable errors):

    - the outer select groups by at least the correlation column ``c`` and
      the subquery's grouping column ``g``;
    - the subquery reads the same stream with the same window;
    - both sides aggregate with the same call.

    Under those conditions the subquery's per-``g`` aggregate values for a
    given ``c`` are exactly the outer rows sharing that ``c``, so the
    quantifier reduces to a comparison across the rows emitted at this
    instant — which the HAVING callback receives as ``all_rows``.
    """
    if not isinstance(having.left, ast.FuncCall):
        raise PlanError("ALL/ANY HAVING must compare an aggregate call")
    if having.left not in agg_fields:
        raise PlanError("ALL/ANY HAVING aggregate must match an outer aggregate")
    sub = having.subquery
    if len(sub.sources) != 1 or not isinstance(sub.sources[0], ast.StreamRef):
        raise PlanError("ALL/ANY subquery must read a single stream")
    outer_source = select.sources[0]
    if not isinstance(outer_source, ast.StreamRef):
        raise PlanError("ALL/ANY HAVING requires the outer FROM to be a stream")
    inner_source = sub.sources[0]
    if inner_source.name != outer_source.name:
        raise PlanError(
            "ALL/ANY subquery must reference the same stream as the outer "
            f"query ({inner_source.name!r} != {outer_source.name!r})"
        )
    inner_window = inner_source.window or outer_source.window
    if inner_window != outer_source.window:
        raise PlanError("ALL/ANY subquery window must match the outer window")
    if len(sub.items) != 1 or not isinstance(sub.items[0].expr, ast.FuncCall):
        raise PlanError("ALL/ANY subquery must select a single aggregate")
    inner_call = sub.items[0].expr
    if (inner_call.name, inner_call.distinct) != (
        having.left.name,
        having.left.distinct,
    ):
        raise PlanError("ALL/ANY subquery aggregate must match the outer one")
    correlation = _extract_correlation(
        sub.where, outer_source.binding, inner_source.binding
    )
    if correlation is None:
        raise PlanError(
            "ALL/ANY subquery must be correlated with an equality like "
            "outer.tag_id = inner.tag_id"
        )
    if len(sub.group_by) != 1:
        raise PlanError("ALL/ANY subquery must GROUP BY exactly one column")
    outer_keys = {ref.name for ref in select.group_by}
    if correlation not in outer_keys:
        raise PlanError(
            f"correlation column {correlation!r} must be an outer group key"
        )
    if sub.group_by[0].name not in outer_keys:
        raise PlanError(
            f"subquery group column {sub.group_by[0].name!r} must be an "
            "outer group key"
        )
    agg_field = agg_fields[having.left]
    op = having.op
    quantifier = having.quantifier

    def satisfied(mine: Any, peer: Any) -> bool:
        if mine is None or peer is None:
            return False
        if op == ">=":
            return mine >= peer
        if op == ">":
            return mine > peer
        if op == "<=":
            return mine <= peer
        if op == "<":
            return mine < peer
        if op == "=":
            return mine == peer
        if op == "<>":
            return mine != peer
        raise PlanError(f"unsupported quantified comparison operator {op!r}")

    def having_callback(row: StreamTuple, all_rows: list[StreamTuple]) -> bool:
        mine = row.get(agg_field)
        peers = [
            peer.get(agg_field)
            for peer in all_rows
            if peer.get(correlation) == row.get(correlation)
        ]
        if quantifier == "ALL":
            return all(satisfied(mine, value) for value in peers)
        return any(satisfied(mine, value) for value in peers)

    return having_callback


def _extract_correlation(
    where: ast.Expr | None, outer_binding: str, inner_binding: str
) -> str | None:
    """Find the column name in ``outer.c = inner.c`` within the subquery
    WHERE (possibly among AND-ed terms). Returns None if absent."""
    if where is None:
        return None
    if isinstance(where, ast.BinaryOp) and where.op == "AND":
        return _extract_correlation(
            where.left, outer_binding, inner_binding
        ) or _extract_correlation(where.right, outer_binding, inner_binding)
    if not (isinstance(where, ast.BinaryOp) and where.op == "="):
        return None
    left, right = where.left, where.right
    if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
        return None
    qualifiers = {left.qualifier, right.qualifier}
    if left.name == right.name and qualifiers == {outer_binding, inner_binding}:
        return left.name
    return None


def _plan_post_projection(
    select: ast.Select,
    builder: _Builder,
    group_index: int,
    agg_fields: Mapping[ast.FuncCall, str],
    output_stream: str,
) -> int:
    """Project grouped rows onto the SELECT list."""
    if select.star:
        return group_index
    row_scope = Scope([], qualified_fields=False)
    projections = [
        (
            item.alias or item.output_name(pos),
            compile_expr(item.expr, row_scope, agg_fields),
        )
        for pos, item in enumerate(select.items)
    ]
    # Skip the projection when it is an exact pass-through of grouped
    # output fields — the common Query 1/2 case.
    passthrough = all(
        isinstance(item.expr, ast.ColumnRef)
        and (item.alias or item.expr.name) == item.expr.name
        or (
            isinstance(item.expr, ast.FuncCall)
            and item.expr in agg_fields
            and (item.alias or agg_fields[item.expr]) == agg_fields[item.expr]
        )
        for item in select.items
    )
    if passthrough:
        return group_index

    def project(t: StreamTuple) -> StreamTuple:
        return StreamTuple(
            t.timestamp,
            {name: fn(t) for name, fn in projections},
            output_stream or t.stream,
        )

    return builder.add(MapOp(project), upstream=[(group_index, 0)])


# -- join plans ------------------------------------------------------------------


class _OuterCombineOp(Operator):
    """N-ary instant-combine with outer semantics (paper Query 6).

    Buffers rows per input port between punctuations. At each punctuation
    it emits the cross product of the non-empty ports' rows, with each
    row's fields stored under both ``binding.field`` and (when
    unambiguous) the bare field name. Ports that received nothing simply
    contribute no fields — combine missing-side handling with
    ``coalesce(x, 0)`` in WHERE.
    """

    def __init__(self, bindings: Sequence[str], output_stream: str = ""):
        self._bindings = list(bindings)
        self._buffers: list[list[StreamTuple]] = [[] for _ in bindings]
        self._output_stream = output_stream

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        self._buffers[port].append(item)
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        populated = [
            (binding, rows)
            for binding, rows in zip(self._bindings, self._buffers)
            if rows
        ]
        self._buffers = [[] for _ in self._bindings]
        if not populated:
            return []
        combos: list[dict[str, Any]] = [{}]
        field_counts: dict[str, int] = {}
        for binding, rows in populated:
            for field in rows[0].keys():
                field_counts[field] = field_counts.get(field, 0) + 1
        for binding, rows in populated:
            new_combos: list[dict[str, Any]] = []
            for base in combos:
                for row in rows:
                    merged = dict(base)
                    for field, value in row.items():
                        merged[f"{binding}.{field}"] = value
                        if field_counts.get(field, 0) == 1:
                            merged[field] = value
                    new_combos.append(merged)
            combos = new_combos
        return [
            StreamTuple(now, values, self._output_stream) for values in combos
        ]


class _InstantJoinOp(Operator):
    """Binary windowed join evaluated at each punctuation (paper Query 5).

    Port 0 carries the left input buffered in ``left_window``; port 1 the
    right input in ``right_window``. At each punctuation the cross product
    of window contents is filtered by the WHERE predicate evaluated over
    the combined row.
    """

    def __init__(
        self,
        left_window: WindowSpec,
        right_window: WindowSpec,
        left_binding: str,
        right_binding: str,
        predicate: Callable[[StreamTuple], Any] | None,
        output_stream: str = "",
    ):
        self._left = left_window.make_window()
        self._right = right_window.make_window()
        self._left_binding = left_binding
        self._right_binding = right_binding
        self._predicate = predicate
        self._output_stream = output_stream

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        if port == 0:
            self._left.insert(item)
        else:
            self._right.insert(item)
        return []

    def _combine(
        self, now: float, lhs: StreamTuple, rhs: StreamTuple
    ) -> StreamTuple:
        merged: dict[str, Any] = {}
        left_fields = set(lhs.keys())
        for field, value in rhs.items():
            merged[f"{self._right_binding}.{field}"] = value
            if field not in left_fields:
                merged[field] = value
        for field, value in lhs.items():
            if "." in field:
                merged[field] = value  # already qualified by an inner join
            else:
                merged[f"{self._left_binding}.{field}"] = value
                merged[field] = value  # left side wins bare-name conflicts
        return StreamTuple(now, merged, self._output_stream)

    def on_time(self, now: float) -> list[StreamTuple]:
        self._left.advance(now)
        self._right.advance(now)
        out: list[StreamTuple] = []
        for lhs in self._left:
            for rhs in self._right:
                combined = self._combine(now, lhs, rhs)
                if self._predicate is None or _as_bool(self._predicate(combined)):
                    out.append(combined)
        return out


def _plan_join(
    select: ast.Select, builder: _Builder, output_stream: str
) -> int:
    bindings = []
    for source in select.sources:
        binding = source.binding
        if binding is None:
            raise PlanError(
                "every source in a multi-source FROM needs a name or alias"
            )
        bindings.append(binding)
    if len(set(bindings)) != len(bindings):
        raise PlanError(f"duplicate FROM bindings: {bindings}")
    scope = Scope(bindings, qualified_fields=True)
    all_derived = all(
        isinstance(source, ast.SubquerySource) for source in select.sources
    )
    where_fn = (
        compile_expr(select.where, scope) if select.where is not None else None
    )
    if all_derived:
        inputs = [
            _plan_source_input(source, builder)[0] for source in select.sources
        ]
        combine_index = builder.add(
            _OuterCombineOp(bindings),
            upstream=[(idx, port) for port, idx in enumerate(inputs)],
        )
        index = combine_index
        if where_fn is not None:
            index = builder.add(
                FilterOp(lambda t, _p=where_fn: _as_bool(_p(t))),
                upstream=[(index, 0)],
            )
    else:
        index = _plan_inner_join_cascade(
            select, builder, bindings, where_fn
        )
    aggregates = _collect_aggregates(select)
    if not aggregates and not select.group_by:
        # Stateless projection over combined rows.
        narrowed = ast.Select(
            select.items, [ast.StreamRef("__combined__")], star=select.star
        )
        return _plan_stateless(narrowed, builder, scope, index, output_stream)
    narrowed = ast.Select(
        select.items,
        [ast.StreamRef("__combined__")],
        star=select.star,
        group_by=select.group_by,
        having=select.having,
    )
    return _plan_aggregation(
        narrowed,
        builder,
        scope,
        index,
        WindowSpec.now(),
        aggregates,
        output_stream,
    )


def _plan_inner_join_cascade(
    select: ast.Select,
    builder: _Builder,
    bindings: list[str],
    where_fn: Callable[[StreamTuple], Any] | None,
) -> int:
    """Left-fold the FROM sources through binary instant joins.

    The full WHERE predicate is evaluated on the final join's combined
    rows (earlier joins emit unfiltered combinations; at the paper's data
    rates the quadratic instant is tiny).
    """
    planned: list[tuple[int, WindowSpec, str]] = []
    for binding, source in zip(bindings, select.sources):
        node, window = _plan_source_input(source, builder)
        if window is None:
            raise PlanError(
                f"source {binding!r} in a join needs a window "
                "(e.g. [Range By '5 min'])"
            )
        planned.append((node, window, binding))
    left_node, left_window, left_binding = planned[0]
    for position, (right_node, right_window, right_binding) in enumerate(
        planned[1:]
    ):
        is_last = position == len(planned) - 2
        join_index = builder.add(
            _InstantJoinOp(
                left_window,
                right_window,
                left_binding,
                right_binding,
                predicate=where_fn if is_last else None,
            ),
            upstream=[(left_node, 0), (right_node, 1)],
        )
        left_node = join_index
        left_window = WindowSpec.now()
        left_binding = "__join__"
    return left_node
