"""Scalar function registry for CQL expressions (UDFs, paper §3.3).

Scalar functions are ordinary Python callables over already-evaluated
argument values. SQL NULL (Python ``None``) propagates through every
builtin except ``coalesce`` and ``ifnull``, mirroring SQL semantics.

User-defined functions are registered with :func:`register_function`;
aggregates live in :mod:`repro.streams.aggregates` instead.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import PlanError


def _null_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap ``fn`` so that any ``None`` argument yields ``None``."""

    def wrapper(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


def _coalesce(*args: Any) -> Any:
    """First non-None argument, else None."""
    for arg in args:
        if arg is not None:
            return arg
    return None


def _sign(x: float) -> int:
    return (x > 0) - (x < 0)


_REGISTRY: dict[str, Callable[..., Any]] = {
    "abs": _null_safe(abs),
    "sqrt": _null_safe(math.sqrt),
    "floor": _null_safe(math.floor),
    "ceil": _null_safe(math.ceil),
    "round": _null_safe(round),
    "ln": _null_safe(math.log),
    "exp": _null_safe(math.exp),
    "power": _null_safe(pow),
    "mod": _null_safe(lambda a, b: a % b),
    "sign": _null_safe(_sign),
    "least": _null_safe(min),
    "greatest": _null_safe(max),
    "coalesce": _coalesce,
    "ifnull": lambda value, default: default if value is None else value,
    "nullif": _null_safe(lambda a, b: None if a == b else a),
    "lower": _null_safe(lambda s: str(s).lower()),
    "upper": _null_safe(lambda s: str(s).upper()),
    "length": _null_safe(lambda s: len(str(s))),
    "concat": lambda *parts: "".join(str(p) for p in parts if p is not None),
}


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Register a scalar UDF under ``name`` (case-insensitive).

    The function receives evaluated argument values and must return a
    value; it is responsible for its own NULL handling.
    """
    _REGISTRY[name.lower()] = fn


def get_function(name: str) -> Callable[..., Any]:
    """Look up a scalar function by name.

    Raises:
        PlanError: If no function is registered under ``name``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise PlanError(
            f"unknown scalar function {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def is_function(name: str) -> bool:
    """True if a scalar function is registered under ``name``."""
    return name.lower() in _REGISTRY
