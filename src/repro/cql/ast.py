"""Abstract syntax tree for the CQL subset.

Nodes are plain data holders; behaviour (evaluation, planning) lives in
:mod:`repro.cql.planner`. Every node implements structural equality and a
``repr`` that round-trips enough detail to debug planner issues.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.streams.windows import WindowSpec


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        """Direct child expressions (for tree walks)."""
        return ()

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


class Literal(Expr):
    """A number or string constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self):
        return hash(("Literal", self.value))

    def __repr__(self):
        return f"Literal({self.value!r})"


class ColumnRef(Expr):
    """A possibly-qualified column reference, e.g. ``ai1.tag_id``."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: str | None = None):
        self.name = name
        self.qualifier = qualifier

    @property
    def qualified(self) -> str:
        """The dotted display form."""
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __eq__(self, other):
        return (
            isinstance(other, ColumnRef)
            and self.name == other.name
            and self.qualifier == other.qualifier
        )

    def __hash__(self):
        return hash(("ColumnRef", self.qualifier, self.name))

    def __repr__(self):
        return f"ColumnRef({self.qualified})"


class Star(Expr):
    """The ``*`` select item (or ``count(*)`` argument)."""

    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, Star)

    def __hash__(self):
        return hash("Star")

    def __repr__(self):
        return "Star()"


class BinaryOp(Expr):
    """A binary operation: arithmetic, comparison, AND/OR."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def __eq__(self, other):
        return (
            isinstance(other, BinaryOp)
            and (self.op, self.left, self.right)
            == (other.op, other.left, other.right)
        )

    def __hash__(self):
        return hash(("BinaryOp", self.op, self.left, self.right))

    def __repr__(self):
        return f"BinaryOp({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expr):
    """A unary operation: ``NOT expr`` or ``-expr``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand

    def children(self):
        return (self.operand,)

    def __eq__(self, other):
        return (
            isinstance(other, UnaryOp)
            and (self.op, self.operand) == (other.op, other.operand)
        )

    def __hash__(self):
        return hash(("UnaryOp", self.op, self.operand))

    def __repr__(self):
        return f"UnaryOp({self.op} {self.operand!r})"


class FuncCall(Expr):
    """A function call — scalar UDF or aggregate, e.g. ``count(distinct x)``."""

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name: str, args: Sequence[Expr], distinct: bool = False):
        self.name = name.lower()
        self.args = tuple(args)
        self.distinct = distinct

    def children(self):
        return self.args

    def __eq__(self, other):
        return (
            isinstance(other, FuncCall)
            and (self.name, self.args, self.distinct)
            == (other.name, other.args, other.distinct)
        )

    def __hash__(self):
        return hash(("FuncCall", self.name, self.args, self.distinct))

    def __repr__(self):
        distinct = "distinct " if self.distinct else ""
        args = ", ".join(repr(a) for a in self.args)
        return f"FuncCall({self.name}({distinct}{args}))"


class CaseExpr(Expr):
    """A searched CASE expression: ``CASE WHEN c THEN v ... ELSE d END``."""

    __slots__ = ("whens", "default")

    def __init__(
        self,
        whens: Sequence[tuple[Expr, Expr]],
        default: "Expr | None" = None,
    ):
        self.whens = tuple((cond, result) for cond, result in whens)
        self.default = default

    def children(self):
        parts: list[Expr] = []
        for cond, result in self.whens:
            parts.extend((cond, result))
        if self.default is not None:
            parts.append(self.default)
        return tuple(parts)

    def __eq__(self, other):
        return (
            isinstance(other, CaseExpr)
            and self.whens == other.whens
            and self.default == other.default
        )

    def __hash__(self):
        return hash(("CaseExpr", self.whens, self.default))

    def __repr__(self):
        branches = " ".join(
            f"WHEN {cond!r} THEN {result!r}" for cond, result in self.whens
        )
        default = f" ELSE {self.default!r}" if self.default else ""
        return f"CaseExpr({branches}{default})"


class QuantifiedComparison(Expr):
    """``expr op ALL (subquery)`` / ``expr op ANY (subquery)`` (Query 3)."""

    __slots__ = ("op", "left", "quantifier", "subquery")

    def __init__(self, op: str, left: Expr, quantifier: str, subquery: "Select"):
        self.op = op
        self.left = left
        self.quantifier = quantifier.upper()
        self.subquery = subquery

    def children(self):
        return (self.left,)

    def __eq__(self, other):
        return (
            isinstance(other, QuantifiedComparison)
            and (self.op, self.left, self.quantifier, self.subquery)
            == (other.op, other.left, other.quantifier, other.subquery)
        )

    def __hash__(self):
        return hash(
            ("Quantified", self.op, self.left, self.quantifier, id(self.subquery))
        )

    def __repr__(self):
        return (
            f"QuantifiedComparison({self.left!r} {self.op} "
            f"{self.quantifier}({self.subquery!r}))"
        )


class SelectItem:
    """One entry in a SELECT list: an expression with an optional alias."""

    __slots__ = ("expr", "alias")

    def __init__(self, expr: Expr, alias: str | None = None):
        self.expr = expr
        self.alias = alias

    def output_name(self, position: int) -> str:
        """The field name this item produces in result tuples.

        Explicit aliases win; bare column refs keep their name; aggregate
        calls use a canonical spelling (e.g. ``count(distinct tag_id)`` →
        ``count_distinct_tag_id``); anything else gets ``col<position>``.
        """
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, FuncCall):
            parts = [self.expr.name]
            if self.expr.distinct:
                parts.append("distinct")
            for arg in self.expr.args:
                if isinstance(arg, ColumnRef):
                    parts.append(arg.name)
                elif isinstance(arg, Star):
                    parts.append("star")
            return "_".join(parts)
        return f"col{position}"

    def __eq__(self, other):
        return (
            isinstance(other, SelectItem)
            and (self.expr, self.alias) == (other.expr, other.alias)
        )

    def __hash__(self):
        return hash(("SelectItem", self.expr, self.alias))

    def __repr__(self):
        alias = f" AS {self.alias}" if self.alias else ""
        return f"SelectItem({self.expr!r}{alias})"


class StreamRef:
    """A FROM-clause stream reference with optional alias and window."""

    __slots__ = ("name", "alias", "window")

    def __init__(
        self,
        name: str,
        alias: str | None = None,
        window: WindowSpec | None = None,
    ):
        self.name = name
        self.alias = alias
        self.window = window

    @property
    def binding(self) -> str:
        """The name this source is referenced by in expressions."""
        return self.alias or self.name

    def __eq__(self, other):
        return (
            isinstance(other, StreamRef)
            and (self.name, self.alias, self.window)
            == (other.name, other.alias, other.window)
        )

    def __hash__(self):
        return hash(("StreamRef", self.name, self.alias, self.window))

    def __repr__(self):
        alias = f" AS {self.alias}" if self.alias else ""
        window = f" {self.window!r}" if self.window else ""
        return f"StreamRef({self.name}{alias}{window})"


class SubquerySource:
    """A FROM-clause derived table: ``(SELECT ...) AS alias``."""

    __slots__ = ("select", "alias")

    def __init__(self, select: "Select", alias: str | None):
        self.select = select
        self.alias = alias

    @property
    def binding(self) -> str | None:
        return self.alias

    def __eq__(self, other):
        return (
            isinstance(other, SubquerySource)
            and (self.select, self.alias) == (other.select, other.alias)
        )

    def __hash__(self):
        return hash(("SubquerySource", id(self.select), self.alias))

    def __repr__(self):
        return f"SubquerySource(({self.select!r}) AS {self.alias})"


class Select:
    """A (possibly windowed, possibly unioned) SELECT statement.

    Attributes:
        items: The SELECT list; an empty list with ``star=True`` means
            ``SELECT *``.
        star: Whether the select list is ``*``.
        sources: FROM-clause entries (:class:`StreamRef` /
            :class:`SubquerySource`).
        where: Optional WHERE expression.
        group_by: Tuple of grouping :class:`ColumnRef` nodes.
        having: Optional HAVING expression (may contain aggregates and
            :class:`QuantifiedComparison`).
        union_with: Next SELECT in a UNION chain, or ``None``.
        union_all: Whether the union keeps duplicates. Stream union is
            always bag semantics here; the flag records the source text.
        stream_op: CQL relation-to-stream operator applied to the result:
            ``"ISTREAM"`` (rows inserted since the previous instant),
            ``"DSTREAM"`` (rows deleted since the previous instant),
            ``"RSTREAM"`` (the full relation each instant — the default
            behaviour), or ``None``.
    """

    __slots__ = (
        "items",
        "star",
        "sources",
        "where",
        "group_by",
        "having",
        "union_with",
        "union_all",
        "stream_op",
    )

    def __init__(
        self,
        items: Sequence[SelectItem],
        sources: Sequence["StreamRef | SubquerySource"],
        star: bool = False,
        where: Expr | None = None,
        group_by: Sequence[ColumnRef] = (),
        having: Expr | None = None,
        union_with: "Select | None" = None,
        union_all: bool = False,
        stream_op: str | None = None,
    ):
        self.items = list(items)
        self.star = star
        self.sources = list(sources)
        self.where = where
        self.group_by = tuple(group_by)
        self.having = having
        self.union_with = union_with
        self.union_all = union_all
        self.stream_op = stream_op

    def __eq__(self, other):
        if not isinstance(other, Select):
            return NotImplemented
        return (
            self.items == other.items
            and self.star == other.star
            and self.sources == other.sources
            and self.where == other.where
            and self.group_by == other.group_by
            and self.having == other.having
            and self.union_with == other.union_with
        )

    def __repr__(self):
        bits = [f"items={self.items!r}", f"sources={self.sources!r}"]
        if self.star:
            bits.append("star=True")
        if self.where is not None:
            bits.append(f"where={self.where!r}")
        if self.group_by:
            bits.append(f"group_by={self.group_by!r}")
        if self.having is not None:
            bits.append(f"having={self.having!r}")
        if self.union_with is not None:
            bits.append("union=...")
        return f"Select({', '.join(bits)})"


def find_aggregates(expr: Expr | None, aggregate_names: frozenset[str]) -> list[FuncCall]:
    """Return every aggregate call in ``expr``, in walk order.

    Nested aggregate calls are not supported (they are not valid SQL); the
    walk therefore does not descend into an aggregate's arguments.
    """
    if expr is None:
        return []
    found: list[FuncCall] = []

    def visit(node: Expr) -> None:
        if isinstance(node, FuncCall) and node.name in aggregate_names:
            found.append(node)
            return
        for child in node.children():
            visit(child)

    visit(expr)
    return found
