"""A CQL-subset continuous query compiler.

The paper expresses every ESP stage it deploys as a declarative continuous
query in CQL [6]. This subpackage implements the subset of CQL those
queries need, compiled onto :mod:`repro.streams` operators:

- windowed stream references — ``FROM s [Range By '5 sec']``,
  ``[Range By 'NOW']``, ``[Rows N]``;
- SELECT lists with expressions, aliases, literals and aggregate calls
  (including ``count(distinct x)``);
- WHERE / GROUP BY / HAVING, including the correlated
  ``HAVING count(*) >= ALL(SELECT ...)`` pattern of the paper's Query 3;
- subqueries and self-joins in FROM (the paper's Query 5 and Query 6);
- UNION [ALL] of selects;
- scalar functions (``coalesce``, ``abs``, ...) and user-registered UDFs.

Entry points:

- :func:`parse` — CQL text to AST.
- :func:`compile_query` — CQL text to a :class:`repro.cql.planner.CompiledQuery`
  operator, pluggable anywhere in an ESP pipeline or a Fjord DAG.
"""

from repro.cql.functions import get_function, register_function
from repro.cql.parser import parse
from repro.cql.planner import CompiledQuery, compile_query

__all__ = [
    "CompiledQuery",
    "compile_query",
    "get_function",
    "parse",
    "register_function",
]
