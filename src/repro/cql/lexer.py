"""Tokenizer for the CQL subset.

Splits query text into a flat token list consumed by the recursive-descent
parser. Tokens carry their source position so syntax errors can point at
the offending character.
"""

from __future__ import annotations

import re

from repro.errors import CQLSyntaxError

#: Keywords recognized case-insensitively. Everything else alphabetic is an
#: identifier. ``RANGE``/``BY``/``ROWS`` are contextual (only meaningful in
#: window brackets) but tokenized as keywords for simplicity.
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "AS",
        "AND",
        "OR",
        "NOT",
        "ALL",
        "ANY",
        "SOME",
        "DISTINCT",
        "UNION",
        "RANGE",
        "ROWS",
        "BETWEEN",
        "IN",
        "IS",
        "NULL",
        "LIKE",
        "ISTREAM",
        "DSTREAM",
        "RSTREAM",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\d+|\.\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|!=|<=|>=|=|<|>|\+|-|\*|/|%|\(|\)|\[|\]|,|\.|;)
    """,
    re.VERBOSE,
)


class Token:
    """A single lexical token.

    Attributes:
        kind: One of ``"keyword"``, ``"name"``, ``"number"``, ``"string"``,
            ``"op"``, ``"end"``.
        value: The token text. Keywords are upper-cased; string literals
            are unquoted and unescaped; numbers stay textual (the parser
            converts them).
        position: Character offset of the token in the query text.
    """

    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int):
        self.kind = kind
        self.value = value
        self.position = position

    def is_keyword(self, *names: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.kind == "keyword" and self.value in names

    def is_op(self, *ops: str) -> bool:
        """True if this token is one of the given operator spellings."""
        return self.kind == "op" and self.value in ops

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, @{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize CQL text.

    Returns the token list with a trailing ``end`` sentinel.

    Raises:
        CQLSyntaxError: On any character that starts no valid token.
    """
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise CQLSyntaxError(
                f"unexpected character {text[position]!r}", position=position
            )
        if match.lastgroup == "ws" or match.lastgroup == "comment":
            position = match.end()
            continue
        value = match.group()
        if match.lastgroup == "number":
            tokens.append(Token("number", value, position))
        elif match.lastgroup == "string":
            unquoted = value[1:-1].replace("\\'", "'").replace("\\\\", "\\")
            tokens.append(Token("string", unquoted, position))
        elif match.lastgroup == "name":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, position))
            else:
                tokens.append(Token("name", value, position))
        else:
            tokens.append(Token("op", value, position))
        position = match.end()
    tokens.append(Token("end", "", length))
    return tokens
