"""Evaluation metrics used in the paper's three deployments.

- :mod:`repro.metrics.error` — average relative error (paper Eq. 1),
  %-within-tolerance, restock-alert rate.
- :mod:`repro.metrics.epoch_yield` — epoch yield (§5.2).
- :mod:`repro.metrics.detection` — detection accuracy (§6.2).
"""

from repro.metrics.detection import detection_accuracy, detection_confusion
from repro.metrics.epoch_yield import epoch_yield, yield_by_entity
from repro.metrics.error import (
    alert_rate,
    average_relative_error,
    percent_within,
)

__all__ = [
    "alert_rate",
    "average_relative_error",
    "detection_accuracy",
    "detection_confusion",
    "epoch_yield",
    "percent_within",
    "yield_by_entity",
]
