"""Detection metrics for the digital-home deployment (paper §6.2).

The paper's headline number — "ESP is able to correctly indicate that a
person is in the room 92% of the time" — is the per-time-step agreement
between the detector's output and the occupancy ground truth.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError


def _as_bool_arrays(
    detected: Sequence[bool], truth: Sequence[bool]
) -> tuple[np.ndarray, np.ndarray]:
    detected_arr = np.asarray(detected, dtype=bool)
    truth_arr = np.asarray(truth, dtype=bool)
    if detected_arr.shape != truth_arr.shape:
        raise ReproError(
            f"shape mismatch: detected {detected_arr.shape} vs truth "
            f"{truth_arr.shape}"
        )
    if detected_arr.size == 0:
        raise ReproError("cannot compute detection metrics over zero steps")
    return detected_arr, truth_arr


def detection_accuracy(
    detected: Sequence[bool], truth: Sequence[bool]
) -> float:
    """Fraction of time steps where detection matches ground truth.

    Example:
        >>> detection_accuracy([True, False, True], [True, True, True])
        0.6666666666666666
    """
    detected_arr, truth_arr = _as_bool_arrays(detected, truth)
    return float(np.mean(detected_arr == truth_arr))


def detection_confusion(
    detected: Sequence[bool], truth: Sequence[bool]
) -> dict[str, int]:
    """Confusion counts: true/false positives and negatives.

    Useful when tuning the Virtualize vote threshold — a 1-of-3 vote
    trades false positives for misses relative to 2-of-3.
    """
    detected_arr, truth_arr = _as_bool_arrays(detected, truth)
    return {
        "true_positive": int(np.sum(detected_arr & truth_arr)),
        "false_positive": int(np.sum(detected_arr & ~truth_arr)),
        "false_negative": int(np.sum(~detected_arr & truth_arr)),
        "true_negative": int(np.sum(~detected_arr & ~truth_arr)),
    }
