"""Epoch yield (paper §5.2).

"Epoch yield describes the number of the readings reported to the
application as a fraction of the total number of readings the application
requested." For the redwood deployment the application requests one
reading per (entity, epoch) — entity being a mote before Merge and a
spatial granule after it.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError


def epoch_yield(reported_mask: Sequence[bool]) -> float:
    """Fraction of requested readings that were reported.

    Args:
        reported_mask: One boolean per requested (entity, epoch) slot.

    Example:
        >>> epoch_yield([True, False, True, True])
        0.75
    """
    mask = np.asarray(reported_mask, dtype=bool)
    if mask.size == 0:
        raise ReproError("cannot compute epoch yield over zero slots")
    return float(np.mean(mask))


def yield_by_entity(
    slots: Mapping[str, Sequence[bool]],
) -> dict[str, float]:
    """Per-entity epoch yield, e.g. per mote or per proximity group.

    Args:
        slots: Entity name → boolean reported mask over epochs.
    """
    if not slots:
        raise ReproError("no entities given")
    return {name: epoch_yield(mask) for name, mask in slots.items()}


def coverage_mask(
    reported_epochs: Iterable[int], n_epochs: int
) -> np.ndarray:
    """Boolean mask of which of ``n_epochs`` slots received a report."""
    if n_epochs <= 0:
        raise ReproError(f"n_epochs must be positive, got {n_epochs}")
    mask = np.zeros(n_epochs, dtype=bool)
    for epoch in reported_epochs:
        if 0 <= epoch < n_epochs:
            mask[epoch] = True
    return mask
