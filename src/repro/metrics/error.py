"""Error metrics for the RFID and environmental deployments.

:func:`average_relative_error` is the paper's Equation 1::

            N
    (1/N) * Σ  |R_i - T_i| / T_i
           i=0

where ``R_i`` is the reported value and ``T_i`` the true value at time
step ``i`` (the paper evaluates at the granularity of the reader, 5 Hz).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError


def _as_arrays(
    reported: Sequence[float], truth: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    reported_arr = np.asarray(reported, dtype=float)
    truth_arr = np.asarray(truth, dtype=float)
    if reported_arr.shape != truth_arr.shape:
        raise ReproError(
            f"shape mismatch: reported {reported_arr.shape} vs truth "
            f"{truth_arr.shape}"
        )
    if reported_arr.size == 0:
        raise ReproError("cannot compute a metric over zero time steps")
    return reported_arr, truth_arr


def average_relative_error(
    reported: Sequence[float], truth: Sequence[float]
) -> float:
    """The paper's Equation 1 over aligned time series.

    Raises:
        ReproError: On shape mismatch, empty input, or a zero true value
            (the metric is undefined there; the paper's shelf counts are
            always >= 10).

    Example:
        >>> average_relative_error([8, 12], [10, 10])
        0.2
    """
    reported_arr, truth_arr = _as_arrays(reported, truth)
    if np.any(truth_arr == 0):
        raise ReproError(
            "average relative error undefined where the true value is 0"
        )
    return float(np.mean(np.abs(reported_arr - truth_arr) / truth_arr))


def percent_within(
    reported: Sequence[float],
    reference: Sequence[float],
    tolerance: float,
) -> float:
    """Fraction of readings within ``tolerance`` of the reference.

    The paper's redwood accuracy criterion: "an error of less than 1°C is
    acceptable for trend analysis", reported as the percent of readings
    within 1 °C of the logged data (§5.2). Returned as a fraction in
    [0, 1].
    """
    reported_arr, reference_arr = _as_arrays(reported, reference)
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")
    return float(
        np.mean(np.abs(reported_arr - reference_arr) <= tolerance)
    )


def alert_rate(
    reported: Sequence[float],
    truth: Sequence[float],
    threshold: float,
    duration: float,
) -> float:
    """False restocking alerts per second (paper §1/§4).

    An alert fires at a time step when the reported count drops below
    ``threshold`` although the true count is at or above it. The paper:
    with raw data, "the query ... would report that a shelf is in need of
    restocking 2.3 times per second, on average" while "in reality, no
    restock alerts should have been generated".

    Args:
        reported: Reported counts, one per time step (concatenate shelves
            to get a deployment-wide rate, as the paper does).
        truth: True counts, aligned with ``reported``.
        threshold: Restock threshold (paper: 5 items).
        duration: Experiment length in seconds.
    """
    if duration <= 0:
        raise ReproError(f"duration must be positive, got {duration}")
    reported_arr, truth_arr = _as_arrays(reported, truth)
    false_alerts = np.sum((reported_arr < threshold) & (truth_arr >= threshold))
    return float(false_alerts / duration)
