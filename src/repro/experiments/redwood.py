"""Redwood yield-recovery experiment: the §5.2 numbers.

The paper reports, over its ~3.5-day all-motes-alive trace:

====================  ===========  =========================
stage                 epoch yield  readings within 1 °C of log
====================  ===========  =========================
raw                   40 %         (reference)
after Smooth          77 %         99 %
after Smooth + Merge  92 %         94 %
====================  ===========  =========================

Yield is per (mote, epoch) before Merge and per (granule, epoch) after
it — after Merge the application consumes one value per spatial granule
per epoch. Accuracy compares each reported value against the local log:
the mote's own log before Merge, the granule's pair-mean log after.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import epoch_yield, percent_within
from repro.pipelines.sensornet import build_redwood_processor
from repro.scenarios.redwood import RedwoodScenario


def _epoch_index(timestamp: float, epoch: float) -> int:
    return int(round(timestamp / epoch))


def section52(scenario: RedwoodScenario | None = None) -> dict:
    """Regenerate the §5.2 yield/accuracy table.

    Returns:
        Dict with ``raw_yield``, ``smooth_yield``, ``smooth_within_1c``,
        ``merge_yield``, ``merge_within_1c`` (fractions in [0, 1]) plus
        the slot counts backing them.
    """
    scenario = scenario or RedwoodScenario()
    recorded = scenario.recorded_streams()
    logs = scenario.logs()
    granule_logs = scenario.granule_logs()
    epochs = scenario.epochs()
    n_epochs = len(epochs)
    mote_ids = sorted(logs)
    granule_names = scenario.group_names()

    # Raw yield: delivered (mote, epoch) slots.
    raw_mask = np.zeros((len(mote_ids), n_epochs), dtype=bool)
    for row, mote_id in enumerate(mote_ids):
        for reading in recorded[mote_id]:
            raw_mask[row, reading["epoch"]] = True
    raw_yield = epoch_yield(raw_mask.ravel())

    # Smooth: per-mote sliding average over the expanded window.
    smooth_run = build_redwood_processor(
        scenario, use_smooth=True, use_merge=False
    ).run(until=scenario.duration, tick=scenario.epoch, sources=recorded)
    smooth_mask = np.zeros_like(raw_mask)
    smooth_errors: list[float] = []
    smooth_refs: list[float] = []
    mote_row = {mote_id: row for row, mote_id in enumerate(mote_ids)}
    for tuple_ in smooth_run.output:
        index = _epoch_index(tuple_.timestamp, scenario.epoch)
        row = mote_row[tuple_["mote_id"]]
        smooth_mask[row, index] = True
        smooth_errors.append(tuple_["temp"])
        smooth_refs.append(logs[tuple_["mote_id"]][index])
    smooth_yield = epoch_yield(smooth_mask.ravel())
    smooth_within = percent_within(smooth_errors, smooth_refs, 1.0)

    # Merge: per-granule spatial average of the smoothed streams.
    merge_run = build_redwood_processor(
        scenario, use_smooth=True, use_merge=True
    ).run(until=scenario.duration, tick=scenario.epoch, sources=recorded)
    granule_row = {name: row for row, name in enumerate(granule_names)}
    merge_mask = np.zeros((len(granule_names), n_epochs), dtype=bool)
    merge_errors: list[float] = []
    merge_refs: list[float] = []
    for tuple_ in merge_run.output:
        index = _epoch_index(tuple_.timestamp, scenario.epoch)
        row = granule_row[tuple_["spatial_granule"]]
        merge_mask[row, index] = True
        merge_errors.append(tuple_["temp"])
        merge_refs.append(granule_logs[tuple_["spatial_granule"]][index])
    merge_yield = epoch_yield(merge_mask.ravel())
    merge_within = percent_within(merge_errors, merge_refs, 1.0)

    return {
        "raw_yield": raw_yield,
        "smooth_yield": smooth_yield,
        "smooth_within_1c": smooth_within,
        "merge_yield": merge_yield,
        "merge_within_1c": merge_within,
        "n_motes": len(mote_ids),
        "n_granules": len(granule_names),
        "n_epochs": n_epochs,
    }
