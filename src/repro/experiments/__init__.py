"""Experiment drivers regenerating every table and figure in the paper.

Each function returns plain data (dicts of numpy arrays / floats) that
the benchmark harness prints and EXPERIMENTS.md records:

- :mod:`repro.experiments.rfid` — Figures 3, 5, 6 (§4).
- :mod:`repro.experiments.intel_lab` — Figure 7 (§5.1).
- :mod:`repro.experiments.redwood` — the §5.2 epoch-yield numbers.
- :mod:`repro.experiments.office` — Figure 9 and the 92 % accuracy (§6).
- :mod:`repro.experiments.runner` — one-shot runner over all of them.
"""

from repro.experiments.intel_lab import figure7
from repro.experiments.office import figure9
from repro.experiments.redwood import section52
from repro.experiments.rfid import figure3, figure5, figure6

__all__ = ["figure3", "figure5", "figure6", "figure7", "figure9", "section52"]
