"""Model-driven cleaning experiment (paper §6.3.1 / BBQ, future work).

The Merge ±1σ rule that cleans the Intel-lab fail-dirty mote (Figure 7)
needs spatial redundancy: at least two healthy motes in the proximity
group. A **single isolated mote** that fails dirty is beyond it — and
beyond Smooth too ("it cannot correct for extended errors within one
sensor", §5.1). The paper points at the fix: a BBQ-like model exploiting
*cross-sensor* correlations, e.g. battery voltage vs. temperature.

This experiment deploys exactly that: one lone
:class:`~repro.receptors.motes.MultiSensorMote` whose temperature
transducer fails dirty while its voltage sensor keeps tracking the real
(temperature-correlated) battery behaviour. The
:class:`~repro.core.operators.virtualize_ops.CorrelationModelCleaner`
learns the voltage→temperature model online and rejects the drifting
readings with no neighbours at all.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.operators.virtualize_ops import CorrelationModelCleaner
from repro.receptors.motes import FailDirtyModel, MultiSensorMote

DAY = 86400.0


def _room_temperature(now: float) -> float:
    return 22.0 + 3.0 * math.sin(2.0 * math.pi * (now / DAY - 0.25))


def _battery_voltage(now: float) -> float:
    # Mica-class boards: voltage readings co-vary with board temperature
    # (the BBQ correlation); plus a slow discharge over the trace.
    return 2.80 + 0.012 * (_room_temperature(now) - 22.0) - 1e-7 * now


def build_lone_mote(
    duration: float = 2 * DAY,
    sample_period: float = 60.0,
    failure_onset: float = 0.5 * DAY,
    drift_rate: float = 0.0009,
    seed: int = 20060712,
) -> MultiSensorMote:
    """The isolated two-sensor mote with a fail-dirty thermistor."""
    return MultiSensorMote(
        "lone_mote",
        fields={"temp": _room_temperature, "voltage": _battery_voltage},
        noise_std={"temp": 0.35, "voltage": 0.004},
        sample_period=sample_period,
        fail_dirty=FailDirtyModel(
            onset=failure_onset, drift_rate=drift_rate, noise_std=0.35
        ),
        fail_quantity="temp",
        rng=np.random.default_rng(seed),
    )


def model_based_comparison(
    duration: float = 2 * DAY,
    sample_period: float = 60.0,
    failure_onset: float = 0.5 * DAY,
    seed: int = 20060712,
) -> dict:
    """Raw vs. model-cleaned output of the lone fail-dirty mote.

    Returns:
        Dict with the raw and cleaned (time, temp) series, per-series
        tracking errors against the true room temperature after failure,
        the rejection count, and when the model first rejects.
    """
    mote = build_lone_mote(
        duration=duration,
        sample_period=sample_period,
        failure_onset=failure_onset,
        seed=seed,
    )
    cleaner = CorrelationModelCleaner(
        predictor="voltage", target="temp", k=4.0, alpha=0.02, warmup=60
    )
    raw_times, raw_temps = [], []
    clean_times, clean_temps = [], []
    first_post_onset_rejection = None
    pre_onset_rejections = 0
    pre_onset_readings = 0
    steps = int(round(duration / sample_period))
    for index in range(steps + 1):
        now = index * sample_period
        for reading in mote.poll(now):
            raw_times.append(now)
            raw_temps.append(reading["temp"])
            if now < failure_onset:
                pre_onset_readings += 1
            kept = cleaner.on_tuple(reading)
            if kept:
                clean_times.append(now)
                clean_temps.append(kept[0]["temp"])
            elif now < failure_onset:
                pre_onset_rejections += 1
            elif first_post_onset_rejection is None:
                first_post_onset_rejection = now
    raw_times = np.array(raw_times)
    raw_temps = np.array(raw_temps)
    clean_times = np.array(clean_times)
    clean_temps = np.array(clean_temps)

    def tracking_error(times, temps):
        mask = times >= failure_onset
        if not np.any(mask):
            return 0.0
        truth = np.array([_room_temperature(t) for t in times[mask]])
        return float(np.mean(np.abs(temps[mask] - truth)))

    return {
        "raw": (raw_times, raw_temps),
        "cleaned": (clean_times, clean_temps),
        "raw_error_after_failure": tracking_error(raw_times, raw_temps),
        "cleaned_error_after_failure": tracking_error(
            clean_times, clean_temps
        ),
        "rejected": int(len(raw_times) - len(clean_times)),
        "first_post_onset_rejection": first_post_onset_rejection,
        "pre_onset_false_rejection_rate": (
            pre_onset_rejections / max(1, pre_onset_readings)
        ),
        "failure_onset": failure_onset,
        "cleaned_coverage_after_failure": float(
            np.sum(clean_times >= failure_onset)
            / max(1, np.sum(raw_times >= failure_onset))
        ),
    }
