"""One-shot runner over every reproduced table and figure.

Used by ``examples/`` and by EXPERIMENTS.md regeneration. Each entry in
:data:`PAPER_VALUES` records what the paper reports so that the printed
report shows paper-vs-measured side by side.
"""

from __future__ import annotations

import io
from typing import Callable

from repro.experiments.intel_lab import figure7
from repro.experiments.office import figure9
from repro.experiments.redwood import section52
from repro.experiments.rfid import figure3, figure5, figure6

#: What the paper reports, for side-by-side comparison.
PAPER_VALUES = {
    "fig3_raw_error": 0.41,
    "fig3_raw_alert_rate_per_sec": 2.3,
    "fig3_smooth_error": 0.24,
    "fig3_arbitrate_error": 0.04,
    "fig5_order": (
        "smooth+arbitrate",
        "arbitrate+smooth",
        "smooth",
        "arbitrate",
        "raw",
    ),
    "fig6_best_granule_sec": 5.0,
    "sec52_raw_yield": 0.40,
    "sec52_smooth_yield": 0.77,
    "sec52_smooth_within_1c": 0.99,
    "sec52_merge_yield": 0.92,
    "sec52_merge_within_1c": 0.94,
    "fig9_accuracy": 0.92,
}


def run_all(fast: bool = False) -> dict:
    """Run every experiment; returns a dict of all results.

    Args:
        fast: Shrink the shelf scenario (shorter run, fewer granule
            sizes) for quick smoke runs; full scale matches the paper.
    """
    from repro.scenarios import ShelfScenario

    shelf = ShelfScenario(duration=200.0 if fast else 700.0)
    sizes = (0.5, 2.0, 5.0, 15.0, 30.0) if fast else None
    results: dict = {}
    results["figure3"] = figure3(shelf)
    results["figure5"] = figure5(shelf)
    results["figure6"] = (
        figure6(shelf, sizes) if sizes else figure6(shelf)
    )
    results["figure7"] = figure7()
    results["section52"] = section52()
    results["figure9"] = figure9()
    return results


def format_report(results: dict) -> str:
    """Render a paper-vs-measured report for the given results."""
    out = io.StringIO()
    say: Callable[[str], None] = lambda line: print(line, file=out)
    fig3 = results["figure3"]
    say("== Figure 3 / Section 4: RFID shelf cleaning ==")
    say(
        f"  raw:               err={fig3['errors']['raw']:.3f}"
        f"   (paper {PAPER_VALUES['fig3_raw_error']:.2f})"
    )
    say(
        f"  raw alerts/sec:    {fig3['raw_alert_rate_per_sec']:.2f}"
        f"    (paper {PAPER_VALUES['fig3_raw_alert_rate_per_sec']:.1f};"
        " truth: none)"
    )
    say(
        f"  smooth:            err={fig3['errors']['smooth']:.3f}"
        f"   (paper {PAPER_VALUES['fig3_smooth_error']:.2f})"
    )
    say(
        f"  smooth+arbitrate:  err={fig3['errors']['smooth_arbitrate']:.3f}"
        f"   (paper {PAPER_VALUES['fig3_arbitrate_error']:.2f})"
    )
    say("== Figure 5: pipeline configurations ==")
    for config, err in sorted(results["figure5"].items(), key=lambda kv: kv[1]):
        say(f"  {config:18s} err={err:.3f}")
    say("== Figure 6: temporal granule sweep ==")
    best = min(results["figure6"], key=results["figure6"].get)
    for size, err in sorted(results["figure6"].items()):
        marker = "  <-- best" if size == best else ""
        say(f"  granule {size:5.1f}s err={err:.3f}{marker}")
    say(f"  (paper's best: ~{PAPER_VALUES['fig6_best_granule_sec']:.0f}s)")
    fig7 = results["figure7"]
    say("== Figure 7: fail-dirty outlier detection ==")
    say(f"  failure onset:               t={fig7['failure_onset']:.0f}s")
    say(f"  ESP eliminates outlier at:   t={fig7['esp_elimination_time']:.0f}s")
    say(
        "  tracking error after failure: "
        f"ESP {fig7['esp_tracking_error_after_failure']:.2f}C vs naive "
        f"average {fig7['naive_tracking_error_after_failure']:.2f}C"
    )
    sec52 = results["section52"]
    say("== Section 5.2: redwood epoch yield ==")
    say(
        f"  raw yield:    {sec52['raw_yield']:.2f}"
        f"  (paper {PAPER_VALUES['sec52_raw_yield']:.2f})"
    )
    say(
        f"  smooth yield: {sec52['smooth_yield']:.2f}"
        f"  (paper {PAPER_VALUES['sec52_smooth_yield']:.2f}),"
        f" within 1C: {sec52['smooth_within_1c']:.2f}"
        f" (paper {PAPER_VALUES['sec52_smooth_within_1c']:.2f})"
    )
    say(
        f"  merge yield:  {sec52['merge_yield']:.2f}"
        f"  (paper {PAPER_VALUES['sec52_merge_yield']:.2f}),"
        f" within 1C: {sec52['merge_within_1c']:.2f}"
        f" (paper {PAPER_VALUES['sec52_merge_within_1c']:.2f})"
    )
    fig9 = results["figure9"]
    say("== Figure 9 / Section 6.2: person detector ==")
    say(
        f"  detection accuracy: {fig9['accuracy']:.2f}"
        f"  (paper {PAPER_VALUES['fig9_accuracy']:.2f})"
    )
    return out.getvalue()
