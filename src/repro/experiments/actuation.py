"""Closed-loop actuation experiment (paper §5.3.1, future work).

The redwood deployment's Smooth was handicapped by its fixed 5-minute
sampling: during a loss burst there is exactly one delivery attempt per
granule, so the only fix is window expansion (with its staleness cost).
Here we close the loop the paper asks for: ESP observes each granule's
delivery outcome and actuates the mote's sample rate.

Three arms over identical channel dynamics:

- **fixed** — one sample per granule (the paper's deployment);
- **actuated** — AIMD rate control between one sample per granule and
  ``speedup`` samples per granule;
- **always-fast** — permanently at the maximum rate (the energy
  ceiling actuation should stay under).

Metrics: granule yield (fraction of granules with >= 1 delivered
reading) and energy (total samples taken, normalized to fixed).
"""

from __future__ import annotations

import numpy as np

from repro.receptors.actuation import ActuatableMote, YieldActuationController
from repro.receptors.base import require_rng
from repro.receptors.network import GilbertElliottChannel


def _make_mote(mote_id, granule, speedup, rng):
    channel = GilbertElliottChannel.with_target_yield(
        target_yield=0.40,
        mean_bad_epochs=9.0,
        rng=np.random.default_rng(rng.integers(2**63)),
    )
    return ActuatableMote(
        mote_id,
        min_period=granule / speedup,
        max_period=granule,
        field=lambda now: 15.0 + 5.0 * np.sin(2 * np.pi * now / 86400.0),
        quantity="temp",
        noise_std=0.1,
        channel=channel,
        rng=np.random.default_rng(rng.integers(2**63)),
    )


def _run_arm(policy, n_motes, granules, granule, speedup, seed):
    """One closed-loop run; returns (yield, samples_taken)."""
    rng = require_rng(seed)
    motes = [
        _make_mote(f"mote{i}", granule, speedup, rng) for i in range(n_motes)
    ]
    controller = YieldActuationController(
        patience=3, relax_step=granule / speedup
    )
    if policy == "always_fast":
        for mote in motes:
            mote.set_sample_period(mote.min_period)
    tick = granule / speedup
    ticks_per_granule = int(round(granule / tick))
    delivered = np.zeros((n_motes, granules), dtype=bool)
    samples = 0
    for g in range(granules):
        for step in range(ticks_per_granule):
            now = g * granule + step * tick
            for index, mote in enumerate(motes):
                if mote.due(now):
                    samples += 1
                    if mote.sample_if_due(now):
                        delivered[index, g] = True
        if policy == "actuated":
            for index, mote in enumerate(motes):
                controller.observe(mote, bool(delivered[index, g]))
    return float(delivered.mean()), samples


def actuation_comparison(
    n_motes: int = 12,
    granules: int = 400,
    granule: float = 300.0,
    speedup: int = 5,
    seed: int = 20060701,
) -> dict:
    """Run the three arms on statistically identical deployments.

    Returns:
        Dict with per-arm ``(granule yield, energy relative to fixed)``
        plus the raw sample counts.
    """
    results = {}
    sample_counts = {}
    for policy in ("fixed", "actuated", "always_fast"):
        granule_yield, samples = _run_arm(
            policy, n_motes, granules, granule, speedup, seed
        )
        results[policy] = granule_yield
        sample_counts[policy] = samples
    fixed_samples = sample_counts["fixed"]
    return {
        "yield": results,
        "energy": {
            policy: count / fixed_samples
            for policy, count in sample_counts.items()
        },
        "samples": sample_counts,
        "speedup": speedup,
    }
