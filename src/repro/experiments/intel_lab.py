"""Intel-lab outlier-detection experiment: Figure 7 (paper §5.1).

Figure 7 plots, over a ~2-day window containing one fail-dirty mote:

- the three motes' individual readings (one climbing past 100 °C);
- the naive average over all three (dragged upward by the outlier);
- ESP's output (Point < 50 °C + Merge ±1σ), which tracks the two
  functioning motes and starts excluding the outlier well before the
  Point threshold engages.
"""

from __future__ import annotations

import numpy as np

from repro.pipelines.sensornet import build_outlier_processor
from repro.scenarios.intel_lab import IntelLabScenario


def _series(tuples, value_field: str) -> tuple[np.ndarray, np.ndarray]:
    times = np.array([t.timestamp for t in tuples])
    values = np.array([t[value_field] for t in tuples])
    return times, values


def figure7(scenario: IntelLabScenario | None = None) -> dict:
    """Regenerate Figure 7's five series plus summary diagnostics.

    Returns:
        Dict with per-mote raw series, the naive ``average`` series, the
        ``esp`` output series, the failure onset, the time ESP first
        excludes the outlier (``esp_elimination_time``), the time the
        naive average first errs by more than 1 °C, and tracking errors
        of both methods against the functioning motes' mean after
        failure.
    """
    scenario = scenario or IntelLabScenario()
    recorded = scenario.recorded_streams()
    raw = {
        mote_id: _series(readings, "temp")
        for mote_id, readings in recorded.items()
    }
    esp = build_outlier_processor(scenario, use_point=True, use_merge=True)
    esp_run = esp.run(
        until=scenario.duration,
        tick=scenario.sample_period,
        sources=recorded,
    )
    esp_times, esp_values = _series(esp_run.output, "temp")
    avg_times, avg_values = _plain_window_average(scenario, recorded)
    functioning = _functioning_mean(scenario, recorded, avg_times)
    after_failure = avg_times >= scenario.failure_onset
    naive_err = np.abs(avg_values - functioning)
    esp_on_avg_grid = np.interp(avg_times, esp_times, esp_values)
    esp_err = np.abs(esp_on_avg_grid - functioning)
    elimination = _first_time(
        avg_times, after_failure & (esp_err < 0.5) & (naive_err > 0.5)
    )
    naive_off = _first_time(avg_times, after_failure & (naive_err > 1.0))
    return {
        "raw": raw,
        "average": (avg_times, avg_values),
        "esp": (esp_times, esp_values),
        "failure_onset": scenario.failure_onset,
        "esp_elimination_time": elimination,
        "naive_exceeds_1c_time": naive_off,
        "esp_tracking_error_after_failure": float(
            np.mean(esp_err[after_failure])
        ),
        "naive_tracking_error_after_failure": float(
            np.mean(naive_err[after_failure])
        ),
        "outlier_peak": float(
            max(raw["mote3"][1].max(), esp_values.max())
        ),
    }


def _plain_window_average(scenario, recorded):
    """The figure's 'Average' line: windowed mean over all three motes."""
    window = scenario.temporal_granule.window_seconds
    ticks = scenario.ticks()
    all_readings = sorted(
        (r for readings in recorded.values() for r in readings),
        key=lambda r: r.timestamp,
    )
    times, values = [], []
    index = 0
    buffer: list = []
    for now in ticks:
        while (
            index < len(all_readings)
            and all_readings[index].timestamp <= now + 1e-9
        ):
            buffer.append(all_readings[index])
            index += 1
        buffer = [r for r in buffer if r.timestamp > now - window + 1e-9]
        if buffer:
            times.append(now)
            values.append(float(np.mean([r["temp"] for r in buffer])))
    return np.array(times), np.array(values)


def _functioning_mean(scenario, recorded, grid: np.ndarray) -> np.ndarray:
    """Mean of the two functioning motes, interpolated onto ``grid``."""
    series = []
    for mote_id in ("mote1", "mote2"):
        times = np.array([r.timestamp for r in recorded[mote_id]])
        values = np.array([r["temp"] for r in recorded[mote_id]])
        series.append(np.interp(grid, times, values))
    return np.mean(series, axis=0)


def _first_time(times: np.ndarray, mask: np.ndarray) -> float | None:
    hits = np.flatnonzero(mask)
    if hits.size == 0:
        return None
    return float(times[hits[0]])
