"""RFID shelf experiments: Figures 3, 5 and 6 (paper §4).

All configurations replay the scenario's single cached recording, so the
comparisons isolate the pipeline rather than the random draw — matching
the paper's methodology of running one physical experiment and analyzing
its data under different pipelines.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.granules import TemporalGranule
from repro.metrics import alert_rate, average_relative_error
from repro.pipelines.rfid_shelf import SHELF_CONFIGS, query1_counts
from repro.scenarios.shelf import ShelfScenario

#: Restock-alert threshold used in the paper's §1/§4 anecdote.
RESTOCK_THRESHOLD = 5.0


def _flatten(
    counts: Mapping[str, np.ndarray], order: Sequence[str]
) -> np.ndarray:
    return np.concatenate([np.asarray(counts[name]) for name in order])


def shelf_error(
    counts: Mapping[str, np.ndarray], truth: Mapping[str, np.ndarray]
) -> float:
    """Average relative error (Eq. 1) across both shelves."""
    order = sorted(truth)
    return average_relative_error(
        _flatten(counts, order), _flatten(truth, order)
    )


def figure3(scenario: ShelfScenario | None = None) -> dict:
    """Figure 3: shelf-count traces under successive cleaning stages.

    Returns:
        Dict with ``ticks``, the four traces (``reality``, ``raw``,
        ``smooth``, ``smooth_arbitrate`` — each granule → array), the
        corresponding average relative errors, and the raw restock alert
        rate (the §1 anecdote).
    """
    scenario = scenario or ShelfScenario()
    truth = scenario.truth_series()
    order = sorted(truth)
    traces = {"reality": truth}
    errors: dict[str, float] = {}
    for key, config in (
        ("raw", "raw"),
        ("smooth", "smooth"),
        ("smooth_arbitrate", "smooth+arbitrate"),
    ):
        counts = query1_counts(scenario, config)
        traces[key] = counts
        errors[key] = shelf_error(counts, truth)
    raw_alerts = alert_rate(
        _flatten(traces["raw"], order),
        _flatten(truth, order),
        RESTOCK_THRESHOLD,
        scenario.duration,
    )
    clean_alerts = alert_rate(
        _flatten(traces["smooth_arbitrate"], order),
        _flatten(truth, order),
        RESTOCK_THRESHOLD,
        scenario.duration,
    )
    return {
        "ticks": scenario.ticks(),
        "traces": traces,
        "errors": errors,
        "raw_alert_rate_per_sec": raw_alerts,
        "cleaned_alert_rate_per_sec": clean_alerts,
    }


def figure5(
    scenario: ShelfScenario | None = None,
    configs: Sequence[str] = SHELF_CONFIGS,
) -> dict[str, float]:
    """Figure 5: average relative error per pipeline configuration.

    Returns:
        Config name → average relative error, over the identical
        recorded data.
    """
    scenario = scenario or ShelfScenario()
    truth = scenario.truth_series()
    return {
        config: shelf_error(query1_counts(scenario, config), truth)
        for config in configs
    }


#: Paper Figure 6's x-axis, in seconds. 0.2 s is a single reader poll —
#: a window that cannot smooth at all, so its error approaches raw.
DEFAULT_GRANULE_SIZES = (0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0)


def figure6(
    scenario: ShelfScenario | None = None,
    granule_sizes: Sequence[float] = DEFAULT_GRANULE_SIZES,
) -> dict[float, float]:
    """Figure 6: error of the full pipeline vs. temporal granule size.

    The paper's finding is a U-shape: very small windows under-smooth
    (dropped readings leak through to the count) and very large windows
    over-smooth (relocations blur across the window), with the sweet
    spot near 5 seconds.

    Returns:
        Granule size (seconds) → average relative error.
    """
    scenario = scenario or ShelfScenario()
    truth = scenario.truth_series()
    out: dict[float, float] = {}
    for size in granule_sizes:
        granule = TemporalGranule(float(size))
        counts = query1_counts(
            scenario, "smooth+arbitrate", granule=granule
        )
        out[float(size)] = shelf_error(counts, truth)
    return out
