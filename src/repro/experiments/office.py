"""Digital-home person-detector experiment: Figure 9 and §6.2's 92 %.

Figure 9 shows (a) the occupancy ground truth, (b–d) the raw streams of
the three receptor technologies, and (e) ESP's output after per-
technology cleaning plus the Virtualize vote. The headline result is the
fraction of time ESP's occupancy indication matches reality — 92 % in
the paper.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import detection_accuracy, detection_confusion
from repro.pipelines.digital_home import build_digital_home_processor
from repro.scenarios.office import OfficeScenario


def figure9(
    scenario: OfficeScenario | None = None,
    threshold: int = 2,
    step: float = 1.0,
) -> dict:
    """Regenerate Figure 9's panels and the detection accuracy.

    Args:
        scenario: The office scenario.
        threshold: Virtualize vote threshold (paper: 2).
        step: Evaluation step for the accuracy series, seconds.

    Returns:
        Dict with the ground-truth square wave, per-antenna raw tag
        counts, per-mote raw sound series, raw X10 event times, the ESP
        detection series, and accuracy/confusion statistics.
    """
    scenario = scenario or OfficeScenario()
    recorded = scenario.recorded_streams()
    ticks = scenario.ticks(step)
    truth = scenario.truth_series(step) > 0.5

    # Panel (b): raw per-antenna distinct-tag counts per evaluation step.
    rfid_counts: dict[str, np.ndarray] = {}
    for reader_id in ("office_reader0", "office_reader1"):
        buckets = [set() for _ in ticks]
        for reading in recorded[reader_id]:
            index = int(reading.timestamp // step)
            if index < len(buckets):
                buckets[index].add(reading["tag_id"])
        rfid_counts[reader_id] = np.array(
            [len(bucket) for bucket in buckets], dtype=float
        )

    # Panel (c): raw sound series per mote.
    sound: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for mote_id in ("sound_mote1", "sound_mote2", "sound_mote3"):
        readings = recorded[mote_id]
        sound[mote_id] = (
            np.array([r.timestamp for r in readings]),
            np.array([r["noise"] for r in readings]),
        )

    # Panel (d): raw X10 event marks.
    x10_events = {
        sensor_id: np.array([r.timestamp for r in recorded[sensor_id]])
        for sensor_id in ("x10_1", "x10_2", "x10_3")
    }

    # Panel (e): ESP output.
    processor = build_digital_home_processor(scenario, threshold=threshold)
    run = processor.run(
        until=scenario.duration, tick=0.5, sources=recorded
    )
    detected = np.zeros(len(ticks), dtype=bool)
    for event in run.output:
        index = int(event.timestamp // step)
        if index < len(detected):
            detected[index] = True

    accuracy = detection_accuracy(detected, truth)
    return {
        "ticks": ticks,
        "truth": truth,
        "rfid_counts": rfid_counts,
        "sound": sound,
        "x10_events": x10_events,
        "detected": detected,
        "accuracy": accuracy,
        "confusion": detection_confusion(detected, truth),
        "n_detections": len(run.output),
    }


def threshold_sweep(
    scenario: OfficeScenario | None = None,
    thresholds: tuple[int, ...] = (1, 2, 3),
) -> dict[int, float]:
    """Virtualize vote-threshold sensitivity (DESIGN.md ablation 5).

    Returns:
        Threshold → detection accuracy on the identical recording.
    """
    scenario = scenario or OfficeScenario()
    out: dict[int, float] = {}
    for threshold in thresholds:
        out[threshold] = figure9(scenario, threshold=threshold)["accuracy"]
    return out
