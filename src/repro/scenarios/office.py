"""The digital-home "person detector" scenario (paper §6, Figures 8–9).

An office instrumented with three receptor technologies, all monitoring
one spatial granule (the office):

- **2 RFID readers** (one proximity group) watching for the badge tags a
  person carries. The paper's Query 6 votes when ``count(distinct
  tag_id) > 1``, so the person carries several tags (a badge with
  multiple EPC tags); antenna 1 "occasionally reads an errant tag that is
  not part of the experiment", filtered by a Point-stage whitelist join;
- **3 sound motes** (a second proximity group) whose noise readings rise
  while the person is in the room talking;
- **3 X10 motion detectors** (a third group) with frequent missed and
  spurious ON events.

Ground truth: one person moves in and out of the office at one-minute
intervals for 600 seconds, starting inside.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.receptors.base import require_rng
from repro.receptors.motes import Mote
from repro.receptors.registry import DeviceRegistry
from repro.receptors.rfid import DetectionField, RFIDReader, TagPlacement
from repro.receptors.x10 import X10MotionDetector
from repro.streams.tuples import StreamTuple

#: Sound level (arbitrary ADC units) used by the paper's Query 6 threshold.
NOISE_THRESHOLD = 525.0


class OfficeScenario:
    """The instrumented office with a walking, talking occupant.

    Args:
        duration: Experiment length (paper: 600 s).
        period: Seconds per in/out phase (paper: one minute).
        badge_tags: Number of EPC tags on the person's badge (> 1 so the
            paper's ``count(distinct tag_id) > 1`` vote can fire).
        tag_distance: Badge-to-antenna distance while in the room, feet.
        rfid_hz: Reader poll rate.
        quiet_noise / talking_noise: Sound-mote levels (ADC units) when
            the room is empty / occupied; Figure 9(c) shows a ~500
            baseline with excursions toward 1000.
        noise_std_quiet / noise_std_talking: Sound variability.
        x10_detect / x10_false: X10 hit and false-alarm probabilities per
            1-second poll.
        seed: Experiment seed.

    Attributes:
        registry: Three proximity groups over the single ``office``
            granule.
        temporal_granule: 10-second granule used by the per-receptor
            Smooth stages.
        expected_tags: The badge tag IDs (the Point whitelist relation).
    """

    def __init__(
        self,
        duration: float = 600.0,
        period: float = 60.0,
        badge_tags: int = 3,
        tag_distance: float = 6.0,
        rfid_hz: float = 2.0,
        quiet_noise: float = 495.0,
        talking_noise: float = 640.0,
        noise_std_quiet: float = 18.0,
        noise_std_talking: float = 110.0,
        x10_detect: float = 0.30,
        x10_false: float = 0.01,
        seed: int = 20060618,
    ):
        self.duration = float(duration)
        self.period = float(period)
        self.badge_tags = int(badge_tags)
        self.tag_distance = float(tag_distance)
        self.rfid_period = 1.0 / float(rfid_hz)
        self.quiet_noise = float(quiet_noise)
        self.talking_noise = float(talking_noise)
        self.noise_std_quiet = float(noise_std_quiet)
        self.noise_std_talking = float(noise_std_talking)
        self.x10_detect = float(x10_detect)
        self.x10_false = float(x10_false)
        # An 8-second granule balances interpolation of the flaky
        # receptors against detection lag at the one-minute in/out
        # transitions — the same tension as the shelf deployment's
        # Figure 6, here landing ESP at the paper's ~92 % accuracy.
        self.temporal_granule = TemporalGranule("8 sec")
        self._rng = require_rng(seed)
        self._recorded: dict[str, list[StreamTuple]] | None = None
        self.granule = SpatialGranule("office")
        self.expected_tags = tuple(
            f"badge_{index}" for index in range(self.badge_tags)
        )
        self.registry = self._build_registry()

    # -- ground truth -----------------------------------------------------------

    def occupied(self, now: float) -> bool:
        """Whether the person is in the office at ``now``.

        In for the first ``period`` seconds, out for the next, and so on
        (Figure 9(a)).
        """
        return int(math.floor(now / self.period + 1e-9)) % 2 == 0

    def ticks(self, step: float = 1.0) -> np.ndarray:
        """Evaluation instants (default 1 Hz)."""
        steps = int(round(self.duration / step))
        return np.arange(steps + 1) * step

    def truth_series(self, step: float = 1.0) -> np.ndarray:
        """Occupancy (0/1) at each evaluation instant."""
        return np.array(
            [1.0 if self.occupied(t) else 0.0 for t in self.ticks(step)]
        )

    # -- construction ------------------------------------------------------------

    def _sound_level(self, now: float, rng: np.random.Generator) -> float:
        # Sound is sampled by each mote independently; the *field* closure
        # has no RNG, so variability is injected through Mote.noise_std.
        # The field itself carries the occupancy-driven mean shift.
        if self.occupied(now):
            return self.talking_noise
        return self.quiet_noise

    def _build_registry(self) -> DeviceRegistry:
        registry = DeviceRegistry()
        # RFID: two readers, one proximity group.
        rfid_group = registry.add_group(
            "office_readers", self.granule, receptor_kind="rfid"
        )
        badge = [
            TagPlacement(tag_id, self._badge_distance())
            for tag_id in self.expected_tags
        ]
        errant = TagPlacement("errant_foreign_tag", self._errant_distance())
        for index in range(2):
            tags = badge + ([errant] if index == 1 else [])
            reader = RFIDReader(
                f"office_reader{index}",
                shelf="office",
                tags=tags,
                field=DetectionField.default(),
                gain=1.0 if index == 0 else 0.85,
                sample_period=self.rfid_period,
                rng=np.random.default_rng(self._rng.integers(2**63)),
            )
            registry.assign(reader, rfid_group.name)
        # Sound motes: three motes, one proximity group. The occupied /
        # empty variance difference is modelled by a talking-amplitude
        # sine wobble on top of the base level.
        mote_group = registry.add_group(
            "office_motes", self.granule, receptor_kind="mote"
        )
        for index in range(1, 4):
            mote = Mote(
                f"sound_mote{index}",
                field=self._sound_field(index),
                quantity="noise",
                sample_period=1.0,
                noise_std=self.noise_std_quiet,
                rng=np.random.default_rng(self._rng.integers(2**63)),
            )
            registry.assign(mote, mote_group.name)
        # X10 motion detectors: three, one proximity group.
        x10_group = registry.add_group(
            "office_x10", self.granule, receptor_kind="x10"
        )
        for index in range(1, 4):
            detector = X10MotionDetector(
                f"x10_{index}",
                occupied=self.occupied,
                detect_probability=self.x10_detect,
                false_on_probability=self.x10_false,
                sample_period=1.0,
                rng=np.random.default_rng(self._rng.integers(2**63)),
            )
            registry.assign(detector, x10_group.name)
        return registry

    def _badge_distance(self):
        def distance_to(_reader_id: str, now: float) -> float:
            if self.occupied(now):
                return self.tag_distance
            return float("inf")

        return distance_to

    def _errant_distance(self):
        # A tag in the neighbouring office: far, read only occasionally,
        # and only by antenna 1 (which is the only reader given it).
        def distance_to(_reader_id: str, _now: float) -> float:
            return 9.5

        return distance_to

    def _sound_field(self, index: int):
        wobble_phase = index * 1.7

        def field(now: float) -> float:
            if not self.occupied(now):
                return self.quiet_noise
            # Speech is bursty: a positive-biased oscillation whose
            # excursions reach toward the ~1000 peaks of Figure 9(c).
            burst = abs(
                math.sin(2.0 * math.pi * now / 7.0 + wobble_phase)
            )
            extra = (self.noise_std_talking - self.noise_std_quiet) * burst
            return self.talking_noise + extra

        return field

    # -- recorded raw data ----------------------------------------------------------

    def recorded_streams(self) -> dict[str, list[StreamTuple]]:
        """One fixed recording of all nine devices' raw streams (cached)."""
        if self._recorded is None:
            self._recorded = {
                device.receptor_id: list(device.stream(self.duration))
                for device in self.registry.devices
            }
        return self._recorded
