"""The RFID retail-shelf scenario (paper §4, Figures 2–6).

Physical setup reproduced from the paper's Figure 2:

- two shelves, each monitored by one RFID reader polling at 5 Hz; each
  reader is its own proximity group and each shelf is a spatial granule;
- 10 tagged items statically placed on each shelf — 5 at 3 feet and 5 at
  6 feet from the antenna;
- 5 additional tagged items placed 9 feet from the reader, relocated
  between the two shelves every 40 seconds (the dynamic component);
- the experiment runs ~700 seconds.

Substitution notes (DESIGN.md): detection is per-poll Bernoulli with the
probability from :class:`repro.receptors.rfid.DetectionField` at the
tag's current distance, scaled by a per-reader antenna gain. Shelf 0's
antenna is the stronger one — the asymmetry the paper traced to "known
issues with the antenna ports" [2] and corrected with Arbitrate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.receptors.base import require_rng
from repro.receptors.registry import DeviceRegistry
from repro.receptors.rfid import DetectionField, RFIDReader, TagPlacement
from repro.streams.tuples import StreamTuple

#: Distance (feet) from a static tag to the *other* shelf's reader.
FOREIGN_STATIC_DISTANCE = 13.0
#: Distance from a relocated tag to its current shelf's reader (paper: 9 ft).
RELOCATED_HOME_DISTANCE = 9.0
#: Distance from a relocated tag to the other shelf's reader.
RELOCATED_FOREIGN_DISTANCE = 11.0

#: Per-reader detection fields. The same reader model behaves very
#: differently through its two antenna ports (paper §4.1, [2]): shelf 0's
#: antenna is "hot" — a long sensitivity tail that keeps reading the
#: relocated items after they move away and occasionally reaches shelf
#: 1's static tags — while shelf 1's antenna is weak, barely covering
#: its own 9-foot relocated items. These tails are what make Smooth alone
#: leave shelf 0 reading 4–5 items high, and what Arbitrate's
#: read-count comparison then corrects.
STRONG_ANTENNA_ANCHORS = (
    (0.0, 0.92),
    (3.0, 0.85),
    (6.0, 0.68),
    (9.0, 0.30),
    (11.0, 0.030),
    (13.0, 0.012),
    (16.0, 0.0005),
    (20.0, 0.0),
)
WEAK_ANTENNA_ANCHORS = (
    (0.0, 0.80),
    (3.0, 0.62),
    (6.0, 0.42),
    (9.0, 0.060),
    (11.0, 0.002),
    (13.0, 0.0008),
    (20.0, 0.0),
)


class ShelfScenario:
    """The two-shelf RFID monitoring experiment.

    Args:
        duration: Experiment length in seconds (paper: ~700 s).
        poll_hz: Reader sample rate (paper: 5 Hz).
        relocate_period: Seconds between relocations of the dynamic items
            (paper: 40 s).
        static_per_shelf: Static items per shelf (paper: 10 — half at
            3 ft, half at 6 ft).
        relocated_items: Items cycling between shelves (paper: 5).
        fields: Detection field per reader; the defaults
            (:data:`STRONG_ANTENNA_ANCHORS` for shelf 0,
            :data:`WEAK_ANTENNA_ANCHORS` for shelf 1) reproduce the
            paper's shelf-0-reads-high asymmetry.
        ghost_rate: Per-poll spurious-tag probability per reader.
        seed: Experiment seed (all randomness derives from it).

    Attributes:
        registry: Deployment metadata with both readers assigned.
        temporal_granule: The application's 5-second granule (Query 1).
        strength: Granule name → antenna gain, for the Arbitrate
            weaker-antenna tie-break (§4.3.1).
    """

    def __init__(
        self,
        duration: float = 700.0,
        poll_hz: float = 5.0,
        relocate_period: float = 40.0,
        static_per_shelf: int = 10,
        relocated_items: int = 5,
        fields: tuple[DetectionField, DetectionField] | None = None,
        ghost_rate: float = 0.003,
        seed: int = 20060405,
    ):
        self.duration = float(duration)
        self.poll_period = 1.0 / float(poll_hz)
        self.relocate_period = float(relocate_period)
        self.static_per_shelf = int(static_per_shelf)
        self.relocated_items = int(relocated_items)
        if fields is None:
            fields = (
                DetectionField(STRONG_ANTENNA_ANCHORS),
                DetectionField(WEAK_ANTENNA_ANCHORS),
            )
        self.fields = fields
        self.temporal_granule = TemporalGranule("5 sec")
        self._rng = require_rng(seed)
        self._recorded: dict[str, list[StreamTuple]] | None = None

        self.granules = (SpatialGranule("shelf0"), SpatialGranule("shelf1"))
        # Antenna strength ordering for Arbitrate's weaker-antenna
        # tie-break (§4.3.1): shelf 0 carries the strong antenna.
        self.strength = {"shelf0": 1.0, "shelf1": 0.6}
        self._tags = self._build_tags()
        self.registry = self._build_registry(ghost_rate)

    # -- ground truth -----------------------------------------------------------

    def relocated_shelf(self, now: float) -> int:
        """Which shelf holds the relocated items at time ``now``.

        They start on shelf 0 and swap every ``relocate_period`` seconds.
        """
        return int(math.floor(now / self.relocate_period + 1e-9)) % 2

    def true_count(self, now: float, shelf: int) -> int:
        """Ground-truth item count for ``shelf`` at ``now`` (Figure 3(a))."""
        count = self.static_per_shelf
        if self.relocated_shelf(now) == shelf:
            count += self.relocated_items
        return count

    def ticks(self) -> np.ndarray:
        """All reader-granularity time steps of the experiment."""
        steps = int(round(self.duration / self.poll_period))
        return np.arange(steps + 1) * self.poll_period

    def truth_series(self) -> dict[str, np.ndarray]:
        """Ground-truth counts per shelf at every tick."""
        ticks = self.ticks()
        return {
            f"shelf{shelf}": np.array(
                [self.true_count(t, shelf) for t in ticks], dtype=float
            )
            for shelf in (0, 1)
        }

    # -- construction ------------------------------------------------------------

    def _build_tags(self) -> list[TagPlacement]:
        tags: list[TagPlacement] = []
        for shelf in (0, 1):
            for index in range(self.static_per_shelf):
                own_distance = 3.0 if index < self.static_per_shelf // 2 else 6.0
                tags.append(
                    TagPlacement(
                        f"s{shelf}_{index:02d}",
                        self._static_distance(shelf, own_distance),
                    )
                )
        for index in range(self.relocated_items):
            tags.append(
                TagPlacement(f"r_{index:02d}", self._relocated_distance())
            )
        return tags

    def _static_distance(self, shelf: int, own_distance: float):
        def distance_to(reader_id: str, _now: float) -> float:
            reader_shelf = int(reader_id[-1])
            if reader_shelf == shelf:
                return own_distance
            return FOREIGN_STATIC_DISTANCE

        return distance_to

    def _relocated_distance(self):
        def distance_to(reader_id: str, now: float) -> float:
            reader_shelf = int(reader_id[-1])
            if reader_shelf == self.relocated_shelf(now):
                return RELOCATED_HOME_DISTANCE
            return RELOCATED_FOREIGN_DISTANCE

        return distance_to

    def _build_registry(self, ghost_rate: float) -> DeviceRegistry:
        registry = DeviceRegistry()
        for shelf in (0, 1):
            group = registry.add_group(
                f"shelf{shelf}_readers",
                self.granules[shelf],
                receptor_kind="rfid",
            )
            reader = RFIDReader(
                f"reader{shelf}",
                shelf=f"shelf{shelf}",
                tags=self._tags,
                field=self.fields[shelf],
                sample_period=self.poll_period,
                ghost_rate=ghost_rate,
                rng=np.random.default_rng(self._rng.integers(2**63)),
            )
            registry.assign(reader, group.name)
        return registry

    # -- recorded raw data ----------------------------------------------------------

    def recorded_streams(self) -> dict[str, list[StreamTuple]]:
        """One fixed recording of both readers' raw streams.

        Generated lazily on first call and cached, so every pipeline
        configuration compared in an experiment replays the identical
        readings.
        """
        if self._recorded is None:
            self._recorded = {
                device.receptor_id: list(device.stream(self.duration))
                for device in self.registry.devices
            }
        return self._recorded
