"""The Intel-lab fail-dirty outlier trace (paper §5.1, Figure 7).

The paper analyzes three temperature motes in one room of the Intel
Research Berkeley lab over a multi-day window in which one mote fails
dirty: its readings climb steadily past 100 °C while the other two track
the room's real temperature. We synthesize the same situation:

- a diurnal room-temperature ground truth (gentle day/night cycle);
- three motes with small sensor noise and slightly different calibration
  offsets, all in one proximity group / one spatial granule (the room);
- one mote with a :class:`~repro.receptors.motes.FailDirtyModel` whose
  onset and drift reproduce Figure 7's shape (failure around half a day
  in; ~140 °C by day two).

The proprietary trace is not redistributable; this synthetic equivalent
exercises the identical cleaning path (Point range filter at 50 °C +
Merge ±1σ outlier rejection) because that path depends only on the
divergence shape, not on the exact temperatures.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.receptors.base import require_rng
from repro.receptors.motes import FailDirtyModel, Mote
from repro.receptors.registry import DeviceRegistry
from repro.streams.tuples import StreamTuple

DAY = 86400.0


class IntelLabScenario:
    """Three room motes, one failing dirty.

    Args:
        duration: Trace length in seconds (default 2 days, as in Fig 7).
        sample_period: Mote sampling period (60 s).
        base_temp: Mean room temperature, °C.
        diurnal_amp: Day/night swing amplitude, °C.
        noise_std: Sensor noise σ, °C.
        failure_onset: When the dirty mote fails (default half a day).
        drift_rate: Post-failure drift, °C/s (default reaches ~140 °C by
            day 2, matching Figure 7's vertical scale).
        seed: Experiment seed.

    Attributes:
        registry: One ``room`` granule / proximity group with 3 motes;
            ``mote3`` is the fail-dirty one.
        temporal_granule: The 5-minute Merge window of Query 5.
    """

    def __init__(
        self,
        duration: float = 2 * DAY,
        sample_period: float = 60.0,
        base_temp: float = 22.0,
        diurnal_amp: float = 3.0,
        noise_std: float = 0.35,
        failure_onset: float = 0.5 * DAY,
        drift_rate: float = 0.0009,
        seed: int = 20060512,
    ):
        self.duration = float(duration)
        self.sample_period = float(sample_period)
        self.base_temp = float(base_temp)
        self.diurnal_amp = float(diurnal_amp)
        self.noise_std = float(noise_std)
        self.failure_onset = float(failure_onset)
        self.drift_rate = float(drift_rate)
        self.temporal_granule = TemporalGranule("5 min")
        self._rng = require_rng(seed)
        self._recorded: dict[str, list[StreamTuple]] | None = None
        self.granule = SpatialGranule("room")
        self.registry = self._build_registry()

    # -- ground truth -----------------------------------------------------------

    def room_temperature(self, now: float) -> float:
        """True room temperature at ``now`` (diurnal cycle, °C)."""
        phase = 2.0 * math.pi * (now / DAY - 0.25)  # warmest mid-afternoon
        return self.base_temp + self.diurnal_amp * math.sin(phase)

    def ticks(self) -> np.ndarray:
        """All sample instants of the trace."""
        steps = int(round(self.duration / self.sample_period))
        return np.arange(steps + 1) * self.sample_period

    # -- construction ------------------------------------------------------------

    def _build_registry(self) -> DeviceRegistry:
        registry = DeviceRegistry()
        group = registry.add_group("room_motes", self.granule, receptor_kind="mote")
        offsets = (-0.2, 0.15, 0.05)  # per-mote calibration offsets, °C
        for index, offset in enumerate(offsets, start=1):
            fail_dirty = None
            if index == 3:
                fail_dirty = FailDirtyModel(
                    onset=self.failure_onset,
                    drift_rate=self.drift_rate,
                    noise_std=self.noise_std,
                )
            mote = Mote(
                f"mote{index}",
                field=self._field_with_offset(offset),
                quantity="temp",
                sample_period=self.sample_period,
                noise_std=self.noise_std,
                fail_dirty=fail_dirty,
                rng=np.random.default_rng(self._rng.integers(2**63)),
            )
            registry.assign(mote, group.name)
        return registry

    def _field_with_offset(self, offset: float):
        def field(now: float) -> float:
            return self.room_temperature(now) + offset

        return field

    # -- recorded raw data ----------------------------------------------------------

    def recorded_streams(self) -> dict[str, list[StreamTuple]]:
        """One fixed recording of the three motes' streams (cached)."""
        if self._recorded is None:
            self._recorded = {
                device.receptor_id: list(device.stream(self.duration))
                for device in self.registry.devices
            }
        return self._recorded

    def raw_by_mote(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Per-mote (times, temps) arrays of the recorded trace."""
        series: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for mote_id, readings in self.recorded_streams().items():
            times = np.array([r.timestamp for r in readings])
            temps = np.array([r["temp"] for r in readings])
            series[mote_id] = (times, temps)
        return series
