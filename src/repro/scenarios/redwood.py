"""The Sonoma redwood micro-climate deployment (paper §5.2).

The paper's trace: 33 motes along a redwood trunk, sensing every 5
minutes for about 3.5 days, delivered over a multi-hop network with a
raw *epoch yield* of only 40 %. Motes at nearby heights (< 1 foot apart)
are paired into 2-node non-overlapping proximity groups.

Our synthetic equivalent:

- a height-stratified temperature field: a diurnal cycle whose amplitude
  grows toward the canopy (sun exposure) plus an altitude offset — the
  shape reported for the actual deployment [28, 29];
- one mote per height; pairs of adjacent motes (vertical spacing ~0.3 m
  within a pair) form each proximity group. We deploy 32 motes / 16
  groups — the paper's 33rd mote has no < 1-ft partner and is dropped
  from its pairing analysis as well;
- per-mote bursty loss (Gilbert–Elliott) calibrated to the 40 % raw
  epoch yield. Burstiness is the load-bearing property: with i.i.d.
  losses a 30-minute window would recover nearly all epochs, but the
  paper's Smooth only reaches 77 % — implying multi-epoch outages.

Each mote also keeps a local *log* of every sensed value (the paper's
deployment logged to flash and collected the logs afterwards); the log
is the accuracy reference for the "% of readings within 1 °C" metric.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.granules import SpatialGranule, TemporalGranule
from repro.receptors.base import require_rng
from repro.receptors.motes import Mote
from repro.receptors.network import GilbertElliottChannel
from repro.receptors.registry import DeviceRegistry
from repro.streams.tuples import StreamTuple

DAY = 86400.0


class RedwoodScenario:
    """Paired motes on a redwood trunk with bursty message loss.

    Args:
        duration: Trace length (default 3.5 days, the paper's usable
            all-motes-alive window).
        epoch: Sensing period (paper: 5 minutes).
        n_groups: Number of 2-mote proximity groups (default 16 → 32
            motes).
        base_height: Height of the lowest pair, metres.
        height_step: Vertical distance between adjacent pairs, metres.
        target_yield: Long-run delivery fraction (paper: 0.40).
        mean_bad_epochs: Mean outage burst length, in epochs. Calibrated
            so temporal smoothing with a 30-minute window lifts the yield
            to roughly the paper's 77 %.
        noise_std: Sensor noise σ, °C.
        seed: Experiment seed.

    Attributes:
        registry: 16 proximity groups (``height_00``..) of 2 motes each.
        temporal_granule: 5-minute granule with the 30-minute expanded
            smoothing window of §5.2.1.
    """

    def __init__(
        self,
        duration: float = 3.5 * DAY,
        epoch: float = 300.0,
        n_groups: int = 16,
        base_height: float = 10.0,
        height_step: float = 4.0,
        target_yield: float = 0.40,
        mean_bad_epochs: float = 9.0,
        noise_std: float = 0.15,
        seed: int = 20050815,
    ):
        self.duration = float(duration)
        self.epoch = float(epoch)
        self.n_groups = int(n_groups)
        self.base_height = float(base_height)
        self.height_step = float(height_step)
        self.target_yield = float(target_yield)
        self.mean_bad_epochs = float(mean_bad_epochs)
        self.noise_std = float(noise_std)
        self.temporal_granule = TemporalGranule(
            "5 min", smoothing_window="30 min"
        )
        self._rng = require_rng(seed)
        self._recorded: dict[str, list[StreamTuple]] | None = None
        self._logs: dict[str, np.ndarray] | None = None
        self.mote_heights: dict[str, float] = {}
        self.registry = self._build_registry()

    # -- ground truth -----------------------------------------------------------

    def temperature(self, now: float, height: float) -> float:
        """True temperature at ``height`` metres, time ``now`` (°C).

        Canopy heights see a larger diurnal swing (sun exposure) and a
        slight warm offset; dawn is the coldest point. The spatial
        gradient within one proximity group (~0.3 m) is a few hundredths
        of a degree — the within-granule correlation Merge relies on.
        """
        day_phase = 2.0 * math.pi * (now / DAY - 0.3)
        # Sun-exposed canopy sensors swing hard and fast: sharpen the
        # sinusoid (|s|^0.6 keeps the sign but steepens the dawn/dusk
        # transitions) and grow the amplitude with height. The fast
        # transitions are what make a 30-minute average occasionally miss
        # the log by more than 1 °C — the accuracy cost the paper reports
        # for Smooth (99 %) and Merge (94 %).
        s = math.sin(day_phase)
        shaped = math.copysign(abs(s) ** 0.75, s)
        amplitude = 2.6 + 0.09 * height
        base = 12.0 + 0.04 * height
        # Slow synoptic drift across the 3.5 days.
        drift = 0.8 * math.sin(2.0 * math.pi * now / (2.7 * DAY))
        return base + amplitude * shaped + drift

    def epochs(self) -> np.ndarray:
        """All epoch instants of the trace."""
        steps = int(round(self.duration / self.epoch))
        return np.arange(steps + 1) * self.epoch

    def group_names(self) -> list[str]:
        """Names of the proximity groups, bottom to top."""
        return [f"height_{index:02d}" for index in range(self.n_groups)]

    # -- construction ------------------------------------------------------------

    def _build_registry(self) -> DeviceRegistry:
        registry = DeviceRegistry()
        for index in range(self.n_groups):
            granule = SpatialGranule(
                f"height_{index:02d}",
                description=(
                    f"trunk band at ~{self.base_height + index * self.height_step:.0f} m"
                ),
            )
            group = registry.add_group(
                f"height_{index:02d}", granule, receptor_kind="mote"
            )
            for member in range(2):
                height = (
                    self.base_height
                    + index * self.height_step
                    + member * 0.3
                )
                mote_id = f"mote_{index:02d}_{member}"
                self.mote_heights[mote_id] = height
                # Per-mote calibration offset: uncalibrated mica motes
                # disagree by several tenths of a degree even side by
                # side [9]. The offset is reflected in the mote's local
                # log too (it is what the sensor reports), so it cancels
                # for Smooth (compared against the same mote's log) but
                # costs Merge accuracy whenever one mote fills in for its
                # partner — the §5.2.2 accuracy dip.
                calibration = float(
                    np.clip(self._rng.normal(0.0, 1.0), -2.5, 2.5)
                )
                channel = GilbertElliottChannel.with_target_yield(
                    self.target_yield,
                    self.mean_bad_epochs,
                    rng=np.random.default_rng(self._rng.integers(2**63)),
                )
                mote = Mote(
                    mote_id,
                    field=self._field_at(height, calibration),
                    quantity="temp",
                    sample_period=self.epoch,
                    noise_std=self.noise_std,
                    channel=channel,
                    extra_fields={"height_m": height},
                    rng=np.random.default_rng(self._rng.integers(2**63)),
                )
                registry.assign(mote, group.name)
        return registry

    def _field_at(self, height: float, calibration: float = 0.0):
        def field(now: float) -> float:
            return self.temperature(now, height) + calibration

        return field

    # -- recorded data ---------------------------------------------------------------

    def recorded_streams(self) -> dict[str, list[StreamTuple]]:
        """One fixed recording of all motes' *delivered* readings.

        Recording also materializes the local logs (every sensed value,
        loss-free) used as the accuracy reference — see :meth:`logs`.
        """
        if self._recorded is None:
            self._record()
        assert self._recorded is not None
        return self._recorded

    def logs(self) -> dict[str, np.ndarray]:
        """Per-mote local logs: sensed value at every epoch (no loss)."""
        if self._logs is None:
            self._record()
        assert self._logs is not None
        return self._logs

    def granule_logs(self) -> dict[str, np.ndarray]:
        """Per-granule accuracy reference: mean of the pair's logs."""
        logs = self.logs()
        out: dict[str, np.ndarray] = {}
        for index in range(self.n_groups):
            pair = [f"mote_{index:02d}_{member}" for member in range(2)]
            out[f"height_{index:02d}"] = np.mean(
                [logs[mote_id] for mote_id in pair], axis=0
            )
        return out

    def _record(self) -> None:
        """Drive every mote epoch by epoch, capturing logs and deliveries.

        We bypass :meth:`Mote.stream` here because the log must contain
        the *sensed* value even for lost messages, and sensing draws from
        the mote's RNG — so sensing and delivery must be interleaved
        exactly once per epoch.
        """
        recorded: dict[str, list[StreamTuple]] = {}
        logs: dict[str, np.ndarray] = {}
        epochs = self.epochs()
        for device in self.registry.devices:
            delivered: list[StreamTuple] = []
            sensed = np.empty(len(epochs))
            for index, now in enumerate(epochs):
                value = device.sense(now)
                sensed[index] = value
                if device.channel.deliver():
                    delivered.append(
                        StreamTuple(
                            now,
                            {
                                "mote_id": device.receptor_id,
                                "temp": value,
                                "epoch": index,
                                **device.extra_fields,
                            },
                            stream=device.stream_name,
                        )
                    )
            recorded[device.receptor_id] = delivered
            logs[device.receptor_id] = sensed
        self._recorded = recorded
        self._logs = logs
