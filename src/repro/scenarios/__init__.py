"""Ground-truth world scenarios for the paper's three deployments.

Each scenario builds a :class:`~repro.receptors.registry.DeviceRegistry`
populated with simulated devices, exposes the ground truth the paper's
metrics compare against, and caches one recording of every device's raw
stream so that different pipeline configurations can be evaluated on the
*identical* data (as the paper does when comparing stage orderings).

- :mod:`repro.scenarios.shelf` — the RFID retail shelf experiment (§4).
- :mod:`repro.scenarios.intel_lab` — the Intel-lab fail-dirty outlier
  trace (§5.1, Figure 7).
- :mod:`repro.scenarios.redwood` — the Sonoma redwood micro-climate
  deployment (§5.2).
- :mod:`repro.scenarios.office` — the digital-home person detector (§6).
"""

from repro.scenarios.intel_lab import IntelLabScenario
from repro.scenarios.office import OfficeScenario
from repro.scenarios.redwood import RedwoodScenario
from repro.scenarios.shelf import ShelfScenario

__all__ = [
    "IntelLabScenario",
    "OfficeScenario",
    "RedwoodScenario",
    "ShelfScenario",
]
