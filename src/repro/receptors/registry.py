"""Deployment metadata: devices, proximity groups and spatial granules.

The paper hides device-to-granule mapping details from applications
(§3.1.2): "Spatial granules and physical devices can have one-to-many,
many-to-one, or many-to-many relationships and may change dynamically.
These details are hidden from the application through ESP." The
:class:`DeviceRegistry` is where that mapping lives: the ESP processor
consults it to annotate readings with their spatial granule and to group
streams into proximity groups for Merge.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.granules import ProximityGroup, SpatialGranule
from repro.errors import ReceptorError
from repro.receptors.base import Receptor


class DeviceRegistry:
    """Registry of receptors, proximity groups, and spatial granules.

    Example:
        >>> from repro.core.granules import SpatialGranule
        >>> registry = DeviceRegistry()
        >>> shelf0 = SpatialGranule("shelf0")
        >>> _ = registry.add_group("shelf0_readers", shelf0, receptor_kind="rfid")
    """

    def __init__(self):
        self._granules: dict[str, SpatialGranule] = {}
        self._groups: dict[str, ProximityGroup] = {}
        self._device_group: dict[str, str] = {}
        self._devices: dict[str, Receptor] = {}

    # -- construction ---------------------------------------------------------

    def add_granule(self, granule: SpatialGranule) -> SpatialGranule:
        """Register a spatial granule (idempotent by name)."""
        existing = self._granules.get(granule.name)
        if existing is not None:
            return existing
        self._granules[granule.name] = granule
        return granule

    def add_group(
        self,
        name: str,
        granule: SpatialGranule,
        receptor_kind: str,
    ) -> ProximityGroup:
        """Create and register a proximity group monitoring ``granule``."""
        if name in self._groups:
            raise ReceptorError(f"duplicate proximity group {name!r}")
        self.add_granule(granule)
        group = ProximityGroup(name, granule, receptor_kind)
        self._groups[name] = group
        return group

    def assign(self, device: Receptor, group_name: str) -> None:
        """Place a device into a proximity group.

        Raises:
            ReceptorError: On unknown groups, duplicate device ids, or a
                device whose kind differs from the group's receptor kind
                (proximity groups hold receptors "of the same type",
                §3.1.2).
        """
        group = self._groups.get(group_name)
        if group is None:
            raise ReceptorError(f"unknown proximity group {group_name!r}")
        if device.receptor_id in self._devices:
            raise ReceptorError(f"duplicate device id {device.receptor_id!r}")
        if group.receptor_kind != device.kind.value:
            raise ReceptorError(
                f"device {device.receptor_id!r} is a {device.kind.value}; "
                f"group {group_name!r} holds {group.receptor_kind} receptors"
            )
        self._devices[device.receptor_id] = device
        self._device_group[device.receptor_id] = group_name
        group.members.append(device.receptor_id)

    # -- lookup -----------------------------------------------------------------

    @property
    def devices(self) -> list[Receptor]:
        """All registered devices."""
        return list(self._devices.values())

    @property
    def groups(self) -> list[ProximityGroup]:
        """All proximity groups."""
        return list(self._groups.values())

    @property
    def granules(self) -> list[SpatialGranule]:
        """All spatial granules."""
        return list(self._granules.values())

    def device(self, device_id: str) -> Receptor:
        """Look up a device by id."""
        try:
            return self._devices[device_id]
        except KeyError:
            raise ReceptorError(f"unknown device {device_id!r}") from None

    def group_of(self, device_id: str) -> ProximityGroup:
        """The proximity group containing ``device_id``."""
        try:
            return self._groups[self._device_group[device_id]]
        except KeyError:
            raise ReceptorError(
                f"device {device_id!r} is not assigned to any group"
            ) from None

    def granule_of(self, device_id: str) -> SpatialGranule:
        """The spatial granule monitored by ``device_id``'s group."""
        return self.group_of(device_id).granule

    def groups_for_granule(self, granule_name: str) -> list[ProximityGroup]:
        """All proximity groups monitoring the named granule."""
        return [
            group
            for group in self._groups.values()
            if group.granule.name == granule_name
        ]

    def devices_in_group(self, group_name: str) -> Iterable[Receptor]:
        """The devices assigned to ``group_name``."""
        group = self._groups.get(group_name)
        if group is None:
            raise ReceptorError(f"unknown proximity group {group_name!r}")
        return [self._devices[member] for member in group.members]
