"""RFID reader and tag simulation.

The paper's shelf experiment uses two Alien ALR-9780 readers polling at
5 Hz over EPC Class 1 tags. We model what the cleaning problem actually
depends on — the *per-poll detection process*:

- detection probability falls off with tag-to-antenna distance
  (:class:`DetectionField`), calibrated so that tags in the primary read
  range are captured 60–85 % of the time per poll, matching the 60–70 %
  read rates the paper cites for RFID readers [16, 25];
- antennae of the same model differ in effective gain (the paper observed
  shelf 0's antenna consistently reading 4–5 items high, §4.1), modelled
  as a per-reader gain multiplier;
- readers occasionally capture tags far outside their nominal view
  (foreign-shelf reads) and, rarely, *ghost* tags that do not exist
  (failed-checksum reads the Point stage filters, §4/§6.1).

A reader polls a set of :class:`TagPlacement` objects whose distance to
each reader is supplied by the scenario's ground truth.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ReceptorError
from repro.receptors.base import Receptor, ReceptorKind, require_rng
from repro.streams.tuples import StreamTuple


class DetectionField:
    """Piecewise-linear detection probability as a function of distance.

    Args:
        anchors: ``(distance_ft, probability)`` pairs, sorted by distance.
            Probability is interpolated linearly between anchors and is 0
            beyond the last anchor.

    The default calibration reproduces the paper's observed behaviour:
    near-range tags read most polls, the 9-ft relocated tags read
    intermittently, and foreign-shelf tags read rarely enough that a 5 s
    window does not saturate on them (the phenomenon Arbitrate exists to
    clean up).

    Example:
        >>> field = DetectionField.default()
        >>> field(3.0) > field(6.0) > field(9.0) > field(13.0)
        True
    """

    def __init__(self, anchors: Sequence[tuple[float, float]]):
        if len(anchors) < 2:
            raise ReceptorError("detection field needs at least two anchors")
        distances = [d for d, _p in anchors]
        if distances != sorted(distances):
            raise ReceptorError("detection anchors must be sorted by distance")
        for _d, p in anchors:
            if not 0.0 <= p <= 1.0:
                raise ReceptorError(f"detection probability {p} outside [0, 1]")
        self._anchors = [(float(d), float(p)) for d, p in anchors]

    @classmethod
    def default(cls) -> "DetectionField":
        """Calibration used by the shelf scenario (see module docstring)."""
        return cls(
            [
                (0.0, 0.92),
                (3.0, 0.85),
                (6.0, 0.68),
                (9.0, 0.24),
                (10.0, 0.012),
                (13.0, 0.0015),
                (16.0, 0.0),
            ]
        )

    def __call__(self, distance: float) -> float:
        """Detection probability at ``distance`` feet."""
        if distance <= self._anchors[0][0]:
            return self._anchors[0][1]
        for (d0, p0), (d1, p1) in zip(self._anchors, self._anchors[1:]):
            if distance <= d1:
                fraction = (distance - d0) / (d1 - d0)
                return p0 + fraction * (p1 - p0)
        return 0.0


class TagPlacement:
    """A tag together with its (time-varying) distance to each reader.

    Args:
        tag_id: EPC tag identifier.
        distance_to: Callable ``(reader_id, now) -> distance in feet`` (or
            ``math.inf`` when out of range entirely).
    """

    __slots__ = ("tag_id", "distance_to")

    def __init__(
        self, tag_id: str, distance_to: Callable[[str, float], float]
    ):
        self.tag_id = tag_id
        self.distance_to = distance_to

    def __repr__(self) -> str:
        return f"TagPlacement({self.tag_id})"


class RFIDReader(Receptor):
    """A simulated RFID reader polling a tag population.

    Args:
        receptor_id: Reader identifier (``"reader0"``).
        shelf: The spatial granule this reader monitors; stamped on every
            reading so downstream queries can GROUP BY it (the paper's ESP
            processor adds this attribute automatically, §4 footnote 2).
        tags: Tag placements this reader may detect.
        field: Distance-to-probability detection model.
        gain: Antenna gain multiplier on detection probability. The
            paper's shelf-0 antenna is the stronger one; its counterpart
            reads noticeably less despite being the same model [2].
        sample_period: Seconds between polls (default 0.2 s = 5 Hz).
        ghost_rate: Per-poll probability of emitting one spurious tag ID
            that exists nowhere (cleaned by a Point-stage checksum/
            whitelist).
        rng: Random generator or seed.

    Each poll emits one tuple per detected tag with fields ``tag_id``,
    ``shelf`` and ``reader_id``.
    """

    def __init__(
        self,
        receptor_id: str,
        shelf: "int | str",
        tags: Sequence[TagPlacement],
        field: DetectionField | None = None,
        gain: float = 1.0,
        sample_period: float = 0.2,
        ghost_rate: float = 0.0,
        rng: "np.random.Generator | int | None" = None,
    ):
        super().__init__(receptor_id, ReceptorKind.RFID, sample_period)
        if gain <= 0:
            raise ReceptorError(f"gain must be positive, got {gain}")
        if not 0.0 <= ghost_rate <= 1.0:
            raise ReceptorError(f"ghost rate {ghost_rate} outside [0, 1]")
        self.shelf = shelf
        self.gain = float(gain)
        self.ghost_rate = float(ghost_rate)
        self._tags = list(tags)
        self._field = field or DetectionField.default()
        self._rng = require_rng(rng)
        self._ghost_counter = 0

    def detection_probability(self, distance: float) -> float:
        """Per-poll detection probability at ``distance`` for this reader."""
        return min(1.0, self._field(distance) * self.gain)

    def poll(self, now: float) -> list[StreamTuple]:
        readings: list[StreamTuple] = []
        for tag in self._tags:
            distance = tag.distance_to(self.receptor_id, now)
            probability = self.detection_probability(distance)
            if probability > 0 and self._rng.random() < probability:
                readings.append(
                    StreamTuple(
                        now,
                        {
                            "tag_id": tag.tag_id,
                            "shelf": self.shelf,
                            "reader_id": self.receptor_id,
                        },
                        stream=self.stream_name,
                    )
                )
        if self.ghost_rate and self._rng.random() < self.ghost_rate:
            self._ghost_counter += 1
            readings.append(
                StreamTuple(
                    now,
                    {
                        "tag_id": f"ghost_{self.receptor_id}_{self._ghost_counter}",
                        "shelf": self.shelf,
                        "reader_id": self.receptor_id,
                    },
                    stream=self.stream_name,
                )
            )
        return readings
