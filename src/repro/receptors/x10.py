"""X10 motion detector simulation.

X10 motion detectors emit a stream of ``"ON"`` events when they sense
movement. The paper (§6.1) notes their two failure modes, both visible in
its Figure 9(d) raw traces:

- they "frequently fail to report" when there *is* motion — modelled as a
  per-poll detection probability well below 1;
- they "report when there is no motion in the room" — modelled as a
  small per-poll false-positive probability.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ReceptorError
from repro.receptors.base import Receptor, ReceptorKind, require_rng
from repro.streams.tuples import StreamTuple


class X10MotionDetector(Receptor):
    """A simulated X10 motion detector.

    Args:
        receptor_id: Detector identifier (``"x10_1"``).
        occupied: Ground-truth callable ``occupied(now) -> bool`` for
            whether there is motion in the detector's view.
        detect_probability: Per-poll probability of reporting ``ON`` when
            there is motion.
        false_on_probability: Per-poll probability of reporting ``ON``
            when there is none.
        sample_period: Seconds between polls.
        rng: Random generator or seed.

    Emits tuples with fields ``sensor_id`` and ``value`` (always
    ``"ON"`` — X10 detectors report events, not levels), only on polls
    where the device fires.
    """

    def __init__(
        self,
        receptor_id: str,
        occupied: Callable[[float], bool],
        detect_probability: float = 0.35,
        false_on_probability: float = 0.01,
        sample_period: float = 1.0,
        rng: "np.random.Generator | int | None" = None,
    ):
        super().__init__(receptor_id, ReceptorKind.X10, sample_period)
        for name, value in (
            ("detect_probability", detect_probability),
            ("false_on_probability", false_on_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ReceptorError(f"{name}={value} outside [0, 1]")
        self._occupied = occupied
        self.detect_probability = float(detect_probability)
        self.false_on_probability = float(false_on_probability)
        self._rng = require_rng(rng)

    def poll(self, now: float) -> list[StreamTuple]:
        probability = (
            self.detect_probability
            if self._occupied(now)
            else self.false_on_probability
        )
        if self._rng.random() >= probability:
            return []
        return [
            StreamTuple(
                now,
                {"sensor_id": self.receptor_id, "value": "ON"},
                stream=self.stream_name,
            )
        ]
