"""Simulated physical receptor devices.

The paper's deployments use three receptor technologies, all of which we
simulate with stochastic models calibrated to the error characteristics
the paper (and the RFID/sensor-network literature it cites) reports:

- :mod:`repro.receptors.rfid` — RFID readers with distance-dependent
  detection probability, inter-antenna gain asymmetry and ghost reads;
- :mod:`repro.receptors.motes` — wireless sensor motes with additive
  measurement noise and *fail-dirty* drift, delivered over a lossy
  multi-hop network (:mod:`repro.receptors.network`);
- :mod:`repro.receptors.x10` — X10 motion detectors with missed and
  spurious ``ON`` events.

:mod:`repro.receptors.registry` holds the deployment metadata mapping
devices into proximity groups and spatial granules.
"""

from repro.receptors.base import Receptor, ReceptorKind
from repro.receptors.motes import FailDirtyModel, Mote
from repro.receptors.network import GilbertElliottChannel, PerfectChannel
from repro.receptors.registry import DeviceRegistry
from repro.receptors.rfid import DetectionField, RFIDReader, TagPlacement
from repro.receptors.x10 import X10MotionDetector

__all__ = [
    "DetectionField",
    "DeviceRegistry",
    "FailDirtyModel",
    "GilbertElliottChannel",
    "Mote",
    "PerfectChannel",
    "Receptor",
    "ReceptorKind",
    "RFIDReader",
    "TagPlacement",
    "X10MotionDetector",
]
