"""Wireless sensor mote simulation.

A :class:`Mote` samples a physical field (temperature, humidity, sound)
through a noisy sensor and reports each sample over a lossy collection
network. Two failure behaviours from the paper are modelled:

- **message loss** — the mote samples but the reading never arrives
  (handled by the channel models in :mod:`repro.receptors.network`);
- **fail-dirty** (:class:`FailDirtyModel`) — the sensor breaks but keeps
  reporting, with values drifting far from reality. In the paper's
  Sonoma deployment 8 of 33 temperature motes failed dirty, rising above
  100 °C (§1, §5.1); the Intel-lab trace used for Figure 7 contains one
  such mote.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ReceptorError
from repro.receptors.base import Receptor, ReceptorKind, require_rng
from repro.receptors.network import PerfectChannel
from repro.streams.tuples import StreamTuple


class FailDirtyModel:
    """A fail-dirty fault: after onset, readings ramp away from truth.

    The paper describes failed temperature sensors whose readings "slowly
    rose to above 100°C". We model the reported value after failure as::

        reading = value_at_failure + drift_rate * (now - onset) + noise

    Args:
        onset: Failure time (seconds).
        drift_rate: Reported-value drift in units per second (positive for
            the paper's rising-temperature signature).
        noise_std: Extra reporting noise after failure.

    Example:
        >>> fd = FailDirtyModel(onset=100.0, drift_rate=0.01)
        >>> fd.active(50.0), fd.active(150.0)
        (False, True)
    """

    def __init__(self, onset: float, drift_rate: float, noise_std: float = 0.0):
        if drift_rate == 0:
            raise ReceptorError("fail-dirty drift rate must be non-zero")
        self.onset = float(onset)
        self.drift_rate = float(drift_rate)
        self.noise_std = float(noise_std)
        self._value_at_failure: float | None = None

    def active(self, now: float) -> bool:
        """Whether the fault has begun by time ``now``."""
        return now >= self.onset

    def corrupt(
        self, now: float, true_value: float, rng: np.random.Generator
    ) -> float:
        """The faulty reported value at ``now`` (call only when active)."""
        if self._value_at_failure is None:
            self._value_at_failure = true_value
        drifted = self._value_at_failure + self.drift_rate * (now - self.onset)
        if self.noise_std:
            drifted += rng.normal(0.0, self.noise_std)
        return drifted


class MultiSensorMote(Receptor):
    """A mote whose board carries several sensors sampled together.

    Real motes report multiple quantities per epoch (the Intel-lab trace
    has temperature, humidity, light and battery voltage), and their
    cross-correlations are exactly what BBQ-style model-driven cleaning
    exploits (paper §2.2/§6.3.1: "correlations between different sensors
    (e.g., voltage and temperature)"). Each poll emits one tuple with
    every quantity.

    Args:
        receptor_id: Mote identifier.
        fields: Quantity name → ground-truth callable ``field(now)``.
        noise_std: Per-quantity sensor noise; either one float for all
            quantities or a mapping per quantity.
        fail_dirty: Optional fault model applied to ``fail_quantity``
            only — the paper's failed sensors corrupt one transducer
            while the rest of the board keeps working.
        fail_quantity: The quantity the fault corrupts.
        sample_period / channel / extra_fields / rng: As for
            :class:`Mote`.
    """

    def __init__(
        self,
        receptor_id: str,
        fields: "dict[str, Callable[[float], float]]",
        noise_std: "float | dict[str, float]" = 0.05,
        sample_period: float = 300.0,
        channel=None,
        fail_dirty: "FailDirtyModel | None" = None,
        fail_quantity: str = "temp",
        extra_fields: dict | None = None,
        rng: "np.random.Generator | int | None" = None,
    ):
        super().__init__(receptor_id, ReceptorKind.MOTE, sample_period)
        if not fields:
            raise ReceptorError("MultiSensorMote needs at least one quantity")
        if fail_dirty is not None and fail_quantity not in fields:
            raise ReceptorError(
                f"fail_quantity {fail_quantity!r} is not a sensed quantity"
            )
        self._fields = dict(fields)
        if isinstance(noise_std, dict):
            self._noise = {q: float(noise_std.get(q, 0.0)) for q in fields}
        else:
            self._noise = {q: float(noise_std) for q in fields}
        for quantity, std in self._noise.items():
            if std < 0:
                raise ReceptorError(
                    f"noise std for {quantity!r} must be >= 0, got {std}"
                )
        self.channel = channel if channel is not None else PerfectChannel()
        self.fail_dirty = fail_dirty
        self.fail_quantity = fail_quantity
        self.extra_fields = dict(extra_fields or {})
        self._rng = require_rng(rng)

    def sense(self, now: float) -> dict[str, float]:
        """All quantities this mote would report at ``now``."""
        values: dict[str, float] = {}
        for quantity, field in self._fields.items():
            true_value = float(field(now))
            if (
                self.fail_dirty is not None
                and quantity == self.fail_quantity
                and self.fail_dirty.active(now)
            ):
                values[quantity] = self.fail_dirty.corrupt(
                    now, true_value, self._rng
                )
                continue
            std = self._noise[quantity]
            noise = float(self._rng.normal(0.0, std)) if std else 0.0
            values[quantity] = true_value + noise
        return values

    def poll(self, now: float) -> list[StreamTuple]:
        values = self.sense(now)
        if not self.channel.deliver():
            return []
        epoch = int(round(now / self.sample_period))
        return [
            StreamTuple(
                now,
                {
                    "mote_id": self.receptor_id,
                    "epoch": epoch,
                    **values,
                    **self.extra_fields,
                },
                stream=self.stream_name,
            )
        ]


class Mote(Receptor):
    """A simulated wireless sensor mote.

    Args:
        receptor_id: Mote identifier (``"mote1"``).
        field: Ground-truth callable ``field(now) -> value`` for the
            quantity this mote senses at its location. Scenarios bind the
            mote's position into this closure.
        quantity: Output field name (``"temp"``, ``"noise"``, ...).
        sample_period: Seconds between samples (300 s for the paper's
            redwood epochs; 1 s for the digital-home sound motes).
        noise_std: Sensor noise standard deviation.
        channel: Delivery model; defaults to a perfect channel.
        fail_dirty: Optional fail-dirty fault model.
        extra_fields: Constant fields stamped on every reading (e.g.
            ``{"height_m": 40.2}``).
        rng: Random generator or seed.

    Each delivered sample is one tuple with fields ``mote_id``, the
    quantity, and ``epoch`` (sample index) plus any extra fields.
    """

    def __init__(
        self,
        receptor_id: str,
        field: Callable[[float], float],
        quantity: str = "temp",
        sample_period: float = 300.0,
        noise_std: float = 0.05,
        channel=None,
        fail_dirty: FailDirtyModel | None = None,
        extra_fields: dict | None = None,
        rng: "np.random.Generator | int | None" = None,
    ):
        super().__init__(receptor_id, ReceptorKind.MOTE, sample_period)
        if noise_std < 0:
            raise ReceptorError(f"noise std must be >= 0, got {noise_std}")
        self._field = field
        self.quantity = quantity
        self.noise_std = float(noise_std)
        self.channel = channel if channel is not None else PerfectChannel()
        self.fail_dirty = fail_dirty
        self.extra_fields = dict(extra_fields or {})
        self._rng = require_rng(rng)

    def sense(self, now: float) -> float:
        """The value this mote would *report* at ``now`` (before loss)."""
        true_value = float(self._field(now))
        if self.fail_dirty is not None and self.fail_dirty.active(now):
            return self.fail_dirty.corrupt(now, true_value, self._rng)
        if self.noise_std:
            return true_value + float(self._rng.normal(0.0, self.noise_std))
        return true_value

    def poll(self, now: float) -> list[StreamTuple]:
        value = self.sense(now)
        if not self.channel.deliver():
            return []
        epoch = int(round(now / self.sample_period))
        return [
            StreamTuple(
                now,
                {
                    "mote_id": self.receptor_id,
                    self.quantity: value,
                    "epoch": epoch,
                    **self.extra_fields,
                },
                stream=self.stream_name,
            )
        ]
