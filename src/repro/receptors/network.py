"""Lossy collection-network models for wireless sensor motes.

The paper's environmental deployments lose most of their data in the
multi-hop network: the redwood trace delivered only 40 % of requested
epochs, and the Intel lab deployment averaged a 42 % per-mote yield.
Crucially for ESP, those losses are *bursty* — link-quality excursions
and routing changes knock a mote out for many consecutive epochs — which
is why temporal smoothing alone cannot recover every epoch (it lifts the
redwood yield only to 77 %; a 40 % i.i.d. loss process would be almost
fully recoverable with a 30-minute window).

:class:`GilbertElliottChannel` is the classic two-state bursty-loss model:
a good state with high delivery probability and a bad state with low
delivery probability, with geometric sojourn times in each.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReceptorError
from repro.receptors.base import require_rng


class PerfectChannel:
    """A channel that delivers everything (for unit tests and baselines)."""

    def deliver(self) -> bool:
        """Always True."""
        return True

    def expected_yield(self) -> float:
        """Long-run delivery fraction (1.0)."""
        return 1.0


class DelayModel:
    """Truncated-exponential network delay sampler.

    Multi-hop collection networks deliver readings late as well as
    lossily; delays cluster near the typical per-hop latency with a
    heavy-ish tail (retransmissions, route repairs), here modelled as an
    exponential truncated at ``max_delay``. Pairs with
    :mod:`repro.streams.reorder` to study how much reorder slack a
    deployment needs.

    Args:
        mean_delay: Mean of the (untruncated) exponential, seconds.
        max_delay: Hard delay cap, seconds (retries give up eventually).
        rng: Random generator or seed.
    """

    def __init__(
        self,
        mean_delay: float,
        max_delay: float,
        rng: "np.random.Generator | int | None" = None,
    ):
        if mean_delay <= 0:
            raise ReceptorError(
                f"mean delay must be positive, got {mean_delay}"
            )
        if max_delay < mean_delay:
            raise ReceptorError(
                f"max delay {max_delay} must be >= mean delay {mean_delay}"
            )
        self.mean_delay = float(mean_delay)
        self.max_delay = float(max_delay)
        self._rng = require_rng(rng)

    def sample(self) -> float:
        """One delay draw, in seconds."""
        return float(
            min(self.max_delay, self._rng.exponential(self.mean_delay))
        )


class GilbertElliottChannel:
    """Two-state Markov (Gilbert–Elliott) bursty loss channel.

    Args:
        p_good_to_bad: Per-step probability of leaving the good state.
        p_bad_to_good: Per-step probability of leaving the bad state.
        deliver_good: Delivery probability while in the good state.
        deliver_bad: Delivery probability while in the bad state.
        rng: Random generator or seed.
        start_good: Whether to start in the good state; by default the
            initial state is drawn from the stationary distribution so
            that short traces are unbiased.

    Example:
        >>> ch = GilbertElliottChannel(0.05, 0.05, 0.95, 0.05, rng=0)
        >>> 0.0 < ch.expected_yield() < 1.0
        True
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        deliver_good: float = 0.95,
        deliver_bad: float = 0.05,
        rng: "np.random.Generator | int | None" = None,
        start_good: bool | None = None,
    ):
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("deliver_good", deliver_good),
            ("deliver_bad", deliver_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ReceptorError(f"{name}={value} outside [0, 1]")
        if p_good_to_bad + p_bad_to_good == 0:
            raise ReceptorError("channel would never change state")
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.deliver_good = float(deliver_good)
        self.deliver_bad = float(deliver_bad)
        self._rng = require_rng(rng)
        if start_good is None:
            self._good = self._rng.random() < self.stationary_good_fraction()
        else:
            self._good = bool(start_good)

    def stationary_good_fraction(self) -> float:
        """Long-run fraction of time spent in the good state."""
        return self.p_bad_to_good / (self.p_good_to_bad + self.p_bad_to_good)

    def expected_yield(self) -> float:
        """Long-run delivery fraction implied by the parameters."""
        good = self.stationary_good_fraction()
        return good * self.deliver_good + (1.0 - good) * self.deliver_bad

    def deliver(self) -> bool:
        """Advance one step; return whether this step's message arrives."""
        if self._good:
            if self._rng.random() < self.p_good_to_bad:
                self._good = False
        else:
            if self._rng.random() < self.p_bad_to_good:
                self._good = True
        probability = self.deliver_good if self._good else self.deliver_bad
        return bool(self._rng.random() < probability)

    @classmethod
    def with_target_yield(
        cls,
        target_yield: float,
        mean_bad_epochs: float,
        deliver_good: float = 0.97,
        deliver_bad: float = 0.02,
        rng: "np.random.Generator | int | None" = None,
    ) -> "GilbertElliottChannel":
        """Construct a channel with a given long-run yield and burstiness.

        Args:
            target_yield: Desired long-run delivery fraction (e.g. 0.40
                for the redwood trace).
            mean_bad_epochs: Mean sojourn in the bad state, in steps —
                the burst length that determines how much a smoothing
                window can recover.
            deliver_good: Delivery probability in the good state.
            deliver_bad: Delivery probability in the bad state.
            rng: Random generator or seed.

        Raises:
            ReceptorError: If the target yield is unreachable with the
                given state delivery probabilities.
        """
        if not deliver_bad < target_yield < deliver_good:
            raise ReceptorError(
                f"target yield {target_yield} must lie strictly between "
                f"deliver_bad={deliver_bad} and deliver_good={deliver_good}"
            )
        if mean_bad_epochs < 1.0:
            raise ReceptorError("mean_bad_epochs must be >= 1")
        good_fraction = (target_yield - deliver_bad) / (deliver_good - deliver_bad)
        p_bad_to_good = 1.0 / mean_bad_epochs
        # good_fraction = p_bg / (p_gb + p_bg)  =>  p_gb = p_bg*(1-g)/g
        p_good_to_bad = p_bad_to_good * (1.0 - good_fraction) / good_fraction
        if p_good_to_bad > 1.0:
            raise ReceptorError(
                "infeasible combination: shorten mean_bad_epochs or raise "
                "target_yield"
            )
        return cls(
            p_good_to_bad,
            p_bad_to_good,
            deliver_good=deliver_good,
            deliver_bad=deliver_bad,
            rng=rng,
        )
