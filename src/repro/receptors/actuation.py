"""Receptor actuation: closing the loop from ESP back to the devices.

The paper's §5.3.1: "Ideally, ESP should be able to actuate the sensors
to increase the number of readings within a temporal granule such that
it can effectively smooth with a window the same size as the temporal
granule." In the redwood deployment ESP could not do this (the data was
pre-collected at fixed 5-minute epochs) and had to fall back to window
expansion.

This module provides the actuation primitives:

- :class:`ActuatableMote` — a mote whose sample period ESP can command
  at runtime, within hardware bounds;
- :class:`YieldActuationController` — an AIMD controller that watches
  each granule's delivery outcome and speeds a mote up after misses
  (multiplicative) while relaxing it back toward the energy-efficient
  base rate after sustained success (additive), bounding the energy cost
  of chasing bursty outages.

The closed-loop experiment lives in :mod:`repro.experiments.actuation`.
"""

from __future__ import annotations

from repro.errors import ReceptorError
from repro.receptors.motes import Mote


class ActuatableMote(Mote):
    """A mote accepting runtime sample-rate commands.

    Args:
        min_period: Fastest sampling the hardware supports, seconds.
        max_period: Slowest (base) sampling period, seconds — also the
            initial period.
        **mote_kwargs: Everything :class:`~repro.receptors.motes.Mote`
            accepts except ``sample_period`` (derived from
            ``max_period``).

    The ``sample_period`` attribute reflects the *current* commanded
    period; :meth:`next_sample_after` tells a closed-loop driver when
    this mote fires next.
    """

    def __init__(
        self,
        receptor_id: str,
        min_period: float,
        max_period: float,
        **mote_kwargs,
    ):
        if not 0 < min_period <= max_period:
            raise ReceptorError(
                f"need 0 < min_period <= max_period, got "
                f"{min_period}..{max_period}"
            )
        super().__init__(
            receptor_id, sample_period=max_period, **mote_kwargs
        )
        self.min_period = float(min_period)
        self.max_period = float(max_period)
        self._next_sample = 0.0

    def set_sample_period(self, seconds: float) -> float:
        """Command a new sample period; returns the clamped value."""
        clamped = min(self.max_period, max(self.min_period, float(seconds)))
        self.sample_period = clamped
        return clamped

    def due(self, now: float) -> bool:
        """Whether the mote samples at this instant."""
        return now + 1e-9 >= self._next_sample

    def sample_if_due(self, now: float):
        """Poll the mote if its schedule says so; returns the readings."""
        if not self.due(now):
            return []
        self._next_sample = now + self.sample_period
        return self.poll(now)


class YieldActuationController:
    """AIMD sample-rate control from granule delivery outcomes.

    After each temporal granule, ESP reports per mote whether at least
    one reading arrived (:meth:`observe`). On a miss the controller
    halves the mote's period (more chances next granule); after
    ``patience`` consecutive hits it steps the period back up by
    ``relax_step`` seconds, drifting toward the energy-efficient base
    rate.

    Args:
        patience: Consecutive delivered granules required before
            relaxing the rate.
        relax_step: Seconds added to the period per relaxation.
    """

    def __init__(self, patience: int = 3, relax_step: float = 60.0):
        if patience < 1:
            raise ReceptorError(f"patience must be >= 1, got {patience}")
        if relax_step <= 0:
            raise ReceptorError(
                f"relax_step must be positive, got {relax_step}"
            )
        self.patience = int(patience)
        self.relax_step = float(relax_step)
        self._streak: dict[str, int] = {}

    def observe(self, mote: ActuatableMote, delivered: bool) -> float:
        """Record one granule's outcome; returns the new sample period."""
        mote_id = mote.receptor_id
        if delivered:
            streak = self._streak.get(mote_id, 0) + 1
            if streak >= self.patience:
                mote.set_sample_period(mote.sample_period + self.relax_step)
                streak = 0
            self._streak[mote_id] = streak
        else:
            self._streak[mote_id] = 0
            mote.set_sample_period(mote.sample_period / 2.0)
        return mote.sample_period
