"""Receptor base types.

A receptor is a physical device producing a stream of readings. Simulated
receptors are driven tick-by-tick: :meth:`Receptor.poll` is called once
per sample period with the current time and returns zero or more
:class:`~repro.streams.tuples.StreamTuple` readings.

Every stochastic receptor takes an explicit ``numpy.random.Generator`` so
that experiments are reproducible; none touches global random state.
"""

from __future__ import annotations

import enum
from typing import Iterator

import numpy as np

from repro.errors import ReceptorError
from repro.streams.tuples import StreamTuple


class ReceptorKind(str, enum.Enum):
    """The receptor technologies used in the paper's deployments."""

    RFID = "rfid"
    MOTE = "mote"
    X10 = "x10"


class Receptor:
    """Base class for simulated receptor devices.

    Args:
        receptor_id: Unique device identifier (e.g. ``"reader0"``).
        kind: Device technology.
        sample_period: Seconds between polls (e.g. 0.2 for 5 Hz RFID).

    Subclasses implement :meth:`poll`. The ``stream_name`` of a receptor's
    readings defaults to its id; the ESP processor rewrites stream names
    while wiring pipelines.
    """

    def __init__(
        self,
        receptor_id: str,
        kind: ReceptorKind,
        sample_period: float,
    ):
        if sample_period <= 0:
            raise ReceptorError(
                f"sample period must be positive, got {sample_period}"
            )
        self.receptor_id = receptor_id
        self.kind = kind
        self.sample_period = float(sample_period)

    @property
    def stream_name(self) -> str:
        """Name stamped on this receptor's output tuples."""
        return self.receptor_id

    def poll(self, now: float) -> list[StreamTuple]:
        """Produce this tick's readings (possibly none)."""
        raise NotImplementedError

    def stream(self, until: float, start: float = 0.0) -> Iterator[StreamTuple]:
        """Poll from ``start`` through ``until`` and yield all readings.

        Ticks are computed as ``start + i * sample_period`` to avoid float
        accumulation drift over long experiments.
        """
        ticks = int(round((until - start) / self.sample_period))
        for i in range(ticks + 1):
            yield from self.poll(start + i * self.sample_period)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.receptor_id!r}, "
            f"kind={self.kind.value}, period={self.sample_period:g}s)"
        )


def require_rng(rng: "np.random.Generator | int | None") -> np.random.Generator:
    """Normalize an RNG argument: Generator passthrough, int seed, or None
    (fresh nondeterministic generator — discouraged outside exploration)."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
