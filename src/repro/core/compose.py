"""Hierarchical composition: ESP at the edge of a HiFi-style fan-in tree.

The paper positions ESP "at the edge of the HiFi network" (§2.2) and
observes that "when composing many applications, entire pipelines for
processing low-level data can be reused as input to application-level
cleaning" (§7). This module provides that composition: several edge
deployments (each a full :class:`~repro.core.pipeline.ESPProcessor`)
feed a parent level that runs further declarative processing over the
union of their cleaned streams.

The parent sees each site's stream under the site's name, so a parent
CQL query can reference sites individually or aggregate across them.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.pipeline import ESPProcessor
from repro.errors import PipelineError
from repro.streams.operators import Operator
from repro.streams.telemetry import TelemetryCollector, resolve_telemetry
from repro.streams.tuples import StreamTuple


class EdgeSite:
    """One edge deployment in a hierarchy.

    Args:
        name: Site name — becomes the stream name of the site's cleaned
            output at the parent level.
        processor: The site's fully-configured ESP processor.
        sources: Optional pre-recorded readings for the site's devices
            (replayed instead of live polling).
    """

    def __init__(
        self,
        name: str,
        processor: ESPProcessor,
        sources: "Mapping[str, Sequence[StreamTuple]] | None" = None,
    ):
        if not name:
            raise PipelineError("edge site needs a non-empty name")
        self.name = name
        self.processor = processor
        self.sources = sources

    def run(
        self,
        until: float,
        tick: float,
        shards: int | None = None,
        backend: str | None = None,
        telemetry: TelemetryCollector | None = None,
    ) -> list[StreamTuple]:
        """Run the site and return its cleaned stream, stamped with the
        site name and annotated with a ``site`` field.

        ``shards``/``backend`` select the site's execution mode (see
        :mod:`repro.streams.shard`); unset values fall back to the
        process-wide defaults, as does ``telemetry`` (see
        :mod:`repro.streams.telemetry`).
        """
        run = self.processor.run(
            until=until,
            tick=tick,
            sources=self.sources,
            shards=shards,
            backend=backend,
            telemetry=telemetry,
        )
        return [
            item.derive(values={"site": self.name}, stream=self.name)
            for item in run.output
        ]

    def __repr__(self):
        return f"EdgeSite({self.name!r})"


def hierarchical_run(
    sites: Sequence[EdgeSite],
    parent: Operator,
    until: float,
    tick: float,
    parent_tick: float | None = None,
    shards: int | None = None,
    backend: str | None = None,
    telemetry: TelemetryCollector | None = None,
) -> list[StreamTuple]:
    """Run edge sites, then the parent operator over their union.

    Args:
        sites: The edge deployments.
        parent: Any stream operator — typically a
            :class:`~repro.cql.planner.CompiledQuery` over the site
            streams, or an ESP stage operator.
        until: Simulation horizon for the edges.
        tick: Edge punctuation period.
        parent_tick: Parent punctuation period; defaults to ``tick``.
            A coarser parent tick models the reduced rates higher levels
            of a fan-in hierarchy operate at.
        shards: Per-site shard count (see :mod:`repro.streams.shard`);
            each edge site shards its own deployment independently.
        backend: Per-site shard backend.
        telemetry: Shared collector for every site's run (see
            :mod:`repro.streams.telemetry`); a ``site_run`` trace event
            marks each site's contribution. Defaults to the
            process-wide default collector.

    Returns:
        The parent's output stream.
    """
    if not sites:
        raise PipelineError("hierarchy needs at least one edge site")
    names = [site.name for site in sites]
    if len(set(names)) != len(names):
        raise PipelineError(f"duplicate site names: {names}")
    collector = resolve_telemetry(telemetry)
    merged: list[StreamTuple] = []
    for site in sites:
        cleaned = site.run(
            until, tick, shards=shards, backend=backend, telemetry=collector
        )
        if collector.enabled:
            collector.event("site_run", site=site.name, tuples=len(cleaned))
        merged.extend(cleaned)
    merged.sort(key=lambda item: item.timestamp)
    step = parent_tick if parent_tick is not None else tick
    if step <= 0:
        raise PipelineError(f"parent tick must be positive, got {step}")
    out: list[StreamTuple] = []
    index = 0
    ticks = int(round(until / step))
    for tick_index in range(ticks + 1):
        now = tick_index * step
        while index < len(merged) and merged[index].timestamp <= now + 1e-9:
            out.extend(parent.on_tuple(merged[index]))
            index += 1
        out.extend(parent.on_time(now))
    return out
