"""ESP pipeline assembly and execution (paper §3.3).

An :class:`ESPPipeline` declares the stage cascade for one receptor kind
(Point → Smooth → Merge → Arbitrate by default; an explicit ``sequence``
overrides the order, which the paper's own Figure 5 ablation needs). An
:class:`ESPProcessor` owns a :class:`~repro.receptors.registry.DeviceRegistry`,
wires every registered device's stream through the matching pipeline in a
Fjord, applies the deployment-wide Virtualize stage, and runs the whole
dataflow on a simulation clock.

The processor performs the plumbing the paper attributes to ESP itself:

- it "initiates data flow from the appropriate receptors" and applies
  stages in a Fjord-style manner (§3.3);
- it annotates every reading with its spatial granule, "corresponding to
  each proximity group" (§4, footnote 2);
- it instantiates stream-scoped stages once per receptor, group-scoped
  stages once per proximity group, kind-scoped stages once per receptor
  technology, and Virtualize once.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.granules import TemporalGranule
from repro.core.stages import Stage, StageContext, StageKind
from repro.errors import PipelineError
from repro.receptors.base import Receptor
from repro.receptors.registry import DeviceRegistry
from repro.streams.columnar import AddFields, SetStream
from repro.streams.fjord import Fjord
from repro.streams.operators import MapOp, UnionOp
from repro.streams.telemetry import TelemetryCollector, resolve_telemetry
from repro.streams.tuples import StreamTuple

#: Scope hierarchy, narrowest to widest.
_SCOPE_RANK = {"stream": 0, "group": 1, "kind": 2, "deployment": 3}


class ESPPipeline:
    """The stage cascade cleaning one receptor kind's streams.

    Args:
        receptor_kind: Technology this pipeline cleans (``"rfid"``,
            ``"mote"``, ``"x10"``).
        temporal_granule: The application's temporal granule, made
            available to stage factories via :class:`StageContext`.
        point, smooth, merge, arbitrate: Stage definitions (or ``None`` to
            skip — "not all stages need be implemented", §3.3). Each may
            also be a list of stages, applied in order ("multiple
            operations may be implemented for one stage").
        sequence: Explicit stage order overriding the canonical cascade.
            Used by ablations such as the paper's Arbitrate-before-Smooth
            configuration (Figure 5). Mutually exclusive with the
            per-stage arguments.
    """

    def __init__(
        self,
        receptor_kind: str,
        temporal_granule: TemporalGranule | None = None,
        point: "Stage | Sequence[Stage] | None" = None,
        smooth: "Stage | Sequence[Stage] | None" = None,
        merge: "Stage | Sequence[Stage] | None" = None,
        arbitrate: "Stage | Sequence[Stage] | None" = None,
        sequence: Sequence[Stage] | None = None,
    ):
        self.receptor_kind = receptor_kind
        self.temporal_granule = temporal_granule
        if sequence is not None:
            if any(s is not None for s in (point, smooth, merge, arbitrate)):
                raise PipelineError(
                    "pass either per-stage arguments or an explicit "
                    "sequence, not both"
                )
            self.sequence = list(sequence)
        else:
            self.sequence = []
            for stage_arg, kind in (
                (point, StageKind.POINT),
                (smooth, StageKind.SMOOTH),
                (merge, StageKind.MERGE),
                (arbitrate, StageKind.ARBITRATE),
            ):
                for stage in _as_stage_list(stage_arg):
                    if stage.kind is not kind:
                        raise PipelineError(
                            f"{kind.value} argument got a "
                            f"{stage.kind.value} stage"
                        )
                    self.sequence.append(stage)
        for stage in self.sequence:
            if stage.kind is StageKind.VIRTUALIZE:
                raise PipelineError(
                    "Virtualize is deployment-wide; set it on the "
                    "ESPProcessor, not a per-kind pipeline"
                )

    def __repr__(self):
        stages = " -> ".join(s.name for s in self.sequence) or "<identity>"
        return f"ESPPipeline({self.receptor_kind}: {stages})"


def _as_stage_list(arg: "Stage | Sequence[Stage] | None") -> list[Stage]:
    if arg is None:
        return []
    if isinstance(arg, Stage):
        return [arg]
    return list(arg)


#: Rollup keys for nodes the processor itself wires around the stages.
_PLUMBING_STAGES = {"annot": "ingest", "kindout": "union", "tap": "output"}

#: Presentation order of rollup rows: the network edge, the ESP
#: cascade, then plumbing.
_ROLLUP_ORDER = (
    "gateway", "ingest", "point", "smooth", "merge", "arbitrate",
    "virtualize", "union", "output", "other",
)


def classify_node(name: str) -> str:
    """Map a processor-wired DAG node name to its pipeline-stage label.

    The processor's node-naming scheme encodes the stage kind
    (``{kind}:{position}:{stage}:{label}``, with ``annot:``/``kindout:``
    /``virtualize:``/``tap:`` prefixes for its own plumbing); this is
    the inverse, used to roll per-operator telemetry up to the paper's
    Point/Smooth/Merge/Arbitrate/Virtualize vocabulary. Unknown names
    (hand-wired Fjords) classify as ``"other"``.
    """
    head, _sep, _rest = name.partition(":")
    if head in _PLUMBING_STAGES:
        return _PLUMBING_STAGES[head]
    if head == "gateway":
        # The ingestion gateway's per-source queue gauges (depth under
        # operator name "gateway:<source>") roll up as their own row.
        return "gateway"
    if head == "virtualize" or name == "__merge_kinds__":
        return "virtualize"
    if name == "__output__":
        return "output"
    parts = name.split(":")
    if len(parts) >= 3:
        if parts[2] in StageKind._value2member_map_:
            return parts[2]
        if parts[2] == "union":
            return "union"
    return "other"


def stage_rollups(
    snapshot: Mapping[str, Any],
) -> dict[str, dict[str, int]]:
    """Aggregate a telemetry snapshot's per-operator metrics by stage.

    Args:
        snapshot: A collector snapshot (see
            :func:`repro.streams.telemetry.empty_snapshot`) taken from a
            processor run.

    Returns:
        Stage label → summed counters (``tuples_in``, ``tuples_out``,
        ``batches``, ``punctuations``, ``busy_ns``) plus the max queue
        depth across the stage's operators, in pipeline order.
    """
    totals: dict[str, dict[str, int]] = {}
    for name, entry in snapshot.get("operators", {}).items():
        stage = classify_node(name)
        target = totals.setdefault(
            stage,
            {
                "tuples_in": 0,
                "tuples_out": 0,
                "batches": 0,
                "punctuations": 0,
                "busy_ns": 0,
                "max_queue_depth": 0,
            },
        )
        for field in (
            "tuples_in", "tuples_out", "batches", "punctuations", "busy_ns",
        ):
            target[field] += entry[field]
        target["max_queue_depth"] = max(
            target["max_queue_depth"], entry["max_queue_depth"]
        )
    ordered = [stage for stage in _ROLLUP_ORDER if stage in totals]
    ordered += sorted(set(totals) - set(_ROLLUP_ORDER))
    return {stage: totals[stage] for stage in ordered}


class ESPRun:
    """The result of one :meth:`ESPProcessor.run`.

    Attributes:
        output: The deployment's single cleaned output stream, in
            emission order.
        taps: Intermediate streams captured at stage boundaries, keyed
            ``"{receptor_kind}/{tap}"`` where ``tap`` is ``"raw"`` or a
            stage kind value. Only the taps requested at run time are
            present.
        stats: Per-node flow counters, name → (tuples in, tuples out).
            For sharded runs the counters are summed across shards, so
            they match the sequential run's counters exactly.
        telemetry: The run's telemetry snapshot (see
            :func:`repro.streams.telemetry.empty_snapshot`), taken from
            the collector after the run; empty when the run was
            uninstrumented. For sharded runs this holds the per-shard
            collectors merged in shard order.
    """

    def __init__(self):
        self.output: list[StreamTuple] = []
        self.taps: dict[str, list[StreamTuple]] = {}
        self.stats: dict[str, tuple[int, int]] = {}
        self.telemetry: dict[str, Any] = {}

    def tap(self, receptor_kind: str, tap_name: str) -> list[StreamTuple]:
        """A captured intermediate stream (empty if not requested)."""
        return self.taps.get(f"{receptor_kind}/{tap_name}", [])

    def stage_rollup(self) -> dict[str, dict[str, int]]:
        """Telemetry rolled up by pipeline stage (see
        :func:`stage_rollups`); empty for uninstrumented runs."""
        return stage_rollups(self.telemetry)

    def __repr__(self):
        return (
            f"ESPRun(output={len(self.output)} tuples, "
            f"taps={sorted(self.taps)})"
        )


class ESPStreamSession:
    """A live ESP run fed incrementally (push mode).

    Opened by :meth:`ESPProcessor.open_session`; the network ingestion
    gateway (:mod:`repro.net`) is the canonical driver. Push raw device
    readings with :meth:`push` (annotation and the stage cascade happen
    inside the dataflow exactly as in a batch run), advance punctuation
    time with :meth:`advance` as the ingress watermark moves, then
    :meth:`close` to flush the remaining ticks and collect the
    :class:`ESPRun`.

    The output equals a batch :meth:`ESPProcessor.run` over the same
    readings whenever every reading is pushed before its punctuation
    tick is swept — the :class:`~repro.streams.fjord.FjordSession`
    equivalence guarantee, which the gateway upholds by gating
    :meth:`advance` on its reorder buffers' watermark.
    """

    def __init__(
        self,
        fjord_session,
        sink,
        fjord,
        result: ESPRun,
        source_names: Mapping[str, str],
        collector: TelemetryCollector,
    ):
        self._session = fjord_session
        self._sink = sink
        self._fjord = fjord
        self._result = result
        self._source_names = dict(source_names)
        self._collector = collector

    @property
    def receptor_ids(self) -> tuple[str, ...]:
        """The receptor ids this session accepts pushes for."""
        return tuple(sorted(self._source_names))

    @property
    def safe_time(self) -> float:
        """Last punctuation time swept (see
        :attr:`repro.streams.fjord.FjordSession.safe_time`)."""
        return self._session.safe_time

    @property
    def ticks(self) -> tuple[float, ...]:
        """The session's full punctuation tick schedule."""
        return self._session.ticks

    @property
    def emitted(self) -> list[StreamTuple]:
        """Live view of the tuples the terminal sink has emitted so far.

        Grows as ticks are swept; the cluster worker reads it between
        single-tick advances to attribute output to punctuation ticks
        (see :class:`repro.net.worker.TickLedger`). Callers must not
        mutate it.
        """
        return self._sink.results

    def push(
        self,
        receptor_id: str,
        item: StreamTuple,
        trace: Any = None,
    ) -> None:
        """Feed one raw reading from the named receptor.

        Args:
            receptor_id: The receptor the reading came from.
            item: The raw reading.
            trace: Optional span-correlation state
                (:class:`~repro.streams.telemetry.IngestTrace`),
                forwarded to :meth:`FjordSession.push` — how the
                ingestion gateway's wire-to-emit latency decomposition
                reaches the executor.

        Raises:
            PipelineError: For an unknown receptor id.
            OperatorError: On timestamp regressions or pushes behind the
                punctuation cursor (see :meth:`FjordSession.push`).
        """
        source = self._source_names.get(receptor_id)
        if source is None:
            raise PipelineError(
                f"unknown receptor {receptor_id!r}; session sources: "
                f"{self.receptor_ids}"
            )
        self._session.push(source, item, trace=trace)

    def advance(self, watermark: float) -> list[float]:
        """Sweep every pending tick strictly below ``watermark``."""
        return self._session.advance(watermark)

    @property
    def span_sink(self):
        """The Fjord session's cluster span sink (see
        :attr:`FjordSession.span_sink`); settable runtime wiring."""
        return self._session.span_sink

    @span_sink.setter
    def span_sink(self, sink) -> None:
        self._session.span_sink = sink

    def checkpoint(self) -> dict:
        """Snapshot executor state (see :meth:`FjordSession.checkpoint`).

        Everything returned is live references — serialize synchronously,
        before the next :meth:`push` or :meth:`advance`.
        """
        return self._session.checkpoint()

    def restore(self, state: Mapping) -> None:
        """Install a :meth:`checkpoint` snapshot into this fresh session.

        The session must have been opened from the same pipeline
        configuration with the same tick schedule and must not have seen
        any pushes or advances yet (see :meth:`FjordSession.restore`).
        """
        self._session.restore(state)

    def close(self) -> ESPRun:
        """Flush remaining ticks; return the completed run. Idempotent."""
        self._session.close()
        result = self._result
        result.output = self._sink.results
        result.stats = self._fjord.stats()
        if self._collector.enabled and not result.telemetry:
            result.telemetry = self._collector.snapshot()
        return result


class ESPProcessor:
    """Wires receptor streams through ESP pipelines and runs them.

    Args:
        registry: Deployment metadata (devices, groups, granules).

    Example (single-kind deployment)::

        processor = ESPProcessor(registry)
        processor.add_pipeline(ESPPipeline("rfid", granule,
                                           smooth=smooth, arbitrate=arb))
        run = processor.run(until=700.0, tick=0.2, taps=("raw", "smooth"))
    """

    def __init__(self, registry: DeviceRegistry):
        self.registry = registry
        self._pipelines: dict[str, ESPPipeline] = {}
        self._virtualize: list[Stage] = []
        self._kind_stream_names: dict[str, str] = {}

    def add_pipeline(self, pipeline: ESPPipeline) -> "ESPProcessor":
        """Register the pipeline for one receptor kind (chainable)."""
        if pipeline.receptor_kind in self._pipelines:
            raise PipelineError(
                f"a pipeline for {pipeline.receptor_kind!r} already exists"
            )
        self._pipelines[pipeline.receptor_kind] = pipeline
        return self

    def set_virtualize(
        self,
        stage: "Stage | Sequence[Stage]",
        stream_names: Mapping[str, str] | None = None,
    ) -> "ESPProcessor":
        """Set the deployment-wide Virtualize stage(s).

        Args:
            stage: Stage (or list) of kind ``virtualize``.
            stream_names: Optional rename of each receptor kind's cleaned
                output stream before it reaches Virtualize — e.g.
                ``{"mote": "sensors_input", "rfid": "rfid_input"}`` so the
                paper's Query 6 finds the stream names it references.
        """
        stages = _as_stage_list(stage)
        for entry in stages:
            if entry.kind is not StageKind.VIRTUALIZE:
                raise PipelineError(
                    f"set_virtualize got a {entry.kind.value} stage"
                )
        self._virtualize = stages
        self._kind_stream_names = dict(stream_names or {})
        return self

    # -- wiring -----------------------------------------------------------------

    def run(
        self,
        until: float,
        tick: float | None = None,
        start: float = 0.0,
        taps: Sequence[str] = (),
        sources: Mapping[str, Sequence[StreamTuple]] | None = None,
        shards: int | None = None,
        backend: str | None = None,
        shard_key: str = "spatial_granule",
        telemetry: TelemetryCollector | None = None,
        mode: str | None = None,
    ) -> ESPRun:
        """Execute the deployment from ``start`` through ``until``.

        Args:
            until: End of simulation time (inclusive).
            tick: Punctuation period driving window emission; defaults to
                the smallest device sample period.
            start: Simulation start time.
            taps: Intermediate streams to capture: ``"raw"`` and/or stage
                kind values (``"point"``, ``"smooth"``, ...). Taps are
                only available on unsharded runs.
            sources: Optional pre-recorded readings per receptor id,
                replayed instead of polling the devices. Comparing
                pipeline *configurations* (the paper's Figure 5) requires
                every configuration to see the identical raw data, which
                live stochastic devices cannot provide.
            shards: Partition the deployment's streams into this many
                independent sub-pipelines (see
                :mod:`repro.streams.shard`). Defaults to the process-wide
                execution default (1 unless the CLI's ``--shards`` set
                it). Live device streams are recorded once before
                sharding so every shard count sees identical data.
            backend: Shard execution backend (``"serial"``,
                ``"threads"``, ``"processes"``); defaults like
                ``shards``.
            shard_key: Field to partition on. ``"spatial_granule"`` and
                ``"proximity_group"`` partition whole device streams via
                the registry (raw readings are not yet annotated); any
                other name is read off each raw tuple (e.g. ``"tag_id"``
                for Arbitrate pipelines, whose conflict resolution spans
                spatial granules but never tags).
            telemetry: Collector receiving per-operator metrics and
                trace events (see :mod:`repro.streams.telemetry`);
                defaults to the process-wide default (a no-op unless the
                CLI's ``--stats``/``--trace-out`` installed one). The
                snapshot lands on :attr:`ESPRun.telemetry`.
            mode: Execution mode (``"row"``, ``"columnar"`` or
                ``"fused"``, see :data:`repro.streams.fjord.MODES`);
                defaults to the process-wide default (``"row"`` unless
                the CLI's ``--mode`` set it). All modes produce
                bit-identical cleaned output.

        Returns:
            An :class:`ESPRun` with the cleaned output, flow stats and
            any taps.
        """
        from repro.streams.shard import resolve_execution, resolve_mode

        devices = self.registry.devices
        if not devices:
            raise PipelineError("no devices registered")
        if tick is None:
            tick = min(device.sample_period for device in devices)
        if tick <= 0:
            raise PipelineError(f"tick must be positive, got {tick}")
        shards, backend = resolve_execution(shards, backend)
        mode = resolve_mode(mode)
        collector = resolve_telemetry(telemetry)
        count = int(round((until - start) / tick))
        ticks = [start + i * tick for i in range(count + 1)]
        if shards <= 1 and backend == "serial":
            return self._run_single(
                ticks, until, start, taps, sources, collector, mode
            )
        if taps:
            raise PipelineError(
                "stage taps are not supported on sharded runs; capture "
                "them with shards=1, backend='serial'"
            )
        return self._run_sharded(
            ticks, until, start, sources, shards, backend, shard_key,
            collector, mode,
        )

    def open_session(
        self,
        until: float,
        tick: float | None = None,
        start: float = 0.0,
        telemetry: TelemetryCollector | None = None,
        mode: str | None = None,
    ) -> ESPStreamSession:
        """Open an incremental-push run over ``[start, until]``.

        The deployment dataflow is wired exactly as for a batch
        :meth:`run`, but with empty source feeds: readings are pushed in
        from outside (see :class:`ESPStreamSession`) — the entry point
        the live ingestion gateway (:mod:`repro.net.gateway`) drives.
        Streaming sessions execute unsharded; a sharded network
        deployment runs one gateway+session per process behind a
        partitioning front instead.

        Args:
            until: End of simulation time (inclusive).
            tick: Punctuation period; defaults to the smallest device
                sample period, as in :meth:`run`.
            start: Simulation start time.
            telemetry: Collector for the session's metrics and events;
                defaults like :meth:`run`.
            mode: Execution mode for the session's sweeps, one of
                :data:`~repro.streams.fjord.MODES` (``None`` means
                ``row``). A pure performance knob, exactly as for
                :meth:`run`: every mode produces bit-identical output.
        """
        devices = self.registry.devices
        if not devices:
            raise PipelineError("no devices registered")
        collector = resolve_telemetry(telemetry)
        ticks = self.punctuation_ticks(until, tick, start)
        result = ESPRun()
        empty: dict[str, list[StreamTuple]] = {
            device.receptor_id: [] for device in devices
        }
        fjord, sink = self._build_dataflow(until, start, set(), result, empty)
        session = fjord.open_session(
            ticks, telemetry=collector, mode=mode or "row"
        )
        source_names = {
            device.receptor_id: f"src:{device.receptor_id}"
            for device in devices
        }
        return ESPStreamSession(
            session, sink, fjord, result, source_names, collector
        )

    def punctuation_ticks(
        self, until: float, tick: float | None = None, start: float = 0.0
    ) -> list[float]:
        """The punctuation schedule a session over ``[start, until]`` uses.

        Exposed so out-of-process coordinators (the cluster router's
        epoch bookkeeping) can compute the *same* tick indices the
        workers' sessions sweep, including the default-tick rule.

        Args:
            until: End of simulation time (inclusive).
            tick: Punctuation period; defaults to the smallest device
                sample period, as in :meth:`run`.
            start: Simulation start time.
        """
        if tick is None:
            devices = self.registry.devices
            if not devices:
                raise PipelineError("no devices registered")
            tick = min(device.sample_period for device in devices)
        if tick <= 0:
            raise PipelineError(f"tick must be positive, got {tick}")
        count = int(round((until - start) / tick))
        return [start + i * tick for i in range(count + 1)]

    def _run_single(
        self,
        ticks: Sequence[float],
        until: float,
        start: float,
        taps: Sequence[str],
        sources: Mapping[str, Sequence[StreamTuple]] | None,
        collector: TelemetryCollector,
        mode: str = "row",
    ) -> ESPRun:
        """The single-threaded reference execution path."""
        result = ESPRun()
        fjord, sink = self._build_dataflow(
            until, start, set(taps), result, sources
        )
        fjord.run(ticks, telemetry=collector, mode=mode)
        result.output = sink.results
        result.stats = fjord.stats()
        if collector.enabled:
            result.telemetry = collector.snapshot()
        return result

    def _run_sharded(
        self,
        ticks: Sequence[float],
        until: float,
        start: float,
        sources: Mapping[str, Sequence[StreamTuple]] | None,
        shards: int,
        backend: str,
        shard_key: str,
        collector: TelemetryCollector,
        mode: str = "row",
    ) -> ESPRun:
        """Partition device streams and run one pipeline per shard.

        Every shard wires the full deployment graph but is fed only its
        slice of the key space, so per-key stateful stages see exactly
        the tuples they would see sequentially. Shard outputs are merged
        per tick in shard-key order — byte-identical to the sequential
        run for pipelines whose terminal stage emits key-sorted (all the
        ESP Merge/Arbitrate terminals; see :mod:`repro.streams.shard`).
        """
        from repro.streams import shard as shard_engine

        feeds = self._record_feeds(until, start, sources)
        key_fn = self._shard_key_fn(shard_key)
        shard_feeds = shard_engine.partition_sources(feeds, key_fn, shards)
        if collector.enabled:
            collector.event(
                "shard_partition",
                shards=shards,
                backend=backend,
                shard_key=shard_key,
                per_shard=[
                    sum(len(items) for items in slices.values())
                    for slices in shard_feeds
                ],
            )

        def build(slices: Mapping[str, list[StreamTuple]]):
            return self._build_dataflow(until, start, set(), ESPRun(), slices)

        builders = [
            (lambda slices=slices: build(slices)) for slices in shard_feeds
        ]
        results = shard_engine.run_shard_jobs(
            builders, ticks, backend=backend, telemetry=collector, mode=mode
        )
        result = ESPRun()
        result.output = shard_engine.merge_outputs(
            results,
            order_key=lambda item, _field=shard_key: str(item.get(_field)),
        )
        result.stats = shard_engine.merge_stats(results)
        if collector.enabled:
            collector.event(
                "shard_merge", shards=shards, tuples=len(result.output)
            )
            result.telemetry = collector.snapshot()
        return result

    def _record_feeds(
        self,
        until: float,
        start: float,
        sources: Mapping[str, Sequence[StreamTuple]] | None,
    ) -> dict[str, list[StreamTuple]]:
        """Materialize every device's readings once, before sharding."""
        feeds: dict[str, list[StreamTuple]] = {}
        for device in self.registry.devices:
            if sources is not None and device.receptor_id in sources:
                feeds[device.receptor_id] = list(sources[device.receptor_id])
            else:
                feeds[device.receptor_id] = list(
                    device.stream(until, start=start)
                )
        return feeds

    def shard_key_fn(self, shard_key: str):
        """Public shard-key extractor over ``(device id, reading)`` pairs.

        The returned callable maps a raw reading to its partition key —
        the same mapping the sharded batch engine uses, so a network
        partitioning tier (:mod:`repro.net.router`) colocates exactly
        the keys that must share stateful stages. The second argument
        only needs a ``.get(field)`` surface, so both
        :class:`~repro.streams.tuples.StreamTuple` readings and decoded
        wire records work.
        """
        return self._shard_key_fn(shard_key)

    def _shard_key_fn(self, shard_key: str):
        """Shard-key extractor over (device id, raw tuple) pairs."""
        if shard_key in ("spatial_granule", "proximity_group"):
            # Raw readings are not annotated yet; the registry knows each
            # device's group, and a device's whole stream shares one key.
            names: dict[str, str] = {}
            for device in self.registry.devices:
                group = self.registry.group_of(device.receptor_id)
                names[device.receptor_id] = (
                    group.granule.name
                    if shard_key == "spatial_granule"
                    else group.name
                )
            return lambda source, item: names[source]
        return lambda source, item: item.get(shard_key)

    def _build_dataflow(
        self,
        until: float,
        start: float,
        tap_set: set,
        result: ESPRun,
        sources: Mapping[str, Sequence[StreamTuple]] | None,
    ):
        """Wire the full deployment into a fresh Fjord; returns (fjord, sink)."""
        devices = self.registry.devices
        fjord = Fjord()
        kind_outputs: list[str] = []
        for receptor_kind in sorted(
            {device.kind.value for device in devices}
        ):
            kind_output = self._wire_kind(
                fjord,
                receptor_kind,
                [d for d in devices if d.kind.value == receptor_kind],
                until,
                start,
                tap_set,
                result,
                sources,
            )
            kind_outputs.append(kind_output)
        final = self._wire_virtualize(fjord, kind_outputs)
        sink = fjord.add_sink("__output__", inputs=[final])
        return fjord, sink

    def _wire_kind(
        self,
        fjord: Fjord,
        receptor_kind: str,
        devices: list[Receptor],
        until: float,
        start: float,
        taps: set[str],
        result: ESPRun,
        sources: Mapping[str, Sequence[StreamTuple]] | None = None,
    ) -> str:
        """Wire one receptor kind's devices through its pipeline.

        Returns the name of the node carrying the kind's cleaned stream.
        """
        pipeline = self._pipelines.get(
            receptor_kind, ESPPipeline(receptor_kind)
        )
        granule = pipeline.temporal_granule
        # Sources + spatial-granule annotation; streams keyed by a label
        # that survives union steps.
        streams: dict[str, str] = {}
        for device in devices:
            source_name = f"src:{device.receptor_id}"
            if sources is not None and device.receptor_id in sources:
                feed = list(sources[device.receptor_id])
            else:
                feed = device.stream(until, start=start)
            fjord.add_source(source_name, feed)
            annotate = self._annotator(device)
            node = f"annot:{device.receptor_id}"
            fjord.add_operator(node, MapOp(annotate), inputs=[source_name])
            streams[device.receptor_id] = node
        level = "stream"
        if "raw" in taps:
            self._tap(fjord, result, receptor_kind, "raw", streams.values())
        for position, stage in enumerate(pipeline.sequence):
            streams, level = self._apply_stage(
                fjord,
                receptor_kind,
                pipeline,
                stage,
                position,
                streams,
                level,
            )
            if stage.kind.value in taps:
                self._tap(
                    fjord, result, receptor_kind, stage.kind.value,
                    streams.values(),
                )
        # Collapse whatever level we ended at into one kind-level stream.
        kind_stream = self._kind_stream_names.get(receptor_kind, receptor_kind)
        union_node = f"kindout:{receptor_kind}"
        fjord.add_operator(
            union_node,
            UnionOp(output_stream=kind_stream),
            inputs=list(streams.values()),
        )
        return union_node

    def _annotator(self, device: Receptor):
        group = self.registry.group_of(device.receptor_id)
        # AddFields is columnar-aware: in columnar execution the two
        # annotation fields become shared constant columns instead of a
        # per-tuple dict copy.
        return AddFields(
            {
                "spatial_granule": group.granule.name,
                "proximity_group": group.name,
            }
        )

    def _apply_stage(
        self,
        fjord: Fjord,
        receptor_kind: str,
        pipeline: ESPPipeline,
        stage: Stage,
        position: int,
        streams: dict[str, str],
        level: str,
    ) -> tuple[dict[str, str], str]:
        """Apply one stage, widening the scope level if it requires it."""
        target = stage.kind.scope
        if target == "deployment":
            raise PipelineError("Virtualize cannot appear in a kind pipeline")
        if _SCOPE_RANK[target] > _SCOPE_RANK[level]:
            streams, level = self._widen(
                fjord, receptor_kind, position, streams, level, target
            )
        out: dict[str, str] = {}
        for label, node in streams.items():
            context = StageContext(
                stage.kind,
                temporal_granule=pipeline.temporal_granule,
                stream_name=label if level == "stream" else None,
                group=(
                    self._group_by_name(label) if level == "group" else None
                ),
                receptor_kind=receptor_kind,
            )
            op = stage.make(context)
            node_name = f"{receptor_kind}:{position}:{stage.kind.value}:{label}"
            fjord.add_operator(node_name, op, inputs=[node])
            # Re-stamp the stream name so downstream CompiledQuery routing
            # and Virtualize renames stay predictable.
            rename = f"{node_name}:rename"
            fjord.add_operator(
                rename,
                MapOp(SetStream(label)),
                inputs=[node_name],
            )
            out[label] = rename
        return out, level

    def _group_by_name(self, name: str):
        for group in self.registry.groups:
            if group.name == name:
                return group
        return None

    def _widen(
        self,
        fjord: Fjord,
        receptor_kind: str,
        position: int,
        streams: dict[str, str],
        level: str,
        target: str,
    ) -> tuple[dict[str, str], str]:
        """Union current streams up to ``target`` scope partitions."""
        if target == "group":
            if level != "stream":
                return streams, level  # already at or above group scope
            partitions: dict[str, list[str]] = {}
            for device_id, node in streams.items():
                group = self.registry.group_of(device_id)
                partitions.setdefault(group.name, []).append(node)
            out: dict[str, str] = {}
            for group_name, nodes in sorted(partitions.items()):
                union_node = f"{receptor_kind}:{position}:union:{group_name}"
                fjord.add_operator(
                    union_node,
                    UnionOp(output_stream=group_name),
                    inputs=nodes,
                )
                out[group_name] = union_node
            return out, "group"
        # target == "kind": merge everything into one partition.
        union_node = f"{receptor_kind}:{position}:union:kind"
        fjord.add_operator(
            union_node,
            UnionOp(output_stream=receptor_kind),
            inputs=list(streams.values()),
        )
        return {receptor_kind: union_node}, "kind"

    def _tap(self, fjord, result, receptor_kind, tap_name, nodes) -> None:
        key = f"{receptor_kind}/{tap_name}"
        sink = fjord.add_sink(f"tap:{key}", inputs=list(nodes))
        result.taps[key] = sink.results

    def _wire_virtualize(self, fjord: Fjord, kind_outputs: list[str]) -> str:
        if not self._virtualize:
            if len(kind_outputs) == 1:
                return kind_outputs[0]
            fjord.add_operator(
                "__merge_kinds__", UnionOp(), inputs=kind_outputs
            )
            return "__merge_kinds__"
        current = kind_outputs
        node_name = ""
        for position, stage in enumerate(self._virtualize):
            context = StageContext(StageKind.VIRTUALIZE)
            op = stage.make(context)
            node_name = f"virtualize:{position}"
            fjord.add_operator(node_name, op, inputs=current)
            current = [node_name]
        return node_name
