"""Reading-schema conventions shared across the library.

ESP does not enforce rigid schemas — receptor tuples are open field
mappings — but the stages, simulators and deployments agree on a small
vocabulary of field names. Centralizing it here keeps pipelines, tests
and user code from drifting apart, and gives :func:`validate_reading` a
single definition of "well-formed reading" per receptor kind.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.streams.tuples import StreamTuple

#: Field carrying the application-level spatial unit. The ESP processor
#: adds it to every reading automatically (paper §4, footnote 2).
SPATIAL_GRANULE = "spatial_granule"
#: Field carrying the proximity-group name, also added by the processor.
PROXIMITY_GROUP = "proximity_group"

#: RFID reading fields.
TAG_ID = "tag_id"
READER_ID = "reader_id"
SHELF = "shelf"

#: Sensor-mote reading fields.
MOTE_ID = "mote_id"
TEMPERATURE = "temp"
SOUND = "noise"
EPOCH = "epoch"

#: X10 reading fields.
SENSOR_ID = "sensor_id"
VALUE = "value"
X10_ON = "ON"

#: Required fields per receptor kind, as emitted by the simulators.
REQUIRED_FIELDS = {
    "rfid": (TAG_ID, READER_ID),
    "mote": (MOTE_ID,),
    "x10": (SENSOR_ID, VALUE),
}


def validate_reading(item: StreamTuple, kind: str) -> None:
    """Check that a reading carries its kind's required fields.

    Raises:
        SchemaError: If ``kind`` is unknown or a required field is
            missing. Used by tests and by user code integrating real
            device drivers in place of the simulators.
    """
    if kind not in REQUIRED_FIELDS:
        raise SchemaError(
            f"unknown receptor kind {kind!r}; expected one of "
            f"{sorted(REQUIRED_FIELDS)}"
        )
    missing = [
        field for field in REQUIRED_FIELDS[kind] if field not in item
    ]
    if missing:
        raise SchemaError(
            f"{kind} reading is missing required fields {missing}; "
            f"present: {sorted(item.keys())}"
        )
