"""Temporal and spatial granules (paper §3.1).

Granules are the paper's fundamental abstraction: "the lowest-level,
atomic unit of both time and space in which an application is
interested", and simultaneously a declaration that data *within* a
granule is highly correlated — which is what licenses ESP to aggregate,
interpolate and reject outliers inside one.

- A :class:`TemporalGranule` drives windowed processing in Smooth (and
  the window expansion of §5.2.1 when the device sample rate is too
  coarse to smooth effectively at the granule size).
- A :class:`SpatialGranule` names an application-level spatial unit (a
  shelf, a height band on a redwood trunk, an office); receptors
  monitoring it are organized into :class:`ProximityGroup` s of devices
  of the same type, which drive Merge and Arbitrate.
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.streams.time import Duration, parse_duration


class TemporalGranule:
    """The atomic unit of time an application operates on.

    Args:
        size: Granule width — anything :func:`repro.streams.time.parse_duration`
            accepts (``'5 sec'``, ``Duration(5)``, ``5.0``).
        smoothing_window: Optional explicit window size for Smooth. By
            default the window equals the granule; the redwood deployment
            (§5.2.1) expands it (30-minute window over a 5-minute
            granule) because the motes sample exactly once per granule.

    Example:
        >>> g = TemporalGranule("5 sec")
        >>> g.window_seconds
        5.0
        >>> TemporalGranule("5 min", smoothing_window="30 min").window_seconds
        1800.0
    """

    def __init__(
        self,
        size: "Duration | str | float",
        smoothing_window: "Duration | str | float | None" = None,
    ):
        self.size = parse_duration(size)
        if self.size.seconds <= 0:
            raise PipelineError("temporal granule must have positive size")
        if smoothing_window is None:
            self.window = self.size
        else:
            self.window = parse_duration(smoothing_window)
            if self.window < self.size:
                raise PipelineError(
                    "smoothing window cannot be smaller than the granule "
                    f"({self.window!r} < {self.size!r})"
                )

    @property
    def seconds(self) -> float:
        """Granule width in seconds."""
        return self.size.seconds

    @property
    def window_seconds(self) -> float:
        """Smoothing window width in seconds (>= granule width)."""
        return self.window.seconds

    @property
    def is_expanded(self) -> bool:
        """Whether the smoothing window was expanded past the granule."""
        return self.window.seconds > self.size.seconds

    def __eq__(self, other):
        if not isinstance(other, TemporalGranule):
            return NotImplemented
        return (self.size, self.window) == (other.size, other.window)

    def __hash__(self):
        return hash((self.size, self.window))

    def __repr__(self):
        expanded = (
            f", window={self.window.seconds:g}s" if self.is_expanded else ""
        )
        return f"TemporalGranule({self.size.seconds:g}s{expanded})"


class SpatialGranule:
    """The atomic unit of space an application operates on.

    Args:
        name: Application-level name (``"shelf0"``, ``"office_521"``).
        description: Optional human-readable description.

    Spatial granules are identified by name; two granules with the same
    name compare equal.
    """

    __slots__ = ("name", "description")

    def __init__(self, name: str, description: str = ""):
        if not name:
            raise PipelineError("spatial granule needs a non-empty name")
        self.name = name
        self.description = description

    def __eq__(self, other):
        if not isinstance(other, SpatialGranule):
            return NotImplemented
        return self.name == other.name

    def __hash__(self):
        return hash(("SpatialGranule", self.name))

    def __repr__(self):
        return f"SpatialGranule({self.name!r})"


class ProximityGroup:
    """A set of same-type receptors monitoring one spatial granule (§3.1.2).

    Args:
        name: Group name (``"shelf0_readers"``).
        granule: The spatial granule the group monitors.
        receptor_kind: Device technology in this group (``"rfid"``,
            ``"mote"``, ``"x10"``) — groups are homogeneous by definition.

    Attributes:
        members: Receptor ids assigned to this group (managed by
            :class:`repro.receptors.registry.DeviceRegistry`).
    """

    __slots__ = ("name", "granule", "receptor_kind", "members")

    def __init__(self, name: str, granule: SpatialGranule, receptor_kind: str):
        if not name:
            raise PipelineError("proximity group needs a non-empty name")
        self.name = name
        self.granule = granule
        self.receptor_kind = receptor_kind
        self.members: list[str] = []

    def __eq__(self, other):
        if not isinstance(other, ProximityGroup):
            return NotImplemented
        return (
            self.name == other.name
            and self.granule == other.granule
            and self.receptor_kind == other.receptor_kind
        )

    def __hash__(self):
        return hash(("ProximityGroup", self.name))

    def __repr__(self):
        return (
            f"ProximityGroup({self.name!r}, granule={self.granule.name!r}, "
            f"kind={self.receptor_kind}, members={len(self.members)})"
        )
