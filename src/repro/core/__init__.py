"""ESP core — the paper's primary contribution.

- :mod:`repro.core.granules` — temporal and spatial granules, proximity
  groups (§3.1).
- :mod:`repro.core.stages` — the five programmable stage types: Point,
  Smooth, Merge, Arbitrate, Virtualize (§3.2).
- :mod:`repro.core.pipeline` — :class:`~repro.core.pipeline.ESPPipeline`
  (declarative pipeline assembly) and
  :class:`~repro.core.pipeline.ESPProcessor` (Fjord-style execution,
  §3.3).
- :mod:`repro.core.operators` — the reusable "suite of ESP Operators" the
  paper's conclusion anticipates (§7).
"""

from repro.core.granules import ProximityGroup, SpatialGranule, TemporalGranule
from repro.core.pipeline import ESPPipeline, ESPProcessor
from repro.core.stages import (
    ArbitrateStage,
    MergeStage,
    PointStage,
    SmoothStage,
    Stage,
    StageKind,
    VirtualizeStage,
)

__all__ = [
    "ArbitrateStage",
    "ESPPipeline",
    "ESPProcessor",
    "MergeStage",
    "PointStage",
    "ProximityGroup",
    "SmoothStage",
    "SpatialGranule",
    "Stage",
    "StageKind",
    "TemporalGranule",
    "VirtualizeStage",
]
