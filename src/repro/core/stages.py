"""The five ESP processing stages (paper §3.2).

A :class:`Stage` is a *description*: which of the five logical cleaning
tasks it implements (:class:`StageKind`) plus a factory that materializes
a fresh stream operator each time the processor instantiates the stage.
Fresh instantiation matters because the same stage definition is applied
independently to many scopes — Point and Smooth run once per receptor
stream, Merge once per proximity group, Arbitrate once per receptor kind,
Virtualize once per deployment — and each instance carries its own window
state.

Stages can be programmed three ways, in the paper's order of increasing
flexibility (§3.3):

- **declarative continuous queries** — :meth:`Stage.from_query`;
- **user-defined functions** — :meth:`Stage.from_function` (per-tuple
  UDFs) and user-defined aggregates registered with
  :func:`repro.streams.aggregates.register_aggregate`;
- **arbitrary code** — :meth:`Stage.from_operator`, wrapping any object
  implementing the :class:`repro.streams.operators.Operator` protocol.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.cql.planner import CompiledQuery, compile_query
from repro.core.granules import ProximityGroup, TemporalGranule
from repro.errors import PipelineError
from repro.streams.operators import MapOp, Operator
from repro.streams.tuples import StreamTuple


class StageKind(str, enum.Enum):
    """The five logical stages, in pipeline order."""

    POINT = "point"
    SMOOTH = "smooth"
    MERGE = "merge"
    ARBITRATE = "arbitrate"
    VIRTUALIZE = "virtualize"

    @property
    def order(self) -> int:
        """Position in the canonical Point→...→Virtualize cascade."""
        return _STAGE_ORDER[self]

    @property
    def scope(self) -> str:
        """The scope at which instances run: ``stream`` (per receptor),
        ``group`` (per proximity group), ``kind`` (per receptor type) or
        ``deployment`` (one instance overall)."""
        return _STAGE_SCOPE[self]


_STAGE_ORDER = {
    StageKind.POINT: 0,
    StageKind.SMOOTH: 1,
    StageKind.MERGE: 2,
    StageKind.ARBITRATE: 3,
    StageKind.VIRTUALIZE: 4,
}

_STAGE_SCOPE = {
    StageKind.POINT: "stream",
    StageKind.SMOOTH: "stream",
    StageKind.MERGE: "group",
    StageKind.ARBITRATE: "kind",
    StageKind.VIRTUALIZE: "deployment",
}


class StageContext:
    """Everything a stage factory may want to know about its scope.

    Attributes:
        kind: The stage kind being instantiated.
        temporal_granule: The application's temporal granule (may be
            ``None`` for granule-free stages such as pure Point filters).
        stream_name: For stream-scoped stages, the receptor stream.
        group: For group-scoped stages, the proximity group.
        receptor_kind: For kind-scoped stages, the receptor technology.
    """

    __slots__ = ("kind", "temporal_granule", "stream_name", "group", "receptor_kind")

    def __init__(
        self,
        kind: StageKind,
        temporal_granule: TemporalGranule | None = None,
        stream_name: str | None = None,
        group: ProximityGroup | None = None,
        receptor_kind: str | None = None,
    ):
        self.kind = kind
        self.temporal_granule = temporal_granule
        self.stream_name = stream_name
        self.group = group
        self.receptor_kind = receptor_kind

    def __repr__(self):
        bits = [self.kind.value]
        if self.stream_name:
            bits.append(f"stream={self.stream_name}")
        if self.group is not None:
            bits.append(f"group={self.group.name}")
        if self.receptor_kind:
            bits.append(f"kind={self.receptor_kind}")
        return f"StageContext({', '.join(bits)})"


#: A stage factory builds a fresh operator for one scope instance.
StageFactory = Callable[[StageContext], Operator]


class Stage:
    """One programmable ESP stage (see module docstring).

    Prefer the classmethod constructors; the raw constructor takes an
    explicit factory.

    Args:
        kind: Which of the five stages this implements.
        factory: Callable building a fresh operator per scope instance.
        name: Optional label for diagnostics; defaults to the kind.
    """

    def __init__(self, kind: StageKind, factory: StageFactory, name: str = ""):
        self.kind = StageKind(kind)
        self._factory = factory
        self.name = name or self.kind.value

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_query(
        cls, kind: "StageKind | str", query_text: str, name: str = ""
    ) -> "Stage":
        """A stage defined by a declarative CQL query.

        The query is compiled once per scope instance so window state is
        never shared between, say, two readers' Smooth stages.
        """
        compile_query(query_text)  # fail fast on syntax errors

        def factory(_ctx: StageContext) -> CompiledQuery:
            return compile_query(query_text)

        return cls(StageKind(kind), factory, name=name or f"query:{kind}")

    @classmethod
    def from_function(
        cls,
        kind: "StageKind | str",
        fn: Callable[[StreamTuple], "StreamTuple | list[StreamTuple] | None"],
        name: str = "",
    ) -> "Stage":
        """A stage defined by a per-tuple UDF (return None to drop)."""

        def factory(_ctx: StageContext) -> Operator:
            return MapOp(fn)

        return cls(StageKind(kind), factory, name=name or f"udf:{kind}")

    @classmethod
    def from_operator(
        cls, kind: "StageKind | str", factory: StageFactory, name: str = ""
    ) -> "Stage":
        """A stage defined by arbitrary code: any operator factory."""
        return cls(StageKind(kind), factory, name=name)

    # -- instantiation ------------------------------------------------------------

    def make(self, context: StageContext) -> Operator:
        """Build a fresh operator for one scope instance.

        Raises:
            PipelineError: If the factory returns something that is not a
                stream operator.
        """
        op = self._factory(context)
        if not isinstance(op, Operator):
            raise PipelineError(
                f"stage {self.name!r} factory returned {type(op).__name__}, "
                "expected a streams Operator"
            )
        return op

    def __repr__(self):
        return f"Stage({self.kind.value}, name={self.name!r})"


def PointStage(factory_or_query, name: str = "") -> Stage:
    """Convenience builder for a Point stage.

    Accepts a CQL string, a per-tuple function, or an operator factory —
    dispatching on the argument type.
    """
    return _dispatch(StageKind.POINT, factory_or_query, name)


def SmoothStage(factory_or_query, name: str = "") -> Stage:
    """Convenience builder for a Smooth stage (see :func:`PointStage`)."""
    return _dispatch(StageKind.SMOOTH, factory_or_query, name)


def MergeStage(factory_or_query, name: str = "") -> Stage:
    """Convenience builder for a Merge stage (see :func:`PointStage`)."""
    return _dispatch(StageKind.MERGE, factory_or_query, name)


def ArbitrateStage(factory_or_query, name: str = "") -> Stage:
    """Convenience builder for an Arbitrate stage (see :func:`PointStage`)."""
    return _dispatch(StageKind.ARBITRATE, factory_or_query, name)


def VirtualizeStage(factory_or_query, name: str = "") -> Stage:
    """Convenience builder for a Virtualize stage (see :func:`PointStage`)."""
    return _dispatch(StageKind.VIRTUALIZE, factory_or_query, name)


def _dispatch(kind: StageKind, spec, name: str) -> Stage:
    if isinstance(spec, Stage):
        if spec.kind is not kind:
            raise PipelineError(
                f"stage is a {spec.kind.value} stage, expected {kind.value}"
            )
        return spec
    if isinstance(spec, str):
        return Stage.from_query(kind, spec, name=name)
    if isinstance(spec, Operator):
        raise PipelineError(
            "pass an operator *factory* (lambda ctx: op), not an operator "
            "instance — stages are instantiated once per scope"
        )
    if callable(spec):
        # Factories take a StageContext; per-tuple UDFs take a tuple. We
        # cannot reliably introspect, so the convention is: factories are
        # the default; wrap UDFs explicitly via Stage.from_function.
        return Stage.from_operator(kind, spec, name=name)
    raise PipelineError(f"cannot build a stage from {type(spec).__name__}")
