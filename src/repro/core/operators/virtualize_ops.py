"""Virtualize-stage operators: cross-receptor, application-level cleaning.

Virtualize "combines readings from different types of devices and
different proximity groups" (§3.2) to synthesize virtual sensors — the
paper's example being the digital home's "person detector" built from
RFID, sound motes and X10 detectors (§6.2, Query 6).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.stages import Stage, StageContext, StageKind
from repro.errors import OperatorError
from repro.streams.operators import Operator
from repro.streams.tuples import StreamTuple

#: A vote predicate inspects one tuple from its stream.
VotePredicate = Callable[[StreamTuple], bool]


class VotingDetector(Operator):
    """Normalize heterogeneous streams into votes; fire above a threshold.

    The toolkit form of the paper's Query 6: each configured input stream
    contributes one vote per time instant iff any of its tuples in that
    instant satisfies the stream's predicate; when the vote total reaches
    ``threshold``, one detection tuple is emitted.

    Args:
        votes: Stream name → predicate over that stream's tuples. A
            ``None`` predicate counts any tuple as a vote (presence
            voting, e.g. a smoothed X10 stream that only carries ON
            rows).
        threshold: Minimum votes to fire.
        event: Value of the emitted tuple's ``event`` field.

    Emitted tuples carry ``event``, ``votes`` (the total) and one boolean
    field per voting stream (``vote_<stream>``), handy for debugging a
    deployment's sensors.
    """

    def __init__(
        self,
        votes: Mapping[str, VotePredicate | None],
        threshold: int = 2,
        event: str = "Person-in-room",
    ):
        if not votes:
            raise OperatorError("VotingDetector needs at least one vote source")
        if not 1 <= threshold <= len(votes):
            raise OperatorError(
                f"threshold {threshold} outside 1..{len(votes)}"
            )
        self._votes = dict(votes)
        self._threshold = int(threshold)
        self._event = event
        self._seen: dict[str, bool] = {name: False for name in votes}

    STATE_ATTRS = ("_seen",)

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        predicate = self._votes.get(item.stream, _ABSENT)
        if predicate is _ABSENT:
            return []
        if predicate is None or predicate(item):
            self._seen[item.stream] = True
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        total = sum(1 for fired in self._seen.values() if fired)
        fields = {f"vote_{name}": fired for name, fired in self._seen.items()}
        self._seen = {name: False for name in self._votes}
        if total < self._threshold:
            return []
        return [
            StreamTuple(
                now,
                {"event": self._event, "votes": total, **fields},
            )
        ]


class _Absent:
    """Marker distinguishing 'stream not configured' from a None predicate."""


_ABSENT = _Absent()


class CorrelationModelCleaner(Operator):
    """BBQ-style model-driven cleaning over correlated quantities.

    The paper's §6.3.1: "the Virtualize stage could also be implemented
    with a BBQ-like system [12]. Such a function would build models of
    the receptor streams to assist in cleaning the data" — and §2.2
    names the canonical correlation, battery voltage vs. temperature.

    This operator learns, online, a bivariate linear model between a
    *predictor* quantity and a *target* quantity (running means,
    variances and covariance with exponential forgetting). Once warmed
    up, each reading's target value is checked against the conditional
    prediction given its predictor value; readings whose residual
    exceeds ``k`` residual standard deviations are dropped.

    Because the check is *within one reading*, it detects a fail-dirty
    transducer with **no spatial redundancy at all** — where the Merge
    ±1σ rule of Query 5 needs at least two healthy neighbours, this
    catches a lone mote whose temperature climbs while its voltage does
    not (the fault corrupts one transducer, not the board).

    Args:
        predictor: Field whose sensor is trusted (e.g. ``"voltage"``).
        target: Field being validated (e.g. ``"temp"``).
        k: Rejection threshold in residual standard deviations.
        alpha: Forgetting factor for the running moments (per reading).
        warmup: Readings to learn from before rejecting anything.
        min_residual: Floor on the rejection band, guarding against a
            degenerate zero-variance warmup.

    Two thresholds guard against *slow-drift evasion* (a fault that
    creeps just fast enough to drag an adaptive model along): readings
    are **learned from** only within ``k_learn`` residual deviations,
    but **rejected** only beyond ``k``. A creeping fault first leaves
    the learn band — freezing the model — and then, with the model
    pinned, walks out of the rejection band.

    Args:
        predictor: Field whose sensor is trusted (e.g. ``"voltage"``).
        target: Field being validated (e.g. ``"temp"``).
        k: Rejection threshold in residual standard deviations.
        k_learn: Model-update gate, in residual standard deviations;
            must not exceed ``k``.
        alpha: Forgetting factor for the running moments (per reading).
        warmup: Readings to learn from before rejecting anything.
        min_residual: Floor on the rejection band, guarding against a
            degenerate zero-variance warmup.
    """

    def __init__(
        self,
        predictor: str = "voltage",
        target: str = "temp",
        k: float = 4.0,
        k_learn: float = 2.0,
        alpha: float = 0.05,
        warmup: int = 20,
        min_residual: float = 0.05,
    ):
        if k_learn > k:
            raise OperatorError(
                f"k_learn ({k_learn}) must not exceed k ({k})"
            )
        if k <= 0:
            raise OperatorError(f"k must be positive, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise OperatorError(f"alpha must be in (0, 1], got {alpha}")
        if warmup < 2:
            raise OperatorError(f"warmup must be >= 2, got {warmup}")
        self._predictor = predictor
        self._target = target
        self._k = float(k)
        self._k_learn = float(k_learn)
        self._alpha = float(alpha)
        self._warmup = int(warmup)
        self._min_residual = float(min_residual)
        self._n = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._var_x = 0.0
        self._var_y = 0.0
        self._cov = 0.0
        self._resid_var = 0.0

    STATE_ATTRS = (
        "_n", "_mean_x", "_mean_y", "_var_x", "_var_y", "_cov", "_resid_var",
    )

    def _update(self, x: float, y: float) -> None:
        if self._n == 0:
            self._mean_x, self._mean_y = x, y
        rate = max(self._alpha, 1.0 / (self._n + 1))
        dx = x - self._mean_x
        dy = y - self._mean_y
        self._mean_x += rate * dx
        self._mean_y += rate * dy
        self._var_x = (1 - rate) * (self._var_x + rate * dx * dx)
        self._var_y = (1 - rate) * (self._var_y + rate * dy * dy)
        self._cov = (1 - rate) * (self._cov + rate * dx * dy)
        residual = dy - self._slope() * dx
        self._resid_var = (1 - rate) * (
            self._resid_var + rate * residual * residual
        )
        self._n += 1

    def _slope(self) -> float:
        return self._cov / self._var_x if self._var_x > 1e-12 else 0.0

    def predict(self, x: float) -> float:
        """Conditional expectation of the target given the predictor."""
        return self._mean_y + self._slope() * (x - self._mean_x)

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        x = item.get(self._predictor)
        y = item.get(self._target)
        if x is None or y is None:
            return [item]  # nothing to validate against
        x, y = float(x), float(y)
        if self._n < self._warmup:
            self._update(x, y)
            return [item]
        sigma = max(self._min_residual, self._resid_var**0.5)
        residual = y - self.predict(x)
        if abs(residual) > self._k * sigma:
            return []  # model-rejected reading
        if abs(residual) <= self._k_learn * sigma:
            self._update(x, y)  # only clearly-consistent readings learn
        return [item]


def correlation_model_cleaner(
    predictor: str = "voltage",
    target: str = "temp",
    k: float = 4.0,
    alpha: float = 0.05,
    warmup: int = 20,
    name: str = "",
) -> Stage:
    """Stage builder for :class:`CorrelationModelCleaner` (Virtualize)."""

    def factory(_ctx: StageContext) -> Operator:
        return CorrelationModelCleaner(
            predictor=predictor, target=target, k=k, alpha=alpha,
            warmup=warmup,
        )

    return Stage(
        StageKind.VIRTUALIZE, factory, name=name or "correlation_model"
    )


def voting_detector(
    votes: Mapping[str, VotePredicate | None],
    threshold: int = 2,
    event: str = "Person-in-room",
    name: str = "",
) -> Stage:
    """Stage builder for :class:`VotingDetector` (paper Query 6)."""

    def factory(_ctx: StageContext) -> Operator:
        return VotingDetector(votes, threshold=threshold, event=event)

    return Stage(StageKind.VIRTUALIZE, factory, name=name or "voting_detector")
