"""Smooth-stage operators: aggregation within a temporal granule.

Smooth "uses the temporal granule defined by the application to correct
for missed readings and detect outliers in a single receptor stream"
(§3.2), by processing a sliding window the size of the granule — or an
*expanded* window when the device's sample rate is too coarse (§5.2.1).

Each builder returns a :class:`~repro.core.stages.Stage` whose window
defaults to the pipeline's temporal granule (its ``window_seconds``,
which honours expansion) so that a deployment only states the granule
once.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.stages import Stage, StageContext, StageKind
from repro.errors import PipelineError
from repro.streams.aggregates import AggregateSpec
from repro.streams.operators import (
    ChainOp,
    GroupKey,
    MapOp,
    Operator,
    WindowedGroupByOp,
)
from repro.streams.tuples import StreamTuple
from repro.streams.windows import WindowSpec


def _resolve_window(
    window: float | None, ctx: StageContext, who: str
) -> float:
    if window is not None:
        return float(window)
    if ctx.temporal_granule is None:
        raise PipelineError(
            f"{who} needs an explicit window or a pipeline temporal granule"
        )
    return ctx.temporal_granule.window_seconds


def _carry_keys(carry: Sequence[str]) -> list[GroupKey]:
    # Carried fields group on .get() so a missing field doesn't abort the
    # stage; constant-per-stream fields (spatial_granule etc.) ride along.
    return [
        GroupKey(field, (lambda t, _f=field: t.get(_f))) for field in carry
    ]


def presence_smoother(
    window: float | None = None,
    id_field: str = "tag_id",
    carry: Sequence[str] = ("spatial_granule",),
    count_field: str = "count",
    incremental: bool = True,
    name: str = "",
) -> Stage:
    """Interpolate lost ID readings within the temporal granule.

    The direct equivalent of the paper's Query 2: a sliding-window
    ``GROUP BY tag_id`` count. An ID missed on some polls but read at
    least once inside the window is reported every tick with its window
    read count — the interpolation that removes the raw data's constant
    dropouts (Figure 3(c)).

    Args:
        window: Window seconds; defaults to the granule's window.
        id_field: The identifier to smooth over (``tag_id``).
        carry: Fields carried into the output (grouped on; constant per
            stream in practice).
        count_field: Output field holding the window read count.
        incremental: Maintain the count in O(1) per tuple
            (:class:`repro.streams.incremental.IncrementalWindowedGroupByOp`)
            rather than recomputing per slide. Equivalent results
            (property-tested); disable only when debugging the engine.
    """

    def factory(ctx: StageContext) -> Operator:
        seconds = _resolve_window(window, ctx, "presence_smoother")
        keys = [GroupKey(id_field)] + _carry_keys(carry)
        aggregates = [AggregateSpec("count", output=count_field)]
        if incremental:
            from repro.streams.incremental import (
                IncrementalWindowedGroupByOp,
            )

            group: Operator = IncrementalWindowedGroupByOp(
                WindowSpec.range_by(seconds),
                keys=keys,
                aggregates=aggregates,
            )
        else:
            group = WindowedGroupByOp(
                WindowSpec.range_by(seconds),
                keys=keys,
                aggregates=aggregates,
            )
        # Malformed readings without the identifier are dropped rather
        # than crashing the stage or forming a junk None-group: dirty
        # data is this framework's normal input.
        from repro.streams.operators import ChainOp, FilterOp

        return ChainOp(
            [FilterOp(lambda t: t.get(id_field) is not None), group]
        )

    return Stage(StageKind.SMOOTH, factory, name=name or "presence_smoother")


def sliding_average(
    window: float | None = None,
    value_field: str = "temp",
    by: Sequence[str] = ("mote_id",),
    carry: Sequence[str] = ("spatial_granule",),
    output_field: str | None = None,
    count_field: str = "readings",
    name: str = "",
) -> Stage:
    """Per-device sliding-window average (the sensor-network Smooth).

    "By running a sliding window average on each sensor stream, lost
    readings from a single mote are masked during the course of the
    window" (§5.2.1). Emits, per tick and per device, the window mean and
    the number of contributing readings; devices with empty windows emit
    nothing (that epoch stays lost — Merge may still recover it).

    Args:
        window: Window seconds; defaults to the granule's window (which
            the redwood deployment expands to 30 minutes).
        value_field: Quantity to average.
        by: Device identity fields.
        carry: Extra fields carried through.
        output_field: Name for the averaged value; defaults to
            ``value_field`` so downstream stages are agnostic to whether
            Smooth ran.
        count_field: Output field with the count of readings averaged.
    """
    result_field = output_field or value_field

    def factory(ctx: StageContext) -> Operator:
        seconds = _resolve_window(window, ctx, "sliding_average")
        return WindowedGroupByOp(
            WindowSpec.range_by(seconds),
            keys=[GroupKey(field) for field in by] + _carry_keys(carry),
            aggregates=[
                AggregateSpec("avg", field=value_field, output=result_field),
                AggregateSpec("count", output=count_field),
            ],
        )

    return Stage(StageKind.SMOOTH, factory, name=name or "sliding_average")


def event_smoother(
    window: float | None = None,
    value_field: str = "value",
    on_value: str = "ON",
    carry: Sequence[str] = ("spatial_granule", "sensor_id"),
    count_field: str = "events",
    name: str = "",
) -> Stage:
    """Interpolate event streams (the X10 Smooth, §6.1).

    X10 detectors emit sparse ``ON`` events; this stage re-emits ``ON``
    at every tick for which at least one event fell inside the window,
    filling the gaps a flaky detector leaves while a person is present.
    """

    def factory(ctx: StageContext) -> Operator:
        seconds = _resolve_window(window, ctx, "event_smoother")
        group = WindowedGroupByOp(
            WindowSpec.range_by(seconds),
            keys=_carry_keys(carry),
            aggregates=[AggregateSpec("count", output=count_field)],
        )

        def stamp(item: StreamTuple) -> StreamTuple:
            return item.derive(values={value_field: on_value})

        return ChainOp([_OnOnly(value_field, on_value), group, MapOp(stamp)])

    return Stage(StageKind.SMOOTH, factory, name=name or "event_smoother")


class _OnOnly(Operator):
    """Admit only the configured event value into the smoothing window."""

    def __init__(self, value_field: str, on_value: str):
        self._value_field = value_field
        self._on_value = on_value

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        return [item] if item.get(self._value_field) == self._on_value else []
