"""Point-stage operators: tuple-level corrections, transformations, filters.

The Point stage "operates over a single value in a receptor stream"
(§3.2) — every operator here is stateless and per-tuple. The paper's
examples covered: range filtering faulty values (Query 4), whitelisting
expected RFID tags against a static relation (§6.1), and the checksum
filtering RFID readers perform out of the box (§4).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.stages import Stage, StageContext, StageKind
from repro.errors import PipelineError
from repro.streams.operators import FilterOp, MapOp, Operator
from repro.streams.tuples import StreamTuple


def range_filter(
    field: str,
    low: float | None = None,
    high: float | None = None,
    name: str = "",
) -> Stage:
    """Keep tuples whose ``field`` lies inside ``[low, high]`` bounds.

    Either bound may be ``None`` (unbounded on that side); tuples missing
    the field are dropped. The paper's Query 4 is
    ``range_filter("temp", high=50)`` (exclusive upper bound there; we use
    a strict comparison against ``high`` to match it).

    Example:
        >>> stage = range_filter("temp", high=50)
        >>> stage.kind.value
        'point'
    """
    if low is None and high is None:
        raise PipelineError("range_filter needs at least one bound")

    def predicate(item: StreamTuple) -> bool:
        value = item.get(field)
        if value is None:
            return False
        if low is not None and value <= low:
            return False
        if high is not None and value >= high:
            return False
        return True

    def factory(_ctx: StageContext) -> Operator:
        return FilterOp(predicate)

    return Stage(StageKind.POINT, factory, name=name or f"range_filter:{field}")


def whitelist(
    field: str, allowed: Iterable[Any], name: str = ""
) -> Stage:
    """Keep tuples whose ``field`` appears in a static allowed set.

    Implements the paper's Point stage "filter ... through a join with a
    static relation containing expected tag IDs" (§6.1) — a semi-join
    against an in-memory relation.
    """
    allowed_set = frozenset(allowed)

    def factory(_ctx: StageContext) -> Operator:
        return FilterOp(lambda t: t.get(field) in allowed_set)

    return Stage(StageKind.POINT, factory, name=name or f"whitelist:{field}")


def ghost_filter(field: str = "tag_id", prefix: str = "ghost_", name: str = "") -> Stage:
    """Drop readings whose id carries the simulator's ghost marker.

    Models the checksum-based filtering "the RFID reader already provides
    ... out of the box" (§4): our RFID simulator marks failed-checksum
    reads with a ``ghost_`` id prefix, and this stage removes them.
    """

    def factory(_ctx: StageContext) -> Operator:
        return FilterOp(
            lambda t: not str(t.get(field, "")).startswith(prefix)
        )

    return Stage(StageKind.POINT, factory, name=name or "ghost_filter")


def convert_field(
    field: str,
    fn: Callable[[Any], Any],
    output: str | None = None,
    name: str = "",
) -> Stage:
    """Convert one field per tuple (unit conversion, scaling, decoding).

    Args:
        field: Input field.
        fn: Conversion callable.
        output: Output field; defaults to overwriting ``field``.

    Tuples missing the field pass through unchanged (conversion is not a
    filter).
    """
    target = output or field

    def convert(item: StreamTuple) -> StreamTuple:
        if field not in item:
            return item
        return item.derive(values={target: fn(item[field])})

    def factory(_ctx: StageContext) -> Operator:
        return MapOp(convert)

    return Stage(StageKind.POINT, factory, name=name or f"convert:{field}")
