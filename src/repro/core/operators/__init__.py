"""The ESP Operator toolkit.

The paper's conclusion (§7) anticipates "a suite of ESP Operators,
implementing different ESP stages or entire pipelines, that can be used
to configure and deploy cleaning pipelines". This subpackage is that
suite: each module provides ready-made :class:`~repro.core.stages.Stage`
builders for one stage kind, implemented over the stream substrate (and
in several cases equivalent to the paper's printed CQL — the test suite
checks those equivalences).

- :mod:`repro.core.operators.point_ops` — tuple-level filters and
  conversions.
- :mod:`repro.core.operators.smooth_ops` — temporal-granule aggregation.
- :mod:`repro.core.operators.merge_ops` — spatial-granule aggregation and
  outlier rejection.
- :mod:`repro.core.operators.arbitrate_ops` — conflict resolution between
  spatial granules.
- :mod:`repro.core.operators.virtualize_ops` — cross-receptor,
  application-level cleaning.
"""

from repro.core.operators.adaptive_ops import adaptive_smoother
from repro.core.operators.arbitrate_ops import max_count_arbitrate
from repro.core.operators.merge_ops import (
    k_of_n_vote,
    mad_outlier_average,
    sigma_outlier_average,
    spatial_average,
)
from repro.core.operators.point_ops import (
    convert_field,
    ghost_filter,
    range_filter,
    whitelist,
)
from repro.core.operators.smooth_ops import (
    event_smoother,
    presence_smoother,
    sliding_average,
)
from repro.core.operators.virtualize_ops import voting_detector

__all__ = [
    "adaptive_smoother",
    "convert_field",
    "event_smoother",
    "ghost_filter",
    "k_of_n_vote",
    "mad_outlier_average",
    "max_count_arbitrate",
    "presence_smoother",
    "range_filter",
    "sigma_outlier_average",
    "sliding_average",
    "spatial_average",
    "voting_detector",
    "whitelist",
]
