"""Merge-stage operators: aggregation within a spatial granule.

Merge "uses the application's spatial granule to correct for missed
readings and remove outliers spatially ... filling in missed readings and
eliminating non-correlated errors in individual devices" (§3.2). The
operators here run once per proximity group, over the union of the
group's receptor streams.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.stages import Stage, StageContext, StageKind
from repro.errors import OperatorError, PipelineError
from repro.streams.aggregates import AggregateSpec, Mad, Median, Stdev
from repro.streams.operators import GroupKey, Operator, WindowedGroupByOp
from repro.streams.tuples import StreamTuple
from repro.streams.windows import BaseWindow, WindowSpec


def _resolve_window(window: float | None, ctx: StageContext, who: str) -> float:
    if window is not None:
        return float(window)
    if ctx.temporal_granule is None:
        raise PipelineError(
            f"{who} needs an explicit window or a pipeline temporal granule"
        )
    return ctx.temporal_granule.window_seconds


class _RobustGroupAverage(Operator):
    """Windowed per-granule average with robust outlier rejection.

    The shared engine behind :func:`sigma_outlier_average` (the paper's
    Query 5: discard readings more than *k* standard deviations from the
    window mean, average the rest) and :func:`mad_outlier_average` (the
    median/MAD ablation from DESIGN.md).

    Args:
        window: Window spec applied per spatial granule.
        value_field: Quantity to clean.
        granule_field: Grouping field (constant per Merge instance, but
            grouped anyway so the operator is reusable standalone).
        k: Rejection radius in deviation units; ``None`` disables
            rejection (plain spatial average).
        robust: Use median/MAD instead of mean/stdev for the rejection
            band.
        min_survivors: Emit nothing when fewer readings survive rejection.
        output_field: Output value field; defaults to ``value_field``.
        count_field: Output field with the surviving reading count.
    """

    def __init__(
        self,
        window: WindowSpec,
        value_field: str,
        granule_field: str = "spatial_granule",
        k: float | None = 1.0,
        robust: bool = False,
        min_survivors: int = 1,
        output_field: str | None = None,
        count_field: str = "readings",
    ):
        if k is not None and k <= 0:
            raise OperatorError(f"rejection radius k must be positive, got {k}")
        if min_survivors < 1:
            raise OperatorError("min_survivors must be >= 1")
        self._window_spec = window
        self._value_field = value_field
        self._granule_field = granule_field
        self._k = k
        self._robust = robust
        self._min_survivors = int(min_survivors)
        self._output_field = output_field or value_field
        self._count_field = count_field
        self._windows: dict[object, BaseWindow] = {}

    STATE_ATTRS = ("_windows",)

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        if self._value_field not in item:
            return []
        key = item.get(self._granule_field)
        window = self._windows.get(key)
        if window is None:
            window = self._window_spec.make_window()
            self._windows[key] = window
        window.insert(item)
        return []

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        windows = self._windows
        value_field, granule_field = self._value_field, self._granule_field
        for item in items:
            if value_field not in item:
                continue
            key = item.get(granule_field)
            window = windows.get(key)
            if window is None:
                window = self._window_spec.make_window()
                windows[key] = window
            window.insert(item)
        return []

    def _band(self, values: list[float]) -> tuple[float, float]:
        """(center, radius) of the acceptance band for these values."""
        if self._robust:
            center = Median.over(values)
            spread = Mad.over(values)
            # MAD of a normal sample underestimates sigma by ~1.4826; keep
            # the raw MAD (the paper's technique is deliberately simple)
            # but guard the degenerate all-identical case.
        else:
            center = sum(values) / len(values)
            spread = Stdev.over(values)
        return float(center), float(spread if spread is not None else 0.0)

    def on_time(self, now: float) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        empty: list[object] = []
        for key, window in sorted(
            self._windows.items(), key=lambda kv: str(kv[0])
        ):
            window.advance(now)
            readings = [
                float(item[self._value_field]) for item in window.contents()
            ]
            if not readings:
                empty.append(key)
                continue
            survivors = readings
            if self._k is not None and len(readings) > 1:
                center, spread = self._band(readings)
                radius = self._k * spread
                survivors = [
                    value
                    for value in readings
                    if abs(value - center) <= radius + 1e-12
                ]
                if len(survivors) < self._min_survivors:
                    continue
            if not survivors:
                continue
            out.append(
                StreamTuple(
                    now,
                    {
                        self._granule_field: key,
                        self._output_field: sum(survivors) / len(survivors),
                        self._count_field: len(survivors),
                    },
                )
            )
        for key in empty:
            del self._windows[key]
        return out


def sigma_outlier_average(
    window: float | None = None,
    value_field: str = "temp",
    k: float = 1.0,
    granule_field: str = "spatial_granule",
    output_field: str | None = None,
    min_survivors: int = 1,
    name: str = "",
) -> Stage:
    """Average the granule's readings, discarding >kσ outliers.

    The toolkit form of the paper's Query 5: "determining the average of
    the readings from different motes in the same proximity group and
    then throwing out individual readings that are outside of one
    standard deviation from the mean" (§5.1.2). With three motes and one
    fail-dirty deviator, the deviator sits ~2/3·|Δ| from the mean while
    the sample σ is ~0.58·|Δ| — so this simple rule excludes it as soon
    as its drift exceeds the noise floor, which is exactly the behaviour
    in the paper's Figure 7.
    """

    def factory(ctx: StageContext) -> Operator:
        seconds = _resolve_window(window, ctx, "sigma_outlier_average")
        return _RobustGroupAverage(
            WindowSpec.range_by(seconds),
            value_field,
            granule_field=granule_field,
            k=k,
            robust=False,
            min_survivors=min_survivors,
            output_field=output_field,
        )

    return Stage(StageKind.MERGE, factory, name=name or "sigma_outlier_average")


def mad_outlier_average(
    window: float | None = None,
    value_field: str = "temp",
    k: float = 3.0,
    granule_field: str = "spatial_granule",
    output_field: str | None = None,
    min_survivors: int = 1,
    name: str = "",
) -> Stage:
    """Median/MAD variant of :func:`sigma_outlier_average` (ablation).

    More robust to the outlier dragging the rejection band toward itself
    (the classic masking problem of mean/σ rules); benchmarked against
    the paper's rule in the ablation benches.
    """

    def factory(ctx: StageContext) -> Operator:
        seconds = _resolve_window(window, ctx, "mad_outlier_average")
        return _RobustGroupAverage(
            WindowSpec.range_by(seconds),
            value_field,
            granule_field=granule_field,
            k=k,
            robust=True,
            min_survivors=min_survivors,
            output_field=output_field,
        )

    return Stage(StageKind.MERGE, factory, name=name or "mad_outlier_average")


def spatial_average(
    window: float | None = None,
    value_field: str = "temp",
    granule_field: str = "spatial_granule",
    output_field: str | None = None,
    count_field: str = "readings",
    name: str = "",
) -> Stage:
    """Plain windowed average over the granule's receptors.

    The redwood Merge (§5.2.2): "spatial aggregation for each spatial
    granule (again, in the form of a windowed average) to further
    alleviate the effects of lost readings" — an epoch lost by one mote
    is filled by its proximity-group partner.
    """
    result_field = output_field or value_field

    def factory(ctx: StageContext) -> Operator:
        seconds = _resolve_window(window, ctx, "spatial_average")
        return WindowedGroupByOp(
            WindowSpec.range_by(seconds),
            keys=[GroupKey(granule_field, lambda t, _f=granule_field: t.get(_f))],
            aggregates=[
                AggregateSpec("avg", field=value_field, output=result_field),
                AggregateSpec("count", output=count_field),
            ],
        )

    return Stage(StageKind.MERGE, factory, name=name or "spatial_average")


class _VoteWindow(Operator):
    """K-of-N distinct-device vote within a window (X10 Merge, §6.1)."""

    def __init__(
        self,
        window: WindowSpec,
        min_devices: int,
        device_field: str,
        granule_field: str,
        output_value: str,
    ):
        if min_devices < 1:
            raise OperatorError("min_devices must be >= 1")
        self._window = window.make_window()
        self._min_devices = int(min_devices)
        self._device_field = device_field
        self._granule_field = granule_field
        self._output_value = output_value
        self._granule: object = None

    STATE_ATTRS = ("_window", "_granule")

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        if self._granule is None:
            self._granule = item.get(self._granule_field)
        self._window.insert(item)
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        self._window.advance(now)
        devices = {
            item.get(self._device_field) for item in self._window.contents()
        }
        devices.discard(None)
        if len(devices) < self._min_devices:
            return []
        return [
            StreamTuple(
                now,
                {
                    self._granule_field: self._granule,
                    "value": self._output_value,
                    "votes": len(devices),
                },
            )
        ]


def k_of_n_vote(
    min_devices: int = 2,
    window: float | None = None,
    device_field: str = "sensor_id",
    granule_field: str = "spatial_granule",
    output_value: str = "ON",
    name: str = "",
) -> Stage:
    """Report an event when >= k distinct devices agree within the window.

    "The Merge stage combines the readings from all detectors in the room
    and reports motion if the number of readings exceed a threshold
    (e.g., if 2 out of 3 devices report motion)" (§6.1).
    """

    def factory(ctx: StageContext) -> Operator:
        seconds = _resolve_window(window, ctx, "k_of_n_vote")
        return _VoteWindow(
            WindowSpec.range_by(seconds),
            min_devices,
            device_field,
            granule_field,
            output_value,
        )

    return Stage(StageKind.MERGE, factory, name=name or "k_of_n_vote")
