"""Adaptive smoothing: self-sizing temporal granule windows.

The paper leaves window sizing to the deployer and shows why it is hard
(§4.3.2, Figure 6): "an effective temporal granule size is bounded at
the low end by the reliability of the devices and at the high end by the
rate of change of the data". This module implements the resolution the
paper's discussion points toward — adapt the window per tag, online,
from the observed read statistics (the approach the ESP authors later
published as SMURF):

- Model each tag's reads as Bernoulli samples of its presence, with the
  per-poll read rate ``p`` estimated from the current window.
- **Completeness** (lower bound): to report a present tag with miss
  probability at most ``delta``, the window must span at least
  ``ln(1/delta) / p`` polls — grow the window when it is too small for
  the observed read rate.
- **Responsiveness** (upper bound): if the most recent half-window's
  read count is statistically inconsistent with ``p`` (a binomial
  two-sigma test), the tag has likely left — halve the window so stale
  positives drain quickly (multiplicative decrease).

The result needs no per-deployment granule tuning: reliable readers get
short windows (fast transitions), flaky ones get long windows (few
dropped readings).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

from repro.core.stages import Stage, StageContext, StageKind
from repro.errors import OperatorError
from repro.streams.operators import Operator
from repro.streams.tuples import StreamTuple


class _TagState:
    """Per-tag adaptive window state."""

    __slots__ = ("window_polls", "reads", "carry")

    def __init__(self, initial_polls: int, carry: dict):
        self.window_polls = initial_polls
        #: per-poll read counts, newest last, bounded by the max window
        self.reads: deque[int] = deque()
        self.carry = carry


class AdaptiveSmoother(Operator):
    """Per-ID presence smoothing with a self-sizing window.

    Drop-in alternative to the fixed-window
    :func:`~repro.core.operators.smooth_ops.presence_smoother`: emits, at
    every punctuation, one tuple per ID currently believed present, with
    its window read count and the window size the controller chose.

    Args:
        delta: Target probability of missing a present tag within one
            window (drives the completeness lower bound).
        min_polls / max_polls: Window size clamp, in polls.
        id_field: The identifier being smoothed (``tag_id``).
        carry: Fields copied from the ID's readings into its outputs.
        count_field: Output field for the window read count.
        window_field: Output field reporting the chosen window size, in
            polls (useful for diagnostics and the adaptive bench).
        confidence_field: Output field carrying the detection confidence
            ``1 - (1 - p)^w`` — the probability a tag actually present
            would have been read at least once in this window. Exposing
            per-reading confidence is the "increase the confidence in
            the data the system reports" thread of the paper's §3.2.

    Each punctuation is treated as one poll period, matching how the ESP
    processor drives RFID pipelines (tick == reader sample period).
    """

    def __init__(
        self,
        delta: float = 0.05,
        min_polls: int = 2,
        max_polls: int = 150,
        id_field: str = "tag_id",
        carry: Sequence[str] = ("spatial_granule",),
        count_field: str = "count",
        window_field: str = "window_polls",
        confidence_field: str = "confidence",
    ):
        if not 0.0 < delta < 1.0:
            raise OperatorError(f"delta must be in (0, 1), got {delta}")
        if not 1 <= min_polls <= max_polls:
            raise OperatorError(
                f"need 1 <= min_polls <= max_polls, got "
                f"{min_polls}..{max_polls}"
            )
        self.delta = float(delta)
        self.min_polls = int(min_polls)
        self.max_polls = int(max_polls)
        self._id_field = id_field
        self._carry = tuple(carry)
        self._count_field = count_field
        self._window_field = window_field
        self._confidence_field = confidence_field
        self._states: dict[object, _TagState] = {}
        self._pending: dict[object, int] = {}
        self._pending_carry: dict[object, dict] = {}

    STATE_ATTRS = ("_states", "_pending", "_pending_carry")

    # -- event handling ---------------------------------------------------------

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        identifier = item.get(self._id_field)
        if identifier is None:
            return []
        self._pending[identifier] = self._pending.get(identifier, 0) + 1
        if identifier not in self._pending_carry:
            self._pending_carry[identifier] = {
                field: item.get(field) for field in self._carry
            }
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        # Close the poll: record this poll's reads for every tracked tag.
        for identifier, count in self._pending.items():
            state = self._states.get(identifier)
            if state is None:
                state = _TagState(
                    self.min_polls, self._pending_carry.get(identifier, {})
                )
                self._states[identifier] = state
            state.reads.append(count)
        for identifier, state in self._states.items():
            if identifier not in self._pending:
                state.reads.append(0)
            while len(state.reads) > self.max_polls:
                state.reads.popleft()
        self._pending = {}
        self._pending_carry = {}
        # Adapt windows and emit.
        out: list[StreamTuple] = []
        dead: list[object] = []
        for identifier, state in sorted(
            self._states.items(), key=lambda kv: str(kv[0])
        ):
            self._adapt(state)
            window = list(state.reads)[-state.window_polls:]
            total = sum(window)
            if total == 0:
                if sum(state.reads) == 0:
                    dead.append(identifier)
                continue
            if self._likely_departed(state, window):
                continue
            read_polls = sum(1 for count in window if count > 0)
            p_hat = read_polls / len(window)
            confidence = 1.0 - (1.0 - p_hat) ** len(window)
            out.append(
                StreamTuple(
                    now,
                    {
                        self._id_field: identifier,
                        self._count_field: total,
                        self._window_field: state.window_polls,
                        self._confidence_field: round(confidence, 6),
                        **state.carry,
                    },
                )
            )
        for identifier in dead:
            del self._states[identifier]
        return out

    def _likely_departed(self, state: _TagState, window: list[int]) -> bool:
        """Absence test: a trailing silence statistically inconsistent
        with the tag's read rate means it has left — stop reporting it
        even though older reads remain in the window.

        If the tag reads with per-poll probability ``p``, a run of ``k``
        consecutive silent polls has probability ``(1-p)^k``; once that
        falls below ``delta`` we declare the tag absent and flush its
        window. Reliable tags (high ``p``) are declared gone after a
        poll or two; flaky ones get the benefit of the doubt.
        """
        trailing_zeros = 0
        for count in reversed(window):
            if count:
                break
            trailing_zeros += 1
        if trailing_zeros == 0:
            return False
        read_polls = sum(1 for count in window if count > 0)
        p_hat = read_polls / len(window)
        if (1.0 - p_hat) ** trailing_zeros < self.delta:
            state.window_polls = self.min_polls
            return True
        return False

    # -- the controller ------------------------------------------------------------

    def _adapt(self, state: _TagState) -> None:
        """One AIMD step of the per-tag window size."""
        window = list(state.reads)[-state.window_polls:]
        observed = len(window)
        if observed == 0:
            return
        read_polls = sum(1 for count in window if count > 0)
        p_hat = read_polls / observed
        if p_hat <= 0.0:
            # Nothing read in the whole window: the tag is likely gone;
            # decay toward the minimum so it stops being reported soon.
            state.window_polls = max(
                self.min_polls, state.window_polls // 2
            )
            return
        # Responsiveness: binomial consistency of the recent half-window.
        half = max(1, state.window_polls // 2)
        recent = list(state.reads)[-half:]
        recent_rate = sum(1 for count in recent if count > 0) / len(recent)
        sigma = math.sqrt(p_hat * (1.0 - p_hat) / len(recent))
        if recent_rate < p_hat - 2.0 * sigma:
            state.window_polls = max(self.min_polls, state.window_polls // 2)
            return
        # Completeness: window must cover ln(1/delta)/p polls.
        required = math.ceil(math.log(1.0 / self.delta) / p_hat)
        if state.window_polls < required:
            state.window_polls = min(
                self.max_polls, max(required, state.window_polls + 2)
            )


class HorvitzThompsonCounter(Operator):
    """Unbiased population-count estimation under missed readings.

    Counting distinct tags over a smoothed window (the paper's Query 1
    over Query 2) *under*-estimates whenever some tags were missed for
    the entire window. Treating each poll as a Bernoulli sample with
    per-tag read rate ``p_i`` gives the Horvitz–Thompson correction: a
    tag observed in a ``w``-poll window was detectable with probability
    ``pi_i = 1 - (1 - p_i)^w``, so the unbiased population estimate is::

        N_hat = sum over observed tags of 1 / pi_i

    Per-tag read rates are estimated from each tag's own window. This is
    the aggregate half of the SMURF direction; it matters exactly where
    presence smoothing breaks down — short windows or very unreliable
    readers.

    Args:
        window_polls: Window length in polls (punctuations).
        id_field: Tag identifier field.
        group_field: Population grouping field (``spatial_granule``).
        count_field: Output field for the estimate.

    Emits one tuple per group per punctuation with the estimated count
    (float — estimates are fractional by nature) and the observed
    distinct count for comparison.
    """

    def __init__(
        self,
        window_polls: int,
        id_field: str = "tag_id",
        group_field: str = "spatial_granule",
        count_field: str = "estimated_count",
    ):
        if window_polls < 1:
            raise OperatorError(
                f"window_polls must be >= 1, got {window_polls}"
            )
        self._window_polls = int(window_polls)
        self._id_field = id_field
        self._group_field = group_field
        self._count_field = count_field
        #: (group, tag) -> per-poll read counts (bounded deque)
        self._reads: dict[tuple, deque[int]] = {}
        self._pending: dict[tuple, int] = {}

    STATE_ATTRS = ("_reads", "_pending")

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        tag = item.get(self._id_field)
        group = item.get(self._group_field)
        if tag is None or group is None:
            return []
        key = (group, tag)
        self._pending[key] = self._pending.get(key, 0) + 1
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        # Close the poll for every tracked (group, tag).
        for key, count in self._pending.items():
            self._reads.setdefault(key, deque()).append(count)
        for key, reads in self._reads.items():
            if key not in self._pending:
                reads.append(0)
            while len(reads) > self._window_polls:
                reads.popleft()
        self._pending = {}
        # Estimate per group.
        estimates: dict[object, float] = {}
        observed: dict[object, int] = {}
        dead: list[tuple] = []
        for (group, _tag), reads in self._reads.items():
            read_polls = sum(1 for count in reads if count > 0)
            if read_polls == 0:
                dead.append((group, _tag))
                continue
            p_hat = read_polls / len(reads)
            pi = 1.0 - (1.0 - p_hat) ** len(reads)
            estimates[group] = estimates.get(group, 0.0) + 1.0 / pi
            observed[group] = observed.get(group, 0) + 1
        for key in dead:
            del self._reads[key]
        return [
            StreamTuple(
                now,
                {
                    self._group_field: group,
                    self._count_field: estimate,
                    "observed_count": observed[group],
                },
            )
            for group, estimate in sorted(
                estimates.items(), key=lambda kv: str(kv[0])
            )
        ]


def horvitz_thompson_counter(
    window_polls: int,
    id_field: str = "tag_id",
    group_field: str = "spatial_granule",
    name: str = "",
) -> Stage:
    """Stage builder for :class:`HorvitzThompsonCounter` (Smooth stage)."""

    def factory(_ctx: StageContext) -> Operator:
        return HorvitzThompsonCounter(
            window_polls, id_field=id_field, group_field=group_field
        )

    return Stage(
        StageKind.SMOOTH, factory, name=name or "horvitz_thompson_counter"
    )


def adaptive_smoother(
    delta: float = 0.05,
    min_polls: int = 2,
    max_polls: int = 150,
    id_field: str = "tag_id",
    carry: Sequence[str] = ("spatial_granule",),
    name: str = "",
) -> Stage:
    """Stage builder for :class:`AdaptiveSmoother` (Smooth stage)."""

    def factory(_ctx: StageContext) -> Operator:
        return AdaptiveSmoother(
            delta=delta,
            min_polls=min_polls,
            max_polls=max_polls,
            id_field=id_field,
            carry=carry,
        )

    return Stage(StageKind.SMOOTH, factory, name=name or "adaptive_smoother")
