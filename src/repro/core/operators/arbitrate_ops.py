"""Arbitrate-stage operators: conflict resolution between spatial granules.

Arbitrate "deals with conflicts, such as duplicate readings, between data
streams from different spatial granules" (§3.2). Unlike warehouse
de-duplication, the resolution criterion is *physical*: "tags closer to a
reader will be read more often", so a tag claimed by several granules is
attributed to the granule whose receptors read it the most — the paper's
Query 3.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.stages import Stage, StageContext, StageKind
from repro.errors import OperatorError
from repro.streams.operators import Operator
from repro.streams.tuples import StreamTuple


class MaxCountArbitrator(Operator):
    """Attribute each ID to the granule that read it the most this instant.

    Operates with ``[Range By 'NOW']`` semantics: readings arriving since
    the previous punctuation are grouped by ``id_field``; for each ID the
    granule(s) with the maximal ``count_field`` win and one tuple per
    winning (granule, id) is emitted.

    Ties are where the paper's calibration hack lives (§4.3.1): "ESP
    attributed a reading to the weaker antenna if the counts of the
    readings were equal". Tie policies:

    - ``"all"`` — every tied granule keeps the reading (the literal
      semantics of Query 3's ``>= ALL``);
    - ``"weakest"`` — the granule with the lowest strength wins, given
      ``strength`` (higher = stronger antenna);
    - ``"first"`` — deterministic lexicographic winner.

    Args:
        id_field: The conflicting identifier (``tag_id``).
        granule_field: Spatial granule field.
        count_field: Per-granule evidence count (e.g. the window count the
            Smooth stage emits); missing counts default to 1 so the
            operator also runs over raw, un-smoothed streams (the paper's
            Arbitrate-only configuration in Figure 5).
        tie_break: One of ``"all"``, ``"weakest"``, ``"first"``.
        strength: Granule-name → antenna strength, required for
            ``"weakest"``.
    """

    def __init__(
        self,
        id_field: str = "tag_id",
        granule_field: str = "spatial_granule",
        count_field: str = "count",
        tie_break: str = "weakest",
        strength: Mapping[object, float] | None = None,
    ):
        if tie_break not in ("all", "weakest", "first"):
            raise OperatorError(f"unknown tie_break {tie_break!r}")
        if tie_break == "weakest" and not strength:
            raise OperatorError(
                "tie_break='weakest' needs a strength mapping "
                "(granule -> antenna strength)"
            )
        self._id_field = id_field
        self._granule_field = granule_field
        self._count_field = count_field
        self._tie_break = tie_break
        self._strength = dict(strength or {})
        self._pending: list[StreamTuple] = []

    STATE_ATTRS = ("_pending",)

    def on_tuple(self, item: StreamTuple, port: int = 0) -> list[StreamTuple]:
        self._pending.append(item)
        return []

    def on_batch(
        self, items: Sequence[StreamTuple], port: int = 0
    ) -> list[StreamTuple]:
        self._pending.extend(items)
        return []

    def on_time(self, now: float) -> list[StreamTuple]:
        # Group this instant's claims: (id, granule) -> summed count.
        claims: dict[object, dict[object, float]] = {}
        for item in self._pending:
            identifier = item.get(self._id_field)
            granule = item.get(self._granule_field)
            if identifier is None or granule is None:
                continue
            count = item.get(self._count_field, 1)
            by_granule = claims.setdefault(identifier, {})
            by_granule[granule] = by_granule.get(granule, 0) + count
        self._pending = []
        out: list[StreamTuple] = []
        for identifier in sorted(claims, key=str):
            by_granule = claims[identifier]
            best = max(by_granule.values())
            winners = sorted(
                (g for g, c in by_granule.items() if c == best), key=str
            )
            if len(winners) > 1:
                winners = self._break_tie(winners)
            for granule in winners:
                out.append(
                    StreamTuple(
                        now,
                        {
                            self._granule_field: granule,
                            self._id_field: identifier,
                            self._count_field: by_granule[granule],
                        },
                    )
                )
        return out

    def _break_tie(self, winners: Sequence[object]) -> list[object]:
        if self._tie_break == "all":
            return list(winners)
        if self._tie_break == "first":
            return [winners[0]]
        # "weakest": lowest strength wins; unknown granules rank strongest
        # so a configured weaker antenna always beats them.
        return [
            min(
                winners,
                key=lambda g: (self._strength.get(g, float("inf")), str(g)),
            )
        ]


def max_count_arbitrate(
    id_field: str = "tag_id",
    granule_field: str = "spatial_granule",
    count_field: str = "count",
    tie_break: str = "all",
    strength: Mapping[object, float] | None = None,
    name: str = "",
) -> Stage:
    """Stage builder for :class:`MaxCountArbitrator` (paper Query 3)."""

    def factory(_ctx: StageContext) -> Operator:
        return MaxCountArbitrator(
            id_field=id_field,
            granule_field=granule_field,
            count_field=count_field,
            tie_break=tie_break,
            strength=strength,
        )

    return Stage(
        StageKind.ARBITRATE, factory, name=name or "max_count_arbitrate"
    )
