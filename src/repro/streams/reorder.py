"""Bounded out-of-order handling at the stream ingress.

The stream engine's window operators require timestamp-ordered input
(the usual punctuated-stream contract). Physical deployments violate it:
multi-hop collection networks deliver readings seconds-to-minutes late
and out of order. The standard fix — and what HiFi-class gateways do —
is a bounded **reorder buffer** between the receptors and the first
windowed operator: hold arrivals for a slack period, release them in
timestamp order, and count (rather than crash on) hopelessly late data.

:class:`ReorderBuffer` implements that gateway. Pair it with
:class:`repro.receptors.network.DelayModel` to simulate delayed
delivery, and size ``slack`` from the delay distribution: slack at least
the maximum network delay guarantees zero drops (a property the test
suite checks with hypothesis).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.errors import OperatorError
from repro.streams.tuples import StreamTuple


class ReorderBuffer:
    """Release out-of-order arrivals in timestamp order, bounded by slack.

    Args:
        slack: How long (in seconds of *arrival* time) a tuple may be
            held waiting for stragglers. A tuple is released once the
            newest arrival's time exceeds its timestamp by ``slack``.

    Attributes:
        dropped: Tuples discarded because they arrived after their
            release horizon had already passed (late beyond slack).
        released: Count of tuples released in order.

    Example:
        >>> buffer = ReorderBuffer(slack=2.0)
        >>> out = buffer.push(3.0, StreamTuple(1.0, {"v": 1}))
        >>> [t.timestamp for t in out]
        [1.0]
    """

    def __init__(self, slack: float):
        if slack < 0:
            raise OperatorError(f"slack must be >= 0, got {slack}")
        self.slack = float(slack)
        self.dropped = 0
        self.released = 0
        self._heap: list[tuple[float, int, StreamTuple]] = []
        self._sequence = 0
        self._frontier = float("-inf")  # highest released timestamp

    def push(self, arrival_time: float, item: StreamTuple) -> list[StreamTuple]:
        """Accept one arrival; return any tuples now releasable.

        Arrival times must be non-decreasing (wall-clock order at the
        gateway); the *tuples'* timestamps may be arbitrary.
        """
        if item.timestamp < self._frontier:
            # Arrived after everything at-or-after it was released.
            # Strict comparison: admitting "just barely late" tuples
            # would emit them behind the frontier and break the sorted-
            # output guarantee downstream windows rely on.
            self.dropped += 1
            return []
        heapq.heappush(
            self._heap, (item.timestamp, self._sequence, item)
        )
        self._sequence += 1
        return self._release(arrival_time - self.slack)

    def flush(self) -> list[StreamTuple]:
        """Release everything still buffered (end of stream)."""
        return self._release(float("inf"))

    def _release(self, horizon: float) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        while self._heap and self._heap[0][0] <= horizon + 1e-9:
            timestamp, _seq, item = heapq.heappop(self._heap)
            self._frontier = max(self._frontier, timestamp)
            self.released += 1
            out.append(item)
        return out

    def __len__(self) -> int:
        return len(self._heap)


def reorder_arrivals(
    arrivals: Iterable[tuple[float, StreamTuple]], slack: float
) -> tuple[list[StreamTuple], int]:
    """Reorder a whole arrival-ordered trace; returns (ordered, dropped).

    Args:
        arrivals: ``(arrival_time, tuple)`` pairs in arrival order.
        slack: Reorder slack (see :class:`ReorderBuffer`).

    Returns:
        The timestamp-ordered tuples ready for the stream engine, and
        the number of too-late tuples dropped.
    """
    buffer = ReorderBuffer(slack)
    ordered: list[StreamTuple] = []
    for arrival_time, item in arrivals:
        ordered.extend(buffer.push(arrival_time, item))
    ordered.extend(buffer.flush())
    return ordered, buffer.dropped


def delayed_arrivals(
    readings: Iterable[StreamTuple],
    delay_model,
) -> Iterator[tuple[float, StreamTuple]]:
    """Turn sense-time readings into network-delayed arrivals.

    Args:
        readings: Tuples in sense-time order.
        delay_model: Object with ``sample() -> float`` delay seconds
            (see :class:`repro.receptors.network.DelayModel`).

    Yields:
        ``(arrival_time, tuple)`` pairs sorted by arrival time.
    """
    stamped = [
        (item.timestamp + float(delay_model.sample()), item)
        for item in readings
    ]
    stamped.sort(key=lambda pair: pair[0])
    yield from stamped
