"""Bounded out-of-order handling at the stream ingress.

The stream engine's window operators require timestamp-ordered input
(the usual punctuated-stream contract). Physical deployments violate it:
multi-hop collection networks deliver readings seconds-to-minutes late
and out of order. The standard fix — and what HiFi-class gateways do —
is a bounded **reorder buffer** between the receptors and the first
windowed operator: hold arrivals for a slack period, release them in
timestamp order, and count (rather than crash on) hopelessly late data.

:class:`ReorderBuffer` implements that gateway. Pair it with
:class:`repro.receptors.network.DelayModel` to simulate delayed
delivery, and size ``slack`` from the delay distribution: slack at least
the maximum network delay guarantees zero drops (a property the test
suite checks with hypothesis).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.errors import OperatorError
from repro.streams.tuples import StreamTuple


class ReorderBuffer:
    """Release out-of-order arrivals in timestamp order, bounded by slack.

    Args:
        slack: How long (in seconds of *arrival* time) a tuple may be
            held waiting for stragglers. A tuple is released once the
            newest arrival's time exceeds its timestamp by ``slack``.

    Attributes:
        dropped: Tuples discarded because they arrived after their
            release horizon had already passed (late beyond slack), or
            behind the highest already-released timestamp.
        released: Count of tuples released in order.

    **Tie-breaking.** Tuples with equal timestamps release in ascending
    *sequence number*: the explicit ``sequence`` passed to :meth:`push`
    when the caller has one (the ingestion gateway forwards the sender's
    per-source sequence so duplicates come out in original stream
    order), or an internal arrival counter otherwise (equal-timestamp
    arrivals release in arrival order). Mixing explicit and implicit
    sequences in one buffer is undefined; pick one convention per
    buffer.

    **Lateness.** An arrival is dropped when its timestamp lies strictly
    below the highest released timestamp (the frontier), or more than
    1 ns below the current release horizon
    (``newest arrival time - slack``). A tuple arriving *exactly at* the
    horizon is admitted and released immediately. The strict frontier
    comparison preserves the sorted-output guarantee downstream windows
    rely on; the toleranced horizon comparison keeps a delay equal to
    the slack from being dropped over float rounding, and makes
    :attr:`watermark` a promise a consumer can punctuate on.

    Example:
        >>> buffer = ReorderBuffer(slack=2.0)
        >>> out = buffer.push(3.0, StreamTuple(1.0, {"v": 1}))
        >>> [t.timestamp for t in out]
        [1.0]
    """

    def __init__(self, slack: float):
        if slack < 0:
            raise OperatorError(f"slack must be >= 0, got {slack}")
        self.slack = float(slack)
        self.dropped = 0
        self.released = 0
        self._heap: list[tuple[float, int, StreamTuple]] = []
        self._sequence = 0
        self._frontier = float("-inf")  # highest released timestamp
        self._horizon = float("-inf")  # newest arrival time - slack

    @property
    def watermark(self) -> float:
        """Lower bound (within 1 ns) on every future release's timestamp.

        ``max(frontier, horizon)``: no tuple released after this call
        can carry a timestamp more than 1e-9 below the returned value —
        later arrivals under that bound are dropped, and buffered tuples
        are above it by construction. :meth:`flush` raises it to
        ``+inf``. Consumers that punctuate on time (the ingestion
        gateway's pipeline session) may safely process every instant
        more than 2 ns below it.
        """
        return max(self._frontier, self._horizon)

    def push(
        self,
        arrival_time: float,
        item: StreamTuple,
        sequence: int | None = None,
    ) -> list[StreamTuple]:
        """Accept one arrival; return any tuples now releasable.

        Arrival times must be non-decreasing (wall-clock order at the
        gateway); the *tuples'* timestamps may be arbitrary.

        Args:
            arrival_time: When the tuple reached the buffer.
            item: The tuple itself.
            sequence: Explicit equal-timestamp tie-break rank (see the
                class docstring); defaults to arrival order.
        """
        horizon = arrival_time - self.slack
        if horizon > self._horizon:
            self._horizon = horizon
        if (
            item.timestamp < self._frontier
            or item.timestamp < self._horizon - 1e-9
        ):
            # Hopelessly late: everything at-or-after it was released,
            # or its release horizon has already passed. The frontier
            # comparison is strict — admitting "just barely late"
            # tuples would emit them behind the frontier and break the
            # sorted-output guarantee downstream windows rely on. The
            # horizon comparison is toleranced so a delay exactly equal
            # to the slack survives float rounding. The arrival still
            # advanced the horizon, so buffered tuples it uncovered
            # must release *now* — holding them past a rising watermark
            # would hand the consumer tuples behind its punctuation.
            self.dropped += 1
            return self._release(self._horizon)
        if sequence is None:
            sequence = self._sequence
        heapq.heappush(self._heap, (item.timestamp, int(sequence), item))
        self._sequence += 1
        return self._release(self._horizon)

    def checkpoint(self) -> dict:
        """Snapshot the buffer's state for later :meth:`restore`.

        The returned ``heap`` entries reference the buffered tuples
        themselves (no copies): serialize synchronously, before the next
        :meth:`push`.
        """
        return {
            "dropped": self.dropped,
            "released": self.released,
            "heap": list(self._heap),
            "sequence": self._sequence,
            "frontier": self._frontier,
            "horizon": self._horizon,
        }

    def restore(self, state: dict) -> None:
        """Install a :meth:`checkpoint` snapshot into this fresh buffer."""
        if self._heap or self.released or self.dropped:
            raise OperatorError("restore needs a fresh ReorderBuffer")
        self.dropped = int(state["dropped"])
        self.released = int(state["released"])
        # A copy of a valid heap list is itself a valid heap: no heapify.
        self._heap = list(state["heap"])
        self._sequence = int(state["sequence"])
        self._frontier = float(state["frontier"])
        self._horizon = float(state["horizon"])

    def flush(self) -> list[StreamTuple]:
        """Release everything still buffered (end of stream).

        Also raises the :attr:`watermark` to ``+inf``: a flushed buffer
        has promised its consumer there is nothing left, so any tuple
        pushed afterwards is late by definition and will be dropped.
        """
        self._horizon = float("inf")
        return self._release(float("inf"))

    def _release(self, horizon: float) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        while self._heap and self._heap[0][0] <= horizon + 1e-9:
            timestamp, _seq, item = heapq.heappop(self._heap)
            self._frontier = max(self._frontier, timestamp)
            self.released += 1
            out.append(item)
        return out

    def __len__(self) -> int:
        return len(self._heap)


def reorder_arrivals(
    arrivals: Iterable[tuple[float, StreamTuple]], slack: float
) -> tuple[list[StreamTuple], int]:
    """Reorder a whole arrival-ordered trace; returns (ordered, dropped).

    Args:
        arrivals: ``(arrival_time, tuple)`` pairs in arrival order.
        slack: Reorder slack (see :class:`ReorderBuffer`).

    Returns:
        The timestamp-ordered tuples ready for the stream engine, and
        the number of too-late tuples dropped.
    """
    buffer = ReorderBuffer(slack)
    ordered: list[StreamTuple] = []
    for arrival_time, item in arrivals:
        ordered.extend(buffer.push(arrival_time, item))
    ordered.extend(buffer.flush())
    return ordered, buffer.dropped


def delayed_arrivals(
    readings: Iterable[StreamTuple],
    delay_model,
) -> Iterator[tuple[float, StreamTuple]]:
    """Turn sense-time readings into network-delayed arrivals.

    Args:
        readings: Tuples in sense-time order.
        delay_model: Object with ``sample() -> float`` delay seconds
            (see :class:`repro.receptors.network.DelayModel`).

    Yields:
        ``(arrival_time, tuple)`` pairs sorted by arrival time.
    """
    stamped = [
        (item.timestamp + float(delay_model.sample()), item)
        for item in readings
    ]
    stamped.sort(key=lambda pair: pair[0])
    yield from stamped
