"""CQL-style window machinery.

A window turns an unbounded stream into a finite, time-varying relation.
This module implements the three window kinds used by the paper's queries:

- ``[Range By '5 sec']`` — a time-based sliding window
  (:class:`SlidingWindow`): at time *t* the window holds every tuple with
  timestamp in ``[t - range, t]``.
- ``[Range By 'NOW']`` — the degenerate zero-width window
  (:class:`NowWindow`): only tuples with timestamp exactly *t*.
- ``[Rows N]`` — a count-based window (:class:`RowWindow`) holding the most
  recent *N* tuples. The paper does not use row windows in its printed
  queries but CQL defines them and ESP operators may.

Windows are *passive* state containers: operators insert tuples and advance
time; the window evicts expired tuples and exposes its current contents.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import WindowError
from repro.streams.time import Duration, parse_duration
from repro.streams.tuples import StreamTuple


class WindowSpec:
    """Declarative description of a window, as written in a query.

    Args:
        kind: ``"range"`` for time-based windows or ``"rows"`` for
            count-based windows.
        size: For ``range`` windows a :class:`Duration` (or anything
            :func:`parse_duration` accepts); for ``rows`` windows a positive
            integer row count.

    Example:
        >>> WindowSpec.range_by("5 sec").range_seconds
        5.0
        >>> WindowSpec.now().is_now
        True
    """

    __slots__ = ("kind", "_duration", "_rows")

    def __init__(self, kind: str, size: "Duration | str | float | int"):
        if kind not in ("range", "rows"):
            raise WindowError(f"unknown window kind {kind!r}")
        self.kind = kind
        self._duration: Duration | None = None
        self._rows: int | None = None
        if kind == "range":
            self._duration = parse_duration(size)
        else:
            rows = int(size)
            if rows <= 0:
                raise WindowError(f"row window size must be positive, got {size}")
            self._rows = rows

    @classmethod
    def range_by(cls, size: "Duration | str | float") -> "WindowSpec":
        """A ``[Range By ...]`` window spec."""
        return cls("range", size)

    @classmethod
    def now(cls) -> "WindowSpec":
        """The ``[Range By 'NOW']`` window spec."""
        return cls("range", Duration(0.0))

    @classmethod
    def rows(cls, count: int) -> "WindowSpec":
        """A ``[Rows N]`` window spec."""
        return cls("rows", count)

    @property
    def is_now(self) -> bool:
        """True when this is the zero-width NOW window."""
        return self.kind == "range" and self._duration is not None and self._duration.is_now

    @property
    def range_seconds(self) -> float:
        """Window width in seconds (range windows only)."""
        if self._duration is None:
            raise WindowError("row windows have no time range")
        return self._duration.seconds

    @property
    def row_count(self) -> int:
        """Window size in rows (row windows only)."""
        if self._rows is None:
            raise WindowError("range windows have no row count")
        return self._rows

    def make_window(self) -> "BaseWindow":
        """Instantiate the stateful window this spec describes."""
        if self.kind == "rows":
            return RowWindow(self.row_count)
        if self.is_now:
            return NowWindow()
        return SlidingWindow(self.range_seconds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowSpec):
            return NotImplemented
        return (
            self.kind == other.kind
            and self._duration == other._duration
            and self._rows == other._rows
        )

    def __hash__(self) -> int:
        return hash((self.kind, self._duration, self._rows))

    def __repr__(self) -> str:
        if self.kind == "rows":
            return f"WindowSpec(Rows {self._rows})"
        if self.is_now:
            return "WindowSpec(Range By NOW)"
        return f"WindowSpec(Range By {self._duration.seconds:g}s)"


class BaseWindow:
    """Common behaviour for stateful windows.

    Subclasses implement the eviction policy. Insertion order must be
    non-decreasing in timestamp; the executor guarantees this.
    """

    def __init__(self):
        self._buffer: deque[StreamTuple] = deque()
        self._last_ts = float("-inf")

    def insert(self, item: StreamTuple) -> None:
        """Insert a tuple. Timestamps must be non-decreasing."""
        if item.timestamp < self._last_ts - 1e-9:
            raise WindowError(
                f"out-of-order insert: {item.timestamp} after {self._last_ts}"
            )
        self._last_ts = max(self._last_ts, item.timestamp)
        self._buffer.append(item)
        self._evict_on_insert()

    def advance(self, now: float) -> None:
        """Advance the window's notion of current time, evicting tuples."""
        self._last_ts = max(self._last_ts, now)
        self._evict_before(now)

    def contents(self) -> list[StreamTuple]:
        """Current window contents, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._buffer)

    # -- subclass hooks --------------------------------------------------------

    def _evict_on_insert(self) -> None:
        """Eviction triggered by an insert (row windows)."""

    def _evict_before(self, now: float) -> None:
        """Eviction triggered by time advancing (time windows)."""


class SlidingWindow(BaseWindow):
    """Time-based sliding window over ``[now - range, now]``.

    At current time ``now`` the window contains every inserted tuple whose
    timestamp ``ts`` satisfies ``now - range <= ts <= now`` (CQL Range
    semantics, inclusive at both ends).

    Args:
        range_seconds: Window width in seconds; must be positive.

    Example:
        >>> w = SlidingWindow(5.0)
        >>> w.insert(StreamTuple(0.0, {"x": 1}))
        >>> w.insert(StreamTuple(3.0, {"x": 2}))
        >>> w.advance(5.0)
        >>> [t["x"] for t in w]
        [1, 2]
        >>> w.advance(5.1)
        >>> [t["x"] for t in w]
        [2]
    """

    def __init__(self, range_seconds: float):
        if range_seconds <= 0:
            raise WindowError(
                f"sliding window range must be positive, got {range_seconds}"
            )
        super().__init__()
        self.range_seconds = float(range_seconds)

    def _evict_before(self, now: float) -> None:
        # CQL Range semantics: at time t the window covers [t - range, t],
        # inclusive at both ends; evict only strictly older tuples.
        cutoff = now - self.range_seconds
        while self._buffer and self._buffer[0].timestamp < cutoff - 1e-9:
            self._buffer.popleft()

    def _evict_on_insert(self) -> None:
        self._evict_before(self._last_ts)


class NowWindow(BaseWindow):
    """The zero-width ``[Range By 'NOW']`` window.

    Contains only tuples whose timestamp equals the current time. Used by
    the paper's Arbitrate (Query 3) and Virtualize (Query 6) queries to
    compare the streams' contents "at each time step".
    """

    def _evict_before(self, now: float) -> None:
        while self._buffer and self._buffer[0].timestamp < now - 1e-9:
            self._buffer.popleft()

    def _evict_on_insert(self) -> None:
        self._evict_before(self._last_ts)


class RowWindow(BaseWindow):
    """Count-based ``[Rows N]`` window holding the most recent N tuples."""

    def __init__(self, count: int):
        if count <= 0:
            raise WindowError(f"row window size must be positive, got {count}")
        super().__init__()
        self.count = int(count)

    def _evict_on_insert(self) -> None:
        while len(self._buffer) > self.count:
            self._buffer.popleft()
