"""Aggregate functions over window contents.

Aggregates follow a simple accumulate-then-finalize protocol
(:class:`Aggregate`): one instance is created per evaluation, values are
fed with :meth:`Aggregate.add`, and :meth:`Aggregate.result` produces the
final value. Windowed operators re-evaluate their aggregates each time the
window slides, which keeps every aggregate trivially correct under
eviction (no retraction logic to get wrong) at O(window) cost per slide —
the right trade-off at the data rates of the paper's deployments (5 Hz
RFID polls, 5-minute sensor epochs).

User-defined aggregates (UDAs, paper §3.3) are supported through
:func:`register_aggregate`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.errors import AggregateError
from repro.streams import typedcols as _tc
from repro.streams.typedcols import EXACT_INT_BOUND

#: Sentinel returned by :meth:`Aggregate.reduce_typed` when the array
#: reduction cannot reproduce the sequential result bit-for-bit.
NO_REDUCE = object()


class Aggregate:
    """Base class for aggregate functions.

    Subclasses override :meth:`add` and :meth:`result`. ``None`` inputs are
    skipped by convention (SQL-style NULL handling) except for ``count(*)``,
    which is expressed by feeding a non-None marker for every row.
    """

    #: Value returned when the aggregate saw no (non-None) input.
    empty_result: Any = None

    def add(self, value: Any) -> None:
        """Accumulate one input value."""
        raise NotImplementedError

    def result(self) -> Any:
        """Return the aggregate of everything added so far."""
        raise NotImplementedError

    def reduce_typed(self, values: Any) -> Any:
        """Reduce a typed (numpy) value array, or signal fallback.

        ``values`` is a non-empty ``int64``/``float64`` array with no
        ``None`` cells (:func:`repro.streams.typedcols.typed_from_values`
        guarantees both). Return the aggregate result, or
        :data:`NO_REDUCE` to make the caller feed :meth:`add`
        sequentially instead.

        The contract is strict: only reduce when the result is
        **bit-identical** to the sequential loop — the golden traces
        pin outputs byte-for-byte across execution modes and across
        the numpy/no-numpy CI legs. Anything whose IEEE-754 rounding
        could differ (notably float summation: numpy sums pairwise,
        :meth:`add` accumulates sequentially) must return
        :data:`NO_REDUCE`. The base implementation always falls back,
        so user-defined aggregates are unaffected by typed columns.
        """
        return NO_REDUCE

    @classmethod
    def over(cls, values: Iterable[Any], *args: Any, **kwargs: Any) -> Any:
        """Convenience: evaluate this aggregate over an iterable."""
        agg = cls(*args, **kwargs)
        for value in values:
            agg.add(value)
        return agg.result()


class Count(Aggregate):
    """``count(expr)`` — number of non-None inputs."""

    empty_result = 0

    def __init__(self):
        self._n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._n += 1

    def result(self) -> int:
        return self._n

    def reduce_typed(self, values: Any) -> int:
        # A typed array has no None cells, so every row counts.
        return len(values)


class CountDistinct(Aggregate):
    """``count(distinct expr)`` — number of distinct non-None inputs."""

    empty_result = 0

    def __init__(self):
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is not None:
            self._seen.add(value)

    def result(self) -> int:
        return len(self._seen)


def _exact_int_sum(values: Any) -> Any:
    """Float sum of an int64 array, iff provably bit-exact; else NO_REDUCE.

    The sequential accumulator computes ``0.0 + v0 + v1 + ...`` in
    float64. When ``max(|v|) * n <= 2**53`` every partial sum stays
    within the exactly-representable integer range, so the array sum
    (computed in int64, which the same bound keeps overflow-free) casts
    to the identical float. Float arrays always fall back: numpy's
    pairwise summation rounds differently from sequential addition.
    """
    if values.dtype.kind != "i" or not len(values):
        return NO_REDUCE
    lo = int(values.min())
    hi = int(values.max())
    if max(abs(lo), abs(hi)) * len(values) > EXACT_INT_BOUND:
        return NO_REDUCE
    return float(int(values.sum()))


class Sum(Aggregate):
    """``sum(expr)`` — sum of non-None inputs; None when empty."""

    def __init__(self):
        self._total = 0.0
        self._n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._total += float(value)
            self._n += 1

    def result(self) -> float | None:
        return self._total if self._n else None

    def reduce_typed(self, values: Any) -> Any:
        return _exact_int_sum(values)


class Avg(Aggregate):
    """``avg(expr)`` — arithmetic mean of non-None inputs; None when empty."""

    def __init__(self):
        self._total = 0.0
        self._n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._total += float(value)
            self._n += 1

    def result(self) -> float | None:
        return self._total / self._n if self._n else None

    def reduce_typed(self, values: Any) -> Any:
        total = _exact_int_sum(values)
        if total is NO_REDUCE:
            return NO_REDUCE
        return total / len(values)


class Stdev(Aggregate):
    """``stdev(expr)`` — sample standard deviation (ddof=1).

    Returns 0.0 for a single input and None for no input. Uses Welford's
    online algorithm for numerical stability — the redwood traces
    accumulate thousands of near-identical temperatures where the naive
    sum-of-squares formula loses precision.
    """

    def __init__(self):
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._n += 1
        delta = float(value) - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (float(value) - self._mean)

    def result(self) -> float | None:
        if self._n == 0:
            return None
        if self._n == 1:
            return 0.0
        return math.sqrt(self._m2 / (self._n - 1))


def _exact_extremum(values: Any, minimum: bool) -> Any:
    """min/max of a typed array, iff identical to the sequential scan.

    Int arrays are always exact. Float arrays fall back in two corner
    cases: any NaN (the sequential ``<``/``>`` scan propagates a
    leading NaN but skips an interior one, which no array reduction
    reproduces) and a ±0.0 result (the scan keeps the first-seen zero's
    sign bit; ``np.min`` does not guarantee which zero it returns).
    """
    if not len(values):
        return NO_REDUCE
    if values.dtype.kind == "i":
        return int(values.min() if minimum else values.max())
    if _tc.np.isnan(values).any():
        return NO_REDUCE
    best = float(values.min() if minimum else values.max())
    if best == 0.0:
        return NO_REDUCE
    return best


class Min(Aggregate):
    """``min(expr)`` — minimum non-None input; None when empty."""

    def __init__(self):
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self._best is None or value < self._best):
            self._best = value

    def result(self) -> Any:
        return self._best

    def reduce_typed(self, values: Any) -> Any:
        return _exact_extremum(values, minimum=True)


class Max(Aggregate):
    """``max(expr)`` — maximum non-None input; None when empty."""

    def __init__(self):
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self._best is None or value > self._best):
            self._best = value

    def result(self) -> Any:
        return self._best

    def reduce_typed(self, values: Any) -> Any:
        return _exact_extremum(values, minimum=False)


class Median(Aggregate):
    """``median(expr)`` — median of non-None inputs; None when empty.

    Not a CQL builtin, but part of the ESP operator toolkit: the robust
    alternative to ``avg`` used in the MAD outlier-rejection ablation.
    """

    def __init__(self):
        self._values: list[float] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self._values.append(float(value))

    def result(self) -> float | None:
        if not self._values:
            return None
        ordered = sorted(self._values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0


class Mad(Aggregate):
    """``mad(expr)`` — median absolute deviation of non-None inputs.

    Used by the toolkit's robust outlier detector (DESIGN.md ablation 4).
    """

    def __init__(self):
        self._values: list[float] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self._values.append(float(value))

    def result(self) -> float | None:
        if not self._values:
            return None
        center = Median.over(self._values)
        return Median.over(abs(v - center) for v in self._values)


class First(Aggregate):
    """``first(expr)`` — earliest non-None input; None when empty."""

    def __init__(self):
        self._value: Any = None
        self._set = False

    def add(self, value: Any) -> None:
        if value is not None and not self._set:
            self._value = value
            self._set = True

    def result(self) -> Any:
        return self._value

    def reduce_typed(self, values: Any) -> Any:
        return values[0].item() if len(values) else NO_REDUCE


class Last(Aggregate):
    """``last(expr)`` — latest non-None input; None when empty."""

    def __init__(self):
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is not None:
            self._value = value

    def result(self) -> Any:
        return self._value

    def reduce_typed(self, values: Any) -> Any:
        return values[-1].item() if len(values) else NO_REDUCE


#: Registry of aggregate factories, keyed by lowercase name.
_REGISTRY: dict[str, Callable[[], Aggregate]] = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "mean": Avg,
    "stdev": Stdev,
    "stddev": Stdev,
    "min": Min,
    "max": Max,
    "median": Median,
    "mad": Mad,
    "first": First,
    "last": Last,
}


def aggregate_names() -> frozenset[str]:
    """Names of all registered aggregates (lowercase)."""
    return frozenset(_REGISTRY)


def register_aggregate(name: str, factory: Callable[[], Aggregate]) -> None:
    """Register a user-defined aggregate under ``name`` (case-insensitive).

    The factory must return a fresh :class:`Aggregate` per call. Registering
    an existing name replaces it, which lets deployments specialize builtins.
    """
    _REGISTRY[name.lower()] = factory


def get_aggregate(name: str, distinct: bool = False) -> Aggregate:
    """Instantiate the aggregate registered under ``name``.

    Args:
        name: Aggregate name, case-insensitive.
        distinct: Evaluate over distinct inputs. ``count(distinct x)`` maps
            to :class:`CountDistinct`; for other aggregates a distinct
            filter wrapper is applied.

    Raises:
        AggregateError: If no aggregate is registered under ``name``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise AggregateError(
            f"unknown aggregate {name!r}; known: {sorted(_REGISTRY)}"
        )
    if not distinct:
        return _REGISTRY[key]()
    if key == "count":
        return CountDistinct()
    return _DistinctWrapper(_REGISTRY[key]())


class _DistinctWrapper(Aggregate):
    """Feed each distinct value to the wrapped aggregate once."""

    def __init__(self, inner: Aggregate):
        self._inner = inner
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None or value in self._seen:
            return
        self._seen.add(value)
        self._inner.add(value)

    def result(self) -> Any:
        return self._inner.result()


class AggregateSpec:
    """A bound aggregate call as it appears in a query plan.

    Args:
        name: Registered aggregate name (``"count"``, ``"avg"``, ...).
        argument: Callable extracting the input value from a tuple, or
            ``None`` for ``count(*)`` semantics (every row counts).
        distinct: Whether the call is over distinct argument values.
        output: Field name for the result in the output tuple.
        field: Plain-field shorthand for ``argument``: the input value
            is ``row.get(field)`` (absent → ``None``, skipped SQL-style,
            exactly like the ``lambda t: t.get(f)`` idiom it replaces).
            Declaring the field *by name* also lets :meth:`evaluate`
            vectorize: the extracted window column goes through typed
            detection and, for the reductions whose array result is
            provably bit-identical to the sequential loop
            (:meth:`Aggregate.reduce_typed`), reduces in C. Mutually
            exclusive with ``argument``.

    Example:
        >>> from repro.streams.tuples import StreamTuple
        >>> spec = AggregateSpec("count", lambda t: t["tag_id"],
        ...                      distinct=True, output="n_tags")
        >>> rows = [StreamTuple(0, {"tag_id": x}) for x in "aab"]
        >>> spec.evaluate(rows)
        2
    """

    __slots__ = ("name", "argument", "distinct", "output", "field")

    def __init__(
        self,
        name: str,
        argument: Callable[[Any], Any] | None = None,
        distinct: bool = False,
        output: str | None = None,
        field: str | None = None,
    ):
        if field is not None and argument is not None:
            raise AggregateError(
                "AggregateSpec takes either argument= or field=, not both"
            )
        self.name = name.lower()
        self.field = field
        if field is not None:
            argument = _field_argument(field)
        self.argument = argument
        self.distinct = distinct
        self.output = output or self._default_output()

    def _default_output(self) -> str:
        if self.field is not None:
            arg = self.field
        else:
            arg = "*" if self.argument is None else "expr"
        prefix = "distinct_" if self.distinct else ""
        return f"{self.name}_{prefix}{arg}".replace("*", "star")

    def evaluate(self, rows: Iterable[Any]) -> Any:
        """Evaluate this aggregate over an iterable of tuples.

        Specs bound to a plain field extract the window's value column
        once; when it is homogeneous numeric and the aggregate supports
        an exact array reduction, the whole evaluation is a single C
        call. Every other case feeds the accumulator row by row — same
        inputs, same order, same result.
        """
        agg = get_aggregate(self.name, distinct=self.distinct)
        field = self.field
        if field is not None:
            values = [row.get(field) for row in rows]
            if not self.distinct:
                typed = _tc.typed_from_values(values)
                if typed is not None:
                    result = agg.reduce_typed(typed)
                    if result is not NO_REDUCE:
                        return result
            for value in values:
                agg.add(value)
            return agg.result()
        for row in rows:
            agg.add(1 if self.argument is None else self.argument(row))
        return agg.result()

    def __repr__(self) -> str:
        if self.field is not None:
            arg = self.field
        else:
            arg = "*" if self.argument is None else "<expr>"
        distinct = "distinct " if self.distinct else ""
        return f"AggregateSpec({self.name}({distinct}{arg}) AS {self.output})"


def _field_argument(field: str) -> Callable[[Any], Any]:
    """Row extractor equivalent of ``field=``: ``row.get(field)``."""

    def argument(row: Any) -> Any:
        return row.get(field)

    return argument
